#include "baselines/hawkes_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/cascn_model.h"
#include "core/trainer.h"

namespace cascn {
namespace {

using testing::TinyCascnConfig;
using testing::TinyDataset;
using testing::TinyTrainerOptions;

CascadeSample BurstySample() {
  // Dense early burst: high residual excitation at the window edge.
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i <= 12; ++i)
    events.push_back({i, i, {0}, 50.0 + i * 0.5});
  CascadeSample s;
  s.observed = std::move(Cascade::Create("burst", std::move(events))).value();
  s.observation_window = 60.0;
  return s;
}

CascadeSample StaleSample() {
  // Same size but all adoptions long before the window edge.
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i <= 12; ++i)
    events.push_back({i, i, {0}, i * 0.5});
  CascadeSample s;
  s.observed = std::move(Cascade::Create("stale", std::move(events))).value();
  s.observation_window = 60.0;
  return s;
}

TEST(HawkesFitTest, RecentBurstsPredictMoreGrowth) {
  HawkesProcessModel model;
  const HawkesFit bursty = model.FitCascade(BurstySample());
  const HawkesFit stale = model.FitCascade(StaleSample());
  EXPECT_GT(bursty.expected_future, stale.expected_future);
  EXPECT_GT(bursty.kappa, 0.0);
  EXPECT_LE(bursty.kappa, 0.95);
  EXPECT_TRUE(std::isfinite(bursty.log_likelihood));
}

TEST(HawkesFitTest, SingleNodeCascadeIsFinite) {
  HawkesProcessModel model;
  CascadeSample s;
  s.observed = std::move(Cascade::Create("lone", {{0, 0, {}, 0.0}})).value();
  s.observation_window = 60.0;
  const HawkesFit fit = model.FitCascade(s);
  EXPECT_TRUE(std::isfinite(fit.expected_future));
  EXPECT_GE(fit.expected_future, 0.0);
}

TEST(HawkesFitTest, RecoversDecayOrderOfMagnitude) {
  // Events generated with a fast kernel should fit a larger theta than
  // events with a slow kernel.
  auto cascade_with_gap = [](double gap) {
    std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
    for (int i = 1; i <= 15; ++i)
      events.push_back({i, i, {i - 1}, i * gap});
    CascadeSample s;
    s.observed =
        std::move(Cascade::Create("g", std::move(events))).value();
    s.observation_window = 16 * gap;
    return s;
  };
  HawkesProcessModel model;
  const HawkesFit fast = model.FitCascade(cascade_with_gap(1.0));
  const HawkesFit slow = model.FitCascade(cascade_with_gap(30.0));
  EXPECT_GT(fast.theta, slow.theta);
}

TEST(HawkesModelTest, FitAndEvaluate) {
  const CascadeDataset dataset = TinyDataset(/*seed=*/5, /*num_cascades=*/300);
  HawkesProcessModel model;
  EXPECT_EQ(model.name(), "Hawkes");
  EXPECT_TRUE(model.TrainableParameters().empty());
  ASSERT_TRUE(model.Fit(dataset).ok());
  const double msle = EvaluateMsle(model, dataset.test);
  EXPECT_TRUE(std::isfinite(msle));
  // Calibrated Hawkes must beat predicting zero.
  double zero_msle = 0;
  for (const auto& s : dataset.test) zero_msle += s.log_label * s.log_label;
  zero_msle /= dataset.test.size();
  EXPECT_LT(msle, zero_msle);
}

TEST(HawkesModelTest, PredictBeforeFitDies) {
  const CascadeDataset dataset = TinyDataset();
  HawkesProcessModel model;
  EXPECT_DEATH(model.PredictLog(dataset.test[0]), "Fit");
}

TEST(HawkesModelTest, FitRequiresTrainData) {
  HawkesProcessModel model;
  CascadeDataset empty;
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(HybridModelTest, WeightSelectedOnValidationAndCombines) {
  const CascadeDataset dataset = TinyDataset(/*seed=*/6, /*num_cascades=*/250);
  CascnModel deep(TinyCascnConfig());
  TrainRegressor(deep, dataset, TinyTrainerOptions(4));
  HawkesProcessModel hawkes;
  ASSERT_TRUE(hawkes.Fit(dataset).ok());

  HybridModel hybrid(&deep, &hawkes);
  EXPECT_EQ(hybrid.name(), "CasCN+Hawkes");
  ASSERT_TRUE(hybrid.Fit(dataset).ok());
  EXPECT_GE(hybrid.weight(), 0.0);
  EXPECT_LE(hybrid.weight(), 1.0);

  // The hybrid is no worse on validation than either component (it can
  // select w = 0 or w = 1).
  const double hybrid_val = EvaluateMsle(hybrid, dataset.validation);
  const double deep_val = EvaluateMsle(deep, dataset.validation);
  const double hawkes_val = EvaluateMsle(hawkes, dataset.validation);
  EXPECT_LE(hybrid_val, std::min(deep_val, hawkes_val) + 1e-9);
}

TEST(HybridModelTest, FitRequiresFittedHawkes) {
  const CascadeDataset dataset = TinyDataset();
  CascnModel deep(TinyCascnConfig());
  HawkesProcessModel hawkes;  // not fitted
  HybridModel hybrid(&deep, &hawkes);
  EXPECT_FALSE(hybrid.Fit(dataset).ok());
}

}  // namespace
}  // namespace cascn
