#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "baselines/feature_deep.h"
#include "baselines/feature_linear.h"
#include "core/trainer.h"

namespace cascn {
namespace {

using testing::TinyDataset;
using testing::TinyTrainerOptions;

TEST(FeatureLinearTest, FitSelectsL2AndPredicts) {
  // A larger dataset so ridge has enough signal to beat the zero baseline.
  const CascadeDataset dataset = TinyDataset(/*seed=*/7,
                                             /*num_cascades=*/400);
  FeatureLinearModel model;
  ASSERT_TRUE(model.Fit(dataset).ok());
  EXPECT_TRUE(model.fitted());
  EXPECT_GT(model.selected_l2(), 0.0);
  const double msle = EvaluateMsle(model, dataset.test);
  EXPECT_TRUE(std::isfinite(msle));
  // Better than predicting zero (labels are positive logs).
  double zero_msle = 0;
  for (const auto& s : dataset.test) zero_msle += s.log_label * s.log_label;
  zero_msle /= dataset.test.size();
  EXPECT_LT(msle, zero_msle);
}

TEST(FeatureLinearTest, NameAndNoTrainableParams) {
  FeatureLinearModel model;
  EXPECT_EQ(model.name(), "Features-linear");
  EXPECT_TRUE(model.TrainableParameters().empty());
}

TEST(FeatureLinearTest, FitRequiresSplits) {
  CascadeDataset empty;
  FeatureLinearModel model;
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(FeatureLinearTest, PredictBeforeFitDies) {
  const CascadeDataset dataset = TinyDataset();
  FeatureLinearModel model;
  EXPECT_DEATH(model.PredictLog(dataset.test[0]), "Fit");
}

TEST(FeatureLinearTest, CustomL2GridIsUsed) {
  const CascadeDataset dataset = TinyDataset();
  FeatureLinearModel model({}, {0.123});
  ASSERT_TRUE(model.Fit(dataset).ok());
  EXPECT_DOUBLE_EQ(model.selected_l2(), 0.123);
}

TEST(FeatureDeepTest, TrainingReducesLoss) {
  const CascadeDataset dataset = TinyDataset();
  FeatureDeepModel::Config config;
  config.hidden1 = 16;
  config.hidden2 = 8;
  FeatureDeepModel model(config);
  EXPECT_EQ(model.name(), "Features-deep");
  model.PrepareScaler(dataset.train);
  const double before = EvaluateMsle(model, dataset.validation);
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(6));
  EXPECT_LT(result.best_validation_msle, before);
}

TEST(FeatureDeepTest, PredictBeforeScalerDies) {
  const CascadeDataset dataset = TinyDataset();
  FeatureDeepModel model({});
  EXPECT_DEATH(model.PredictLog(dataset.test[0]), "PrepareScaler");
}

TEST(FeatureDeepTest, CacheClearedOnRescale) {
  const CascadeDataset dataset = TinyDataset();
  FeatureDeepModel model({});
  model.PrepareScaler(dataset.train);
  const double a = model.PredictLog(dataset.test[0]).value().At(0, 0);
  model.ClearCache();
  EXPECT_DOUBLE_EQ(model.PredictLog(dataset.test[0]).value().At(0, 0), a);
}

TEST(FeatureBaselines, DeepAndLinearAreComparable) {
  // Sanity on the paper's observation that the gap between Feature-deep and
  // Feature-linear is small: both should land in the same MSLE ballpark
  // (within 3x) on the tiny dataset.
  const CascadeDataset dataset = TinyDataset();
  FeatureLinearModel linear;
  ASSERT_TRUE(linear.Fit(dataset).ok());
  const double linear_msle = EvaluateMsle(linear, dataset.test);

  FeatureDeepModel deep({});
  deep.PrepareScaler(dataset.train);
  TrainRegressor(deep, dataset, TinyTrainerOptions(8));
  const double deep_msle = EvaluateMsle(deep, dataset.test);

  EXPECT_LT(deep_msle, linear_msle * 3);
  EXPECT_LT(linear_msle, deep_msle * 3 + 1.0);
}

}  // namespace
}  // namespace cascn
