#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "baselines/lis_model.h"
#include "baselines/node2vec_model.h"
#include "core/trainer.h"

namespace cascn {
namespace {

using testing::TinyDataset;
using testing::TinyTrainerOptions;

TEST(LisModelTest, PredictsScalarAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  LisModel::Config config;
  config.user_universe = 200;
  config.latent_dim = 4;
  LisModel model(config);
  EXPECT_EQ(model.name(), "LIS");
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_EQ(pred.rows(), 1);
  EXPECT_EQ(pred.cols(), 1);
  ag::Square(pred).Backward();
  int with_grad = 0;
  for (const auto& p : model.Parameters())
    if (!p.grad().empty()) ++with_grad;
  EXPECT_GE(with_grad, 2);  // embeddings + head
}

TEST(LisModelTest, HandlesRootOnlyCascade) {
  LisModel::Config config;
  config.user_universe = 50;
  LisModel model(config);
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("lone", {{0, 7, {}, 0.0}})).value();
  sample.observation_window = 60.0;
  EXPECT_TRUE(
      std::isfinite(model.PredictLog(sample).value().At(0, 0)));
}

TEST(LisModelTest, TrainingReducesLoss) {
  const CascadeDataset dataset = TinyDataset();
  LisModel::Config config;
  config.user_universe = 200;
  LisModel model(config);
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(6));
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Node2VecModelTest, PretrainThenPredict) {
  const CascadeDataset dataset = TinyDataset();
  Node2VecModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.sgns_epochs = 1;
  Node2VecModel model(config);
  EXPECT_EQ(model.name(), "Node2Vec");
  model.PretrainEmbeddings(dataset.train);
  EXPECT_EQ(model.embeddings().rows(), 200);
  EXPECT_EQ(model.embeddings().cols(), 6);
  const ag::Variable pred = model.PredictLog(dataset.test[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
}

TEST(Node2VecModelTest, PredictBeforePretrainDies) {
  const CascadeDataset dataset = TinyDataset();
  Node2VecModel model({});
  EXPECT_DEATH(model.PredictLog(dataset.test[0]), "Pretrain");
}

TEST(Node2VecModelTest, PretrainingMovesEmbeddings) {
  const CascadeDataset dataset = TinyDataset();
  Node2VecModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.sgns_epochs = 2;
  Node2VecModel model(config);
  model.PretrainEmbeddings(dataset.train);
  // After SGNS, the table departs from the tiny uniform init range.
  EXPECT_GT(model.embeddings().AbsMax(), 0.5 / 6 + 1e-6);
}

TEST(Node2VecModelTest, OnlyHeadIsTrainable) {
  Node2VecModel model({});
  // The frozen embedding table is not among trainable parameters: only the
  // MLP (3 layers x 2 tensors).
  EXPECT_EQ(model.TrainableParameters().size(), 6u);
}

TEST(Node2VecModelTest, EndToEndTrainingImproves) {
  const CascadeDataset dataset = TinyDataset();
  Node2VecModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.sgns_epochs = 1;
  Node2VecModel model(config);
  model.PretrainEmbeddings(dataset.train);
  const double before = EvaluateMsle(model, dataset.validation);
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(6));
  EXPECT_LE(result.best_validation_msle, before);
}

}  // namespace
}  // namespace cascn
