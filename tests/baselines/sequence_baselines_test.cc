#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "baselines/deepcas_model.h"
#include "baselines/deephawkes_model.h"
#include "baselines/topolstm_model.h"
#include "core/trainer.h"

namespace cascn {
namespace {

using testing::TinyDataset;
using testing::TinyTrainerOptions;

DeepCasModel::Config SmallDeepCas() {
  DeepCasModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.hidden_dim = 5;
  config.attention_dim = 4;
  config.walk_options.num_walks = 4;
  config.walk_options.walk_length = 5;
  return config;
}

TEST(DeepCasTest, PredictsAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  DeepCasModel model(SmallDeepCas());
  EXPECT_EQ(model.name(), "DeepCas");
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  for (const auto& [name, p] : model.NamedParameters())
    EXPECT_FALSE(p.grad().empty()) << name;
}

TEST(DeepCasTest, WalkCacheMakesPredictionsStable) {
  const CascadeDataset dataset = TinyDataset();
  DeepCasModel model(SmallDeepCas());
  const double a = model.PredictLog(dataset.train[1]).value().At(0, 0);
  EXPECT_DOUBLE_EQ(model.PredictLog(dataset.train[1]).value().At(0, 0), a);
  model.ClearCache();
  EXPECT_DOUBLE_EQ(model.PredictLog(dataset.train[1]).value().At(0, 0), a);
}

TEST(DeepCasTest, ShortTrainingReducesLoss) {
  const CascadeDataset dataset = TinyDataset();
  DeepCasModel model(SmallDeepCas());
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(4));
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

DeepHawkesModel::Config SmallDeepHawkes() {
  DeepHawkesModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.hidden_dim = 5;
  config.num_time_intervals = 4;
  return config;
}

TEST(DeepHawkesTest, PredictsAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  DeepHawkesModel model(SmallDeepHawkes());
  EXPECT_EQ(model.name(), "DeepHawkes");
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  int with_grad = 0;
  for (const auto& p : model.Parameters())
    if (!p.grad().empty()) ++with_grad;
  EXPECT_GE(with_grad, 3);
}

TEST(DeepHawkesTest, DecayParameterReceivesGradient) {
  const CascadeDataset dataset = TinyDataset();
  DeepHawkesModel model(SmallDeepHawkes());
  ag::Square(model.PredictLog(dataset.train[0])).Backward();
  bool decay_found = false;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name == "decay_raw") {
      decay_found = true;
      EXPECT_FALSE(p.grad().empty());
    }
  }
  EXPECT_TRUE(decay_found);
}

TEST(DeepHawkesTest, ShortTrainingReducesLoss) {
  const CascadeDataset dataset = TinyDataset();
  DeepHawkesModel model(SmallDeepHawkes());
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(4));
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TopoLstmModel::Config SmallTopoLstm() {
  TopoLstmModel::Config config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.hidden_dim = 5;
  return config;
}

TEST(TopoLstmTest, PredictsAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  TopoLstmModel model(SmallTopoLstm());
  EXPECT_EQ(model.name(), "Topo-LSTM");
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  for (const auto& [name, p] : model.NamedParameters())
    EXPECT_FALSE(p.grad().empty()) << name;
}

TEST(TopoLstmTest, HandlesMultiParentDags) {
  TopoLstmModel model(SmallTopoLstm());
  std::vector<AdoptionEvent> events = {
      {0, 1, {}, 0.0}, {1, 2, {0}, 1.0}, {2, 3, {0, 1}, 2.0},
      {3, 4, {1, 2}, 3.0}};
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("dag", std::move(events))).value();
  sample.observation_window = 10.0;
  EXPECT_TRUE(std::isfinite(model.PredictLog(sample).value().At(0, 0)));
}

TEST(TopoLstmTest, ShortTrainingReducesLoss) {
  const CascadeDataset dataset = TinyDataset();
  TopoLstmModel model(SmallTopoLstm());
  const TrainResult result =
      TrainRegressor(model, dataset, TinyTrainerOptions(4));
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(SequenceBaselines, AllDeterministicGivenSeed) {
  const CascadeDataset dataset = TinyDataset();
  DeepCasModel a(SmallDeepCas()), b(SmallDeepCas());
  EXPECT_DOUBLE_EQ(a.PredictLog(dataset.test[0]).value().At(0, 0),
                   b.PredictLog(dataset.test[0]).value().At(0, 0));
  DeepHawkesModel c(SmallDeepHawkes()), d(SmallDeepHawkes());
  EXPECT_DOUBLE_EQ(c.PredictLog(dataset.test[0]).value().At(0, 0),
                   d.PredictLog(dataset.test[0]).value().At(0, 0));
  TopoLstmModel e(SmallTopoLstm()), f(SmallTopoLstm());
  EXPECT_DOUBLE_EQ(e.PredictLog(dataset.test[0]).value().At(0, 0),
                   f.PredictLog(dataset.test[0]).value().At(0, 0));
}

}  // namespace
}  // namespace cascn
