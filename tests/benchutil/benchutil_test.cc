#include <cmath>
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"

namespace cascn {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Model", "MSLE"});
  table.AddRow({"CasCN", "2.242"});
  table.AddRow({"DeepHawkes", "2.441"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("CasCN"), std::string::npos);
  EXPECT_NE(out.find("DeepHawkes"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Cell(2.2417, 3), "2.242");
  EXPECT_EQ(TablePrinter::Cell(1.0, 1), "1.0");
}

TEST(TablePrinterTest, RowWidthMismatchDies) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "width");
}

TEST(BenchScaleTest, DefaultsToOneAndParsesEnv) {
  unsetenv("CASCN_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench::BenchScale(), 1.0);
  setenv("CASCN_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(bench::BenchScale(), 2.5);
  setenv("CASCN_BENCH_SCALE", "junk", 1);
  EXPECT_DOUBLE_EQ(bench::BenchScale(), 1.0);
  setenv("CASCN_BENCH_SCALE", "99", 1);
  EXPECT_DOUBLE_EQ(bench::BenchScale(), 10.0);  // clamped
  unsetenv("CASCN_BENCH_SCALE");
}

TEST(ExperimentRunnerTest, WindowsMatchPaper) {
  EXPECT_EQ(bench::WeiboWindows(), (std::vector<double>{60, 120, 180}));
  EXPECT_EQ(bench::CitationWindows(), (std::vector<double>{36, 60, 84}));
  EXPECT_EQ(bench::WindowLabel(true, 60), "1 hour");
  EXPECT_EQ(bench::WindowLabel(true, 180), "3 hours");
  EXPECT_EQ(bench::WindowLabel(false, 84), "7 years");
}

TEST(ExperimentRunnerTest, ModelListsMatchPaperTables) {
  const auto t3 = bench::Table3Models();
  EXPECT_EQ(t3.size(), 8u);
  EXPECT_EQ(bench::ModelKindName(t3.back()), "CasCN");
  const auto t4 = bench::Table4Models();
  EXPECT_EQ(t4.size(), 6u);
  EXPECT_EQ(bench::ModelKindName(t4.front()), "CasCN");
}

TEST(ExperimentRunnerTest, MakeDatasetCapsSplits) {
  bench::SyntheticData data;
  data.weibo_config = WeiboLikeConfig();
  data.weibo_config.num_cascades = 150;
  Rng rng(1);
  data.weibo = GenerateCascades(data.weibo_config, rng);
  auto dataset = bench::MakeDataset(data.weibo, /*weibo=*/true, 60.0,
                                    /*max_train=*/20);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_LE(dataset->train.size(), 20u);
  EXPECT_LE(dataset->validation.size(), 10u);
  EXPECT_LE(dataset->test.size(), 10u);
}

TEST(ExperimentRunnerTest, DefaultRunOptionsScaleEpochs) {
  const auto small = bench::DefaultRunOptions(0.4, 2000);
  const auto large = bench::DefaultRunOptions(4.0, 2000);
  EXPECT_LT(small.trainer.max_epochs, large.trainer.max_epochs);
  EXPECT_EQ(small.user_universe, 2000);
}

TEST(ExperimentRunnerTest, TuneForDatasetAdjustsCascnConfig) {
  auto weibo = bench::DefaultRunOptions(1.0, 2000);
  auto citation = weibo;
  bench::TuneForDataset(weibo, /*weibo=*/true);
  bench::TuneForDataset(citation, /*weibo=*/false);
  // Weibo widens the hidden state; citation shrinks the padded graph.
  EXPECT_GT(weibo.cascn.hidden_dim,
            bench::DefaultRunOptions(1.0, 2000).cascn.hidden_dim - 1);
  EXPECT_LT(citation.cascn.padded_size, weibo.cascn.padded_size);
  EXPECT_LT(citation.cascn.max_sequence_length,
            weibo.cascn.max_sequence_length + 1);
}

TEST(ExperimentRunnerTest, RunModelTrainsAFastBaseline) {
  bench::SyntheticData data;
  data.weibo_config = WeiboLikeConfig();
  data.weibo_config.num_cascades = 400;
  data.weibo_config.user_universe = 300;
  Rng rng(2);
  data.weibo = GenerateCascades(data.weibo_config, rng);
  auto dataset = bench::MakeDataset(data.weibo, true, 60.0, 30);
  ASSERT_TRUE(dataset.ok());
  auto opts = bench::DefaultRunOptions(0.3, 300);
  const auto outcome =
      bench::RunModel(bench::ModelKind::kFeatureLinear, *dataset, opts);
  EXPECT_EQ(outcome.model, "Features-linear");
  EXPECT_TRUE(std::isfinite(outcome.test_msle));
}

}  // namespace
}  // namespace cascn
