#include "data/text_format.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(ParseCascadeLineTest, ParsesSimpleLine) {
  // Root u0 at 0; u1 re-tweets from u0 at 5; u2 re-tweets from u1 at 9.
  const std::string line = "m1\tu0\t1464710400\t3\tu0:0 u0/u1:5 u0/u1/u2:9";
  auto cascade = ParseCascadeLine(line, 100);
  ASSERT_TRUE(cascade.ok()) << cascade.status();
  EXPECT_EQ(cascade->id(), "m1");
  EXPECT_EQ(cascade->size(), 3);
  EXPECT_DOUBLE_EQ(cascade->event(1).time, 5.0);
  EXPECT_EQ(cascade->event(1).parents[0], 0);
  EXPECT_EQ(cascade->event(2).parents[0], 1);
}

TEST(ParseCascadeLineTest, SortsOutOfOrderPaths) {
  const std::string line = "m2\tu0\t0\t3\tu0/u2:7 u0:0 u0/u1:3";
  auto cascade = ParseCascadeLine(line, 100);
  ASSERT_TRUE(cascade.ok()) << cascade.status();
  EXPECT_EQ(cascade->size(), 3);
  EXPECT_DOUBLE_EQ(cascade->event(1).time, 3.0);
  EXPECT_DOUBLE_EQ(cascade->event(2).time, 7.0);
}

TEST(ParseCascadeLineTest, KeepsFirstAdoptionOfRepeatedUser) {
  const std::string line = "m3\tu0\t0\t3\tu0:0 u0/u1:2 u0/u1:8";
  auto cascade = ParseCascadeLine(line, 100);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->size(), 2);
}

TEST(ParseCascadeLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCascadeLine("too\tfew\tfields", 100).ok());
  EXPECT_FALSE(ParseCascadeLine("m\tu\t0\t1\t", 100).ok());
  EXPECT_FALSE(ParseCascadeLine("m\tu\t0\t1\tu0", 100).ok());  // no time
  // Parent never adopted.
  EXPECT_FALSE(
      ParseCascadeLine("m\tu\t0\t2\tu0:0 u0/ux/u2:5", 100).ok());
  // First adoption not at time 0.
  EXPECT_FALSE(ParseCascadeLine("m\tu\t0\t1\tu0:5", 100).ok());
  // Bad universe.
  EXPECT_FALSE(ParseCascadeLine("m\tu\t0\t1\tu0:0", 0).ok());
}

TEST(FormatCascadeLineTest, RoundTripsThroughParser) {
  std::vector<AdoptionEvent> events = {
      {0, 11, {}, 0.0},
      {1, 22, {0}, 2.0},
      {2, 33, {1}, 5.0},
      {3, 44, {0}, 6.5},
  };
  const Cascade original =
      std::move(Cascade::Create("rt", std::move(events))).value();
  const std::string line = FormatCascadeLine(original);
  auto parsed = ParseCascadeLine(line, 1 << 20);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id(), "rt");
  ASSERT_EQ(parsed->size(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->event(i).time, original.event(i).time);
    EXPECT_EQ(parsed->event(i).parents, original.event(i).parents);
  }
}

TEST(ReadCascadesTest, ReadsMultipleLinesAndSkipsBlank) {
  std::stringstream in;
  in << "a\tu0\t0\t2\tu0:0 u0/u1:3\n";
  in << "\n";
  in << "b\tv0\t0\t1\tv0:0\n";
  auto cascades = ReadCascades(in, 100);
  ASSERT_TRUE(cascades.ok()) << cascades.status();
  ASSERT_EQ(cascades->size(), 2u);
  EXPECT_EQ((*cascades)[0].id(), "a");
  EXPECT_EQ((*cascades)[1].id(), "b");
}

TEST(ReadCascadesTest, ReportsLineNumberOnError) {
  std::stringstream in;
  in << "a\tu0\t0\t1\tu0:0\n";
  in << "broken line\n";
  auto cascades = ReadCascades(in, 100);
  ASSERT_FALSE(cascades.ok());
  EXPECT_NE(cascades.status().message().find("line 2"), std::string::npos);
}

TEST(WriteCascadesTest, WritesOneLinePerCascade) {
  std::vector<Cascade> cascades;
  cascades.push_back(
      std::move(Cascade::Create("x", {{0, 1, {}, 0.0}})).value());
  cascades.push_back(
      std::move(Cascade::Create("y", {{0, 2, {}, 0.0}})).value());
  std::stringstream out;
  WriteCascades(cascades, out);
  std::string line;
  int lines = 0;
  while (std::getline(out, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, 2);
}

TEST(TextFormatTest, FullRoundTripOfFile) {
  std::vector<Cascade> cascades;
  std::vector<AdoptionEvent> events = {
      {0, 5, {}, 0.0}, {1, 6, {0}, 1.5}, {2, 7, {1}, 2.25}};
  cascades.push_back(
      std::move(Cascade::Create("rt0", std::move(events))).value());
  std::stringstream buffer;
  WriteCascades(cascades, buffer);
  auto restored = ReadCascades(buffer, 1 << 20);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ((*restored)[0].size(), 3);
  EXPECT_DOUBLE_EQ((*restored)[0].event(2).time, 2.25);
}

}  // namespace
}  // namespace cascn
