#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "data/cascade_generator.h"

namespace cascn {
namespace {

/// A synthetic cascade with `total` nodes where node i adopts at time i.
Cascade LinearTimeCascade(int total, const std::string& id) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < total; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  return std::move(Cascade::Create(id, std::move(events))).value();
}

TEST(DatasetTest, LabelsAreFutureIncrements) {
  std::vector<Cascade> cascades;
  for (int i = 0; i < 10; ++i)
    cascades.push_back(LinearTimeCascade(20, "c" + std::to_string(i)));
  DatasetOptions opts;
  opts.observation_window = 9.5;  // observes nodes 0..9 -> 10 observed
  opts.min_observed_size = 5;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  ASSERT_FALSE(dataset->train.empty());
  const CascadeSample& s = dataset->train[0];
  EXPECT_EQ(s.observed.size(), 10);
  EXPECT_EQ(s.future_increment, 10);
  EXPECT_DOUBLE_EQ(s.log_label, Log2p1(10));
  EXPECT_DOUBLE_EQ(s.observation_window, 9.5);
}

TEST(DatasetTest, FiltersSmallObservedCascades) {
  std::vector<Cascade> cascades;
  cascades.push_back(LinearTimeCascade(3, "small"));   // 3 observed
  cascades.push_back(LinearTimeCascade(30, "large"));  // 10 observed
  DatasetOptions opts;
  opts.observation_window = 9.5;
  opts.min_observed_size = 10;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->TotalSize(), 1);
}

TEST(DatasetTest, ChronologicalSeventyFifteenFifteenSplit) {
  std::vector<Cascade> cascades;
  for (int i = 0; i < 100; ++i)
    cascades.push_back(LinearTimeCascade(15, "c" + std::to_string(i)));
  DatasetOptions opts;
  opts.observation_window = 100.0;
  opts.min_observed_size = 1;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->train.size(), 70u);
  EXPECT_EQ(dataset->validation.size(), 15u);
  EXPECT_EQ(dataset->test.size(), 15u);
  // Chronological: the first cascades go to train.
  EXPECT_EQ(dataset->train[0].observed.id(), "c0");
  EXPECT_EQ(dataset->validation[0].observed.id(), "c70");
  EXPECT_EQ(dataset->test[0].observed.id(), "c85");
}

TEST(DatasetTest, ValidationAndTestSplitEvenly) {
  std::vector<Cascade> cascades;
  for (int i = 0; i < 101; ++i)
    cascades.push_back(LinearTimeCascade(15, "c" + std::to_string(i)));
  DatasetOptions opts;
  opts.observation_window = 100.0;
  opts.min_observed_size = 1;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  EXPECT_LE(
      std::abs(static_cast<int>(dataset->validation.size()) -
               static_cast<int>(dataset->test.size())),
      1);
  EXPECT_EQ(dataset->TotalSize(), 101);
}

TEST(DatasetTest, RejectsBadOptions) {
  std::vector<Cascade> cascades = {LinearTimeCascade(20, "x")};
  DatasetOptions opts;
  opts.observation_window = -1;
  EXPECT_FALSE(BuildDataset(cascades, opts).ok());
  opts = DatasetOptions{};
  opts.min_observed_size = 0;
  EXPECT_FALSE(BuildDataset(cascades, opts).ok());
  opts = DatasetOptions{};
  opts.train_fraction = 1.0;
  EXPECT_FALSE(BuildDataset(cascades, opts).ok());
}

TEST(DatasetTest, ErrorWhenNothingSurvivesFilter) {
  std::vector<Cascade> cascades = {LinearTimeCascade(3, "x")};
  DatasetOptions opts;
  opts.observation_window = 1.0;
  opts.min_observed_size = 100;
  EXPECT_FALSE(BuildDataset(cascades, opts).ok());
}

TEST(DatasetTest, ObservedPrefixRespectsWindow) {
  Rng rng(9);
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 60;
  const auto cascades = GenerateCascades(config, rng);
  DatasetOptions opts;
  opts.observation_window = 60.0;
  opts.min_observed_size = 5;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  auto check_split = [&](const std::vector<CascadeSample>& split) {
    for (const CascadeSample& s : split) {
      EXPECT_LE(s.observed.last_time(), 60.0);
      EXPECT_GE(s.observed.size(), 5);
      EXPECT_GE(s.future_increment, 0);
      EXPECT_DOUBLE_EQ(s.log_label, Log2p1(s.future_increment));
    }
  };
  check_split(dataset->train);
  check_split(dataset->validation);
  check_split(dataset->test);
}

class WindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(WindowSweep, LongerWindowsObserveMoreAndLeaveLess) {
  Rng rng(10);
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 80;
  const auto cascades = GenerateCascades(config, rng);
  DatasetOptions opts;
  opts.observation_window = GetParam();
  opts.min_observed_size = 1;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  // Every sample's observed size + future increment = full size; larger
  // windows shift mass into the observed part.
  for (const CascadeSample& s : dataset->train) {
    EXPECT_EQ(s.observed.size() + s.future_increment,
              cascades[std::stoi(s.observed.id().substr(1))].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(30.0, 60.0, 120.0, 180.0));

}  // namespace
}  // namespace cascn
