#include "data/cascade_generator.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 20;
  Rng a(5), b(5);
  const auto c1 = GenerateCascades(config, a);
  const auto c2 = GenerateCascades(config, b);
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].size(), c2[i].size());
    EXPECT_EQ(c1[i].id(), c2[i].id());
    for (int e = 0; e < c1[i].size(); ++e) {
      EXPECT_EQ(c1[i].event(e).user, c2[i].event(e).user);
      EXPECT_DOUBLE_EQ(c1[i].event(e).time, c2[i].event(e).time);
    }
  }
}

TEST(GeneratorTest, ProducesRequestedCount) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 37;
  Rng rng(1);
  EXPECT_EQ(GenerateCascades(config, rng).size(), 37u);
}

TEST(GeneratorTest, RespectsHorizonAndMaxSize) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 50;
  config.max_size = 60;
  Rng rng(2);
  for (const Cascade& c : GenerateCascades(config, rng)) {
    EXPECT_LE(c.size(), 60);
    EXPECT_LE(c.last_time(), config.horizon);
    EXPECT_DOUBLE_EQ(c.event(0).time, 0.0);
  }
}

TEST(GeneratorTest, UsersWithinUniverse) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 20;
  config.user_universe = 50;
  Rng rng(3);
  for (const Cascade& c : GenerateCascades(config, rng))
    for (const auto& e : c.events()) {
      EXPECT_GE(e.user, 0);
      EXPECT_LT(e.user, 50);
    }
}

TEST(GeneratorTest, SizesAreHeavyTailed) {
  // Fig. 4: most cascades are small, a few are large.
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 400;
  Rng rng(4);
  const auto cascades = GenerateCascades(config, rng);
  int small = 0, large = 0, max_size = 0;
  for (const Cascade& c : cascades) {
    if (c.size() <= 10) ++small;
    if (c.size() >= 100) ++large;
    max_size = std::max(max_size, c.size());
  }
  EXPECT_GT(small, 100);          // bulk of the mass is small
  EXPECT_GT(max_size, 50);        // a heavy tail exists
  EXPECT_LT(large, small);        // and it is a tail
}

TEST(GeneratorTest, WeiboCascadesAreTrees) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 30;
  Rng rng(5);
  for (const Cascade& c : GenerateCascades(config, rng))
    for (int i = 1; i < c.size(); ++i)
      EXPECT_EQ(c.event(i).parents.size(), 1u);
}

TEST(GeneratorTest, CitationCascadesHaveMultiParents) {
  GeneratorConfig config = CitationLikeConfig();
  config.num_cascades = 150;
  Rng rng(6);
  int multi = 0, total_nonroot = 0;
  for (const Cascade& c : GenerateCascades(config, rng)) {
    for (int i = 1; i < c.size(); ++i) {
      ++total_nonroot;
      if (c.event(i).parents.size() > 1) ++multi;
      // No duplicate parents.
      auto parents = c.event(i).parents;
      std::sort(parents.begin(), parents.end());
      EXPECT_TRUE(std::adjacent_find(parents.begin(), parents.end()) ==
                  parents.end());
    }
  }
  EXPECT_GT(multi, 0);
  EXPECT_LT(multi, total_nonroot);
}

TEST(GeneratorTest, CitationCascadesAreSlowerAndSmaller) {
  // Table II: HEP-PH averages ~5 nodes vs Weibo ~29 observed; our synthetic
  // equivalents keep citation cascades smaller on average.
  Rng rng_w(7), rng_c(7);
  GeneratorConfig weibo = WeiboLikeConfig();
  weibo.num_cascades = 150;
  GeneratorConfig citation = CitationLikeConfig();
  citation.num_cascades = 150;
  double weibo_mean = 0, citation_mean = 0;
  for (const Cascade& c : GenerateCascades(weibo, rng_w))
    weibo_mean += c.size();
  for (const Cascade& c : GenerateCascades(citation, rng_c))
    citation_mean += c.size();
  EXPECT_GT(weibo_mean / 150, citation_mean / 150);
}

TEST(GeneratorTest, EarlyGrowthPredictsFinalSize) {
  // The learnability premise: cascades that grow fast early end larger.
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 300;
  Rng rng(8);
  const auto cascades = GenerateCascades(config, rng);
  double big_early = 0, small_early = 0;
  int big_n = 0, small_n = 0;
  for (const Cascade& c : cascades) {
    const int early = c.SizeAtTime(60.0);
    if (c.size() >= 50) {
      big_early += early;
      ++big_n;
    } else if (c.size() <= 10) {
      small_early += early;
      ++small_n;
    }
  }
  ASSERT_GT(big_n, 0);
  ASSERT_GT(small_n, 0);
  EXPECT_GT(big_early / big_n, small_early / small_n);
}

}  // namespace
}  // namespace cascn
