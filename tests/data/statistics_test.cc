#include "data/statistics.h"

#include <gtest/gtest.h>

#include "data/cascade_generator.h"

namespace cascn {
namespace {

Cascade MakeCascade(int n, const std::string& id) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < n; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  return std::move(Cascade::Create(id, std::move(events))).value();
}

TEST(DatasetStatisticsTest, AveragesPerSplit) {
  CascadeDataset dataset;
  CascadeSample a;
  a.observed = MakeCascade(5, "a");
  CascadeSample b;
  b.observed = MakeCascade(7, "b");
  dataset.train = {a, b};
  dataset.validation = {a};
  const DatasetStatistics stats = ComputeDatasetStatistics(dataset);
  EXPECT_EQ(stats.train.num_cascades, 2);
  EXPECT_DOUBLE_EQ(stats.train.avg_nodes, 6.0);
  EXPECT_DOUBLE_EQ(stats.train.avg_edges, 5.0);  // (4 + 6) / 2
  EXPECT_EQ(stats.validation.num_cascades, 1);
  EXPECT_EQ(stats.test.num_cascades, 0);
  EXPECT_DOUBLE_EQ(stats.test.avg_nodes, 0.0);
}

TEST(SizeDistributionTest, LogarithmicBinsCoverAllSizes) {
  std::vector<Cascade> cascades;
  for (int n : {1, 2, 3, 5, 9, 17, 33}) {
    cascades.push_back(MakeCascade(n, "c" + std::to_string(n)));
  }
  const auto bins = SizeDistribution(cascades);
  int total = 0;
  for (const auto& bin : bins) {
    EXPECT_EQ(bin.size_hi, bin.size_lo * 2);
    total += bin.count;
  }
  EXPECT_EQ(total, 7);
  // Size 1 in [1,2), 2-3 in [2,4), 5 in [4,8), 9 in [8,16), 17 in [16,32),
  // 33 in [32,64).
  EXPECT_EQ(bins[0].count, 1);
  EXPECT_EQ(bins[1].count, 2);
  EXPECT_EQ(bins[2].count, 1);
}

TEST(SizeDistributionTest, HeavyTailShapeOnSyntheticWeibo) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = 300;
  Rng rng(1);
  const auto bins = SizeDistribution(GenerateCascades(config, rng));
  ASSERT_GE(bins.size(), 3u);
  // Counts decay (roughly monotonically) over log-bins: compare first to
  // later bins rather than strict monotonicity.
  EXPECT_GT(bins[0].count + bins[1].count, bins.back().count * 3);
}

TEST(SaturationCurveTest, MonotoneAndEndsAtOne) {
  std::vector<Cascade> cascades;
  for (int n : {5, 9, 13}) cascades.push_back(MakeCascade(n, "x"));
  const auto curve = SaturationCurve(cascades, 15.0, 10);
  ASSERT_EQ(curve.size(), 10u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fraction_of_final, curve[i - 1].fraction_of_final);
    EXPECT_GT(curve[i].time, curve[i - 1].time);
  }
  EXPECT_NEAR(curve.back().fraction_of_final, 1.0, 1e-12);
}

TEST(SaturationCurveTest, EmptyCascadesGiveZeroCurve) {
  const auto curve = SaturationCurve({}, 10.0, 4);
  ASSERT_EQ(curve.size(), 4u);
  for (const auto& p : curve) EXPECT_DOUBLE_EQ(p.fraction_of_final, 0.0);
}

TEST(SaturationCurveTest, WeiboSaturatesFasterThanCitation) {
  // Fig. 5: Weibo saturates within ~a day; citations take years. At the
  // half-horizon mark the Weibo fraction must exceed the citation one...
  // Both are normalised by their own horizon; the Weibo kernel (4 h memory
  // vs 24 h horizon) is much faster relative to its horizon.
  Rng rng_w(2), rng_c(2);
  GeneratorConfig weibo = WeiboLikeConfig();
  weibo.num_cascades = 120;
  GeneratorConfig citation = CitationLikeConfig();
  citation.num_cascades = 120;
  const auto weibo_curve =
      SaturationCurve(GenerateCascades(weibo, rng_w), weibo.horizon, 10);
  const auto citation_curve = SaturationCurve(
      GenerateCascades(citation, rng_c), citation.horizon, 10);
  EXPECT_GT(weibo_curve[2].fraction_of_final,
            citation_curve[2].fraction_of_final);
}

}  // namespace
}  // namespace cascn
