// Tests for the observed-size window filters (min and max) used by the
// benchmark harness to keep all models on the same cascade population.

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace cascn {
namespace {

Cascade MakeCascade(int total, const std::string& id) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < total; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  return std::move(Cascade::Create(id, std::move(events))).value();
}

TEST(DatasetFilterTest, MaxObservedSizeDropsLargeCascades) {
  std::vector<Cascade> cascades;
  cascades.push_back(MakeCascade(8, "small"));    // 8 observed
  cascades.push_back(MakeCascade(40, "medium"));  // 21 observed at t=20
  cascades.push_back(MakeCascade(90, "large"));   // 21 observed at t=20
  DatasetOptions opts;
  opts.observation_window = 20.0;
  opts.min_observed_size = 3;
  opts.max_observed_size = 15;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  // Only "small" survives: the others observe 21 > 15 nodes.
  EXPECT_EQ(dataset->TotalSize(), 1);
  EXPECT_EQ(dataset->train[0].observed.id(), "small");
}

TEST(DatasetFilterTest, ZeroMaxDisablesTheCap) {
  std::vector<Cascade> cascades = {MakeCascade(50, "big"),
                                   MakeCascade(60, "bigger")};
  DatasetOptions opts;
  opts.observation_window = 100.0;
  opts.min_observed_size = 1;
  opts.max_observed_size = 0;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->TotalSize(), 2);
}

TEST(DatasetFilterTest, BothBoundsComposable) {
  std::vector<Cascade> cascades;
  for (int n : {2, 5, 10, 20, 40})
    cascades.push_back(MakeCascade(n, "c" + std::to_string(n)));
  DatasetOptions opts;
  opts.observation_window = 1000.0;  // observe everything
  opts.min_observed_size = 5;
  opts.max_observed_size = 20;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->TotalSize(), 3);  // 5, 10, 20
}

class ObservedBoundSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ObservedBoundSweep, EverySurvivorRespectsBounds) {
  const auto [lo, hi] = GetParam();
  std::vector<Cascade> cascades;
  for (int n = 1; n <= 60; ++n)
    cascades.push_back(MakeCascade(n, "c" + std::to_string(n)));
  DatasetOptions opts;
  opts.observation_window = 1000.0;
  opts.min_observed_size = lo;
  opts.max_observed_size = hi;
  auto dataset = BuildDataset(cascades, opts);
  ASSERT_TRUE(dataset.ok());
  auto check = [&](const std::vector<CascadeSample>& split) {
    for (const auto& s : split) {
      EXPECT_GE(s.observed.size(), lo);
      EXPECT_LE(s.observed.size(), hi);
    }
  };
  check(dataset->train);
  check(dataset->validation);
  check(dataset->test);
  EXPECT_EQ(dataset->TotalSize(), hi - lo + 1);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ObservedBoundSweep,
                         ::testing::Values(std::make_pair(1, 10),
                                           std::make_pair(10, 48),
                                           std::make_pair(5, 60)));

}  // namespace
}  // namespace cascn
