#include "graph/snapshot.h"

#include <gtest/gtest.h>

namespace cascn {
namespace {

Cascade Fig3Cascade() {
  // Five adoptions matching the Fig. 3 walk-through.
  std::vector<AdoptionEvent> events = {
      {0, 10, {}, 0.0},  {1, 11, {0}, 1.0}, {2, 12, {0}, 2.0},
      {3, 13, {2}, 3.0}, {4, 14, {1}, 4.0},
  };
  return std::move(Cascade::Create("fig3", std::move(events))).value();
}

TEST(SnapshotTest, OneSnapshotPerEventWhenShort) {
  SnapshotOptions opts;
  opts.padded_size = 5;
  opts.max_sequence_length = 10;
  const auto seq = BuildSnapshotSequence(Fig3Cascade(), opts);
  ASSERT_EQ(seq.size(), 5u);
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].num_nodes, static_cast<int>(i) + 1);
    EXPECT_DOUBLE_EQ(seq[i].time, static_cast<double>(i));
    EXPECT_EQ(seq[i].adjacency.rows(), 5);
  }
}

TEST(SnapshotTest, FirstSnapshotHasOnlyRootSelfLoop) {
  SnapshotOptions opts;
  opts.padded_size = 5;
  const auto seq = BuildSnapshotSequence(Fig3Cascade(), opts);
  const Tensor first = seq[0].adjacency.ToDense();
  EXPECT_DOUBLE_EQ(first.At(0, 0), 1.0);
  EXPECT_EQ(seq[0].adjacency.nnz(), 1);
}

TEST(SnapshotTest, LaterSnapshotsDropSelfLoopAndGrowEdges) {
  SnapshotOptions opts;
  opts.padded_size = 5;
  const auto seq = BuildSnapshotSequence(Fig3Cascade(), opts);
  const Tensor second = seq[1].adjacency.ToDense();
  EXPECT_DOUBLE_EQ(second.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(second.At(0, 1), 1.0);
  // Snapshot adjacency nnz grows monotonically after the first.
  for (size_t i = 2; i < seq.size(); ++i)
    EXPECT_GE(seq[i].adjacency.nnz(), seq[i - 1].adjacency.nnz());
  // Final snapshot has all 4 edges.
  EXPECT_EQ(seq.back().adjacency.nnz(), 4);
}

TEST(SnapshotTest, SubsamplesLongCascades) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 50; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  const Cascade big =
      std::move(Cascade::Create("big", std::move(events))).value();
  SnapshotOptions opts;
  opts.padded_size = 50;
  opts.max_sequence_length = 8;
  const auto seq = BuildSnapshotSequence(big, opts);
  EXPECT_EQ(seq.size(), 8u);
  EXPECT_EQ(seq.front().num_nodes, 1);
  EXPECT_EQ(seq.back().num_nodes, 50);
  // Strictly increasing prefix lengths.
  for (size_t i = 1; i < seq.size(); ++i)
    EXPECT_GT(seq[i].num_nodes, seq[i - 1].num_nodes);
}

TEST(SnapshotTest, PaddedSizeTruncatesNodes) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 20; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  const Cascade big =
      std::move(Cascade::Create("big", std::move(events))).value();
  SnapshotOptions opts;
  opts.padded_size = 6;
  opts.max_sequence_length = 100;
  const auto seq = BuildSnapshotSequence(big, opts);
  EXPECT_EQ(seq.size(), 6u);  // only the first 6 nodes are usable
  EXPECT_EQ(seq.back().num_nodes, 6);
  EXPECT_EQ(seq.back().adjacency.rows(), 6);
}

TEST(SnapshotTest, SingleNodeCascade) {
  const Cascade lone =
      std::move(Cascade::Create("lone", {{0, 5, {}, 0.0}})).value();
  SnapshotOptions opts;
  opts.padded_size = 3;
  const auto seq = BuildSnapshotSequence(lone, opts);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0].adjacency.nnz(), 1);  // the self connection
}

class SnapshotLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotLengthSweep, NeverExceedsMaxLengthAndAlwaysEndsAtFull) {
  const int max_len = GetParam();
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 23; ++i)
    events.push_back({i, i, {i - 1}, static_cast<double>(i)});
  const Cascade chain =
      std::move(Cascade::Create("chain", std::move(events))).value();
  SnapshotOptions opts;
  opts.padded_size = 30;
  opts.max_sequence_length = max_len;
  const auto seq = BuildSnapshotSequence(chain, opts);
  EXPECT_LE(static_cast<int>(seq.size()), max_len);
  EXPECT_EQ(seq.back().num_nodes, 23);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SnapshotLengthSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 22, 23, 40));

}  // namespace
}  // namespace cascn
