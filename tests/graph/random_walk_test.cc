#include "graph/random_walk.h"

#include <set>

#include <gtest/gtest.h>

namespace cascn {
namespace {

Cascade TreeCascade() {
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0},  {1, 1, {0}, 1.0}, {2, 2, {0}, 2.0},
      {3, 3, {1}, 3.0}, {4, 4, {1}, 4.0}, {5, 5, {3}, 5.0},
  };
  return std::move(Cascade::Create("t", std::move(events))).value();
}

bool IsForwardEdge(const Cascade& c, int from, int to) {
  for (int p : c.event(to).parents)
    if (p == from) return true;
  return false;
}

TEST(CascadeWalksTest, ProducesRequestedShape) {
  Rng rng(1);
  WalkOptions opts;
  opts.num_walks = 7;
  opts.walk_length = 5;
  const auto walks = SampleCascadeWalks(TreeCascade(), opts, rng);
  ASSERT_EQ(walks.size(), 7u);
  for (const auto& walk : walks) EXPECT_EQ(walk.size(), 5u);
}

TEST(CascadeWalksTest, StepsFollowEdgesOrRestart) {
  Rng rng(2);
  const Cascade c = TreeCascade();
  WalkOptions opts;
  opts.num_walks = 20;
  opts.walk_length = 6;
  const auto walks = SampleCascadeWalks(c, opts, rng);
  for (const auto& walk : walks) {
    for (size_t i = 1; i < walk.size(); ++i) {
      const int prev = walk[i - 1];
      const int cur = walk[i];
      // Either a forward edge or a restart (restarts only happen at
      // leaves).
      const bool forward = IsForwardEdge(c, prev, cur);
      if (!forward) {
        // prev must have no children.
        bool has_child = false;
        for (int node = 0; node < c.size(); ++node)
          if (IsForwardEdge(c, prev, node)) has_child = true;
        EXPECT_FALSE(has_child)
            << "non-edge transition from non-leaf " << prev;
      }
    }
  }
}

TEST(CascadeWalksTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  WalkOptions opts;
  const auto w1 = SampleCascadeWalks(TreeCascade(), opts, a);
  const auto w2 = SampleCascadeWalks(TreeCascade(), opts, b);
  EXPECT_EQ(w1, w2);
}

TEST(CascadeWalksTest, SingleNodeCascadeWalksStayAtRoot) {
  Rng rng(3);
  const Cascade lone =
      std::move(Cascade::Create("lone", {{0, 0, {}, 0.0}})).value();
  WalkOptions opts;
  opts.num_walks = 3;
  opts.walk_length = 4;
  const auto walks = SampleCascadeWalks(lone, opts, rng);
  for (const auto& walk : walks)
    for (int node : walk) EXPECT_EQ(node, 0);
}

TEST(Node2VecWalksTest, StartsFromEveryNode) {
  Rng rng(4);
  const Cascade c = TreeCascade();
  Node2VecOptions opts;
  opts.num_walks_per_node = 2;
  const auto walks = SampleNode2VecWalks(c, opts, rng);
  EXPECT_EQ(walks.size(), static_cast<size_t>(c.size() * 2));
  std::set<int> starts;
  for (const auto& walk : walks) {
    ASSERT_FALSE(walk.empty());
    starts.insert(walk.front());
  }
  EXPECT_EQ(starts.size(), static_cast<size_t>(c.size()));
}

TEST(Node2VecWalksTest, StepsUseUndirectedEdges) {
  Rng rng(5);
  const Cascade c = TreeCascade();
  Node2VecOptions opts;
  const auto walks = SampleNode2VecWalks(c, opts, rng);
  for (const auto& walk : walks) {
    for (size_t i = 1; i < walk.size(); ++i) {
      const bool edge = IsForwardEdge(c, walk[i - 1], walk[i]) ||
                        IsForwardEdge(c, walk[i], walk[i - 1]);
      EXPECT_TRUE(edge) << walk[i - 1] << "->" << walk[i];
    }
  }
}

TEST(Node2VecWalksTest, HighReturnParameterDiscouragesBacktracking) {
  // With p very large, returning to the previous node is strongly
  // penalised; on a path graph the walk must then oscillate less.
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 6; ++i)
    events.push_back({i, i, {i - 1}, static_cast<double>(i)});
  const Cascade path =
      std::move(Cascade::Create("path", std::move(events))).value();

  auto count_backtracks = [&](double p, uint64_t seed) {
    Rng rng(seed);
    Node2VecOptions opts;
    opts.p = p;
    opts.q = 1.0;
    opts.num_walks_per_node = 10;
    opts.walk_length = 6;
    int backtracks = 0;
    for (const auto& walk : SampleNode2VecWalks(path, opts, rng))
      for (size_t i = 2; i < walk.size(); ++i)
        if (walk[i] == walk[i - 2]) ++backtracks;
    return backtracks;
  };
  // Interior nodes always have 2 neighbours, so with p=100 backtracking is
  // ~100x less likely per step.
  EXPECT_LT(count_backtracks(100.0, 7), count_backtracks(0.01, 7));
}

TEST(Node2VecWalksTest, DeterministicGivenSeed) {
  Rng a(11), b(11);
  Node2VecOptions opts;
  EXPECT_EQ(SampleNode2VecWalks(TreeCascade(), opts, a),
            SampleNode2VecWalks(TreeCascade(), opts, b));
}

}  // namespace
}  // namespace cascn
