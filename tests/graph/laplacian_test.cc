#include "graph/laplacian.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/linalg.h"

namespace cascn {
namespace {

Cascade ChainCascade(int n) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < n; ++i)
    events.push_back({i, i, {i - 1}, static_cast<double>(i)});
  return std::move(Cascade::Create("chain", std::move(events))).value();
}

Cascade StarCascade(int leaves) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i <= leaves; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  return std::move(Cascade::Create("star", std::move(events))).value();
}

/// Reconstructs P_c from Delta_c and phi to verify Algorithm 1 end-to-end:
/// Delta_c = Phi^{1/2}(I - P)Phi^{-1/2}  =>  rows of
/// Phi^{-1/2} Delta_c Phi^{1/2} = I - P must sum to 0 (P row-stochastic).
TEST(CasLaplacianTest, EncodesRowStochasticTransition) {
  const Cascade cascade = StarCascade(4);
  const int n = 5;
  auto lap = CascadeLaplacian(cascade, n);
  ASSERT_TRUE(lap.ok()) << lap.status();
  const Tensor delta = lap->ToDense();

  // Recover the stationary distribution the construction used: P_c is fully
  // determined by the cascade, so recompute and check the identity.
  CasLaplacianOptions opts;
  // I - P = Phi^{-1/2} Delta Phi^{1/2}; we can't see phi directly, but the
  // identity implies each row i of Delta satisfies
  // sum_j Delta(i,j) sqrt(phi_i/phi_j)... instead verify the defining
  // property: Delta has zero diagonal-sum structure via eigenvector.
  // phi^{1/2} is a left null-like vector: phi^{1/2T} Delta' where
  // Delta' = Phi^{1/2}(I-P)Phi^{-1/2} gives phi^{T}(I-P)Phi^{-1/2} = 0
  // because phi^T P = phi^T. So x = sqrt(phi) satisfies x^T Delta = 0.
  // Find x by solving: it is the dominant left eigenvector of (I - Delta).
  // Cheaper: verify Delta maps sqrt(phi) to 0 from the right:
  // Delta * Phi^{1/2} 1 = Phi^{1/2}(I - P) 1 = 0 since P 1 = 1.
  // Compute v = Delta * s where s is any positive vector solving
  // Delta s = 0: s = sqrt(phi)... we don't know phi, but
  // (I - P) 1 = 0 means Delta (Phi^{1/2} 1) = 0, i.e. Delta has a positive
  // right null vector. Power-iterate to find the null space instead:
  // verify the smallest singular value is ~0 by checking det-ish residual.
  // Simplest robust check: \exists s > 0 with Delta s = 0. Solve by
  // inverse iteration on (Delta + c I).
  Tensor s(n, 1, 1.0);
  // Inverse-like iteration: s <- normalize((I - 0.5 Delta)^k s) converges to
  // the eigenvector of Delta with smallest magnitude eigenvalue (0).
  for (int it = 0; it < 3000; ++it) {
    Tensor next = s;
    Tensor ds = MatMul(delta, s);
    next.Axpy(-0.5, ds);
    const double norm = next.Norm();
    ASSERT_GT(norm, 0);
    next.Scale(1.0 / norm);
    s = std::move(next);
  }
  const Tensor residual = MatMul(delta, s);
  EXPECT_LT(residual.Norm(), 1e-6);
  // The null vector sqrt(phi) must be strictly positive (or strictly
  // negative; fix sign).
  const double sign = s.At(0, 0) > 0 ? 1.0 : -1.0;
  for (int i = 0; i < n; ++i) EXPECT_GT(sign * s.At(i, 0), 0.0);
}

TEST(CasLaplacianTest, PaddingRegionIsZero) {
  const Cascade cascade = ChainCascade(3);
  auto lap = CascadeLaplacian(cascade, 6);
  ASSERT_TRUE(lap.ok());
  const Tensor dense = lap->ToDense();
  for (int i = 0; i < 6; ++i)
    for (int j = 3; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(dense.At(i, j), 0.0);
      EXPECT_DOUBLE_EQ(dense.At(j, i), 0.0);
    }
}

TEST(CasLaplacianTest, SingleNodeCascadeIsZeroMatrix) {
  const Cascade lone = ChainCascade(1);
  auto lap = CascadeLaplacian(lone, 3);
  ASSERT_TRUE(lap.ok());
  // One node with a self-loop: P = 1, phi = 1, Delta = 1 - 1 = 0.
  EXPECT_NEAR(lap->ToDense().AbsMax(), 0.0, 1e-9);
}

TEST(CasLaplacianTest, RejectsBadAlpha) {
  CasLaplacianOptions opts;
  opts.alpha = 1.5;
  EXPECT_FALSE(CascadeLaplacian(ChainCascade(3), 3, opts).ok());
  opts.alpha = 0.0;
  EXPECT_FALSE(CascadeLaplacian(ChainCascade(3), 3, opts).ok());
}

TEST(CasLaplacianTest, DirectionMatters) {
  // A chain and its "reverse" (star) should produce different Laplacians;
  // more precisely the CasLaplacian must be asymmetric for a chain.
  auto lap = CascadeLaplacian(ChainCascade(4), 4);
  ASSERT_TRUE(lap.ok());
  const Tensor d = lap->ToDense();
  double asymmetry = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      asymmetry += std::fabs(d.At(i, j) - d.At(j, i));
  EXPECT_GT(asymmetry, 0.01);
}

TEST(UndirectedLaplacianTest, SymmetricWithUnitDiagonal) {
  const Tensor l =
      UndirectedNormalizedLaplacian(StarCascade(3), 4).ToDense();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(l.At(i, i), 1.0, 1e-12);
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(l.At(i, j), l.At(j, i), 1e-12);
  }
}

TEST(UndirectedLaplacianTest, EigenvaluesWithinZeroTwo) {
  const CsrMatrix l = UndirectedNormalizedLaplacian(ChainCascade(6), 6);
  const double lambda = PowerIterationLargestEigenvalue(l);
  EXPECT_GT(lambda, 0.0);
  EXPECT_LE(lambda, 2.0 + 1e-9);
}

TEST(UndirectedLaplacianTest, PaddedRegionZero) {
  const Tensor l =
      UndirectedNormalizedLaplacian(ChainCascade(2), 5).ToDense();
  for (int i = 2; i < 5; ++i)
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(l.At(i, j), 0.0);
}

TEST(ScaleLaplacianTest, AppliesTwoOverLambdaMinusIdentity) {
  const CsrMatrix l = UndirectedNormalizedLaplacian(StarCascade(3), 4);
  const CsrMatrix scaled = ScaleLaplacian(l, 1.5, 4);
  Tensor expected = l.ToDense();
  expected.Scale(2.0 / 1.5);
  for (int i = 0; i < 4; ++i) expected.At(i, i) -= 1.0;
  EXPECT_TRUE(AllClose(scaled.ToDense(), expected, 1e-12));
}

TEST(ScaleLaplacianTest, PaddingStaysZero) {
  const CsrMatrix l = UndirectedNormalizedLaplacian(StarCascade(2), 6);
  const Tensor scaled = ScaleLaplacian(l, 2.0, 3).ToDense();
  for (int i = 3; i < 6; ++i)
    for (int j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(scaled.At(i, j), 0.0);
}

TEST(EstimateLambdaMaxTest, FallsBackForDegenerateCases) {
  EXPECT_DOUBLE_EQ(EstimateLambdaMax(CsrMatrix::Identity(3), 1), 2.0);
  const CsrMatrix zero = CsrMatrix::FromTriplets(4, 4, {});
  EXPECT_DOUBLE_EQ(EstimateLambdaMax(zero, 4), 2.0);
}

TEST(EstimateLambdaMaxTest, MatchesPowerIterationOnRealLaplacian) {
  const CsrMatrix l = UndirectedNormalizedLaplacian(ChainCascade(5), 5);
  const double est = EstimateLambdaMax(l, 5);
  EXPECT_NEAR(est, PowerIterationLargestEigenvalue(l), 1e-9);
  EXPECT_GT(est, 1.0);
}

class CasLaplacianAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(CasLaplacianAlphaSweep, AlwaysSucceedsOnDags) {
  CasLaplacianOptions opts;
  opts.alpha = GetParam();
  for (int n : {2, 4, 7}) {
    auto lap = CascadeLaplacian(ChainCascade(n), n, opts);
    EXPECT_TRUE(lap.ok()) << "alpha=" << opts.alpha << " n=" << n;
    // Finite entries.
    EXPECT_TRUE(std::isfinite(lap->ToDense().AbsMax()));
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CasLaplacianAlphaSweep,
                         ::testing::Values(0.1, 0.5, 0.85, 0.99));

}  // namespace
}  // namespace cascn
