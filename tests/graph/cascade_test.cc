#include "graph/cascade.h"

#include <gtest/gtest.h>

namespace cascn {
namespace {

/// The Fig. 1 cascade: V0 -> V1, V0 -> V2, V1 -> V3, V1 -> V4, V3 -> V5.
Cascade Fig1Cascade() {
  std::vector<AdoptionEvent> events = {
      {0, 100, {}, 0.0},  {1, 101, {0}, 1.0}, {2, 102, {0}, 2.0},
      {3, 103, {1}, 3.0}, {4, 104, {1}, 4.0}, {5, 105, {3}, 5.0},
  };
  auto c = Cascade::Create("fig1", std::move(events));
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

TEST(CascadeTest, CreateValidatesAndStores) {
  const Cascade c = Fig1Cascade();
  EXPECT_EQ(c.id(), "fig1");
  EXPECT_EQ(c.size(), 6);
  EXPECT_EQ(c.num_edges(), 5);
  EXPECT_DOUBLE_EQ(c.last_time(), 5.0);
}

TEST(CascadeTest, RejectsEmpty) {
  EXPECT_FALSE(Cascade::Create("x", {}).ok());
}

TEST(CascadeTest, RejectsRootWithParent) {
  std::vector<AdoptionEvent> events = {{0, 1, {0}, 0.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, RejectsRootAtNonzeroTime) {
  std::vector<AdoptionEvent> events = {{0, 1, {}, 2.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, RejectsOutOfOrderTimes) {
  std::vector<AdoptionEvent> events = {
      {0, 1, {}, 0.0}, {1, 2, {0}, 5.0}, {2, 3, {0}, 3.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, RejectsForwardParentReference) {
  std::vector<AdoptionEvent> events = {
      {0, 1, {}, 0.0}, {1, 2, {2}, 1.0}, {2, 3, {0}, 2.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, RejectsOrphanNonRoot) {
  std::vector<AdoptionEvent> events = {{0, 1, {}, 0.0}, {1, 2, {}, 1.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, RejectsMisnumberedNodes) {
  std::vector<AdoptionEvent> events = {{0, 1, {}, 0.0}, {2, 2, {0}, 1.0}};
  EXPECT_FALSE(Cascade::Create("x", std::move(events)).ok());
}

TEST(CascadeTest, SizeAtTimeBinarySearches) {
  const Cascade c = Fig1Cascade();
  EXPECT_EQ(c.SizeAtTime(-1.0), 0);
  EXPECT_EQ(c.SizeAtTime(0.0), 1);
  EXPECT_EQ(c.SizeAtTime(2.5), 3);
  EXPECT_EQ(c.SizeAtTime(5.0), 6);
  EXPECT_EQ(c.SizeAtTime(100.0), 6);
}

TEST(CascadeTest, PrefixTruncatesByTime) {
  const Cascade c = Fig1Cascade();
  const Cascade p = c.Prefix(3.5);
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.id(), "fig1");
  EXPECT_DOUBLE_EQ(p.last_time(), 3.0);
}

TEST(CascadeTest, PrefixAlwaysKeepsRoot) {
  const Cascade c = Fig1Cascade();
  EXPECT_EQ(c.Prefix(-5.0).size(), 1);
}

TEST(CascadeTest, PrefixBySizeClamps) {
  const Cascade c = Fig1Cascade();
  EXPECT_EQ(c.PrefixBySize(3).size(), 3);
  EXPECT_EQ(c.PrefixBySize(0).size(), 1);
  EXPECT_EQ(c.PrefixBySize(100).size(), 6);
}

TEST(CascadeTest, AdjacencyMatrixDirectedEdges) {
  const Cascade c = Fig1Cascade();
  const Tensor a = c.AdjacencyMatrix(6, 6).ToDense();
  EXPECT_DOUBLE_EQ(a.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 4), 1.0);
  EXPECT_DOUBLE_EQ(a.At(3, 5), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 0.0);  // directed
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);  // no self loop unless requested
}

TEST(CascadeTest, AdjacencyMatrixRootSelfLoop) {
  const Cascade c = Fig1Cascade();
  const Tensor a = c.AdjacencyMatrix(1, 4, /*root_self_loop=*/true).ToDense();
  EXPECT_DOUBLE_EQ(a.At(0, 0), 1.0);
  EXPECT_EQ(a.rows(), 4);
}

TEST(CascadeTest, AdjacencyMatrixPaddingAndTruncation) {
  const Cascade c = Fig1Cascade();
  // Truncated to 3 nodes, padded to 5.
  const Tensor a = c.AdjacencyMatrix(3, 5).ToDense();
  EXPECT_EQ(a.rows(), 5);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 3), 0.0);  // node 3 truncated away
  for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(a.At(4, j), 0.0);
}

TEST(CascadeTest, MultiParentEdgesCounted) {
  std::vector<AdoptionEvent> events = {
      {0, 1, {}, 0.0}, {1, 2, {0}, 1.0}, {2, 3, {0, 1}, 2.0}};
  auto c = Cascade::Create("dag", std::move(events));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_edges(), 3);
  const Tensor a = c->AdjacencyMatrix(3, 3).ToDense();
  EXPECT_DOUBLE_EQ(a.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 2), 1.0);
}

}  // namespace
}  // namespace cascn
