#include "graph/chebyshev.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cascn {
namespace {

CsrMatrix RandomSymmetric(int n, Rng& rng) {
  std::vector<Triplet> trips;
  for (int i = 0; i < n; ++i) {
    trips.push_back({i, i, rng.Normal() * 0.3});
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) {
        const double v = rng.Normal() * 0.2;
        trips.push_back({i, j, v});
        trips.push_back({j, i, v});
      }
    }
  }
  return CsrMatrix::FromTriplets(n, n, trips);
}

TEST(ChebyshevBasisTest, OrderOneIsIdentity) {
  Rng rng(1);
  const CsrMatrix l = RandomSymmetric(4, rng);
  const auto basis = ChebyshevBasis(l, 1, 4);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(AllClose(basis[0].ToDense(), Tensor::Identity(4)));
}

TEST(ChebyshevBasisTest, OrderTwoIsIdentityAndL) {
  Rng rng(2);
  const CsrMatrix l = RandomSymmetric(4, rng);
  const auto basis = ChebyshevBasis(l, 2, 4);
  ASSERT_EQ(basis.size(), 2u);
  EXPECT_TRUE(AllClose(basis[1].ToDense(), l.ToDense()));
}

TEST(ChebyshevBasisTest, RecursionMatchesExplicitPolynomials) {
  Rng rng(3);
  const CsrMatrix l = RandomSymmetric(5, rng);
  const auto basis = ChebyshevBasis(l, 4, 5);
  ASSERT_EQ(basis.size(), 4u);
  const Tensor ld = l.ToDense();
  // T2 = 2 L^2 - I.
  Tensor t2 = MatMul(ld, ld);
  t2.Scale(2.0);
  t2.Axpy(-1.0, Tensor::Identity(5));
  EXPECT_TRUE(AllClose(basis[2].ToDense(), t2, 1e-10));
  // T3 = 4 L^3 - 3 L.
  Tensor t3 = MatMul(MatMul(ld, ld), ld);
  t3.Scale(4.0);
  t3.Axpy(-3.0, ld);
  EXPECT_TRUE(AllClose(basis[3].ToDense(), t3, 1e-10));
}

TEST(ChebyshevBasisTest, IdentityRestrictedToActiveBlock) {
  Rng rng(4);
  const CsrMatrix l = RandomSymmetric(6, rng);
  const auto basis = ChebyshevBasis(l, 1, /*active_n=*/3);
  const Tensor t0 = basis[0].ToDense();
  for (int i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(t0.At(i, i), i < 3 ? 1.0 : 0.0);
}

TEST(ChebyshevBasisTest, ChebyshevIdentityOnScalars) {
  // For a 1x1 "matrix" x, T_k(x) = cos(k arccos x) on [-1, 1].
  const double x = 0.3;
  const CsrMatrix m = CsrMatrix::FromTriplets(1, 1, {{0, 0, x}});
  const auto basis = ChebyshevBasis(m, 5, 1);
  for (int k = 0; k < 5; ++k) {
    const double expected = std::cos(k * std::acos(x));
    EXPECT_NEAR(basis[k].ToDense().At(0, 0), expected, 1e-10) << "k=" << k;
  }
}

class ChebyshevOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChebyshevOrderSweep, BasisSizeMatchesOrder) {
  Rng rng(5);
  const CsrMatrix l = RandomSymmetric(4, rng);
  const auto basis = ChebyshevBasis(l, GetParam(), 4);
  EXPECT_EQ(static_cast<int>(basis.size()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, ChebyshevOrderSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace cascn
