// Hand-verified CasLaplacian on a 2-node cascade: every intermediate of
// Algorithm 1 (transition matrix, stationary distribution, Diplacian) is
// computed analytically and compared to the implementation.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/laplacian.h"

namespace cascn {
namespace {

// Cascade: root 0 (with self-loop) -> child 1, alpha = 0.85.
//
// W = [[1, 1], [0, 0]], out-degree = (2, 0).
// P row 0 = 0.075 + 0.85 * (0.5, 0.5) = (0.5, 0.5)
// P row 1 (dangling) = 0.075 + 0.85 * (0.5, 0.5) = (0.5, 0.5)
// So P = [[0.5, 0.5], [0.5, 0.5]] and phi = (0.5, 0.5).
// Delta = Phi^{1/2} (I - P) Phi^{-1/2} = I - P (Phi is a multiple of I)
//       = [[0.5, -0.5], [-0.5, 0.5]].
TEST(CasLaplacianHandCheck, TwoNodeCascade) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}, {1, 1, {0}, 1.0}};
  const Cascade cascade =
      std::move(Cascade::Create("two", std::move(events))).value();
  CasLaplacianOptions opts;
  opts.alpha = 0.85;
  auto lap = CascadeLaplacian(cascade, 2, opts);
  ASSERT_TRUE(lap.ok()) << lap.status();
  const Tensor d = lap->ToDense();
  EXPECT_NEAR(d.At(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(d.At(0, 1), -0.5, 1e-9);
  EXPECT_NEAR(d.At(1, 0), -0.5, 1e-9);
  EXPECT_NEAR(d.At(1, 1), 0.5, 1e-9);
}

// Three-node chain 0 -> 1 -> 2 with the root self-loop, alpha = 0.85.
// W = [[1,1,0],[0,0,1],[0,0,0]], out-deg = (2,1,0).
// Teleport term: (1-a)/3 = 0.05.
// P = [[0.475, 0.475, 0.05],
//      [0.05,  0.05,  0.90],
//      [1/3,   1/3,   1/3 ]]
TEST(CasLaplacianHandCheck, ThreeNodeChainTransitionEncoded) {
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0}, {1, 1, {0}, 1.0}, {2, 2, {1}, 2.0}};
  const Cascade cascade =
      std::move(Cascade::Create("chain", std::move(events))).value();
  auto lap = CascadeLaplacian(cascade, 3);
  ASSERT_TRUE(lap.ok());
  const Tensor d = lap->ToDense();

  // Solve for phi from the known P and verify Delta = Phi^{1/2}(I-P)Phi^{-1/2}.
  Tensor p = Tensor::FromRows({{0.475, 0.475, 0.05},
                               {0.05, 0.05, 0.90},
                               {1.0 / 3, 1.0 / 3, 1.0 / 3}});
  // Power-iterate phi^T P = phi^T.
  Tensor phi(1, 3, 1.0 / 3);
  for (int it = 0; it < 500; ++it) {
    phi = MatMul(phi, p);
    phi.Scale(1.0 / phi.Sum());
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const double identity = i == j ? 1.0 : 0.0;
      const double expected = std::sqrt(phi.At(0, i)) *
                              (identity - p.At(i, j)) /
                              std::sqrt(phi.At(0, j));
      EXPECT_NEAR(d.At(i, j), expected, 1e-7) << "(" << i << "," << j << ")";
    }
  }
}

// The trace of the Diplacian equals n - trace(P): diagonal similarity
// transforms preserve the trace.
TEST(CasLaplacianHandCheck, TraceIdentity) {
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0}, {1, 1, {0}, 1.0}, {2, 2, {0}, 2.0},
      {3, 3, {1}, 3.0}};
  const Cascade cascade =
      std::move(Cascade::Create("star", std::move(events))).value();
  auto lap = CascadeLaplacian(cascade, 4);
  ASSERT_TRUE(lap.ok());
  const Tensor d = lap->ToDense();
  double trace = 0;
  for (int i = 0; i < 4; ++i) trace += d.At(i, i);
  // trace(Delta) = n - trace(P); P's diagonal: node 0 has self-loop with
  // out-degree 3 -> P00 = 0.0375 + 0.85/3; others have no self edge ->
  // teleport only (0.0375) except the dangling rows (uniform: 0.25).
  const double p00 = 0.15 / 4 + 0.85 / 3;
  const double p11 = 0.15 / 4;        // node 1 has out-degree 1 (to 3)
  const double p22 = 0.25;            // dangling
  const double p33 = 0.25;            // dangling
  EXPECT_NEAR(trace, 4.0 - (p00 + p11 + p22 + p33), 1e-7);
}

}  // namespace
}  // namespace cascn
