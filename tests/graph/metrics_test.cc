#include "graph/metrics.h"

#include <gtest/gtest.h>

namespace cascn {
namespace {

Cascade Fig1Cascade() {
  std::vector<AdoptionEvent> events = {
      {0, 100, {}, 0.0},  {1, 101, {0}, 1.0}, {2, 102, {0}, 2.0},
      {3, 103, {1}, 3.0}, {4, 104, {1}, 4.0}, {5, 105, {3}, 5.0},
  };
  return std::move(Cascade::Create("fig1", std::move(events))).value();
}

TEST(MetricsTest, NodeDepthsFollowPrimaryParent) {
  const auto depths = NodeDepths(Fig1Cascade());
  EXPECT_EQ(depths, (std::vector<int>{0, 1, 1, 2, 2, 3}));
}

TEST(MetricsTest, OutDegreesCountAllChildren) {
  const auto degs = OutDegrees(Fig1Cascade());
  EXPECT_EQ(degs, (std::vector<int>{2, 2, 0, 1, 0, 0}));
}

TEST(MetricsTest, StructureSummary) {
  const CascadeStructure s = ComputeStructure(Fig1Cascade());
  EXPECT_EQ(s.num_nodes, 6);
  EXPECT_EQ(s.num_edges, 5);
  EXPECT_EQ(s.num_leaves, 3);  // V2, V4, V5
  EXPECT_EQ(s.max_out_degree, 2);
  EXPECT_EQ(s.root_degree, 2);
  EXPECT_EQ(s.max_depth, 3);
  EXPECT_DOUBLE_EQ(s.mean_out_degree, 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.mean_depth, (0 + 1 + 1 + 2 + 2 + 3) / 6.0);
}

TEST(MetricsTest, SingleNodeCascade) {
  const Cascade lone =
      std::move(Cascade::Create("lone", {{0, 9, {}, 0.0}})).value();
  const CascadeStructure s = ComputeStructure(lone);
  EXPECT_EQ(s.num_nodes, 1);
  EXPECT_EQ(s.num_edges, 0);
  EXPECT_EQ(s.num_leaves, 1);
  EXPECT_EQ(s.max_depth, 0);
  EXPECT_EQ(s.root_degree, 0);
}

TEST(MetricsTest, ChainStructure) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 5; ++i)
    events.push_back({i, i, {i - 1}, static_cast<double>(i)});
  const Cascade chain =
      std::move(Cascade::Create("chain", std::move(events))).value();
  const CascadeStructure s = ComputeStructure(chain);
  EXPECT_EQ(s.num_leaves, 1);
  EXPECT_EQ(s.max_depth, 4);
  EXPECT_EQ(s.max_out_degree, 1);
}

TEST(MetricsTest, StarStructure) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i <= 6; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  const Cascade star =
      std::move(Cascade::Create("star", std::move(events))).value();
  const CascadeStructure s = ComputeStructure(star);
  EXPECT_EQ(s.num_leaves, 6);
  EXPECT_EQ(s.max_depth, 1);
  EXPECT_EQ(s.root_degree, 6);
  EXPECT_EQ(s.max_out_degree, 6);
}

TEST(MetricsTest, MultiParentCountsInOutDegrees) {
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0}, {1, 1, {0}, 1.0}, {2, 2, {0, 1}, 2.0}};
  const Cascade dag =
      std::move(Cascade::Create("dag", std::move(events))).value();
  const auto degs = OutDegrees(dag);
  EXPECT_EQ(degs, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(ComputeStructure(dag).num_edges, 3);
}

}  // namespace
}  // namespace cascn
