#include "features/cascade_features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace cascn {
namespace {

CascadeSample MakeSample() {
  // Root + 4 adoptions: star under the root at times 10, 20, 30, 50.
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0},
      {1, 1, {0}, 10.0},
      {2, 2, {0}, 20.0},
      {3, 3, {1}, 30.0},
      {4, 4, {1}, 50.0},
  };
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("f", std::move(events))).value();
  sample.observation_window = 60.0;
  sample.future_increment = 7;
  sample.log_label = Log2p1(7);
  return sample;
}

TEST(FeaturesTest, NamesMatchRowWidth) {
  FeatureOptions opts;
  const auto names = FeatureNames(opts);
  const auto row = ExtractFeatures(MakeSample(), opts);
  EXPECT_EQ(names.size(), row.size());
  EXPECT_EQ(names.size(), 13u + 2 * opts.num_time_bins);
}

TEST(FeaturesTest, StructuralValues) {
  FeatureOptions opts;
  const auto names = FeatureNames(opts);
  const auto row = ExtractFeatures(MakeSample(), opts);
  auto at = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i)
      if (names[i] == name) return row[i];
    ADD_FAILURE() << "missing feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(at("num_nodes"), 5.0);
  EXPECT_DOUBLE_EQ(at("num_edges"), 4.0);
  EXPECT_DOUBLE_EQ(at("num_leaves"), 3.0);  // nodes 2, 3, 4
  EXPECT_DOUBLE_EQ(at("root_degree"), 2.0);
  EXPECT_DOUBLE_EQ(at("max_depth"), 2.0);
}

TEST(FeaturesTest, TemporalValuesNormalisedByWindow) {
  FeatureOptions opts;
  const auto names = FeatureNames(opts);
  const auto row = ExtractFeatures(MakeSample(), opts);
  auto at = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i)
      if (names[i] == name) return row[i];
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(at("first_adoption"), 10.0 / 60.0);
  EXPECT_DOUBLE_EQ(at("last_adoption"), 50.0 / 60.0);
  EXPECT_DOUBLE_EQ(at("mean_adoption_time"), (10 + 20 + 30 + 50) / 4.0 / 60.0);
}

TEST(FeaturesTest, GrowthBinsCumulativeIsMonotone) {
  FeatureOptions opts;
  opts.num_time_bins = 6;
  const auto names = FeatureNames(opts);
  const auto row = ExtractFeatures(MakeSample(), opts);
  double prev = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].rfind("cumulative_bin", 0) == 0) {
      EXPECT_GE(row[i], prev);
      prev = row[i];
    }
  }
  // Final cumulative = all 5 observed nodes.
  EXPECT_DOUBLE_EQ(prev, 5.0);
}

TEST(FeaturesTest, SingleNodeCascadeIsWellDefined) {
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("lone", {{0, 0, {}, 0.0}})).value();
  sample.observation_window = 60.0;
  FeatureOptions opts;
  const auto row = ExtractFeatures(sample, opts);
  for (double v : row) EXPECT_TRUE(std::isfinite(v));
}

TEST(FeatureMatrixTest, StacksRowsAndLabels) {
  FeatureOptions opts;
  std::vector<CascadeSample> samples = {MakeSample(), MakeSample()};
  samples[1].log_label = 3.0;
  const FeatureMatrix m = ExtractFeatureMatrix(samples, opts);
  EXPECT_EQ(m.features.rows(), 2);
  EXPECT_EQ(m.labels.rows(), 2);
  EXPECT_DOUBLE_EQ(m.labels.At(0, 0), Log2p1(7));
  EXPECT_DOUBLE_EQ(m.labels.At(1, 0), 3.0);
  // Identical cascades -> identical rows.
  for (int j = 0; j < m.features.cols(); ++j)
    EXPECT_DOUBLE_EQ(m.features.At(0, j), m.features.At(1, j));
}

TEST(FeatureScalerTest, StandardisesToZeroMeanUnitVariance) {
  Tensor features = Tensor::FromRows({{1, 10}, {3, 10}, {5, 10}});
  const FeatureScaler scaler = FitScaler(features);
  Tensor copy = features;
  ApplyScaler(scaler, copy);
  // Column 0: mean 3, sd sqrt(8/3).
  EXPECT_NEAR(copy.At(0, 0) + copy.At(1, 0) + copy.At(2, 0), 0.0, 1e-12);
  double var = 0;
  for (int i = 0; i < 3; ++i) var += copy.At(i, 0) * copy.At(i, 0);
  EXPECT_NEAR(var / 3.0, 1.0, 1e-12);
  // Constant column 1: stddev guards against divide-by-zero.
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(copy.At(i, 1), 0.0);
}

class TimeBinSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimeBinSweep, BinCountsScaleFeatureWidth) {
  FeatureOptions opts;
  opts.num_time_bins = GetParam();
  EXPECT_EQ(FeatureNames(opts).size(), 13u + 2 * GetParam());
  const auto row = ExtractFeatures(MakeSample(), opts);
  EXPECT_EQ(row.size(), FeatureNames(opts).size());
}

INSTANTIATE_TEST_SUITE_P(Bins, TimeBinSweep, ::testing::Values(1, 3, 6, 12));

}  // namespace
}  // namespace cascn
