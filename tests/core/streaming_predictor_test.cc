#include "core/streaming_predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/trainer.h"

namespace cascn {
namespace {

using testing::TinyCascnConfig;
using testing::TinyDataset;
using testing::TinyTrainerOptions;

class StreamingPredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = TinyDataset();
    model_ = std::make_unique<CascnModel>(TinyCascnConfig());
    TrainRegressor(*model_, dataset_, TinyTrainerOptions(2));
  }
  CascadeDataset dataset_;
  std::unique_ptr<CascnModel> model_;
};

TEST_F(StreamingPredictorTest, PredictsAfterStart) {
  StreamingPredictor predictor(model_.get(), 60.0);
  predictor.Start(/*root_user=*/5);
  EXPECT_EQ(predictor.size(), 1);
  EXPECT_TRUE(std::isfinite(predictor.CurrentPredictionLog()));
  EXPECT_GE(predictor.CurrentPredictionCount(), -1.0);
}

TEST_F(StreamingPredictorTest, UpdatesChangePrediction) {
  StreamingPredictor predictor(model_.get(), 60.0);
  predictor.Start(5);
  const double before = predictor.CurrentPredictionLog();
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(predictor.AddAdoption(10 + i, 0, 5.0 + i).ok());
  const double after = predictor.CurrentPredictionLog();
  EXPECT_EQ(predictor.size(), 7);
  EXPECT_NE(before, after);
}

TEST_F(StreamingPredictorTest, CachedBetweenUpdates) {
  StreamingPredictor predictor(model_.get(), 60.0);
  predictor.Start(1);
  ASSERT_TRUE(predictor.AddAdoption(2, 0, 3.0).ok());
  const double a = predictor.CurrentPredictionLog();
  const double b = predictor.CurrentPredictionLog();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(StreamingPredictorTest, MatchesBatchPrediction) {
  // Streaming over a real sample's events must equal the batch forecast.
  const CascadeSample& sample = dataset_.test[0];
  StreamingPredictor predictor(model_.get(),
                               sample.observation_window);
  predictor.Start(sample.observed.event(0).user);
  for (int i = 1; i < sample.observed.size(); ++i) {
    const AdoptionEvent& e = sample.observed.event(i);
    ASSERT_TRUE(
        predictor.AddAdoption(e.user, e.parents[0], e.time).ok());
  }
  const double streaming = predictor.CurrentPredictionLog();
  model_->ClearCache();
  const double batch =
      model_->PredictLogCalibrated(sample).value().At(0, 0);
  EXPECT_NEAR(streaming, batch, 1e-12);
}

TEST_F(StreamingPredictorTest, RejectsInvalidUpdates) {
  StreamingPredictor predictor(model_.get(), 60.0);
  EXPECT_FALSE(predictor.AddAdoption(1, 0, 1.0).ok());  // not started
  predictor.Start(1);
  EXPECT_FALSE(predictor.AddAdoption(2, 5, 1.0).ok());   // unknown parent
  EXPECT_FALSE(predictor.AddAdoption(2, 0, 70.0).ok());  // outside window
  ASSERT_TRUE(predictor.AddAdoption(2, 0, 10.0).ok());
  EXPECT_FALSE(predictor.AddAdoption(3, 0, 5.0).ok());  // time regression
}

}  // namespace
}  // namespace cascn
