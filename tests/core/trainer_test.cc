#include "core/trainer.h"

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace cascn {
namespace {

using testing::TinyDataset;
using testing::TinyTrainerOptions;

/// A trivial regressor: single learnable scalar prediction regardless of
/// input. Optimal value is the mean label, so training must converge there.
class ConstantModel : public nn::Module, public CascadeRegressor {
 public:
  ConstantModel() { value_ = RegisterParameter("value", Tensor(1, 1, 0.0)); }
  ag::Variable PredictLog(const CascadeSample&) override { return value_; }
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "Constant"; }
  ag::Variable value_;
};

TEST(EvaluateMsleTest, MatchesManualComputation) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  model.value_.mutable_value().At(0, 0) = 1.0;
  double expected = 0;
  for (const auto& s : dataset.test) {
    const double err = 1.0 - s.log_label;
    expected += err * err;
  }
  expected /= dataset.test.size();
  EXPECT_NEAR(EvaluateMsle(model, dataset.test), expected, 1e-12);
}

TEST(TrainRegressorTest, ConvergesToMeanLabel) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  TrainerOptions opts = TinyTrainerOptions(40);
  opts.learning_rate = 0.1;
  opts.patience = 40;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  double mean_label = 0;
  for (const auto& s : dataset.train) mean_label += s.log_label;
  mean_label /= dataset.train.size();
  // Calibration sets the offset to the mean; the learned residual stays
  // near zero, so the calibrated prediction sits at the mean label.
  const double prediction =
      model.PredictLogCalibrated(dataset.train[0]).value().At(0, 0);
  EXPECT_NEAR(prediction, mean_label, 0.35);
  EXPECT_FALSE(result.history.empty());
}

TEST(TrainRegressorTest, TrainLossDecreases) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  TrainerOptions opts = TinyTrainerOptions(10);
  opts.learning_rate = 0.05;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(TrainRegressorTest, EarlyStoppingHaltsOnPlateau) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  // Zero learning rate: no improvement after epoch 1.
  TrainerOptions opts = TinyTrainerOptions(50);
  opts.learning_rate = 0.0;
  opts.patience = 2;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  EXPECT_LE(result.history.size(), 4u);  // 1 best + patience + 1
}

TEST(TrainRegressorTest, RestoresBestWeights) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  // Huge learning rate: the parameter will oscillate; the restored weight
  // must reproduce the best recorded validation MSLE.
  TrainerOptions opts = TinyTrainerOptions(8);
  opts.learning_rate = 2.0;
  opts.patience = 8;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  const double final_msle = EvaluateMsle(model, dataset.validation);
  EXPECT_NEAR(final_msle, result.best_validation_msle, 1e-9);
}

TEST(TrainRegressorTest, BestEpochIsRecorded) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  TrainerOptions opts = TinyTrainerOptions(5);
  const TrainResult result = TrainRegressor(model, dataset, opts);
  EXPECT_GE(result.best_epoch, 1);
  EXPECT_LE(result.best_epoch,
            static_cast<int>(result.history.size()));
  // best_validation_msle matches the minimum across the history.
  double min_val = 1e300;
  for (const auto& e : result.history)
    min_val = std::min(min_val, e.validation_msle);
  EXPECT_DOUBLE_EQ(result.best_validation_msle, min_val);
}

TEST(TrainRegressorTest, DeterministicGivenSeed) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel a, b;
  TrainerOptions opts = TinyTrainerOptions(4);
  const TrainResult ra = TrainRegressor(a, dataset, opts);
  const TrainResult rb = TrainRegressor(b, dataset, opts);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].train_loss, rb.history[i].train_loss);
    EXPECT_DOUBLE_EQ(ra.history[i].validation_msle,
                     rb.history[i].validation_msle);
  }
}

TEST(TrainRegressorTest, EpochStatsCarryTelemetry) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  TrainerOptions opts = TinyTrainerOptions(2);
  opts.learning_rate = 0.05;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  ASSERT_FALSE(result.history.empty());
  for (const EpochStats& stats : result.history) {
    EXPECT_GT(stats.epoch_seconds, 0.0);
    EXPECT_GE(stats.forward_seconds, 0.0);
    EXPECT_GE(stats.backward_seconds, 0.0);
    EXPECT_GE(stats.reduce_seconds, 0.0);
    EXPECT_GE(stats.optimizer_seconds, 0.0);
    EXPECT_GE(stats.validation_seconds, 0.0);
    // Phases are a subset of the epoch: their sum cannot exceed it, even
    // when samples ran concurrently (the fused forward+backward region is
    // apportioned, not summed per worker).
    EXPECT_LE(stats.forward_seconds + stats.backward_seconds +
                  stats.reduce_seconds + stats.optimizer_seconds +
                  stats.validation_seconds,
              stats.epoch_seconds + 1e-6);
    EXPECT_GT(stats.grad_norm, 0.0);  // loss is non-degenerate here
    EXPECT_DOUBLE_EQ(stats.learning_rate, opts.learning_rate);
    EXPECT_GT(stats.num_batches, 0);
    EXPECT_GE(stats.threads, 1);
  }
}

TEST(TrainRegressorTest, TelemetrySinkReceivesOneJsonLinePerEpoch) {
  CascadeDataset dataset = TinyDataset();
  ConstantModel model;
  TrainerOptions opts = TinyTrainerOptions(3);
  opts.patience = 10;  // no early stop: exactly max_epochs records
  obs::VectorTelemetrySink sink;
  opts.telemetry = &sink;
  const TrainResult result = TrainRegressor(model, dataset, opts);
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), result.history.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
    EXPECT_NE(lines[i].find("\"event\": \"epoch\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"model\": \"Constant\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"epoch\": " + std::to_string(i + 1)),
              std::string::npos);
    EXPECT_NE(lines[i].find("\"grad_norm\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"forward_seconds\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"learning_rate\""), std::string::npos);
  }
}

}  // namespace
}  // namespace cascn
