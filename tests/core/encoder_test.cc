#include "core/encoder.h"

#include <gtest/gtest.h>

#include "../testing/test_data.h"

namespace cascn {
namespace {

CascadeSample MakeSample() {
  std::vector<AdoptionEvent> events = {
      {0, 0, {}, 0.0},  {1, 1, {0}, 5.0},  {2, 2, {0}, 15.0},
      {3, 3, {1}, 30.0}, {4, 4, {2}, 55.0},
  };
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("e", std::move(events))).value();
  sample.observation_window = 60.0;
  sample.future_increment = 4;
  sample.log_label = 2.0;
  return sample;
}

TEST(DecayIntervalTest, MapsTimeToBuckets) {
  // Eq. 15 with T = 60, l = 6: bucket width 10.
  EXPECT_EQ(DecayInterval(0.0, 60.0, 6), 0);
  EXPECT_EQ(DecayInterval(9.99, 60.0, 6), 0);
  EXPECT_EQ(DecayInterval(10.0, 60.0, 6), 1);
  EXPECT_EQ(DecayInterval(59.9, 60.0, 6), 5);
  // Clamped at the window edge.
  EXPECT_EQ(DecayInterval(60.0, 60.0, 6), 5);
  EXPECT_EQ(DecayInterval(1000.0, 60.0, 6), 5);
}

TEST(EncoderTest, ShapesAndIntervals) {
  const CascadeSample sample = MakeSample();
  CascnConfig config = testing::TinyCascnConfig();
  config.padded_size = 8;
  auto enc = EncodeCascade(sample, config);
  ASSERT_TRUE(enc.ok()) << enc.status();
  EXPECT_EQ(enc->active_n, 5);
  ASSERT_EQ(enc->snapshot_signals.size(), 5u);
  for (const Tensor& x : enc->snapshot_signals) {
    EXPECT_EQ(x.rows(), 8);
    EXPECT_EQ(x.cols(), 8);
  }
  ASSERT_EQ(enc->decay_intervals.size(), 5u);
  // Times 0, 5, 15, 30, 55 with T=60, l=4 (width 15): buckets 0,0,1,2,3.
  EXPECT_EQ(enc->decay_intervals,
            (std::vector<int>{0, 0, 1, 2, 3}));
}

TEST(EncoderTest, ChebyshevBasisMatchesOrder) {
  const CascadeSample sample = MakeSample();
  for (int k : {1, 2, 3}) {
    CascnConfig config = testing::TinyCascnConfig();
    config.cheb_order = k;
    auto enc = EncodeCascade(sample, config);
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(static_cast<int>(enc->cheb_basis.size()), k);
  }
}

TEST(EncoderTest, ExactLambdaDiffersFromApproximation) {
  const CascadeSample sample = MakeSample();
  CascnConfig exact = testing::TinyCascnConfig();
  exact.lambda_mode = LambdaMaxMode::kExact;
  CascnConfig approx = testing::TinyCascnConfig();
  approx.lambda_mode = LambdaMaxMode::kApproximateTwo;
  auto enc_exact = EncodeCascade(sample, exact);
  auto enc_approx = EncodeCascade(sample, approx);
  ASSERT_TRUE(enc_exact.ok() && enc_approx.ok());
  EXPECT_DOUBLE_EQ(enc_approx->lambda_max, 2.0);
  EXPECT_GT(enc_exact->lambda_max, 0.0);
  EXPECT_NE(enc_exact->lambda_max, 2.0);
}

TEST(EncoderTest, UndirectedVariantUsesSymmetricLaplacian) {
  const CascadeSample sample = MakeSample();
  CascnConfig config = testing::TinyCascnConfig();
  config.variant = CascnVariant::kUndirected;
  config.lambda_mode = LambdaMaxMode::kApproximateTwo;
  auto enc = EncodeCascade(sample, config);
  ASSERT_TRUE(enc.ok());
  // T_1 = scaled Laplacian must be symmetric for the undirected variant.
  ASSERT_GE(enc->cheb_basis.size(), 2u);
  const Tensor t1 = enc->cheb_basis[1].ToDense();
  EXPECT_TRUE(AllClose(t1, t1.Transposed(), 1e-12));
}

TEST(EncoderTest, DirectedVariantIsAsymmetric) {
  const CascadeSample sample = MakeSample();
  CascnConfig config = testing::TinyCascnConfig();
  config.lambda_mode = LambdaMaxMode::kApproximateTwo;
  auto enc = EncodeCascade(sample, config);
  ASSERT_TRUE(enc.ok());
  const Tensor t1 = enc->cheb_basis[1].ToDense();
  EXPECT_FALSE(AllClose(t1, t1.Transposed(), 1e-9));
}

TEST(EncoderTest, LargeCascadeIsTruncatedToPaddedSize) {
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < 40; ++i)
    events.push_back({i, i, {0}, static_cast<double>(i)});
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("big", std::move(events))).value();
  sample.observation_window = 60.0;
  CascnConfig config = testing::TinyCascnConfig();  // padded_size 12
  auto enc = EncodeCascade(sample, config);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->active_n, 12);
  EXPECT_LE(static_cast<int>(enc->snapshot_signals.size()),
            config.max_sequence_length);
}

}  // namespace
}  // namespace cascn
