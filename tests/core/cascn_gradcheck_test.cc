// End-to-end numerical gradient check of the full CasCN model: the entire
// pipeline — snapshot signals, CasLaplacian Chebyshev basis, the
// graph-convolutional LSTM with peepholes, learned time decay, sum pooling,
// MLP — differentiated against central finite differences.

#include <gtest/gtest.h>

#include "core/cascn_model.h"
#include "tensor/grad_check.h"

namespace cascn {
namespace {

CascadeSample TinySample() {
  std::vector<AdoptionEvent> events = {
      {0, 3, {}, 0.0},
      {1, 7, {0}, 8.0},
      {2, 1, {0}, 20.0},
      {3, 5, {1}, 33.0},
      {4, 2, {1}, 47.0},
  };
  CascadeSample sample;
  sample.observed = std::move(Cascade::Create("g", std::move(events))).value();
  sample.observation_window = 60.0;
  sample.future_increment = 6;
  sample.log_label = 2.8;
  return sample;
}

CascnConfig TinyConfig(CascnVariant variant) {
  CascnConfig config;
  config.variant = variant;
  config.padded_size = 6;
  config.hidden_dim = 3;
  config.cheb_order = 2;
  config.max_sequence_length = 4;
  config.num_time_intervals = 3;
  config.mlp_hidden1 = 4;
  config.mlp_hidden2 = 3;
  return config;
}

class CascnGradCheck : public ::testing::TestWithParam<CascnVariant> {};

TEST_P(CascnGradCheck, AnalyticMatchesNumericForSampledParameters) {
  const CascadeSample sample = TinySample();
  CascnModel model(TinyConfig(GetParam()));
  auto named = model.NamedParameters();
  ASSERT_FALSE(named.empty());
  // Check a spread of parameters across the whole model (every 5th plus
  // the last, which is the MLP output bias).
  std::vector<size_t> indices;
  for (size_t i = 0; i < named.size(); i += 5) indices.push_back(i);
  indices.push_back(named.size() - 1);
  for (size_t i : indices) {
    auto result = ag::CheckGradient(
        named[i].second,
        [&](const ag::Variable&) {
          return ag::Square(model.PredictLog(sample));
        },
        /*epsilon=*/1e-5, /*tolerance=*/1e-5);
    EXPECT_TRUE(result.ok) << named[i].first << " rel error "
                           << result.max_rel_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CascnGradCheck,
    ::testing::Values(CascnVariant::kDefault, CascnVariant::kGru,
                      CascnVariant::kGcnLstm, CascnVariant::kUndirected,
                      CascnVariant::kNoTimeDecay));

TEST(CascnGradCheckTest, DecayParameterGradientIsExact) {
  const CascadeSample sample = TinySample();
  CascnModel model(TinyConfig(CascnVariant::kDefault));
  for (auto& [name, p] : model.NamedParameters()) {
    if (name != "decay_raw") continue;
    auto result = ag::CheckGradient(
        p,
        [&](const ag::Variable&) {
          return ag::Square(model.PredictLog(sample));
        },
        1e-5, 1e-5);
    EXPECT_TRUE(result.ok) << "decay rel error " << result.max_rel_error;
    return;
  }
  FAIL() << "decay_raw parameter not found";
}

}  // namespace
}  // namespace cascn
