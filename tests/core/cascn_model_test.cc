#include "core/cascn_model.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <sstream>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/cascn_path_model.h"

namespace cascn {
namespace {

using testing::TinyCascnConfig;
using testing::TinyDataset;

TEST(CascnModelTest, PredictIsScalarAndFinite) {
  const CascadeDataset dataset = TinyDataset();
  CascnModel model(TinyCascnConfig());
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_EQ(pred.rows(), 1);
  EXPECT_EQ(pred.cols(), 1);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
}

TEST(CascnModelTest, DeterministicAcrossConstructionsWithSameSeed) {
  const CascadeDataset dataset = TinyDataset();
  CascnModel a(TinyCascnConfig());
  CascnModel b(TinyCascnConfig());
  EXPECT_DOUBLE_EQ(a.PredictLog(dataset.train[0]).value().At(0, 0),
                   b.PredictLog(dataset.train[0]).value().At(0, 0));
}

TEST(CascnModelTest, DifferentSeedsDiffer) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  CascnModel a(config);
  config.seed = 777;
  CascnModel b(config);
  EXPECT_NE(a.PredictLog(dataset.train[0]).value().At(0, 0),
            b.PredictLog(dataset.train[0]).value().At(0, 0));
}

TEST(CascnModelTest, GradientsReachEveryParameter) {
  const CascadeDataset dataset = TinyDataset();
  CascnModel model(TinyCascnConfig());
  // Two samples so several decay intervals participate.
  ag::Variable loss =
      ag::Add(ag::Square(model.PredictLog(dataset.train[0])),
              ag::Square(model.PredictLog(dataset.train[1])));
  ag::Sum(loss).Backward();
  int with_grad = 0, total = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    ++total;
    if (!p.grad().empty()) ++with_grad;
  }
  // All parameters except possibly unused decay intervals get gradients.
  EXPECT_GE(with_grad, total - 1);
}

class VariantSweep : public ::testing::TestWithParam<CascnVariant> {};

TEST_P(VariantSweep, ConstructsPredictsAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  config.variant = GetParam();
  CascnModel model(config);
  EXPECT_EQ(model.name(), VariantName(GetParam()));
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  // At least the MLP got gradients.
  int with_grad = 0;
  for (const auto& p : model.Parameters())
    if (!p.grad().empty()) ++with_grad;
  EXPECT_GT(with_grad, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantSweep,
    ::testing::Values(CascnVariant::kDefault, CascnVariant::kGru,
                      CascnVariant::kGcnLstm, CascnVariant::kUndirected,
                      CascnVariant::kNoTimeDecay));

TEST(CascnModelTest, RepresentationHasHiddenWidth) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  CascnModel model(config);
  const Tensor rep = model.Representation(dataset.train[0]);
  EXPECT_EQ(rep.rows(), 1);
  EXPECT_EQ(rep.cols(), config.hidden_dim);
}

TEST(CascnModelTest, EncodingIsCachedAcrossCalls) {
  const CascadeDataset dataset = TinyDataset();
  CascnModel model(TinyCascnConfig());
  const double first = model.PredictLog(dataset.train[0]).value().At(0, 0);
  const double second = model.PredictLog(dataset.train[0]).value().At(0, 0);
  EXPECT_DOUBLE_EQ(first, second);
  model.ClearCache();
  const double third = model.PredictLog(dataset.train[0]).value().At(0, 0);
  EXPECT_DOUBLE_EQ(first, third);
}

TEST(CascnModelTest, CacheSurvivesHeapAddressReuse) {
  // Regression: the encoding cache used to be keyed by sample address, so a
  // different cascade constructed at a recycled address silently reused the
  // previous cascade's encoding (exactly what per-update streaming sample
  // allocation produces). Content-fingerprint keys must not care about
  // addresses.
  const CascadeDataset dataset = TinyDataset();
  CascnModel model(TinyCascnConfig());
  const double truth0 = model.PredictLog(dataset.train[0]).value().At(0, 0);
  const double truth1 = model.PredictLog(dataset.train[1]).value().At(0, 0);
  ASSERT_NE(truth0, truth1);
  model.ClearCache();

  alignas(CascadeSample) unsigned char storage[sizeof(CascadeSample)];
  auto* first = new (storage) CascadeSample(dataset.train[0]);
  EXPECT_DOUBLE_EQ(model.PredictLog(*first).value().At(0, 0), truth0);
  first->~CascadeSample();
  // A different cascade at the very same address must get its own encoding.
  auto* second = new (storage) CascadeSample(dataset.train[1]);
  EXPECT_DOUBLE_EQ(model.PredictLog(*second).value().At(0, 0), truth1);
  second->~CascadeSample();
}

TEST(CascnModelTest, EncodingCacheIsBoundedWithLruEviction) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  config.encoding_cache_capacity = 4;
  CascnModel model(config);
  const size_t n = std::min<size_t>(10, dataset.train.size());
  ASSERT_GT(n, 4u);
  for (size_t i = 0; i < n; ++i) model.PredictLog(dataset.train[i]);
  EXPECT_EQ(model.EncodingCacheSize(), 4u);
  // Evicted entries are simply recomputed, with identical results.
  EXPECT_DOUBLE_EQ(model.PredictLog(dataset.train[0]).value().At(0, 0),
                   model.PredictLog(dataset.train[0]).value().At(0, 0));
}

TEST(CascnModelTest, EncodedLambdaMaxModes) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  config.lambda_mode = LambdaMaxMode::kApproximateTwo;
  CascnModel approx(config);
  EXPECT_DOUBLE_EQ(approx.EncodedLambdaMax(dataset.train[0]), 2.0);
  config.lambda_mode = LambdaMaxMode::kExact;
  CascnModel exact(config);
  EXPECT_GT(exact.EncodedLambdaMax(dataset.train[0]), 0.0);
}

TEST(CascnModelTest, NoTimeDecayVariantHasNoDecayParameter) {
  CascnConfig config = TinyCascnConfig();
  config.variant = CascnVariant::kNoTimeDecay;
  CascnModel model(config);
  for (const auto& [name, p] : model.NamedParameters())
    EXPECT_EQ(name.find("decay"), std::string::npos) << name;
}

TEST(CascnModelTest, SaveLoadRoundTripPreservesPredictions) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  CascnModel original(config);
  const double before = original.PredictLog(dataset.test[0]).value().At(0, 0);
  std::stringstream buffer;
  ASSERT_TRUE(original.Save(buffer).ok());
  config.seed = 31337;  // different init
  CascnModel restored(config);
  ASSERT_TRUE(restored.Load(buffer).ok());
  EXPECT_DOUBLE_EQ(restored.PredictLog(dataset.test[0]).value().At(0, 0),
                   before);
}

TEST(CascnModelTest, AttentionPoolingExtensionWorks) {
  const CascadeDataset dataset = TinyDataset();
  CascnConfig config = TinyCascnConfig();
  config.attention_pooling = true;
  CascnModel model(config);
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  bool attn_has_grad = false;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name == "attn_w" || name == "attn_v") {
      attn_has_grad = attn_has_grad || !p.grad().empty();
    }
  }
  EXPECT_TRUE(attn_has_grad);
  // Differs from the sum-pooled model.
  config.attention_pooling = false;
  CascnModel plain(config);
  EXPECT_NE(pred.value().At(0, 0),
            plain.PredictLog(dataset.train[0]).value().At(0, 0));
}

TEST(CascnPathModelTest, PredictsAndBackprops) {
  const CascadeDataset dataset = TinyDataset();
  CascnPathConfig config;
  config.user_universe = 200;
  config.embedding_dim = 6;
  config.hidden_dim = 5;
  config.num_walks = 4;
  config.walk_length = 5;
  CascnPathModel model(config);
  EXPECT_EQ(model.name(), "CasCN-Path");
  const ag::Variable pred = model.PredictLog(dataset.train[0]);
  EXPECT_TRUE(std::isfinite(pred.value().At(0, 0)));
  ag::Square(pred).Backward();
  int with_grad = 0;
  for (const auto& p : model.Parameters())
    if (!p.grad().empty()) ++with_grad;
  EXPECT_GT(with_grad, 0);
}

TEST(CascnPathModelTest, WalksCachedDeterministically) {
  const CascadeDataset dataset = TinyDataset();
  CascnPathConfig config;
  config.user_universe = 200;
  CascnPathModel model(config);
  const double a = model.PredictLog(dataset.train[2]).value().At(0, 0);
  const double b = model.PredictLog(dataset.train[2]).value().At(0, 0);
  EXPECT_DOUBLE_EQ(a, b);
  model.ClearCache();
  // Walks are reseeded from the cascade id, so the prediction is unchanged.
  EXPECT_DOUBLE_EQ(model.PredictLog(dataset.train[2]).value().At(0, 0), a);
}

}  // namespace
}  // namespace cascn
