// Robustness of checkpoint I/O under torn writes, truncation at every
// offset, bit rot, and injected faults: loads must fail with a descriptive
// Status — never crash — and the atomic write must never leave a torn image
// under the destination name.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "common/crc32.h"
#include "core/cascn_model.h"
#include "fault/fault.h"
#include "serve/checkpoint.h"

namespace cascn::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cascn_robust_" + name + ".bin";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CheckpointRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Get().Clear();
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    CascnConfig config = testing::TinyCascnConfig();
    config.seed = 5;
    CascnModel model(config);
    model.set_output_offset(0.75);
    ASSERT_TRUE(SaveCascnCheckpoint(path_, model).ok());
  }

  void TearDown() override {
    fault::FaultRegistry::Get().Clear();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

TEST_F(CheckpointRobustnessTest, TruncationSweepNeverCrashes) {
  // Cut a valid checkpoint at every 64-byte boundary (and the last few
  // bytes individually): every prefix must be rejected with a non-OK
  // status, never accepted and never a crash.
  const std::string bytes = ReadAll(path_);
  ASSERT_GT(bytes.size(), 64u);
  for (size_t keep = 0; keep < bytes.size(); keep += 64) {
    SCOPED_TRACE(keep);
    WriteAll(path_, bytes.substr(0, keep));
    const auto result = LoadCascnCheckpoint(path_);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.status().message().empty());
  }
  for (size_t cut = 1; cut <= 4 && cut < bytes.size(); ++cut) {
    SCOPED_TRACE(bytes.size() - cut);
    WriteAll(path_, bytes.substr(0, bytes.size() - cut));
    EXPECT_FALSE(LoadCascnCheckpoint(path_).ok());
  }
  // The untouched original still loads.
  WriteAll(path_, bytes);
  EXPECT_TRUE(LoadCascnCheckpoint(path_).ok());
}

TEST_F(CheckpointRobustnessTest, SingleFlippedBitIsDetected) {
  std::string bytes = ReadAll(path_);
  // Flip one bit in the middle of the parameter payload — a corruption the
  // v1 footer check could not see.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteAll(path_, bytes);
  const auto result = LoadCascnCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST_F(CheckpointRobustnessTest, VersionOneFilesStillLoad) {
  // A v1 file is the current image minus the trailing CRC, with the version
  // field rewritten — what a pre-CRC writer produced.
  std::string bytes = ReadAll(path_);
  bytes.resize(bytes.size() - sizeof(uint32_t));
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + sizeof(uint32_t), &v1, sizeof(v1));
  WriteAll(path_, bytes);
  const auto result = LoadCascnCheckpoint(path_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result.value()->output_offset(), 0.75);
}

TEST_F(CheckpointRobustnessTest, TrailingGarbageIsRejected) {
  std::string bytes = ReadAll(path_);
  WriteAll(path_, bytes + std::string(16, '\0'));
  EXPECT_FALSE(LoadCascnCheckpoint(path_).ok());
}

TEST_F(CheckpointRobustnessTest, TornWriteLeavesDestinationIntact) {
  const std::string original = ReadAll(path_);
  fault::FaultRegistry::Get().Configure(
      std::string(kFaultCheckpointTornWrite) + "=always");
  CascnConfig config = testing::TinyCascnConfig();
  config.seed = 6;  // different weights than the file on disk
  CascnModel replacement(config);
  const Status status = SaveCascnCheckpoint(path_, replacement);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("torn"), std::string::npos);
  // The destination still holds the previous, fully valid checkpoint.
  EXPECT_EQ(ReadAll(path_), original);
  EXPECT_TRUE(LoadCascnCheckpoint(path_).ok());
  // The torn image exists only under the temp name, and is itself rejected.
  const std::string torn = ReadAll(path_ + ".tmp");
  ASSERT_FALSE(torn.empty());
  EXPECT_LT(torn.size(), original.size());
  WriteAll(path_ + ".torn-as-main", torn);
  EXPECT_FALSE(LoadCascnCheckpoint(path_ + ".torn-as-main").ok());
  std::remove((path_ + ".torn-as-main").c_str());
  fault::FaultRegistry::Get().Clear();
}

TEST_F(CheckpointRobustnessTest, InjectedWriteFailureIsClean) {
  fault::FaultRegistry::Get().Configure(
      std::string(kFaultCheckpointWriteFail) + "=always");
  CascnModel model(testing::TinyCascnConfig());
  const Status status = SaveCascnCheckpoint(path_, model);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(kFaultCheckpointWriteFail),
            std::string::npos);
  fault::FaultRegistry::Get().Clear();
  EXPECT_TRUE(LoadCascnCheckpoint(path_).ok());  // previous file intact
}

TEST_F(CheckpointRobustnessTest, InjectedLoadFailureIsSurfaced) {
  fault::FaultRegistry::Get().Configure(
      std::string(kFaultCheckpointLoadFail) + "=nth:1");
  EXPECT_FALSE(LoadCascnCheckpoint(path_).ok());  // first load fails
  EXPECT_TRUE(LoadCascnCheckpoint(path_).ok());   // second is clean
  fault::FaultRegistry::Get().Clear();
}

TEST_F(CheckpointRobustnessTest, MissingFileNamesPathAndErrno) {
  const auto result = ReadCheckpointHeaderFile(path_ + ".missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find(path_ + ".missing"),
            std::string::npos);
  // strerror text for ENOENT.
  EXPECT_NE(result.status().message().find("No such file"),
            std::string::npos);
}

}  // namespace
}  // namespace cascn::serve
