// RequestContext propagation through the bare (unsharded) enqueue path:
// the trace id a caller mints must ride the queue handoff into the worker
// and come back on the ServeResponse — byte-identical to how the shard
// router's edge-minted contexts survive the same hop — and must stamp the
// flight-recorder record the worker writes.

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "cluster/shard_router.h"
#include "obs/request_context.h"
#include "serve/checkpoint.h"
#include "serve/prediction_service.h"

namespace cascn::serve {
namespace {

std::string TempCheckpoint(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "cascn_reqctx_" + name + ".ckpt";
  CascnConfig config = cascn::testing::TinyCascnConfig();
  CascnModel model(config);
  model.set_output_offset(2.0);
  EXPECT_TRUE(SaveCascnCheckpoint(path, model).ok());
  return path;
}

ServiceOptions BareOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.sessions.observation_window = 60.0;
  return options;
}

bool FlightHasTrace(const obs::FlightRecorder& flight, uint64_t trace_id,
                    obs::FlightOp op) {
  for (const obs::FlightRecord& r : flight.Snapshot())
    if (r.trace_id == trace_id && r.op == op) return true;
  return false;
}

TEST(RequestContextPropagationTest, BareEnqueuePreservesCallerTraceId) {
  auto service = PredictionService::CreateFromCheckpoint(
      BareOptions(), TempCheckpoint("bare"));
  ASSERT_TRUE(service.ok()) << service.status();

  obs::RequestContext ctx = obs::RequestContext::New("acme", "s1");
  ASSERT_NE(ctx.trace_id, 0u);
  const uint64_t minted = ctx.trace_id;

  auto created = (*service)->SubmitCreate(ctx, "s1", 1);
  ASSERT_TRUE(created.ok()) << created.status();
  ServeResponse response = created->get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  // The id minted at the edge is the id the worker answered under: the
  // queue handoff (promise/future across threads) preserved the context.
  EXPECT_EQ(response.trace_id, minted);

  // Follow-up ops under fresh contexts each carry their own id.
  obs::RequestContext append_ctx = obs::RequestContext::New("acme", "s1");
  auto appended = (*service)->SubmitAppend(append_ctx, "s1", 2, 0, 1.0);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->get().trace_id, append_ctx.trace_id);

  obs::RequestContext predict_ctx = obs::RequestContext::New("acme", "s1");
  auto predicted = (*service)->SubmitPredict(predict_ctx, "s1");
  ASSERT_TRUE(predicted.ok());
  response = predicted->get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.trace_id, predict_ctx.trace_id);

  // The same id reached the black box: the worker stamped its flight
  // record with the caller's context, not a re-minted one.
  EXPECT_TRUE(FlightHasTrace((*service)->flight_recorder(),
                             predict_ctx.trace_id, obs::FlightOp::kPredict));
  const std::vector<obs::FlightRecord> records =
      (*service)->flight_recorder().Snapshot();
  bool tenant_seen = false;
  for (const obs::FlightRecord& r : records)
    if (r.trace_id == predict_ctx.trace_id &&
        std::string(r.tenant) == "acme")
      tenant_seen = true;
  EXPECT_TRUE(tenant_seen) << "tenant must ride the context into the ring";
}

TEST(RequestContextPropagationTest, ContextFreeSubmitMintsNonzeroId) {
  auto service = PredictionService::CreateFromCheckpoint(
      BareOptions(), TempCheckpoint("minted"));
  ASSERT_TRUE(service.ok()) << service.status();
  auto created = (*service)->SubmitCreate("s1", 1);
  ASSERT_TRUE(created.ok());
  const ServeResponse response = created->get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_NE(response.trace_id, 0u) << "bare submits mint a context";
}

TEST(RequestContextPropagationTest, RouterAndBarePathsAgree) {
  // The same request shape through both front doors: the router mints at
  // its edge, the bare service at its own — both must surface the id that
  // executed, and both must land it in the executing shard's flight ring.
  const std::string checkpoint = TempCheckpoint("router");
  cluster::ShardRouterOptions options;
  options.num_shards = 2;
  options.shard.num_workers = 1;
  options.shard.sessions.observation_window = 60.0;
  auto router = cluster::ShardRouter::CreateFromCheckpoint(options, checkpoint);
  ASSERT_TRUE(router.ok()) << router.status();

  const ServeResponse created = (*router)->CallCreate("acme", "sess", 1);
  ASSERT_TRUE(created.status.ok()) << created.status;
  EXPECT_NE(created.trace_id, 0u);

  const ServeResponse predicted = (*router)->CallPredict("acme", "sess");
  ASSERT_TRUE(predicted.status.ok()) << predicted.status;
  EXPECT_NE(predicted.trace_id, 0u);
  EXPECT_NE(predicted.trace_id, created.trace_id)
      << "router mints per request, not per session";

  const int shard_id = (*router)->ShardOf("sess");
  ASSERT_GE(shard_id, 0);
  PredictionService* shard = (*router)->shard(shard_id);
  ASSERT_NE(shard, nullptr);
  EXPECT_TRUE(FlightHasTrace(shard->flight_recorder(), predicted.trace_id,
                             obs::FlightOp::kPredict))
      << "router-minted id must survive the shard queue handoff";
}

}  // namespace
}  // namespace cascn::serve
