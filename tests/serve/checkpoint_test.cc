#include "serve/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "common/crc32.h"
#include "baselines/deepcas_model.h"
#include "baselines/deephawkes_model.h"
#include "baselines/feature_deep.h"
#include "baselines/lis_model.h"
#include "baselines/node2vec_model.h"
#include "baselines/topolstm_model.h"
#include "core/cascn_path_model.h"

namespace cascn::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cascn_ckpt_" + name + ".bin";
}

/// Asserts every parameter of `loaded` is bit-identical to `saved`.
void ExpectParametersIdentical(const nn::Module& saved,
                               const nn::Module& loaded) {
  const auto a = saved.NamedParameters();
  const auto b = loaded.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].first);
    EXPECT_EQ(a[i].first, b[i].first);
    const Tensor& ta = a[i].second.value();
    const Tensor& tb = b[i].second.value();
    ASSERT_EQ(ta.rows(), tb.rows());
    ASSERT_EQ(ta.cols(), tb.cols());
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(),
                          sizeof(double) * static_cast<size_t>(ta.size())),
              0);
  }
}

/// Round-trips `saved` through a checkpoint file into `loaded` (same
/// architecture, different initialisation) and checks bit-identity plus
/// offset restoration.
template <typename ModelT>
void ExpectRoundTrip(const std::string& tag, ModelT& saved, ModelT& loaded) {
  saved.set_output_offset(1.25);
  const std::string path = TempPath(tag);
  ASSERT_TRUE(
      WriteCheckpointFile(path, tag, "", saved, saved.output_offset()).ok());
  CheckpointHeader header;
  ASSERT_TRUE(LoadCheckpointIntoFile(path, tag, loaded, &header).ok());
  loaded.set_output_offset(header.output_offset);
  EXPECT_EQ(header.model_type, tag);
  EXPECT_DOUBLE_EQ(loaded.output_offset(), 1.25);
  ExpectParametersIdentical(saved, loaded);
  std::remove(path.c_str());
}

TEST(CheckpointRoundTripTest, CascnAllVariants) {
  for (CascnVariant variant :
       {CascnVariant::kDefault, CascnVariant::kGru, CascnVariant::kGcnLstm,
        CascnVariant::kUndirected, CascnVariant::kNoTimeDecay}) {
    SCOPED_TRACE(VariantName(variant));
    CascnConfig config = testing::TinyCascnConfig();
    config.variant = variant;
    config.seed = 1;
    CascnModel saved(config);
    config.seed = 2;
    CascnModel loaded(config);
    ExpectRoundTrip("cascn-test", saved, loaded);
  }
}

TEST(CheckpointRoundTripTest, CascnPath) {
  CascnPathConfig config;
  config.user_universe = 100;
  config.seed = 1;
  CascnPathModel saved(config);
  config.seed = 2;
  CascnPathModel loaded(config);
  ExpectRoundTrip("cascn-path", saved, loaded);
}

TEST(CheckpointRoundTripTest, DeepBaselines) {
  {
    DeepCasModel::Config config;
    config.user_universe = 100;
    config.seed = 1;
    DeepCasModel saved(config);
    config.seed = 2;
    DeepCasModel loaded(config);
    ExpectRoundTrip("deepcas", saved, loaded);
  }
  {
    TopoLstmModel::Config config;
    config.user_universe = 100;
    config.seed = 1;
    TopoLstmModel saved(config);
    config.seed = 2;
    TopoLstmModel loaded(config);
    ExpectRoundTrip("topolstm", saved, loaded);
  }
  {
    DeepHawkesModel::Config config;
    config.user_universe = 100;
    config.seed = 1;
    DeepHawkesModel saved(config);
    config.seed = 2;
    DeepHawkesModel loaded(config);
    ExpectRoundTrip("deephawkes", saved, loaded);
  }
  {
    FeatureDeepModel::Config config;
    config.seed = 1;
    FeatureDeepModel saved(config);
    config.seed = 2;
    FeatureDeepModel loaded(config);
    ExpectRoundTrip("feature-deep", saved, loaded);
  }
  {
    LisModel::Config config;
    config.user_universe = 100;
    config.seed = 1;
    LisModel saved(config);
    config.seed = 2;
    LisModel loaded(config);
    ExpectRoundTrip("lis", saved, loaded);
  }
  {
    Node2VecModel::Config config;
    config.user_universe = 100;
    config.seed = 1;
    Node2VecModel saved(config);
    config.seed = 2;
    Node2VecModel loaded(config);
    ExpectRoundTrip("node2vec", saved, loaded);
  }
}

TEST(CheckpointCascnTest, SaveLoadRestoresConfigAndPredictions) {
  const CascadeDataset dataset = testing::TinyDataset();
  CascnConfig config = testing::TinyCascnConfig();
  config.variant = CascnVariant::kGru;
  CascnModel model(config);
  model.set_output_offset(2.5);

  const std::string path = TempPath("cascn-full");
  ASSERT_TRUE(SaveCascnCheckpoint(path, model).ok());
  auto loaded = LoadCascnCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ((*loaded)->config().variant, CascnVariant::kGru);
  EXPECT_EQ((*loaded)->config().padded_size, config.padded_size);
  EXPECT_EQ((*loaded)->config().hidden_dim, config.hidden_dim);
  EXPECT_DOUBLE_EQ((*loaded)->output_offset(), 2.5);

  const CascadeSample& sample = dataset.test[0];
  const double original = model.PredictLogCalibrated(sample).value().At(0, 0);
  const double reloaded =
      (*loaded)->PredictLogCalibrated(sample).value().At(0, 0);
  EXPECT_DOUBLE_EQ(original, reloaded);
  std::remove(path.c_str());
}

TEST(CheckpointCascnTest, ConfigTextRoundTrip) {
  CascnConfig config;
  config.variant = CascnVariant::kUndirected;
  config.padded_size = 17;
  config.hidden_dim = 5;
  config.attention_pooling = true;
  config.lambda_mode = LambdaMaxMode::kApproximateTwo;
  config.caslaplacian_alpha = 0.77;
  config.seed = 1234;
  auto parsed = ParseCascnConfig(EncodeCascnConfig(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->variant, CascnVariant::kUndirected);
  EXPECT_EQ(parsed->padded_size, 17);
  EXPECT_EQ(parsed->hidden_dim, 5);
  EXPECT_TRUE(parsed->attention_pooling);
  EXPECT_EQ(parsed->lambda_mode, LambdaMaxMode::kApproximateTwo);
  EXPECT_DOUBLE_EQ(parsed->caslaplacian_alpha, 0.77);
  EXPECT_EQ(parsed->seed, 1234u);
}

TEST(CheckpointCascnTest, ConfigParserRejectsUnknownKeysAndGarbage) {
  EXPECT_FALSE(ParseCascnConfig("nonsense_key=3\n").ok());
  EXPECT_FALSE(ParseCascnConfig("hidden_dim=abc\n").ok());
  EXPECT_FALSE(ParseCascnConfig("no equals sign\n").ok());
  EXPECT_FALSE(ParseCascnConfig("variant=99\n").ok());
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corruption");
    CascnConfig config = testing::TinyCascnConfig();
    model_ = std::make_unique<CascnModel>(config);
    ASSERT_TRUE(SaveCascnCheckpoint(path_, *model_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadAll() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  void WriteAll(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::unique_ptr<CascnModel> model_;
};

TEST_F(CheckpointCorruptionTest, MissingFileIsIoError) {
  auto result = LoadCascnCheckpoint(path_ + ".does-not-exist");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(CheckpointCorruptionTest, GarbageMagicIsRejected) {
  WriteAll("this is definitely not a checkpoint file, not even close");
  auto result = LoadCascnCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointCorruptionTest, UnsupportedVersionIsRejected) {
  std::string bytes = ReadAll();
  const uint32_t bogus_version = 999;
  std::memcpy(bytes.data() + sizeof(uint32_t), &bogus_version,
              sizeof(bogus_version));
  // Recompute the trailing CRC so the version check itself is exercised
  // rather than the checksum guard.
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  WriteAll(bytes);
  auto result = LoadCascnCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, VersionPatchedWithoutCrcFixIsCorruption) {
  // A v2 file whose version field is damaged (without a matching CRC) is
  // indistinguishable from bit rot and must be rejected as corrupt.
  std::string bytes = ReadAll();
  const uint32_t bogus_version = 1;
  std::memcpy(bytes.data() + sizeof(uint32_t), &bogus_version,
              sizeof(bogus_version));
  WriteAll(bytes);
  auto result = LoadCascnCheckpoint(path_);
  ASSERT_FALSE(result.ok());
}

TEST_F(CheckpointCorruptionTest, TruncationsAtEveryRegionAreRejected) {
  const std::string bytes = ReadAll();
  // Header, config block, parameter payload, and footer truncations.
  for (size_t keep :
       {size_t{2}, size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE(keep);
    WriteAll(bytes.substr(0, keep));
    EXPECT_FALSE(LoadCascnCheckpoint(path_).ok());
  }
}

TEST_F(CheckpointCorruptionTest, WrongModelTypeIsRejected) {
  CascnConfig config = testing::TinyCascnConfig();
  CascnModel model(config);
  ASSERT_TRUE(WriteCheckpointFile(path_, "some-other-model",
                                  EncodeCascnConfig(config), model, 0.0)
                  .ok());
  auto result = LoadCascnCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("some-other-model"),
            std::string::npos);
}

TEST_F(CheckpointCorruptionTest, ShapeMismatchIsRejected) {
  CascnConfig other = testing::TinyCascnConfig();
  other.hidden_dim += 2;  // same parameter names, different shapes
  CascnModel destination(other);
  EXPECT_FALSE(
      LoadCheckpointIntoFile(path_, kCascnModelType, destination).ok());
}

}  // namespace
}  // namespace cascn::serve
