// Serial-equivalence and backpressure tests for the prediction service.
// Run with -DCASCN_SANITIZE=thread to have TSan check the locking story.

#include "serve/prediction_service.h"

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "data/cascade_generator.h"
#include "serve/checkpoint.h"

namespace cascn::serve {
namespace {

constexpr double kWindow = 60.0;

std::string CheckpointPath() {
  return ::testing::TempDir() + "cascn_service_test.ckpt";
}

/// Writes a deterministic (untrained but seeded) tiny CasCN checkpoint.
void WriteTestCheckpoint() {
  CascnConfig config = testing::TinyCascnConfig();
  CascnModel model(config);
  model.set_output_offset(2.0);
  ASSERT_TRUE(SaveCascnCheckpoint(CheckpointPath(), model).ok());
}

/// Replay material: per session, the in-window adoption events.
std::vector<std::vector<AdoptionEvent>> ReplayCascades(int count) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = count * 3;
  config.user_universe = 200;
  config.max_size = 30;
  Rng rng(7);
  std::vector<std::vector<AdoptionEvent>> replays;
  for (const Cascade& cascade : GenerateCascades(config, rng)) {
    const Cascade prefix = cascade.Prefix(kWindow);
    if (prefix.size() < 3) continue;
    replays.push_back(prefix.events());
    if (static_cast<int>(replays.size()) == count) break;
  }
  return replays;
}

/// Serial reference: one model, one session at a time.
std::vector<double> SerialPredictions(
    const std::vector<std::vector<AdoptionEvent>>& replays) {
  auto model = LoadCascnCheckpoint(CheckpointPath());
  EXPECT_TRUE(model.ok()) << model.status();
  SessionManagerOptions options;
  options.observation_window = kWindow;
  SessionManager manager(options);
  std::vector<double> predictions;
  for (size_t i = 0; i < replays.size(); ++i) {
    const std::string id = "s" + std::to_string(i);
    EXPECT_TRUE(manager.Create(id, replays[i][0].user).ok());
    for (size_t e = 1; e < replays[i].size(); ++e) {
      const AdoptionEvent& event = replays[i][e];
      EXPECT_TRUE(
          manager.Append(id, event.user, event.parents[0], event.time).ok());
    }
    predictions.push_back(manager.PredictLog(id, **model).value());
    EXPECT_TRUE(manager.Close(id).ok());
  }
  return predictions;
}

TEST(ServiceConcurrencyTest, ParallelRepliesMatchSerialReplay) {
  WriteTestCheckpoint();
  const auto replays = ReplayCascades(24);
  ASSERT_GE(replays.size(), 8u);
  const std::vector<double> expected = SerialPredictions(replays);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.max_batch = 8;
  options.sessions.observation_window = kWindow;
  auto service = PredictionService::CreateFromCheckpoint(options,
                                                         CheckpointPath());
  ASSERT_TRUE(service.ok()) << service.status();

  // Each driver thread owns a disjoint subset of sessions but runs them
  // concurrently and interleaved (create all, then round-robin appends with
  // mid-stream predicts), so many sessions are live and in flight at once.
  constexpr int kThreads = 4;
  std::vector<double> actual(replays.size(), 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<size_t> mine;
      for (size_t i = t; i < replays.size(); i += kThreads) mine.push_back(i);
      for (size_t i : mine) {
        const ServeResponse r = service.value()->CallCreate(
            "s" + std::to_string(i), replays[i][0].user);
        ASSERT_TRUE(r.status.ok()) << r.status;
      }
      // Round-robin the appends across this thread's sessions.
      bool progressed = true;
      for (size_t step = 1; progressed; ++step) {
        progressed = false;
        for (size_t i : mine) {
          if (step >= replays[i].size()) continue;
          progressed = true;
          const AdoptionEvent& event = replays[i][step];
          const std::string id = "s" + std::to_string(i);
          const ServeResponse r = service.value()->CallAppend(
              id, event.user, event.parents[0], event.time);
          ASSERT_TRUE(r.status.ok()) << r.status;
          if (step % 5 == 0) {
            const ServeResponse p = service.value()->CallPredict(id);
            ASSERT_TRUE(p.status.ok()) << p.status;
            ASSERT_TRUE(std::isfinite(p.log_prediction));
          }
        }
      }
      for (size_t i : mine) {
        const ServeResponse p =
            service.value()->CallPredict("s" + std::to_string(i));
        ASSERT_TRUE(p.status.ok()) << p.status;
        actual[i] = p.log_prediction;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_DOUBLE_EQ(actual[i], expected[i]);
  }

  const auto snap = service.value()->metrics().TakeSnapshot();
  EXPECT_GT(snap.counter(Counter::kRequestsTotal), 0u);
  EXPECT_EQ(snap.counter(Counter::kSessionsCreated), replays.size());
  EXPECT_GT(snap.counter(Counter::kPredictions), 0u);
  EXPECT_EQ(snap.counter(Counter::kErrors), 0u);
}

TEST(ServiceConcurrencyTest, BackpressureRejectsWithUnavailable) {
  WriteTestCheckpoint();
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.sessions.observation_window = kWindow;
  auto service = PredictionService::CreateFromCheckpoint(options,
                                                         CheckpointPath());
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE(service.value()->CallCreate("s", 1).status.ok());
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(
        service.value()->CallAppend("s", 2 + i, i / 2, 1.0 + i).status.ok());

  // A tight submission loop against a one-slot queue must hit the wall.
  std::vector<std::future<ServeResponse>> accepted;
  bool rejected = false;
  for (int i = 0; i < 10000 && !rejected; ++i) {
    auto submitted = service.value()->SubmitPredict("s");
    if (submitted.ok()) {
      accepted.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  for (auto& future : accepted) EXPECT_TRUE(future.get().status.ok());
  EXPECT_GT(service.value()->metrics().TakeSnapshot().counter(
                Counter::kRequestsRejected),
            0u);
}

TEST(ServiceConcurrencyTest, ShutdownDrainsInFlightWork) {
  WriteTestCheckpoint();
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 512;
  options.sessions.observation_window = kWindow;
  auto service = PredictionService::CreateFromCheckpoint(options,
                                                         CheckpointPath());
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE(service.value()->CallCreate("s", 1).status.ok());

  std::vector<std::future<ServeResponse>> pending;
  for (int i = 0; i < 64; ++i) {
    auto submitted = service.value()->SubmitPredict("s");
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    pending.push_back(std::move(submitted).value());
  }
  service.value()->Shutdown();
  // Every accepted request resolves: executed before shutdown (OK with a
  // finite prediction) or failed with a status that names the shutdown —
  // never a hung future or a generic rejection.
  int executed = 0, drained = 0;
  for (auto& future : pending) {
    const ServeResponse response = future.get();
    if (response.status.ok()) {
      EXPECT_TRUE(std::isfinite(response.log_prediction));
      ++executed;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      EXPECT_NE(response.status.message().find("shut down"),
                std::string::npos)
          << response.status;
      ++drained;
    }
  }
  EXPECT_EQ(executed + drained, 64);
  EXPECT_EQ(
      service.value()->metrics().TakeSnapshot().counter(
          Counter::kShutdownDrained),
      static_cast<uint64_t>(drained));
  EXPECT_EQ(service.value()->health(), Health::kUnhealthy);
  // New work is refused after shutdown.
  auto late = service.value()->SubmitPredict("s");
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST(ServiceConcurrencyTest, ShutdownIsIdempotentAndConcurrent) {
  WriteTestCheckpoint();
  ServiceOptions options;
  options.num_workers = 2;
  options.sessions.observation_window = kWindow;
  auto service = PredictionService::CreateFromCheckpoint(options,
                                                         CheckpointPath());
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE(service.value()->CallCreate("s", 1).status.ok());
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i)
    callers.emplace_back([&service] { service.value()->Shutdown(); });
  for (auto& t : callers) t.join();
  service.value()->Shutdown();  // and once more, after completion
  EXPECT_EQ(service.value()->health(), Health::kUnhealthy);
}

TEST(ServiceConcurrencyTest, FactoryErrorsPropagate) {
  ServiceOptions options;
  options.num_workers = 2;
  auto service = PredictionService::CreateFromCheckpoint(
      options, "/nonexistent/path/model.ckpt");
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cascn::serve
