#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::serve {
namespace {

TEST(ServeMetricsTest, CountersStartAtZero) {
  ServeMetrics metrics;
  const auto snap = metrics.TakeSnapshot();
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    EXPECT_EQ(snap.counters[i], 0u);
  EXPECT_EQ(snap.latency_count, 0u);
  EXPECT_EQ(snap.latency_p50_us, 0.0);
}

TEST(ServeMetricsTest, IncrementAccumulates) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kRequestsTotal);
  metrics.Increment(Counter::kRequestsTotal, 4);
  metrics.Increment(Counter::kEvictions, 2);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kRequestsTotal), 5u);
  EXPECT_EQ(snap.counter(Counter::kEvictions), 2u);
  EXPECT_EQ(snap.counter(Counter::kPredictions), 0u);
}

TEST(ServeMetricsTest, LatencyPercentilesAreOrdered) {
  ServeMetrics metrics;
  for (uint64_t us = 1; us <= 1000; ++us) metrics.RecordLatencyMicros(us);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_count, 1000u);
  EXPECT_EQ(snap.latency_max_us, 1000u);
  EXPECT_GT(snap.latency_mean_us, 0.0);
  EXPECT_LE(snap.latency_p50_us, snap.latency_p90_us);
  EXPECT_LE(snap.latency_p90_us, snap.latency_p99_us);
  // Bucketed upper bounds: p50 of uniform 1..1000 lands in [512, 1024].
  EXPECT_GE(snap.latency_p50_us, 256.0);
  EXPECT_LE(snap.latency_p99_us, 2048.0);
}

TEST(ServeMetricsTest, HugeLatencyLandsInLastBucket) {
  ServeMetrics metrics;
  metrics.RecordLatencyMicros(uint64_t{1} << 40);  // ~12 days
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_buckets[ServeMetrics::kNumLatencyBuckets - 1], 1u);
}

TEST(ServeMetricsTest, ConcurrentIncrementsAreExact) {
  ServeMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Increment(Counter::kRequestsTotal);
        metrics.RecordLatencyMicros(static_cast<uint64_t>(i % 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kRequestsTotal),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.latency_count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServeMetricsTest, SnapshotRendersTextAndJson) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kBatchedRequests, 3);
  metrics.RecordLatencyMicros(10);
  const auto snap = metrics.TakeSnapshot();
  const std::string text = snap.ToString();
  EXPECT_NE(text.find("batched_requests = 3"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"batched_requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_count\": 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace cascn::serve
