#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::serve {
namespace {

TEST(ServeMetricsTest, CountersStartAtZero) {
  ServeMetrics metrics;
  const auto snap = metrics.TakeSnapshot();
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    EXPECT_EQ(snap.counters[i], 0u);
  EXPECT_EQ(snap.latency_count, 0u);
  EXPECT_EQ(snap.latency_p50_us, 0.0);
}

TEST(ServeMetricsTest, IncrementAccumulates) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kRequestsTotal);
  metrics.Increment(Counter::kRequestsTotal, 4);
  metrics.Increment(Counter::kEvictions, 2);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kRequestsTotal), 5u);
  EXPECT_EQ(snap.counter(Counter::kEvictions), 2u);
  EXPECT_EQ(snap.counter(Counter::kPredictions), 0u);
}

TEST(ServeMetricsTest, LatencyPercentilesAreOrdered) {
  ServeMetrics metrics;
  for (uint64_t us = 1; us <= 1000; ++us) metrics.RecordLatencyMicros(us);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_count, 1000u);
  EXPECT_EQ(snap.latency_max_us, 1000u);
  EXPECT_GT(snap.latency_mean_us, 0.0);
  EXPECT_LE(snap.latency_p50_us, snap.latency_p90_us);
  EXPECT_LE(snap.latency_p90_us, snap.latency_p99_us);
  // Bucketed upper bounds: p50 of uniform 1..1000 lands in [512, 1024].
  EXPECT_GE(snap.latency_p50_us, 256.0);
  EXPECT_LE(snap.latency_p99_us, 2048.0);
}

TEST(ServeMetricsTest, HugeLatencyLandsInLastBucket) {
  ServeMetrics metrics;
  metrics.RecordLatencyMicros(uint64_t{1} << 40);  // ~12 days
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_buckets[ServeMetrics::kNumLatencyBuckets - 1], 1u);
}

TEST(ServeMetricsTest, ConcurrentIncrementsAreExact) {
  ServeMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Increment(Counter::kRequestsTotal);
        metrics.RecordLatencyMicros(static_cast<uint64_t>(i % 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kRequestsTotal),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.latency_count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServeMetricsTest, ZeroLatencyLandsInFirstBucket) {
  ServeMetrics metrics;
  metrics.RecordLatencyMicros(0);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_count, 1u);
  EXPECT_EQ(snap.latency_buckets[0], 1u);
  EXPECT_EQ(snap.latency_max_us, 0u);
  EXPECT_EQ(snap.latency_mean_us, 0.0);
  EXPECT_LE(snap.latency_p50_us, 2.0);
}

TEST(ServeMetricsTest, EmptyHistogramPercentilesAreZero) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kAppends);  // counters alone leave latency empty
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_count, 0u);
  EXPECT_EQ(snap.latency_p50_us, 0.0);
  EXPECT_EQ(snap.latency_p90_us, 0.0);
  EXPECT_EQ(snap.latency_p99_us, 0.0);
  EXPECT_EQ(snap.latency_mean_us, 0.0);
}

TEST(ServeMetricsTest, ValuesAboveLastBucketKeepExactMaxAndMean) {
  ServeMetrics metrics;
  const uint64_t huge = uint64_t{1} << 30;  // ~18 min, above the ~4 s bucket
  metrics.RecordLatencyMicros(huge);
  metrics.RecordLatencyMicros(huge);
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.latency_buckets[ServeMetrics::kNumLatencyBuckets - 1], 2u);
  EXPECT_EQ(snap.latency_max_us, huge);
  EXPECT_EQ(snap.latency_mean_us, static_cast<double>(huge));
}

TEST(ServeMetricsTest, ConcurrentIncrementAndSnapshot) {
  ServeMetrics metrics;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&metrics] {
      for (int i = 0; i < kPerWriter; ++i) {
        metrics.Increment(Counter::kPredictions);
        metrics.RecordLatencyMicros(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  std::thread reader([&metrics] {
    for (int i = 0; i < 200; ++i) {
      const auto snap = metrics.TakeSnapshot();
      EXPECT_LE(snap.counter(Counter::kPredictions),
                static_cast<uint64_t>(kWriters) * kPerWriter);
      EXPECT_LE(snap.latency_count,
                static_cast<uint64_t>(kWriters) * kPerWriter);
    }
  });
  for (auto& t : writers) t.join();
  reader.join();
  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kPredictions),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(snap.latency_count,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(ServeMetricsTest, ExportToRegistryBridgesCountersAndLatency) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kRequestsTotal, 9);
  metrics.Increment(Counter::kEvictions, 2);
  metrics.RecordLatencyMicros(100);
  obs::MetricsRegistry registry;
  ExportToRegistry(metrics.TakeSnapshot(), registry);
  EXPECT_EQ(registry.GetGauge("serve_requests_total").value(), 9.0);
  EXPECT_EQ(registry.GetGauge("serve_evictions").value(), 2.0);
  EXPECT_EQ(registry.GetGauge("serve_latency_count").value(), 1.0);
  EXPECT_EQ(registry.GetGauge("serve_latency_max_us").value(), 100.0);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"serve_requests_total\": 9"), std::string::npos);
}

TEST(ServeMetricsTest, LabeledExportKeepsShardsApartInOneRegistry) {
  ServeMetrics shard0, shard1;
  shard0.Increment(Counter::kRequestsTotal, 5);
  shard1.Increment(Counter::kRequestsTotal, 7);
  obs::MetricsRegistry registry;
  ExportToRegistry(shard0.TakeSnapshot(), registry, "shard=\"0\"");
  ExportToRegistry(shard1.TakeSnapshot(), registry, "shard=\"1\"");
  EXPECT_EQ(registry.GetGauge("serve_requests_total{shard=\"0\"}").value(),
            5.0);
  EXPECT_EQ(registry.GetGauge("serve_requests_total{shard=\"1\"}").value(),
            7.0);
  EXPECT_EQ(registry.GetGauge("serve_health{shard=\"0\"}").value(), 0.0);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("serve_requests_total{shard=\"0\"} = 5"),
            std::string::npos);
  // An unlabeled export still writes the plain names.
  ExportToRegistry(shard0.TakeSnapshot(), registry);
  EXPECT_EQ(registry.GetGauge("serve_requests_total").value(), 5.0);
}

TEST(ServeMetricsTest, SnapshotRendersTextAndJson) {
  ServeMetrics metrics;
  metrics.Increment(Counter::kBatchedRequests, 3);
  metrics.RecordLatencyMicros(10);
  const auto snap = metrics.TakeSnapshot();
  const std::string text = snap.ToString();
  EXPECT_NE(text.find("batched_requests = 3"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"batched_requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_count\": 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace cascn::serve
