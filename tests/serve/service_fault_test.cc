// Self-healing serving under injected faults: per-request deadlines expire
// cleanly, transient checkpoint-load failures are retried away, and a hot
// reload of a corrupt checkpoint leaves the old version serving with the
// service marked Degraded.

#include "serve/prediction_service.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "fault/fault.h"
#include "serve/checkpoint.h"

namespace cascn::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cascn_fault_svc_" + name + ".ckpt";
}

/// Writes a deterministic tiny CasCN checkpoint with the given calibration
/// offset (distinct offsets make reload visible in predictions).
void WriteTestCheckpoint(const std::string& path, double offset) {
  CascnConfig config = testing::TinyCascnConfig();
  CascnModel model(config);
  model.set_output_offset(offset);
  ASSERT_TRUE(SaveCascnCheckpoint(path, model).ok());
}

class ServiceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Get().Clear(); }
  void TearDown() override { fault::FaultRegistry::Get().Clear(); }
};

TEST_F(ServiceFaultTest, SlowPredictTripsDeadlines) {
  const std::string path = TempPath("deadline");
  WriteTestCheckpoint(path, 2.0);
  ServiceOptions options;
  options.num_workers = 1;
  options.sessions.observation_window = 60.0;
  options.default_deadline_ms = 5.0;
  auto service = PredictionService::CreateFromCheckpoint(options, path);
  ASSERT_TRUE(service.ok()) << service.status();
  // Build the session before arming the fault so setup cannot expire.
  ASSERT_TRUE(service.value()->CallCreate("s", 1).status.ok());
  ASSERT_TRUE(service.value()->CallAppend("s", 2, 0, 1.0).status.ok());
  ASSERT_TRUE(service.value()->CallAppend("s", 3, 0, 2.0).status.ok());

  // Every predict now stalls 50 ms inside the worker; with a 5 ms default
  // deadline, requests queued behind the first expire before execution.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultServeSlowPredict) +
                             "=always@50")
                  .ok());
  std::vector<std::future<ServeResponse>> pending;
  for (int i = 0; i < 8; ++i) {
    auto submitted = service.value()->SubmitPredict("s");
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    pending.push_back(std::move(submitted).value());
  }
  // A request that explicitly opts out of the deadline always executes.
  auto undeadlined = service.value()->SubmitPredict("s", /*deadline_ms=*/-1.0);
  ASSERT_TRUE(undeadlined.ok());

  int expired = 0;
  for (auto& future : pending) {
    const ServeResponse response = future.get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded)
          << response.status;
      EXPECT_NE(response.status.message().find("deadline"), std::string::npos);
      ++expired;
    }
  }
  EXPECT_GT(expired, 0);
  const ServeResponse survivor = undeadlined.value().get();
  EXPECT_TRUE(survivor.status.ok()) << survivor.status;
  EXPECT_TRUE(std::isfinite(survivor.log_prediction));

  fault::FaultRegistry::Get().Clear();
  const auto snap = service.value()->metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kDeadlineExceeded),
            static_cast<uint64_t>(expired));
  service.value()->Shutdown();
  std::remove(path.c_str());
}

TEST_F(ServiceFaultTest, TransientLoadFailureIsRetriedAway) {
  const std::string path = TempPath("retry");
  WriteTestCheckpoint(path, 2.0);
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultCheckpointLoadFail) + "=nth:1")
                  .ok());
  ServiceOptions options;
  options.num_workers = 2;
  options.sessions.observation_window = 60.0;
  options.load_retries = 2;
  options.load_retry_backoff_ms = 1.0;
  auto service = PredictionService::CreateFromCheckpoint(options, path);
  fault::FaultRegistry::Get().Clear();
  // The first load attempt failed (injected), the retry healed it.
  ASSERT_TRUE(service.ok()) << service.status();
  EXPECT_EQ(service.value()->metrics().TakeSnapshot().counter(
                Counter::kLoadRetries),
            1u);
  EXPECT_EQ(service.value()->health(), Health::kHealthy);
  EXPECT_TRUE(service.value()->CallCreate("s", 1).status.ok());
  service.value()->Shutdown();
  std::remove(path.c_str());
}

TEST_F(ServiceFaultTest, RetriesDoNotMaskPersistentFailure) {
  ServiceOptions options;
  options.num_workers = 1;
  options.load_retries = 2;
  options.load_retry_backoff_ms = 1.0;
  auto service = PredictionService::CreateFromCheckpoint(
      options, "/nonexistent/path/model.ckpt");
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kIoError);
}

TEST_F(ServiceFaultTest, ReloadOfCorruptCheckpointKeepsOldVersionServing) {
  const std::string good = TempPath("reload_good");
  const std::string better = TempPath("reload_better");
  const std::string corrupt = TempPath("reload_corrupt");
  WriteTestCheckpoint(good, 2.0);
  WriteTestCheckpoint(better, 5.0);
  {
    std::ofstream out(corrupt, std::ios::binary | std::ios::trunc);
    out << "garbage, not a checkpoint";
  }

  ServiceOptions options;
  options.num_workers = 2;
  options.sessions.observation_window = 60.0;
  auto service = PredictionService::CreateFromCheckpoint(options, good);
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE(service.value()->CallCreate("s", 1).status.ok());
  ASSERT_TRUE(service.value()->CallAppend("s", 2, 0, 1.0).status.ok());
  const ServeResponse before = service.value()->CallPredict("s");
  ASSERT_TRUE(before.status.ok()) << before.status;

  // Reloading a corrupt checkpoint must fail, degrade health, and leave the
  // old replicas serving identical predictions.
  const Status bad = service.value()->ReloadCheckpoint(corrupt);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(service.value()->health(), Health::kDegraded);
  const ServeResponse still = service.value()->CallPredict("s");
  ASSERT_TRUE(still.status.ok()) << still.status;
  EXPECT_DOUBLE_EQ(still.log_prediction, before.log_prediction);

  // A good reload swaps versions, invalidates cached predictions, and
  // restores health.
  ASSERT_TRUE(service.value()->ReloadCheckpoint(better).ok());
  EXPECT_EQ(service.value()->health(), Health::kHealthy);
  const ServeResponse after = service.value()->CallPredict("s");
  ASSERT_TRUE(after.status.ok()) << after.status;
  // Same session, new calibration offset: the cached prediction must not
  // have survived the swap.
  EXPECT_DOUBLE_EQ(after.log_prediction, before.log_prediction + 3.0);

  const auto snap = service.value()->metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter(Counter::kReloads), 1u);
  EXPECT_EQ(snap.counter(Counter::kReloadFailures), 1u);
  EXPECT_EQ(snap.health, Health::kHealthy);
  service.value()->Shutdown();
  std::remove(good.c_str());
  std::remove(better.c_str());
  std::remove(corrupt.c_str());
}

TEST_F(ServiceFaultTest, ReloadFailureIsCountedInRetries) {
  const std::string path = TempPath("reload_retry");
  WriteTestCheckpoint(path, 2.0);
  ServiceOptions options;
  options.num_workers = 1;
  options.load_retries = 1;
  options.load_retry_backoff_ms = 1.0;
  options.sessions.observation_window = 60.0;
  auto service = PredictionService::CreateFromCheckpoint(options, path);
  ASSERT_TRUE(service.ok()) << service.status();

  // Reload hits a transient failure on its first load; the retry heals it.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultCheckpointLoadFail) + "=nth:1")
                  .ok());
  EXPECT_TRUE(service.value()->ReloadCheckpoint(path).ok());
  fault::FaultRegistry::Get().Clear();
  const auto snap = service.value()->metrics().TakeSnapshot();
  EXPECT_GE(snap.counter(Counter::kLoadRetries), 1u);
  EXPECT_EQ(snap.counter(Counter::kReloads), 1u);
  EXPECT_EQ(service.value()->health(), Health::kHealthy);
  service.value()->Shutdown();
  std::remove(path.c_str());
}

TEST_F(ServiceFaultTest, HealthNamesAreStable) {
  EXPECT_EQ(HealthName(Health::kHealthy), "healthy");
  EXPECT_EQ(HealthName(Health::kDegraded), "degraded");
  EXPECT_EQ(HealthName(Health::kUnhealthy), "unhealthy");
}

}  // namespace
}  // namespace cascn::serve
