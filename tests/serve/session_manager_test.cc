#include "serve/session_manager.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/cascn_model.h"
#include "core/streaming_predictor.h"

namespace cascn::serve {
namespace {

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CascnConfig config = testing::TinyCascnConfig();
    model_ = std::make_unique<CascnModel>(config);
    model_->set_output_offset(2.0);
  }

  SessionManagerOptions Options(size_t capacity = 64) {
    SessionManagerOptions options;
    options.capacity = capacity;
    options.observation_window = 60.0;
    return options;
  }

  std::unique_ptr<CascnModel> model_;
};

TEST_F(SessionManagerTest, CreateAppendPredictClose) {
  ServeMetrics metrics;
  SessionManager manager(Options(), &metrics);
  ASSERT_TRUE(manager.Create("s1", /*root_user=*/7).ok());
  EXPECT_EQ(manager.size(), 1u);
  ASSERT_TRUE(manager.Append("s1", 8, 0, 5.0).ok());
  ASSERT_TRUE(manager.Append("s1", 9, 1, 6.5).ok());
  EXPECT_EQ(manager.SessionSize("s1").value(), 3);

  auto prediction = manager.PredictLog("s1", *model_);
  ASSERT_TRUE(prediction.ok());
  EXPECT_TRUE(std::isfinite(prediction.value()));

  ASSERT_TRUE(manager.Close("s1").ok());
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_FALSE(manager.PredictLog("s1", *model_).ok());
}

TEST_F(SessionManagerTest, ValidationMatchesStreamingPredictor) {
  SessionManager manager(Options());
  EXPECT_EQ(manager.Append("nope", 1, 0, 1.0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.Create("s", 1).ok());
  EXPECT_EQ(manager.Create("s", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(manager.Append("s", 2, 5, 1.0).ok());   // unknown parent
  EXPECT_FALSE(manager.Append("s", 2, 0, 70.0).ok());  // outside window
  ASSERT_TRUE(manager.Append("s", 2, 0, 10.0).ok());
  EXPECT_FALSE(manager.Append("s", 3, 0, 5.0).ok());  // time regression
  EXPECT_EQ(manager.Close("gone").code(), StatusCode::kNotFound);
}

TEST_F(SessionManagerTest, AgreesWithStreamingPredictor) {
  SessionManager manager(Options());
  StreamingPredictor predictor(model_.get(), 60.0);

  predictor.Start(3);
  ASSERT_TRUE(manager.Create("s", 3).ok());
  for (int i = 0; i < 6; ++i) {
    const double time = 2.0 * (i + 1);
    ASSERT_TRUE(predictor.AddAdoption(10 + i, i / 2, time).ok());
    ASSERT_TRUE(manager.Append("s", 10 + i, i / 2, time).ok());
  }
  const auto managed = manager.PredictLog("s", *model_);
  ASSERT_TRUE(managed.ok());
  EXPECT_NEAR(managed.value(), predictor.CurrentPredictionLog(), 1e-12);
}

TEST_F(SessionManagerTest, PredictionCachedUntilAppend) {
  ServeMetrics metrics;
  SessionManager manager(Options(), &metrics);
  ASSERT_TRUE(manager.Create("s", 1).ok());
  ASSERT_TRUE(manager.Append("s", 2, 0, 1.0).ok());

  const double first = manager.PredictLog("s", *model_).value();
  const double second = manager.PredictLog("s", *model_).value();
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kPredictionCacheHits), 1u);

  ASSERT_TRUE(manager.Append("s", 3, 0, 2.0).ok());
  manager.PredictLog("s", *model_).value();
  // The append invalidated the cache: still exactly one hit.
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kPredictionCacheHits), 1u);
}

TEST_F(SessionManagerTest, EvictsLeastRecentlyUsedIdleSession) {
  ServeMetrics metrics;
  SessionManager manager(Options(/*capacity=*/2), &metrics);
  ASSERT_TRUE(manager.Create("a", 1).ok());
  ASSERT_TRUE(manager.Create("b", 2).ok());
  // Touch "a" so "b" becomes least recently used.
  ASSERT_TRUE(manager.Append("a", 3, 0, 1.0).ok());
  ASSERT_TRUE(manager.Create("c", 3).ok());
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_TRUE(manager.SessionSize("a").ok());
  EXPECT_FALSE(manager.SessionSize("b").ok());  // evicted
  EXPECT_TRUE(manager.SessionSize("c").ok());
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kEvictions), 1u);
}

TEST_F(SessionManagerTest, CapacityOneRecyclesTheSlot) {
  SessionManager manager(Options(/*capacity=*/1));
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(manager.Create("s" + std::to_string(i), i).ok());
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_TRUE(manager.SessionSize("s4").ok());
}

}  // namespace
}  // namespace cascn::serve
