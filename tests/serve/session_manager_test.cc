#include "serve/session_manager.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/cascn_model.h"
#include "core/streaming_predictor.h"

namespace cascn::serve {
namespace {

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CascnConfig config = testing::TinyCascnConfig();
    model_ = std::make_unique<CascnModel>(config);
    model_->set_output_offset(2.0);
  }

  SessionManagerOptions Options(size_t capacity = 64) {
    SessionManagerOptions options;
    options.capacity = capacity;
    options.observation_window = 60.0;
    return options;
  }

  std::unique_ptr<CascnModel> model_;
};

TEST_F(SessionManagerTest, CreateAppendPredictClose) {
  ServeMetrics metrics;
  SessionManager manager(Options(), &metrics);
  ASSERT_TRUE(manager.Create("s1", /*root_user=*/7).ok());
  EXPECT_EQ(manager.size(), 1u);
  ASSERT_TRUE(manager.Append("s1", 8, 0, 5.0).ok());
  ASSERT_TRUE(manager.Append("s1", 9, 1, 6.5).ok());
  EXPECT_EQ(manager.SessionSize("s1").value(), 3);

  auto prediction = manager.PredictLog("s1", *model_);
  ASSERT_TRUE(prediction.ok());
  EXPECT_TRUE(std::isfinite(prediction.value()));

  ASSERT_TRUE(manager.Close("s1").ok());
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_FALSE(manager.PredictLog("s1", *model_).ok());
}

TEST_F(SessionManagerTest, ValidationMatchesStreamingPredictor) {
  SessionManager manager(Options());
  EXPECT_EQ(manager.Append("nope", 1, 0, 1.0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.Create("s", 1).ok());
  EXPECT_EQ(manager.Create("s", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(manager.Append("s", 2, 5, 1.0).ok());   // unknown parent
  EXPECT_FALSE(manager.Append("s", 2, 0, 70.0).ok());  // outside window
  ASSERT_TRUE(manager.Append("s", 2, 0, 10.0).ok());
  EXPECT_FALSE(manager.Append("s", 3, 0, 5.0).ok());  // time regression
  EXPECT_EQ(manager.Close("gone").code(), StatusCode::kNotFound);
}

TEST_F(SessionManagerTest, AgreesWithStreamingPredictor) {
  SessionManager manager(Options());
  StreamingPredictor predictor(model_.get(), 60.0);

  predictor.Start(3);
  ASSERT_TRUE(manager.Create("s", 3).ok());
  for (int i = 0; i < 6; ++i) {
    const double time = 2.0 * (i + 1);
    ASSERT_TRUE(predictor.AddAdoption(10 + i, i / 2, time).ok());
    ASSERT_TRUE(manager.Append("s", 10 + i, i / 2, time).ok());
  }
  const auto managed = manager.PredictLog("s", *model_);
  ASSERT_TRUE(managed.ok());
  EXPECT_NEAR(managed.value(), predictor.CurrentPredictionLog(), 1e-12);
}

TEST_F(SessionManagerTest, PredictionCachedUntilAppend) {
  ServeMetrics metrics;
  SessionManager manager(Options(), &metrics);
  ASSERT_TRUE(manager.Create("s", 1).ok());
  ASSERT_TRUE(manager.Append("s", 2, 0, 1.0).ok());

  const double first = manager.PredictLog("s", *model_).value();
  const double second = manager.PredictLog("s", *model_).value();
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kPredictionCacheHits), 1u);

  ASSERT_TRUE(manager.Append("s", 3, 0, 2.0).ok());
  manager.PredictLog("s", *model_).value();
  // The append invalidated the cache: still exactly one hit.
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kPredictionCacheHits), 1u);
}

TEST_F(SessionManagerTest, EvictsLeastRecentlyUsedIdleSession) {
  ServeMetrics metrics;
  SessionManager manager(Options(/*capacity=*/2), &metrics);
  ASSERT_TRUE(manager.Create("a", 1).ok());
  ASSERT_TRUE(manager.Create("b", 2).ok());
  // Touch "a" so "b" becomes least recently used.
  ASSERT_TRUE(manager.Append("a", 3, 0, 1.0).ok());
  ASSERT_TRUE(manager.Create("c", 3).ok());
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_TRUE(manager.SessionSize("a").ok());
  EXPECT_FALSE(manager.SessionSize("b").ok());  // evicted
  EXPECT_TRUE(manager.SessionSize("c").ok());
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kEvictions), 1u);
}

TEST_F(SessionManagerTest, CapacityOneRecyclesTheSlot) {
  SessionManager manager(Options(/*capacity=*/1));
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(manager.Create("s" + std::to_string(i), i).ok());
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_TRUE(manager.SessionSize("s4").ok());
}

TEST_F(SessionManagerTest, SerializeDeserializeRoundTripsPredictions) {
  SessionManager source(Options());
  ASSERT_TRUE(source.Create("s", 3).ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(source.Append("s", 10 + i, i / 2, 2.0 * (i + 1)).ok());
  const double original = source.PredictLog("s", *model_).value();

  Result<std::string> blob = source.Serialize("s");
  ASSERT_TRUE(blob.ok()) << blob.status();
  // Serialize does not disturb the source session.
  EXPECT_EQ(source.SessionSize("s").value(), 6);

  SessionManager target(Options());
  ASSERT_TRUE(target.Deserialize("s", blob.value()).ok());
  EXPECT_EQ(target.SessionSize("s").value(), 6);
  // The rebuilt session keeps predicting exactly where the original left
  // off — the bit-identity the shard handoff relies on.
  EXPECT_EQ(target.PredictLog("s", *model_).value(), original);
  // And keeps accepting appends with full validation state.
  ASSERT_TRUE(target.Append("s", 99, 0, 20.0).ok());
  EXPECT_FALSE(target.Append("s", 98, 0, 1.0).ok());  // time regression
}

TEST_F(SessionManagerTest, DeserializeRejectsDuplicatesAndCorruptBlobs) {
  SessionManager manager(Options());
  ASSERT_TRUE(manager.Create("s", 1).ok());
  ASSERT_TRUE(manager.Append("s", 2, 0, 1.0).ok());
  const std::string blob = manager.Serialize("s").value();
  EXPECT_EQ(manager.Deserialize("s", blob).code(),
            StatusCode::kInvalidArgument);  // id already live
  std::string torn = blob.substr(0, blob.size() / 2);
  EXPECT_EQ(manager.Deserialize("t", torn).code(), StatusCode::kIoError);
  std::string corrupt = blob;
  corrupt[blob.size() / 2] ^= 0x20;
  EXPECT_EQ(manager.Deserialize("t", corrupt).code(), StatusCode::kIoError);
  EXPECT_FALSE(manager.SessionSize("t").ok());  // nothing half-built
}

TEST_F(SessionManagerTest, ExtractRemovesAndBlobRebuildsElsewhere) {
  SessionManager manager(Options());
  ASSERT_TRUE(manager.Create("s", 1).ok());
  ASSERT_TRUE(manager.Append("s", 2, 0, 1.0).ok());
  const double original = manager.PredictLog("s", *model_).value();
  Result<std::string> blob = manager.Extract("s");
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_EQ(manager.Append("s", 3, 0, 2.0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.Deserialize("s", blob.value()).ok());
  EXPECT_EQ(manager.PredictLog("s", *model_).value(), original);
}

TEST_F(SessionManagerTest, SpillRestoresEvictedSessionTransparently) {
  ServeMetrics metrics;
  SessionManagerOptions options = Options(/*capacity=*/2);
  options.spill_capacity = 8;
  SessionManager manager(options, &metrics);
  ASSERT_TRUE(manager.Create("a", 1).ok());
  ASSERT_TRUE(manager.Append("a", 2, 0, 1.0).ok());
  ASSERT_TRUE(manager.Create("b", 2).ok());
  ASSERT_TRUE(manager.Create("c", 3).ok());  // evicts + spills "a"
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kSpilled), 1u);
  // The next touch restores "a" with its history intact.
  EXPECT_EQ(manager.SessionSize("a").value(), 2);
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kSpillRestores), 1u);
  ASSERT_TRUE(manager.Append("a", 4, 0, 2.0).ok());
}

TEST_F(SessionManagerTest, SpillOverflowDropsAreCountedAndReported) {
  ServeMetrics metrics;
  SessionManagerOptions options = Options(/*capacity=*/1);
  options.spill_capacity = 1;
  std::vector<std::string> dropped;
  options.on_spill_drop = [&dropped](const std::string& id) {
    dropped.push_back(id);
  };
  SessionManager manager(options, &metrics);
  // capacity 1 + spill 1: the third create pushes "a"'s blob off the end
  // of the spill LRU — capacity-driven session loss, which must be
  // observable rather than silent.
  ASSERT_TRUE(manager.Create("a", 1).ok());
  ASSERT_TRUE(manager.Create("b", 2).ok());  // evicts+spills "a"
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kSpillDropped), 0u);
  ASSERT_TRUE(manager.Create("c", 3).ok());  // spills "b", drops "a"
  EXPECT_EQ(metrics.TakeSnapshot().counter(Counter::kSpillDropped), 1u);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], "a");
  EXPECT_EQ(manager.Append("a", 4, 0, 1.0).code(), StatusCode::kNotFound);
  // "b" is still spilled and restorable.
  EXPECT_EQ(manager.SessionSize("b").value(), 1);
}

TEST_F(SessionManagerTest, SessionIdsCoverLiveAndSpilledSessions) {
  SessionManagerOptions options = Options(/*capacity=*/2);
  options.spill_capacity = 8;
  SessionManager manager(options);
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(manager.Create("s" + std::to_string(i), i).ok());
  EXPECT_EQ(manager.size(), 2u);  // three were evicted into the spill table
  std::vector<std::string> ids = manager.SessionIds();
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 5u);  // the drain loop must see every one of them
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ids[i], "s" + std::to_string(i));
  // Extract works on a spilled id too (restore + remove).
  EXPECT_TRUE(manager.Extract(ids[0]).ok());
  EXPECT_EQ(manager.SessionIds().size(), 4u);
}

}  // namespace
}  // namespace cascn::serve
