// End-to-end stall drill: a slow-shard fault wedges one shard's worker
// with requests queued behind it, the watchdog declares exactly one stall
// episode, shard and cluster health degrade, a full flight-recorder dump
// set lands on disk — and when the fault clears, recovery fires, health
// restores, and detection re-arms for the next episode.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "cluster/shard_router.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/checkpoint.h"

namespace cascn::cluster {
namespace {

using serve::Health;
using serve::ServeResponse;

class ClusterWatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Get().Clear();
    checkpoint_ = ::testing::TempDir() + "watchdog_ckpt.bin";
    CascnModel model(testing::TinyCascnConfig());
    model.set_output_offset(2.0);
    ASSERT_TRUE(serve::SaveCascnCheckpoint(checkpoint_, model).ok());
  }

  void TearDown() override {
    fault::FaultRegistry::Get().Clear();
    obs::Tracer::Get().DisableSampling();  // Watchdog::Start() enables it
    std::remove(checkpoint_.c_str());
  }

  static bool WaitFor(const std::function<bool()>& done, double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  std::string checkpoint_;
};

TEST_F(ClusterWatchdogTest, SlowShardStallDegradesDumpsAndRecovers) {
  ShardRouterOptions options;
  options.num_shards = 2;
  options.shard.num_workers = 1;
  // One request per micro-batch, so the pile-up behind the wedged predict
  // stays IN the queue (busy) instead of being drained into one batch.
  options.shard.max_batch = 1;
  options.shard.sessions.observation_window = 60.0;
  // Fresh dir per run: dumps APPEND, so stale files from an earlier run
  // would confuse the seq-00001 assertions below.
  options.flight_dir = ::testing::TempDir() + "watchdog_flight";
  CASCN_CHECK(std::system(("rm -rf " + options.flight_dir + " && mkdir -p " +
                           options.flight_dir)
                              .c_str()) == 0);
  auto router = ShardRouter::CreateFromCheckpoint(options, checkpoint_);
  ASSERT_TRUE(router.ok()) << router.status();

  // One session, so every request lands on one known shard.
  ASSERT_TRUE((*router)->CallCreate("acme", "sess", 1).status.ok());
  ASSERT_TRUE((*router)->CallAppend("acme", "sess", 2, 0, 1.0).status.ok());
  const int victim = (*router)->ShardOf("sess");
  ASSERT_GE(victim, 0);

  obs::WatchdogOptions watchdog_options;
  watchdog_options.poll_ms = 5.0;
  watchdog_options.stall_ms = 50.0;
  obs::Watchdog watchdog(watchdog_options);
  (*router)->RegisterWatchdogTargets(watchdog);
  watchdog.Start();

  // Wedge the victim's single worker for 800 ms per predict and pile
  // requests up behind it: progress frozen + queue busy = stall.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(victim) + "=always@800")
                  .ok());
  std::vector<std::future<ServeResponse>> pending;
  for (int i = 0; i < 3; ++i) {
    auto submitted = (*router)->SubmitPredict("acme", "sess");
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    pending.push_back(std::move(submitted).value());
  }

  ASSERT_TRUE(WaitFor([&] { return watchdog.stalls_total() >= 1; }, 10.0))
      << "watchdog never declared the stall";
  // Latched: the persisting stall must not re-fire while the worker is
  // still wedged.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(watchdog.stalls_total(), 1u);

  // The stall degraded the shard (and with it the cluster).
  serve::PredictionService* shard = (*router)->shard(victim);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->health(), Health::kDegraded);
  EXPECT_EQ((*router)->ClusterHealth(), Health::kDegraded);

  // The on_stall hook wrote a sequenced on-demand dump set.
  EXPECT_GE((*router)->on_demand_dump_count(), 1u);
  const std::string dump_path = StrFormat(
      "%s/flight_shard_%d.00001.jsonl", options.flight_dir.c_str(), victim);
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << dump_path;
  std::stringstream buffer;
  buffer << dump.rdbuf();
  EXPECT_NE(buffer.str().find("watchdog_stall"), std::string::npos);

  // Clear the fault; the wedged predict finishes, queued ones drain fast,
  // and the heartbeat moving again fires recovery + restores health.
  fault::FaultRegistry::Get().Clear();
  for (auto& future : pending) future.get();
  ASSERT_TRUE(WaitFor([&] { return watchdog.recoveries_total() >= 1; }, 10.0))
      << "watchdog never observed the recovery";
  ASSERT_TRUE(WaitFor([&] { return shard->health() == Health::kHealthy; },
                      10.0))
      << "recovery must restore the health the watchdog took away";
  EXPECT_EQ(watchdog.stalls_total(), 1u) << "no spurious second episode";

  // Re-armed: a fresh wedge is a NEW episode.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(victim) + "=always@800")
                  .ok());
  std::vector<std::future<ServeResponse>> second;
  for (int i = 0; i < 3; ++i) {
    auto submitted = (*router)->SubmitPredict("acme", "sess");
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    second.push_back(std::move(submitted).value());
  }
  ASSERT_TRUE(WaitFor([&] { return watchdog.stalls_total() >= 2; }, 10.0))
      << "detection must re-arm after recovery";
  fault::FaultRegistry::Get().Clear();
  for (auto& future : second) future.get();
  watchdog.Stop();
}

TEST_F(ClusterWatchdogTest, IdleClusterNeverStalls) {
  ShardRouterOptions options;
  options.num_shards = 2;
  options.shard.num_workers = 1;
  options.shard.sessions.observation_window = 60.0;
  auto router = ShardRouter::CreateFromCheckpoint(options, checkpoint_);
  ASSERT_TRUE(router.ok()) << router.status();

  obs::WatchdogOptions watchdog_options;
  watchdog_options.poll_ms = 2.0;
  watchdog_options.stall_ms = 10.0;
  obs::Watchdog watchdog(watchdog_options);
  (*router)->RegisterWatchdogTargets(watchdog);
  watchdog.Start();
  // Far longer than stall_ms with zero traffic: empty queues re-arm
  // continuously, so nothing may fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  watchdog.Stop();
  EXPECT_EQ(watchdog.stalls_total(), 0u);
  EXPECT_EQ((*router)->ClusterHealth(), Health::kHealthy);
}

}  // namespace
}  // namespace cascn::cluster
