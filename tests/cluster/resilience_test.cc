// Resilience control plane: circuit breakers, the retry budget, hedged
// requests, the stale-read degraded mode, and the shard supervisor — plus
// the acceptance bar, a deterministic closed-loop drill (injected clock +
// fault seed) proving crash -> breaker -> budgeted retries -> supervised
// restart -> probation -> bit-identical predictions.

#include "cluster/resilience.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "cluster/shard_router.h"
#include "common/logging.h"
#include "core/cascn_model.h"
#include "fault/fault.h"
#include "serve/checkpoint.h"

namespace cascn::cluster {
namespace {

using serve::Health;
using serve::PredictionService;
using serve::ServeResponse;
using TimePoint = std::chrono::steady_clock::time_point;

/// Fake-clock helper: an instant `seconds` past an arbitrary (positive)
/// epoch, so window-horizon arithmetic never goes negative.
TimePoint At(double seconds) {
  return TimePoint{} + std::chrono::duration_cast<TimePoint::duration>(
                           std::chrono::duration<double>(5000.0 + seconds));
}

BreakerOptions TightBreaker() {
  BreakerOptions options;
  options.window_seconds = 10.0;
  options.min_requests = 4;
  options.failure_rate_threshold = 0.5;
  options.open_seconds = 2.0;
  options.probe_requests = 3;
  return options;
}

// ---------------------------------------------------------------------------
// CircuitBreaker unit tests (pure fake clock).

TEST(CircuitBreakerTest, TripsAtThresholdThenCoolsToHalfOpen) {
  CircuitBreaker breaker(TightBreaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Three failures against one success: total 4 (= min_requests), rate 0.75.
  breaker.RecordSuccess(At(0.0));
  breaker.RecordFailure(At(0.0));
  breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed) << "below min_requests";
  breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Open rejects until the cooldown elapses...
  EXPECT_FALSE(breaker.AllowRequest(At(1.0)));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // ...then the first allowed request IS the transition to half-open.
  EXPECT_TRUE(breaker.AllowRequest(At(2.5)));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, ProbeSuccessesCloseAndProbeFailureReopens) {
  CircuitBreaker breaker(TightBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(0.0));
  ASSERT_TRUE(breaker.AllowRequest(At(3.0)));  // -> half-open
  breaker.RecordSuccess(At(3.0));
  breaker.RecordSuccess(At(3.0));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen) << "2 of 3 probes";
  breaker.RecordSuccess(At(3.0));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Re-trip, probe again, and fail one probe: reopen immediately.
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(4.0));
  ASSERT_TRUE(breaker.AllowRequest(At(7.0)));
  breaker.RecordSuccess(At(7.0));
  breaker.RecordFailure(At(7.0));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(At(8.0)));
}

TEST(CircuitBreakerTest, SparseFailuresOnBusyShardNeverTrip) {
  CircuitBreaker breaker(TightBreaker());
  // 49% failures at high volume stays closed (threshold is 50%): the
  // successes land first, so the rolling rate peaks at 49/100.
  for (int i = 0; i < 51; ++i) breaker.RecordSuccess(At(0.0));
  for (int i = 0; i < 49; ++i) breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_NEAR(breaker.FailureRate(At(0.0)), 0.49, 1e-12);
}

TEST(CircuitBreakerTest, RollingWindowForgetsOldFailures) {
  CircuitBreaker breaker(TightBreaker());
  breaker.RecordFailure(At(0.0));
  breaker.RecordFailure(At(0.0));
  breaker.RecordFailure(At(0.0));
  // 11 s later the window (10 s) has dropped the burst: one more failure is
  // 1 of 1 — below min_requests, so the breaker holds closed.
  breaker.RecordFailure(At(11.0));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_NEAR(breaker.FailureRate(At(11.0)), 1.0, 1e-12);
}

TEST(CircuitBreakerTest, TransitionHookSeesEveryFlipInOrder) {
  std::vector<std::pair<BreakerState, BreakerState>> flips;
  CircuitBreaker breaker(TightBreaker(),
                         [&flips](BreakerState from, BreakerState to) {
                           flips.emplace_back(from, to);
                         });
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(0.0));
  ASSERT_TRUE(breaker.AllowRequest(At(3.0)));
  for (int i = 0; i < 3; ++i) breaker.RecordSuccess(At(3.0));
  ASSERT_EQ(flips.size(), 3u);
  EXPECT_EQ(flips[0], std::make_pair(BreakerState::kClosed,
                                     BreakerState::kOpen));
  EXPECT_EQ(flips[1], std::make_pair(BreakerState::kOpen,
                                     BreakerState::kHalfOpen));
  EXPECT_EQ(flips[2], std::make_pair(BreakerState::kHalfOpen,
                                     BreakerState::kClosed));
}

TEST(CircuitBreakerTest, BeginProbationForcesHalfOpenFromAnyState) {
  CircuitBreaker breaker(TightBreaker());
  breaker.BeginProbation(At(0.0), /*probe_requests=*/2);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(At(0.0)));  // probation traffic admits
  breaker.RecordSuccess(At(0.0));
  breaker.RecordSuccess(At(0.0));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// RetryBudget unit tests (no clock at all: traffic-fed).

TEST(RetryBudgetTest, SpendsDownThenRefillsFromTrafficCappedAtCap) {
  RetryBudgetOptions options;
  options.ratio = 0.25;  // power of two: the refill sum is float-exact
  options.cap = 2.0;
  RetryBudget budget(options);
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);  // starts full
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire()) << "dry bucket must refuse";
  // 3 requests refill 0.75 tokens — still below the 1.0 spend quantum.
  for (int i = 0; i < 3; ++i) budget.OnRequest();
  EXPECT_FALSE(budget.TryAcquire());
  budget.OnRequest();
  EXPECT_TRUE(budget.TryAcquire());
  // A flood of traffic never over-fills past the cap.
  for (int i = 0; i < 1000; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

// ---------------------------------------------------------------------------
// Retry backoff: deterministic from the seed, bounded by [0.5, 1.0] x the
// capped exponential.

TEST(ResilienceControlTest, RetryBackoffIsSeedDeterministicAndBounded) {
  ResilienceOptions options;
  options.enabled = true;
  options.retry_base_backoff_ms = 1.0;
  options.retry_max_backoff_ms = 50.0;
  ResilienceControl a(options, /*seed=*/42);
  ResilienceControl b(options, /*seed=*/42);
  ResilienceControl c(options, /*seed=*/43);
  bool any_differs = false;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double ms_a = a.RetryBackoffMs(attempt);
    const double ms_b = b.RetryBackoffMs(attempt);
    EXPECT_DOUBLE_EQ(ms_a, ms_b) << "same seed, attempt " << attempt;
    const double base = std::min(50.0, 1.0 * std::pow(2.0, attempt));
    EXPECT_GE(ms_a, 0.5 * base) << attempt;
    EXPECT_LE(ms_a, 1.0 * base) << attempt;
    if (ms_a != c.RetryBackoffMs(attempt)) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "distinct seeds must give distinct jitter";
}

// ---------------------------------------------------------------------------
// StaleCache unit tests.

TEST(StaleCacheTest, FingerprintIsOrderDependentAndResetByRecreate) {
  StaleCache cache{StaleCacheOptions{}};
  cache.OnCreate("s", 7);
  const uint64_t fp0 = cache.FingerprintOf("s");
  ASSERT_NE(fp0, 0u);
  cache.OnAppend("s", 1, 0, 1.0);
  cache.OnAppend("s", 2, 1, 2.0);
  const uint64_t fp12 = cache.FingerprintOf("s");

  cache.OnCreate("s", 7);  // re-create restarts the chain
  EXPECT_EQ(cache.FingerprintOf("s"), fp0);
  cache.OnAppend("s", 2, 1, 2.0);  // same events, swapped order
  cache.OnAppend("s", 1, 0, 1.0);
  EXPECT_NE(cache.FingerprintOf("s"), fp12)
      << "prefix fingerprint must be order-dependent";
}

TEST(StaleCacheTest, LookupAgeStampsAndMaxAgeExpires) {
  StaleCacheOptions options;
  options.max_age_ms = 100.0;
  StaleCache cache(options);
  cache.OnCreate("s", 1);
  EXPECT_FALSE(cache.Lookup("s", At(0.0)).has_value()) << "nothing stored";
  cache.StorePrediction("s", cache.FingerprintOf("s"), 1.5, 4.0, At(0.0));
  const auto fresh = cache.Lookup("s", At(0.05));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_DOUBLE_EQ(fresh->log_prediction, 1.5);
  EXPECT_DOUBLE_EQ(fresh->count_prediction, 4.0);
  EXPECT_NEAR(fresh->age_ms, 50.0, 1e-6);
  // Past max_age_ms the answer is too stale even for degraded mode.
  EXPECT_FALSE(cache.Lookup("s", At(0.2)).has_value());
}

TEST(StaleCacheTest, RecreateKeepsLastGoodPredictionAndCloseDropsIt) {
  StaleCache cache{StaleCacheOptions{}};
  cache.OnCreate("s", 1);
  cache.StorePrediction("s", cache.FingerprintOf("s"), 2.5, 8.0, At(0.0));
  cache.OnCreate("s", 1);  // new cascade, but the last-good answer survives
  const auto answer = cache.Lookup("s", At(1.0));
  ASSERT_TRUE(answer.has_value());
  EXPECT_DOUBLE_EQ(answer->log_prediction, 2.5);
  cache.OnClose("s");
  EXPECT_FALSE(cache.Lookup("s", At(1.0)).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(StaleCacheTest, LruEvictsColdSessionsAtCapacity) {
  StaleCacheOptions options;
  options.capacity = 2;
  StaleCache cache(options);
  cache.OnCreate("a", 1);
  cache.OnCreate("b", 2);
  cache.OnAppend("a", 3, 0, 1.0);  // touch "a": "b" is now the LRU victim
  cache.OnCreate("c", 3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.FingerprintOf("a"), 0u);
  EXPECT_EQ(cache.FingerprintOf("b"), 0u) << "cold session must be evicted";
  EXPECT_NE(cache.FingerprintOf("c"), 0u);
}

TEST(StaleCacheTest, ReplayCapStopsMirroringButKeepsFingerprinting) {
  StaleCacheOptions options;
  options.max_replay_events = 3;
  StaleCache cache(options);
  cache.OnCreate("s", 1);
  for (int e = 0; e < 3; ++e) cache.OnAppend("s", 10 + e, e, 1.0 + e);
  ASSERT_TRUE(cache.ReplayLogOf("s").has_value());
  EXPECT_EQ(cache.ReplayLogOf("s")->events.size(), 3u);
  const uint64_t fp3 = cache.FingerprintOf("s");
  cache.OnAppend("s", 99, 0, 9.0);  // outgrows the cap
  EXPECT_FALSE(cache.ReplayLogOf("s").has_value())
      << "an over-long cascade must not be hedge-replayed";
  EXPECT_NE(cache.FingerprintOf("s"), fp3)
      << "staleness keying must keep tracking the prefix";
}

TEST(StaleCacheTest, AppendWithoutCreateIsNeverReplayable) {
  // An entry materialized by OnAppend (e.g. after its created entry was
  // LRU-evicted) has an incomplete log: replaying it would rebuild the
  // wrong cascade.
  StaleCache cache{StaleCacheOptions{}};
  cache.OnAppend("orphan", 1, 0, 1.0);
  EXPECT_NE(cache.FingerprintOf("orphan"), 0u);
  EXPECT_FALSE(cache.ReplayLogOf("orphan").has_value());
}

// ---------------------------------------------------------------------------
// Metrics export.

TEST(ResilienceControlTest, ExportsBreakerStatesAndCountersToRegistry) {
  ResilienceOptions options;
  options.enabled = true;
  options.breaker = TightBreaker();
  ResilienceControl control(options, /*seed=*/7);
  for (int i = 0; i < 4; ++i)
    control.OnShardResult(1, /*failed=*/true, 500, At(0.0));
  control.OnRequestObserved();
  ASSERT_TRUE(control.TryAcquireRetry());
  control.NoteStaleServe();
  obs::MetricsRegistry registry;
  control.ExportToRegistry(registry);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("cluster_breaker_state{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cluster_retries_attempted_total"), std::string::npos);
  EXPECT_NE(text.find("cluster_stale_serves_total"), std::string::npos);
  EXPECT_NE(text.find("cluster_breaker_opens_total"), std::string::npos);
  EXPECT_NE(text.find("cluster_retry_budget_tokens"), std::string::npos);
  EXPECT_EQ(registry.GetGauge("cluster_breaker_state{shard=\"1\"}").value(),
            static_cast<double>(static_cast<int>(BreakerState::kOpen)));
  EXPECT_EQ(control.breaker_opens(), 1u);
}

// ---------------------------------------------------------------------------
// Router-integrated tests.

class ResilienceRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Get().Clear();
    checkpoint_ = ::testing::TempDir() + "resilience_ckpt.bin";
    SaveCheckpoint();
  }

  void TearDown() override {
    fault::FaultRegistry::Get().Clear();
    std::remove(checkpoint_.c_str());
  }

  void SaveCheckpoint() {
    CascnModel model(testing::TinyCascnConfig());
    model.set_output_offset(2.0);
    ASSERT_TRUE(serve::SaveCascnCheckpoint(checkpoint_, model).ok());
  }

  ShardRouterOptions Options(int shards, bool resilient = true) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 2;
    options.shard.sessions.observation_window = 60.0;
    options.handoff_dir = ::testing::TempDir();
    options.resilience.enabled = resilient;
    return options;
  }

  std::unique_ptr<ShardRouter> MakeRouter(const ShardRouterOptions& options) {
    auto router = ShardRouter::CreateFromCheckpoint(options, checkpoint_);
    CASCN_CHECK(router.ok()) << router.status();
    return std::move(router).value();
  }

  /// Builds session `i` of the standard drill population (same formula as
  /// shard_router_test's BuildSessions, factored per-session so a lost
  /// session can be re-created with an identical history).
  template <typename CreateFn, typename AppendFn>
  static void BuildSession(int i, CreateFn create, AppendFn append) {
    const std::string id = "sess-" + std::to_string(i);
    ASSERT_TRUE(create(id, i % 7).status.ok()) << id;
    for (int e = 0; e < 2 + i % 3; ++e) {
      ASSERT_TRUE(
          append(id, 10 + e + i, e, 1.0 + e + 0.25 * (i % 4)).status.ok())
          << id << " event " << e;
    }
  }

  std::string checkpoint_;
};

TEST_F(ResilienceRouterTest, DisabledControlPlaneIsNullAndCountsNothing) {
  auto router = MakeRouter(Options(2, /*resilient=*/false));
  EXPECT_EQ(router->resilience(), nullptr);
  ASSERT_TRUE(router->CallCreate("", "s", 1).status.ok());
  EXPECT_TRUE(router->CallPredict("", "s").status.ok());
}

TEST_F(ResilienceRouterTest, RetryAbsorbsOneInjectedUnavailable) {
  auto router = MakeRouter(Options(2));
  ASSERT_TRUE(router->CallCreate("", "r", 1).status.ok());
  ASSERT_TRUE(router->CallAppend("", "r", 2, 0, 1.0).status.ok());
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultPredictUnavailable) + "=nth:1")
                  .ok());
  const ServeResponse r = router->CallPredict("", "r");
  EXPECT_TRUE(r.status.ok()) << r.status;
  EXPECT_FALSE(r.stale);
  EXPECT_TRUE(std::isfinite(r.log_prediction));
  EXPECT_EQ(router->resilience()->retries_attempted(), 1u);
  // The fault fired exactly once, so the next predict needs no retry.
  EXPECT_TRUE(router->CallPredict("", "r").status.ok());
  EXPECT_EQ(router->resilience()->retries_attempted(), 1u);
}

TEST_F(ResilienceRouterTest, RetryIsSingleAndRefusedWhenTheBudgetIsDry) {
  ShardRouterOptions options = Options(2);
  options.resilience.retry_budget.cap = 1.0;  // one retry, then dry
  options.resilience.retry_budget.ratio = 0.01;
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("", "r", 1).status.ok());
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultPredictUnavailable) + "=always")
                  .ok());
  // Every response is turned Unavailable: the first predict burns the one
  // token (a SINGLE re-dispatch, then gives up)...
  EXPECT_EQ(router->CallPredict("", "r").status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(router->resilience()->retries_attempted(), 1u);
  // ...and the second finds the bucket dry: denied, not retried.
  EXPECT_EQ(router->CallPredict("", "r").status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(router->resilience()->retries_attempted(), 1u);
  EXPECT_GE(router->resilience()->retries_denied(), 1u);
}

// Satellite regression: a Submit that loses the race with CrashShard must
// resolve Unavailable (retryable — the shard will be restarted), NOT the
// NotFound a surviving shard would truthfully-but-misleadingly return.
TEST_F(ResilienceRouterTest, PredictRacingShardCrashResolvesUnavailable) {
  auto router = MakeRouter(Options(3, /*resilient=*/false));
  // Ghost sessions that were never created, bucketed by ring owner while
  // all shards are still up (ShardOf is a pure query; no fault evaluation).
  std::string ghost_on_victim, ghost_on_survivor;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "ghost-" + std::to_string(i);
    if (router->ShardOf(id) == 1 && ghost_on_victim.empty())
      ghost_on_victim = id;
    if (router->ShardOf(id) == 0 && ghost_on_survivor.empty())
      ghost_on_survivor = id;
  }
  ASSERT_FALSE(ghost_on_victim.empty());
  ASSERT_FALSE(ghost_on_survivor.empty());

  // The crash fires from inside the routing of this very predict — the
  // tightest version of the race.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultShardCrash) + "=nth:1@1")
                  .ok());
  const ServeResponse raced = router->CallPredict("", ghost_on_victim);
  EXPECT_EQ(raced.status.code(), StatusCode::kUnavailable)
      << "session on the crashed shard must look retryable, got: "
      << raced.status;
  // A ghost owned by a SURVIVOR still gets the truthful NotFound.
  EXPECT_EQ(router->CallPredict("", ghost_on_survivor).status.code(),
            StatusCode::kNotFound);
  // After the restart the loss is healed: the id is NotFound (re-create me)
  // rather than permanently Unavailable.
  ASSERT_TRUE(router->RestartShard(1).ok());
  EXPECT_EQ(router->CallPredict("", ghost_on_victim).status.code(),
            StatusCode::kNotFound);
}

TEST_F(ResilienceRouterTest, StaleReadServesLastGoodWhilePinnedShardIsDead) {
  ShardRouterOptions options = Options(2);
  options.allow_stale = true;
  auto router = MakeRouter(options);
  // Sessions on both shards, so one side dies and the other stays live.
  std::map<int, std::vector<std::string>> by_shard;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "s" + std::to_string(i);
    ASSERT_TRUE(router->CallCreate("", id, i).status.ok());
    ASSERT_TRUE(router->CallAppend("", id, 10 + i, 0, 1.0).status.ok());
    by_shard[router->ShardOf(id)].push_back(id);
  }
  ASSERT_EQ(by_shard.size(), 2u);
  const int victim = by_shard.begin()->first;
  const std::string on_victim = by_shard[victim].front();
  const std::string on_survivor = by_shard[victim == 0 ? 1 : 0].front();

  const ServeResponse live = router->CallPredict("", on_victim);
  ASSERT_TRUE(live.status.ok());
  ASSERT_FALSE(live.stale);

  // A victim session that never had a successful predict has no last-good
  // answer to fall back on.
  std::string never_predicted;
  for (int j = 0; j < 64 && never_predicted.empty(); ++j) {
    const std::string id = "never-" + std::to_string(j);
    ASSERT_TRUE(router->CallCreate("", id, 1).status.ok());
    if (router->ShardOf(id) == victim) never_predicted = id;
  }
  ASSERT_FALSE(never_predicted.empty());

  router->CrashShard(victim);

  // Degraded mode: the exact last-good answer, marked stale, status OK.
  const ServeResponse degraded = router->CallPredict("", on_victim);
  EXPECT_TRUE(degraded.status.ok()) << degraded.status;
  EXPECT_TRUE(degraded.stale);
  EXPECT_GE(degraded.stale_age_ms, 0.0);
  EXPECT_EQ(degraded.log_prediction, live.log_prediction);
  EXPECT_EQ(degraded.count_prediction, live.count_prediction);
  EXPECT_GE(router->resilience()->stale_serves(), 1u);

  // No cached answer -> the honest retryable error, not a fabricated one.
  EXPECT_EQ(router->CallPredict("", never_predicted).status.code(),
            StatusCode::kUnavailable);
  // The surviving shard serves live, unmarked answers throughout.
  const ServeResponse healthy = router->CallPredict("", on_survivor);
  EXPECT_TRUE(healthy.status.ok());
  EXPECT_FALSE(healthy.stale);
}

// Satellite: the admission/retry interaction — doomed requests (pinned to a
// dead shard) burn neither tenant quota nor more than the single budgeted
// re-dispatch each, and stale serves are free of quota too.
TEST_F(ResilienceRouterTest, DoomedRetriesAndStaleServesDoNotBurnQuota) {
  ShardRouterOptions options = Options(2);
  options.allow_stale = true;
  options.admission.tokens_per_second = 0.001;  // effectively no refill
  options.admission.burst = 3.0;
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("t", "a", 1).status.ok());   // token 1
  const ServeResponse live = router->CallPredict("t", "a");   // token 2
  ASSERT_TRUE(live.status.ok());
  router->CrashShard(router->ShardOf("a"));

  const uint64_t retries_before = router->resilience()->retries_attempted();
  for (int i = 0; i < 5; ++i) {
    const ServeResponse r = router->CallPredict("t", "a");
    EXPECT_TRUE(r.status.ok()) << r.status;
    EXPECT_TRUE(r.stale);
    EXPECT_EQ(r.log_prediction, live.log_prediction);
  }
  // Each doomed predict re-dispatched exactly once under the budget...
  EXPECT_EQ(router->resilience()->retries_attempted() - retries_before, 5u);
  // ...and none of the 5 (nor their retries) consumed tenant quota: the
  // third token still admits real work, and it is the LAST one.
  EXPECT_TRUE(router->CallCreate("t", "b", 2).status.ok());
  EXPECT_EQ(router->CallCreate("t", "c", 3).status.code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ResilienceRouterTest, HedgeRescuesAPredictStuckOnASlowShard) {
  ShardRouterOptions options = Options(2);
  options.resilience.hedge_min_delay_ms = 1.0;
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("", "h", 3).status.ok());
  ASSERT_TRUE(router->CallAppend("", "h", 4, 0, 1.0).status.ok());
  ASSERT_TRUE(router->CallAppend("", "h", 5, 1, 2.0).status.ok());
  const ServeResponse healthy = router->CallPredict("", "h");
  ASSERT_TRUE(healthy.status.ok());

  // The pinned shard goes molasses: every predict takes 150 ms. The hedge
  // replays the session's mirrored log on the other shard (same checkpoint,
  // same events — bit-identical answer) and wins the race.
  const int home = router->ShardOf("h");
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(home) + "=always@150")
                  .ok());
  const ServeResponse hedged = router->CallPredict("", "h");
  EXPECT_TRUE(hedged.status.ok()) << hedged.status;
  EXPECT_FALSE(hedged.stale);
  EXPECT_EQ(hedged.log_prediction, healthy.log_prediction)
      << "a hedge replay must be bit-identical to the pinned shard";
  EXPECT_GE(router->resilience()->hedges_launched(), 1u);
  EXPECT_GE(router->resilience()->hedges_won(), 1u);

  // The session's real home is untouched by the scratch replay: clear the
  // fault and the pinned shard still owns (and serves) the session.
  fault::FaultRegistry::Get().Clear();
  EXPECT_EQ(router->ShardOf("h"), home);
  const ServeResponse after = router->CallPredict("", "h");
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.log_prediction, healthy.log_prediction);
}

TEST_F(ResilienceRouterTest, HedgeReplayIsBitIdenticalOnBusyMultiWorkerShards) {
  // The scratch replay is submitted into a queue drained by SEVERAL workers:
  // two workers pulling adjacent batches can apply an append before the
  // append that created its parent node, which fails validation and silently
  // drops the event — and a cascade missing events predicts a different
  // value. The replay must therefore await each op's response (serialising
  // it and verifying every event landed) or abandon the hedge. This drill
  // reproduces the original failure shape: a long parent-chain session (any
  // dropped event truncates the cascade) hedged onto a 4-worker shard kept
  // busy by background writers.
  ShardRouterOptions options = Options(2);
  options.shard.num_workers = 4;
  options.resilience.hedge_min_delay_ms = 1.0;
  auto router = MakeRouter(options);

  ASSERT_TRUE(router->CallCreate("", "chain", 3).status.ok());
  for (int e = 0; e < 40; ++e) {
    ASSERT_TRUE(
        router->CallAppend("", "chain", 100 + e, e, 1.0 + e).status.ok());
  }
  const ServeResponse healthy = router->CallPredict("", "chain");
  ASSERT_TRUE(healthy.status.ok());

  // Background writers keep both shards' worker pools churning so replay
  // ops interleave with foreign batches.
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  for (int t = 0; t < 3; ++t) {
    noise.emplace_back([&router, &stop, t] {
      const std::string id = "noise-" + std::to_string(t);
      if (!router->CallCreate("", id, t).status.ok()) return;
      for (int e = 0; !stop.load(std::memory_order_relaxed); ++e) {
        router->CallAppend("", id, 200 + e, 0, 50.0);
        router->CallPredict("", id);
      }
    });
  }

  const int home = router->ShardOf("chain");
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(home) + "=always@150")
                  .ok());
  for (int round = 0; round < 4; ++round) {
    const ServeResponse r = router->CallPredict("", "chain");
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.log_prediction, healthy.log_prediction)
        << "hedge round " << round
        << " returned a non-bit-identical prediction";
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& n : noise) n.join();
  fault::FaultRegistry::Get().Clear();
  EXPECT_GE(router->resilience()->hedges_launched(), 1u);
}

// ---------------------------------------------------------------------------
// ShardSupervisor: exact, fake-clock backoff schedules.

TEST_F(ResilienceRouterTest, SupervisorRestartsOnTheExactBackoffSchedule) {
  std::atomic<int64_t> fake_ms{5'000'000};
  const auto clock = [&fake_ms] {
    return TimePoint{} + std::chrono::milliseconds(fake_ms.load());
  };
  ShardRouterOptions options = Options(3);
  options.clock = clock;
  auto router = MakeRouter(options);
  SupervisorOptions sup;
  sup.restart_backoff_ms = 50.0;
  sup.max_backoff_ms = 2000.0;
  sup.clock = clock;
  ShardSupervisor supervisor(*router, sup);

  // Idle passes do nothing.
  EXPECT_EQ(supervisor.PollOnce(), 0);
  EXPECT_TRUE(supervisor.Plans().empty());

  router->CrashShard(2);
  const TimePoint crash_seen = clock();
  EXPECT_EQ(supervisor.PollOnce(), 0) << "first pass only schedules";
  auto plans = supervisor.Plans();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].shard_id, 2);
  EXPECT_EQ(plans[0].failed_attempts, 0);
  EXPECT_EQ(plans[0].next_attempt_at,
            crash_seen + std::chrono::milliseconds(50));

  fake_ms.fetch_add(49);
  EXPECT_EQ(supervisor.PollOnce(), 0) << "1 ms early is too early";
  fake_ms.fetch_add(1);
  EXPECT_EQ(supervisor.PollOnce(), 1) << "due exactly at +50 ms";
  EXPECT_EQ(supervisor.restarts_total(), 1u);
  EXPECT_TRUE(supervisor.Plans().empty());
  EXPECT_EQ(router->num_shards(), 3);
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
  // The revived shard is on probation, and the restart was counted + dumped
  // through the control plane.
  EXPECT_EQ(router->resilience()->supervisor_restarts(), 1u);
  EXPECT_EQ(router->resilience()->ShardState(2), BreakerState::kHalfOpen);
}

TEST_F(ResilienceRouterTest, SupervisorDoublesBackoffOnFailedRestarts) {
  std::atomic<int64_t> fake_ms{5'000'000};
  const auto clock = [&fake_ms] {
    return TimePoint{} + std::chrono::milliseconds(fake_ms.load());
  };
  ShardRouterOptions options = Options(2);
  options.clock = clock;
  auto router = MakeRouter(options);
  SupervisorOptions sup;
  sup.restart_backoff_ms = 50.0;
  sup.max_backoff_ms = 2000.0;
  sup.clock = clock;
  ShardSupervisor supervisor(*router, sup);
  // Pure backoff table: 50 * 2^n capped at 2000.
  EXPECT_DOUBLE_EQ(supervisor.BackoffMs(0), 50.0);
  EXPECT_DOUBLE_EQ(supervisor.BackoffMs(1), 100.0);
  EXPECT_DOUBLE_EQ(supervisor.BackoffMs(3), 400.0);
  EXPECT_DOUBLE_EQ(supervisor.BackoffMs(6), 2000.0) << "capped";
  EXPECT_DOUBLE_EQ(supervisor.BackoffMs(20), 2000.0);

  router->CrashShard(1);
  EXPECT_EQ(supervisor.PollOnce(), 0);  // schedules at +50
  // The checkpoint vanishes: the due restart must fail and the next attempt
  // slides out by the DOUBLED backoff from the failure time.
  std::remove(checkpoint_.c_str());
  fake_ms.fetch_add(50);
  const TimePoint failed_at = clock();
  EXPECT_EQ(supervisor.PollOnce(), 0);
  EXPECT_EQ(supervisor.restart_failures_total(), 1u);
  auto plans = supervisor.Plans();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].failed_attempts, 1);
  EXPECT_EQ(plans[0].next_attempt_at,
            failed_at + std::chrono::milliseconds(100));

  fake_ms.fetch_add(99);
  EXPECT_EQ(supervisor.PollOnce(), 0) << "not due yet after a failure";
  SaveCheckpoint();  // the outage heals
  fake_ms.fetch_add(1);
  EXPECT_EQ(supervisor.PollOnce(), 1);
  EXPECT_EQ(supervisor.restarts_total(), 1u);
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
}

TEST_F(ResilienceRouterTest, SupervisorForceRestartsWedgedShards) {
  std::atomic<int64_t> fake_ms{5'000'000};
  const auto clock = [&fake_ms] {
    return TimePoint{} + std::chrono::milliseconds(fake_ms.load());
  };
  ShardRouterOptions options = Options(2);
  options.clock = clock;
  auto router = MakeRouter(options);
  SupervisorOptions sup;
  sup.restart_backoff_ms = 50.0;
  sup.wedged_polls = 2;
  sup.clock = clock;
  ShardSupervisor supervisor(*router, sup);

  // A stall that recovers before `wedged_polls` passes is left alone.
  router->shard(0)->NoteWatchdogStall();
  EXPECT_EQ(supervisor.PollOnce(), 0);
  router->shard(0)->NoteWatchdogRecovery();
  EXPECT_EQ(supervisor.PollOnce(), 0);
  EXPECT_EQ(supervisor.wedge_kills_total(), 0u);

  // A stall that HOLDS is a wedge: force-crash on the Nth pass, then the
  // normal restart schedule revives it.
  router->shard(0)->NoteWatchdogStall();
  EXPECT_EQ(supervisor.PollOnce(), 0);
  EXPECT_EQ(supervisor.PollOnce(), 0);  // second consecutive pass: kill
  EXPECT_EQ(supervisor.wedge_kills_total(), 1u);
  EXPECT_EQ(router->shard(0), nullptr);
  fake_ms.fetch_add(50);
  EXPECT_EQ(supervisor.PollOnce(), 1);
  EXPECT_NE(router->shard(0), nullptr);
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
}

// ---------------------------------------------------------------------------
// The acceptance drill: one deterministic closed loop through every policy.
//
//   deadline storm on one shard -> its breaker opens (anomaly dump) ->
//   open-shard traffic is answered stale under the retry budget, new
//   placements avoid the shard -> cooldown -> the pinned traffic itself is
//   the half-open probe and re-closes the breaker -> CrashShard ->
//   supervisor restarts it on the exact backoff schedule (stale serves
//   bridge the gap; nothing errors) -> probation traffic re-closes the
//   breaker -> re-created sessions predict bit-identically to an unsharded
//   reference service.
TEST_F(ResilienceRouterTest, ClosedLoopDrillRecoversBitIdentical) {
  constexpr int kSessions = 18;

  // Unsharded reference truth.
  serve::ServiceOptions ref_opts;
  ref_opts.num_workers = 1;
  ref_opts.sessions.observation_window = 60.0;
  auto reference =
      PredictionService::CreateFromCheckpoint(ref_opts, checkpoint_);
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::map<std::string, double> expected;
  for (int i = 0; i < kSessions; ++i) {
    BuildSession(
        i,
        [&](const std::string& id, int u) {
          return reference.value()->CallCreate(id, u);
        },
        [&](const std::string& id, int u, int p, double t) {
          return reference.value()->CallAppend(id, u, p, t);
        });
    const std::string id = "sess-" + std::to_string(i);
    const ServeResponse r = reference.value()->CallPredict(id);
    ASSERT_TRUE(r.status.ok()) << r.status;
    expected[id] = r.log_prediction;
  }

  // The cluster under drill: injected clock for every policy window, single
  // worker per shard so a deadline storm queues deterministically, hedging
  // off so the storm reaches the breaker instead of being rescued.
  std::atomic<int64_t> fake_ms{5'000'000};
  const auto clock = [&fake_ms] {
    return TimePoint{} + std::chrono::milliseconds(fake_ms.load());
  };
  ShardRouterOptions options = Options(3);
  options.shard.num_workers = 1;
  options.clock = clock;
  options.allow_stale = true;
  options.resilience.hedging = false;
  options.resilience.breaker = TightBreaker();  // min 4, 50%, open 2 s, probe 3
  options.flight_dir = ::testing::TempDir() + "drill_flight";
  ASSERT_EQ(std::system(("rm -rf " + options.flight_dir + " && mkdir -p " +
                         options.flight_dir)
                            .c_str()),
            0);
  auto router = MakeRouter(options);
  ResilienceControl* rc = router->resilience();
  ASSERT_NE(rc, nullptr);

  for (int i = 0; i < kSessions; ++i)
    BuildSession(
        i,
        [&](const std::string& id, int u) {
          return router->CallCreate("", id, u);
        },
        [&](const std::string& id, int u, int p, double t) {
          return router->CallAppend("", id, u, p, t);
        });
  // Baseline: sharded == unsharded, bit for bit; also primes the last-good
  // cache for the degraded phases below.
  for (const auto& [id, value] : expected) {
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status;
    ASSERT_EQ(r.log_prediction, value) << id;
  }

  const int victim = router->ShardOf("sess-0");
  std::vector<std::string> on_victim, elsewhere;
  for (const auto& [id, value] : expected)
    (router->ShardOf(id) == victim ? on_victim : elsewhere).push_back(id);
  ASSERT_GE(on_victim.size(), 4u) << "drill needs a loaded victim shard";
  ASSERT_FALSE(elsewhere.empty());

  // --- Phase 1: deadline storm opens the victim's breaker. ---------------
  // Step past the breaker's rolling window first so the baseline successes
  // above have aged out — the storm must be judged on its own failure mix.
  fake_ms.fetch_add(11'000);
  // One slow request occupies the lone worker; everything behind it expires
  // in the queue (DeadlineExceeded), which is exactly the failure mix the
  // breaker watches. The doomed requests themselves are answered from the
  // last-good cache — degraded, never an error.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(victim) + "=always@40")
                  .ok());
  auto blocker = router->SubmitPredict("", on_victim[0]);
  ASSERT_TRUE(blocker.ok()) << blocker.status();
  std::vector<std::future<ServeResponse>> doomed;
  for (size_t i = 1; i < on_victim.size(); ++i) {
    auto submitted =
        router->SubmitPredict("", on_victim[i], /*deadline_ms=*/10.0);
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    doomed.push_back(std::move(submitted).value());
  }
  const ServeResponse blocked = blocker.value().get();
  EXPECT_TRUE(blocked.status.ok()) << blocked.status;
  const uint64_t denied_before = rc->retries_denied();
  for (size_t i = 0; i < doomed.size(); ++i) {
    const ServeResponse r = doomed[i].get();
    EXPECT_TRUE(r.status.ok()) << on_victim[i + 1] << ": " << r.status;
    EXPECT_TRUE(r.stale) << on_victim[i + 1];
    EXPECT_EQ(r.log_prediction, expected[on_victim[i + 1]]);
  }
  // An expired deadline leaves no headroom: every doomed retry was denied
  // on the remaining-time floor, not re-raced.
  EXPECT_GE(rc->retries_denied() - denied_before, doomed.size());
  EXPECT_EQ(rc->ShardState(victim), BreakerState::kOpen);
  EXPECT_EQ(rc->breaker_opens(), 1u);
  fault::FaultRegistry::Get().Clear();

  // The flip wrote a black-box dump.
  {
    std::ifstream in(options.flight_dir + "/flight_router.jsonl");
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("breaker_open"), std::string::npos);
  }

  // --- Phase 2: while open — budgeted retry, stale answer, no placement. --
  const uint64_t retries_before = rc->retries_attempted();
  const ServeResponse gated = router->CallPredict("", on_victim[1]);
  EXPECT_TRUE(gated.status.ok()) << gated.status;
  EXPECT_TRUE(gated.stale);
  EXPECT_EQ(gated.log_prediction, expected[on_victim[1]]);
  EXPECT_GE(rc->retries_attempted(), retries_before + 1)
      << "an open breaker with time on the clock is worth one budgeted retry";
  for (int i = 0; i < 9; ++i) {
    const std::string id = "fresh-" + std::to_string(i);
    ASSERT_TRUE(router->CallCreate("", id, i).status.ok());
    EXPECT_NE(router->ShardOf(id), victim)
        << "the ring walk must skip an open shard";
  }

  // --- Phase 3: cooldown elapses; pinned traffic is the probe. -----------
  fake_ms.fetch_add(3000);  // > open_seconds
  for (int probe = 0; probe < 3; ++probe) {
    const ServeResponse r = router->CallPredict("", on_victim[probe]);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_FALSE(r.stale) << "half-open admits real traffic";
    EXPECT_EQ(r.log_prediction, expected[on_victim[probe]]);
  }
  EXPECT_EQ(rc->ShardState(victim), BreakerState::kClosed)
      << "3 clean probes must re-close the breaker";

  // --- Phase 4: hard crash; the supervisor heals it on schedule. ---------
  router->CrashShard(victim);
  EXPECT_EQ(router->ClusterHealth(), Health::kDegraded);
  SupervisorOptions sup;
  sup.restart_backoff_ms = 50.0;
  sup.clock = clock;
  ShardSupervisor supervisor(*router, sup);
  EXPECT_EQ(supervisor.PollOnce(), 0);
  auto plans = supervisor.Plans();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].shard_id, victim);
  EXPECT_EQ(plans[0].next_attempt_at,
            clock() + std::chrono::milliseconds(50));
  // The gap between crash and restart is bridged by stale serves — status
  // OK every time, never an error surfaced to the client.
  const ServeResponse bridged = router->CallPredict("", on_victim[1]);
  EXPECT_TRUE(bridged.status.ok()) << bridged.status;
  EXPECT_TRUE(bridged.stale);
  fake_ms.fetch_add(49);
  EXPECT_EQ(supervisor.PollOnce(), 0);
  fake_ms.fetch_add(1);
  EXPECT_EQ(supervisor.PollOnce(), 1);
  EXPECT_EQ(supervisor.restarts_total(), 1u);
  EXPECT_EQ(rc->supervisor_restarts(), 1u);
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
  EXPECT_EQ(rc->ShardState(victim), BreakerState::kHalfOpen)
      << "a supervised restart begins in probation";
  {
    std::ifstream in(options.flight_dir + "/flight_router.jsonl");
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("supervisor_restart"), std::string::npos);
  }

  // --- Phase 5: probation traffic re-closes the breaker. -----------------
  // The crash dropped the victim's pins; its sessions read NotFound (the
  // honest "re-create me", not Unavailable, not a stale fabrication) — and
  // those application-level outcomes COUNT as clean probes.
  int probes = 0;
  for (int i = 0; i < 256 && probes < 3; ++i) {
    const std::string id = "probe-" + std::to_string(i);
    if (router->ShardOf(id) != victim) continue;
    EXPECT_EQ(router->CallPredict("", id).status.code(),
              StatusCode::kNotFound);
    ++probes;
  }
  ASSERT_EQ(probes, 3);
  EXPECT_EQ(rc->ShardState(victim), BreakerState::kClosed);

  // --- Phase 6: re-create the lost sessions; everything is bit-identical. -
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    if (std::find(on_victim.begin(), on_victim.end(), id) == on_victim.end())
      continue;
    // The crash already released these sessions' pins and state; the close
    // is just mirror hygiene and reports the honest NotFound.
    (void)router->CallClose("", id);
    BuildSession(
        i,
        [&](const std::string& sid, int u) {
          return router->CallCreate("", sid, u);
        },
        [&](const std::string& sid, int u, int p, double t) {
          return router->CallAppend("", sid, u, p, t);
        });
  }
  for (const auto& [id, value] : expected) {
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status;
    EXPECT_FALSE(r.stale) << id;
    EXPECT_EQ(r.log_prediction, value) << id;
  }
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);

  // The whole loop is visible to operators via the registry.
  obs::MetricsRegistry registry;
  router->ExportToRegistry(registry);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("cluster_supervisor_restarts_total"),
            std::string::npos);
  EXPECT_NE(text.find("cluster_stale_serves_total"), std::string::npos);
  EXPECT_GE(rc->stale_serves(), 1u + doomed.size());
}

}  // namespace
}  // namespace cascn::cluster
