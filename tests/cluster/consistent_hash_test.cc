// Property tests for the consistent-hash ring: balance across shards,
// minimal disruption when the shard set changes, and the bounded-load
// placement walk.

#include "cluster/consistent_hash.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::cluster {
namespace {

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("session-" + std::to_string(i));
  return keys;
}

std::vector<int> ShardRange(int n) {
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) ids.push_back(i);
  return ids;
}

TEST(HashRingTest, KeySpaceIsBalancedAcrossEightShards) {
  HashRing ring;
  ring.SetShards(ShardRange(8));
  const auto keys = Keys(40000);
  std::map<int, int> counts;
  for (const auto& key : keys) ++counts[ring.OwnerOf(key)];
  ASSERT_EQ(counts.size(), 8u);  // every shard owns something
  const double mean = static_cast<double>(keys.size()) / 8.0;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, mean * 0.85)
        << "shard " << shard << " owns " << count << " of " << keys.size();
    EXPECT_LT(count, mean * 1.15)
        << "shard " << shard << " owns " << count << " of " << keys.size();
  }
}

TEST(HashRingTest, RemovingOneShardOnlyMovesItsOwnKeys) {
  HashRing ring;
  ring.SetShards(ShardRange(8));
  const auto keys = Keys(20000);
  std::map<std::string, int> before;
  for (const auto& key : keys) before[key] = ring.OwnerOf(key);

  ring.SetShards({0, 1, 2, 4, 5, 6, 7});  // shard 3 removed
  int moved = 0;
  for (const auto& key : keys) {
    const int now = ring.OwnerOf(key);
    if (before[key] == 3) {
      ++moved;
      EXPECT_NE(now, 3);
    } else {
      // The structural guarantee: keys on surviving shards never move.
      EXPECT_EQ(now, before[key]) << "key " << key << " moved without cause";
    }
  }
  // Only shard 3's ~1/8 of the key space had to move (its ownership share
  // is itself balanced to within ~15%).
  EXPECT_LT(moved, static_cast<int>(keys.size()) / 8 * 1.2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, AddingOneShardOnlyPullsKeysToIt) {
  HashRing ring;
  ring.SetShards(ShardRange(8));
  const auto keys = Keys(20000);
  std::map<std::string, int> before;
  for (const auto& key : keys) before[key] = ring.OwnerOf(key);

  ring.SetShards(ShardRange(9));  // shard 8 added
  int moved = 0;
  for (const auto& key : keys) {
    const int now = ring.OwnerOf(key);
    if (now != before[key]) {
      ++moved;
      // Every remapped key moves TO the new shard, never between old ones.
      EXPECT_EQ(now, 8) << "key " << key << " moved between old shards";
    }
  }
  // The new shard takes ~1/9 of the keys (within the balance deviation).
  EXPECT_LT(moved, static_cast<int>(keys.size()) / 9 * 1.3);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, OwnerIsDeterministicAcrossInstances) {
  HashRing a, b;
  a.SetShards(ShardRange(5));
  b.SetShards(ShardRange(5));
  for (const auto& key : Keys(500)) EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
}

TEST(HashRingTest, PickShardRespectsTheLoadBound) {
  HashRing ring;
  ring.SetShards(ShardRange(4));
  // Place 2000 keys one at a time, tracking load; no shard may exceed the
  // bound ceil(1.25 * (total + 1) / 4) at its own placement time.
  std::map<int, uint64_t> load;
  for (int i = 0; i < 4; ++i) load[i] = 0;
  uint64_t total = 0;
  for (const auto& key : Keys(2000)) {
    const int shard =
        ring.PickShard(key, [&](int s) { return load[s]; });
    const uint64_t bound = static_cast<uint64_t>(
        std::ceil(1.25 * static_cast<double>(total + 1) / 4.0));
    EXPECT_LT(load[shard], bound);
    ++load[shard];
    ++total;
  }
  // Bounded load also implies tight balance.
  for (const auto& [shard, n] : load) {
    EXPECT_GT(n, 300u) << "shard " << shard;
    EXPECT_LT(n, 700u) << "shard " << shard;
  }
}

TEST(HashRingTest, PickShardSkipsOverloadedOwner) {
  HashRing ring;
  ring.SetShards(ShardRange(3));
  const std::string key = "hot-key";
  const int owner = ring.OwnerOf(key);
  // The owner is saturated; everyone else is empty.
  const int picked = ring.PickShard(key, [&](int s) {
    return s == owner ? uint64_t{1000} : uint64_t{0};
  });
  EXPECT_NE(picked, owner);
}

TEST(HashRingTest, PickShardReturnsOwnerWhenLoadsAreBalanced) {
  HashRing ring;
  ring.SetShards(ShardRange(4));
  // Equal loads sit under the bound (1.25x the mean), so the bounded-load
  // walk stops at the ring owner — placement stays consistent-hash stable.
  for (const auto& key : Keys(200)) {
    EXPECT_EQ(ring.PickShard(key, [](int) { return uint64_t{50}; }),
              ring.OwnerOf(key));
  }
}

TEST(HashRingTest, PickShardWithOneShardAlwaysReturnsIt) {
  HashRing ring;
  ring.SetShards({5});
  EXPECT_EQ(ring.PickShard("k", [](int) { return uint64_t{100000}; }), 5);
  EXPECT_EQ(ring.OwnerOf("anything"), 5);
}

}  // namespace
}  // namespace cascn::cluster
