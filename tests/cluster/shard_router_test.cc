// ShardRouter: routing, admission, crash shedding, and — the acceptance
// bar — a live rebalance that loses no session and leaves every session's
// next prediction bit-identical to an unsharded reference service.

#include "cluster/shard_router.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/cascn_model.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"

namespace cascn::cluster {
namespace {

using serve::Health;
using serve::PredictionService;
using serve::ServeResponse;

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Get().Clear();
    checkpoint_ = ::testing::TempDir() + "router_ckpt.bin";
    CascnModel model(testing::TinyCascnConfig());
    model.set_output_offset(2.0);
    ASSERT_TRUE(serve::SaveCascnCheckpoint(checkpoint_, model).ok());
  }

  void TearDown() override {
    fault::FaultRegistry::Get().Clear();
    std::remove(checkpoint_.c_str());
  }

  ShardRouterOptions Options(int shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 2;
    options.shard.sessions.observation_window = 60.0;
    options.handoff_dir = ::testing::TempDir();
    return options;
  }

  std::unique_ptr<ShardRouter> MakeRouter(const ShardRouterOptions& options) {
    auto router = ShardRouter::CreateFromCheckpoint(options, checkpoint_);
    CASCN_CHECK(router.ok()) << router.status();
    return std::move(router).value();
  }

  /// Builds K sessions with distinct small cascades through `create` and
  /// `append` callables.
  template <typename CreateFn, typename AppendFn>
  static void BuildSessions(int k, CreateFn create, AppendFn append) {
    for (int i = 0; i < k; ++i) {
      const std::string id = "sess-" + std::to_string(i);
      ASSERT_TRUE(create(id, i % 7).status.ok()) << id;
      for (int e = 0; e < 2 + i % 3; ++e) {
        ASSERT_TRUE(
            append(id, 10 + e + i, e, 1.0 + e + 0.25 * (i % 4)).status.ok())
            << id << " event " << e;
      }
    }
  }

  std::string checkpoint_;
};

TEST_F(ShardRouterTest, RoutesSessionsAcrossShardsAndPredicts) {
  auto router = MakeRouter(Options(3));
  BuildSessions(
      24,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });
  std::map<int, int> per_shard;
  for (int i = 0; i < 24; ++i)
    ++per_shard[router->ShardOf("sess-" + std::to_string(i))];
  EXPECT_EQ(per_shard.size(), 3u) << "sessions all landed on one shard";
  for (int i = 0; i < 24; ++i) {
    const ServeResponse r =
        router->CallPredict("", "sess-" + std::to_string(i));
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_TRUE(std::isfinite(r.log_prediction));
  }
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
}

TEST_F(ShardRouterTest, SessionOperationsStayOnOnePin) {
  auto router = MakeRouter(Options(4));
  ASSERT_TRUE(router->CallCreate("", "pinned", 1).status.ok());
  const int home = router->ShardOf("pinned");
  for (int e = 0; e < 6; ++e) {
    ASSERT_TRUE(router->CallAppend("", "pinned", 2 + e, e, 1.0 + e).status.ok());
    EXPECT_EQ(router->ShardOf("pinned"), home);
  }
  EXPECT_EQ(router->shard(home)->sessions().SessionSize("pinned").value(), 7);
}

// The acceptance test: K sessions across N shards, drain + handoff one
// shard, and every session's next Predict is bit-identical to an unsharded
// reference service loaded from the same checkpoint.
TEST_F(ShardRouterTest, RebalanceLosesNoSessionAndPredictsBitIdentically) {
  constexpr int kSessions = 30;

  // Unsharded reference.
  serve::ServiceOptions ref_opts;
  ref_opts.num_workers = 1;
  ref_opts.sessions.observation_window = 60.0;
  auto reference = PredictionService::CreateFromCheckpoint(ref_opts,
                                                           checkpoint_);
  ASSERT_TRUE(reference.ok()) << reference.status();
  BuildSessions(
      kSessions,
      [&](const std::string& id, int u) {
        return reference.value()->CallCreate(id, u);
      },
      [&](const std::string& id, int u, int p, double t) {
        return reference.value()->CallAppend(id, u, p, t);
      });
  std::map<std::string, double> expected;
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    const ServeResponse r = reference.value()->CallPredict(id);
    ASSERT_TRUE(r.status.ok()) << r.status;
    expected[id] = r.log_prediction;
  }

  // Sharded cluster with the same sessions.
  auto router = MakeRouter(Options(3));
  BuildSessions(
      kSessions,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });

  // Drain + handoff shard 1.
  ASSERT_TRUE(router->RemoveShard(1).ok());
  EXPECT_EQ(router->num_shards(), 2);
  EXPECT_EQ(router->shard(1), nullptr);

  // Zero loss, bit-identical predictions, and nothing routed to shard 1.
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    EXPECT_NE(router->ShardOf(id), 1) << id;
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status;
    EXPECT_EQ(r.log_prediction, expected[id]) << id;
  }
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
}

TEST_F(ShardRouterTest, RebalanceRetriesThroughInjectedTornWrite) {
  auto router = MakeRouter(Options(2));
  BuildSessions(
      12,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });
  std::map<std::string, double> before;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok());
    before[id] = r.log_prediction;
  }

  // The first handoff write is torn mid-stream; the retry must land it and
  // the drain must still lose nothing.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultHandoffTornWrite) + "=nth:1")
                  .ok());
  ASSERT_TRUE(router->RemoveShard(0).ok());
  EXPECT_GE(fault::FaultRegistry::Get()
                .stats(kFaultHandoffTornWrite)
                .fires,
            1u);
  for (const auto& [id, value] : before) {
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status;
    EXPECT_EQ(r.log_prediction, value) << id;
  }
}

TEST_F(ShardRouterTest, SpilledSessionsSurviveTheRebalance) {
  // Tiny per-shard capacity: most sessions get LRU-evicted into the spill
  // table, and the rebalance must move those histories too.
  ShardRouterOptions options = Options(2);
  options.shard.sessions.capacity = 2;
  options.shard.sessions.spill_capacity = 64;
  auto router = MakeRouter(options);
  BuildSessions(
      10,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });
  ASSERT_TRUE(router->RemoveShard(1).ok());
  for (int i = 0; i < 10; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    const ServeResponse r = router->CallPredict("", id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status;
  }
}

TEST_F(ShardRouterTest, CrashShedsToSurvivorsAndRestartRejoins) {
  auto router = MakeRouter(Options(3));
  BuildSessions(
      18,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });
  std::vector<std::string> on_crashed, elsewhere;
  for (int i = 0; i < 18; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    (router->ShardOf(id) == 0 ? on_crashed : elsewhere).push_back(id);
  }
  ASSERT_FALSE(on_crashed.empty());
  ASSERT_FALSE(elsewhere.empty());

  router->CrashShard(0);
  EXPECT_EQ(router->ClusterHealth(), Health::kDegraded);
  EXPECT_EQ(router->num_shards(), 2);

  // Sessions pinned to the dead shard fail distinctly; others keep serving.
  for (const auto& id : on_crashed)
    EXPECT_EQ(router->CallPredict("", id).status.code(),
              StatusCode::kUnavailable)
        << id;
  for (const auto& id : elsewhere)
    EXPECT_TRUE(router->CallPredict("", id).status.ok()) << id;

  // New sessions shed to the survivors.
  for (int i = 0; i < 12; ++i) {
    const std::string id = "fresh-" + std::to_string(i);
    ASSERT_TRUE(router->CallCreate("", id, i).status.ok()) << id;
    EXPECT_NE(router->ShardOf(id), 0) << id;
  }

  // Rejoin: the shard comes back, health recovers, and the sessions the
  // ring assigns to shard 0 are pulled over through the handoff path.
  ASSERT_TRUE(router->RestartShard(0).ok());
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);
  EXPECT_EQ(router->num_shards(), 3);
  for (const auto& id : elsewhere)
    EXPECT_TRUE(router->CallPredict("", id).status.ok()) << id;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "fresh-" + std::to_string(i);
    EXPECT_TRUE(router->CallPredict("", id).status.ok()) << id;
  }
  // Crashed-shard sessions were lost (as a crash loses memory) but can be
  // re-created now that the pin is released.
  for (const auto& id : on_crashed) {
    EXPECT_EQ(router->CallPredict("", id).status.code(),
              StatusCode::kNotFound)
        << id;
    EXPECT_TRUE(router->CallCreate("", id, 1).status.ok()) << id;
  }
}

TEST_F(ShardRouterTest, ShardCrashFaultKillsTheNamedShardMidLoad) {
  auto router = MakeRouter(Options(3));
  // Fault: the 10th routed request crashes shard 1.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultShardCrash) + "=nth:10@1")
                  .ok());
  int created = 0;
  for (int i = 0; i < 40; ++i) {
    const ServeResponse r =
        router->CallCreate("", "chaos-" + std::to_string(i), i % 5);
    if (r.status.ok()) ++created;
  }
  EXPECT_EQ(router->num_shards(), 2);
  EXPECT_EQ(router->shard(1), nullptr);
  EXPECT_EQ(router->ClusterHealth(), Health::kDegraded);
  // Offered load after the crash kept landing on the survivors.
  EXPECT_GE(created, 30);
  const auto snapshot = router->TakeSnapshot();
  EXPECT_EQ(snapshot.crashed_shards, 1u);
}

TEST_F(ShardRouterTest, TenantQuotasRejectWithResourceExhausted) {
  ShardRouterOptions options = Options(2);
  options.admission.tokens_per_second = 0.001;  // effectively no refill
  options.admission.burst = 3.0;
  auto router = MakeRouter(options);
  int ok = 0, exhausted = 0;
  for (int i = 0; i < 10; ++i) {
    const ServeResponse r =
        router->CallCreate("tenant-x", "q-" + std::to_string(i), i);
    if (r.status.ok()) ++ok;
    if (r.status.code() == StatusCode::kResourceExhausted) ++exhausted;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(exhausted, 7);
  // The unnamed tenant is exempt.
  EXPECT_TRUE(router->CallCreate("", "exempt", 1).status.ok());
  const auto snapshot = router->TakeSnapshot();
  ASSERT_EQ(snapshot.tenants.size(), 1u);
  EXPECT_EQ(snapshot.tenants[0].tenant, "tenant-x");
  EXPECT_EQ(snapshot.tenants[0].admitted, 3u);
  EXPECT_EQ(snapshot.tenants[0].rejected, 7u);
  EXPECT_EQ(snapshot.total_shed, 7u);
}

TEST_F(ShardRouterTest, SlowShardFaultOnlySlowsTheNamedShard) {
  auto router = MakeRouter(Options(2));
  ASSERT_TRUE(router->CallCreate("", "a", 1).status.ok());
  ASSERT_TRUE(router->CallAppend("", "a", 2, 0, 1.0).status.ok());
  const int home = router->ShardOf("a");
  const int other = home == 0 ? 1 : 0;
  // Slow the *other* shard; session "a" must be unaffected by a deadline
  // that the slowed shard could never meet.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(SlowShardFaultPoint(other) + "=always@200")
                  .ok());
  auto submitted = router->SubmitPredict("", "a", /*deadline_ms=*/100.0);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  const ServeResponse r = submitted.value().get();
  EXPECT_TRUE(r.status.ok()) << r.status;
}

TEST_F(ShardRouterTest, ExportsLabeledPerShardAndClusterMetrics) {
  auto router = MakeRouter(Options(2));
  ASSERT_TRUE(router->CallCreate("acme", "m1", 1).status.ok());
  ASSERT_TRUE(router->CallPredict("acme", "m1").status.ok());
  obs::MetricsRegistry registry;
  router->ExportToRegistry(registry);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("serve_requests_total{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("serve_requests_total{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("cluster_health"), std::string::npos);
  EXPECT_NE(text.find("cluster_latency_p99_us"), std::string::npos);
  EXPECT_NE(text.find("cluster_tenant_admitted{tenant=\"acme\"}"),
            std::string::npos);
  // The two shard labels are distinct gauges in ONE registry, and their
  // request counts sum to the cluster's total.
  const double total =
      registry.GetGauge("serve_requests_total{shard=\"0\"}").value() +
      registry.GetGauge("serve_requests_total{shard=\"1\"}").value();
  EXPECT_EQ(total, 2.0);
}

TEST_F(ShardRouterTest, RemovingTheLastShardIsRefused) {
  auto router = MakeRouter(Options(1));
  ASSERT_TRUE(router->CallCreate("", "only", 1).status.ok());
  EXPECT_EQ(router->RemoveShard(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(router->CallPredict("", "only").status.ok());
}

uint64_t TotalPinned(const ShardRouter::Snapshot& snap) {
  uint64_t total = 0;
  for (const auto& shard : snap.shards) total += shard.pinned_sessions;
  return total;
}

TEST_F(ShardRouterTest, ResolvingAnAsyncCloseReleasesThePin) {
  auto router = MakeRouter(Options(2));
  ASSERT_TRUE(router->CallCreate("", "s", 1).status.ok());
  EXPECT_EQ(TotalPinned(router->TakeSnapshot()), 1u);
  auto submitted = router->SubmitClose("", "s");
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  ASSERT_TRUE(submitted.value().get().status.ok());
  // The async close did its own pin bookkeeping — no blocking CallClose
  // needed, and the load metric no longer counts the dead session.
  EXPECT_EQ(TotalPinned(router->TakeSnapshot()), 0u);
  EXPECT_EQ(router->CallPredict("", "s").status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(router->CallCreate("", "s", 2).status.ok());
}

TEST_F(ShardRouterTest, RemoveShardSweepsStalePinsSoTheIdStaysUsable) {
  auto router = MakeRouter(Options(2));
  ASSERT_TRUE(router->CallCreate("", "stale", 1).status.ok());
  const int home = router->ShardOf("stale");
  // Close behind the router's back: the session is gone from the shard but
  // the router still carries its pin.
  ASSERT_TRUE(router->shard(home)->CallClose("stale").status.ok());
  ASSERT_TRUE(router->RemoveShard(home).ok());
  // The sweep at the end of RemoveShard erased the stale pin; without it,
  // every request for this id — including Create — would be Unavailable
  // ("pinned to shard which is down") forever.
  EXPECT_NE(router->ShardOf("stale"), home);
  EXPECT_TRUE(router->CallCreate("", "stale", 2).status.ok());
  EXPECT_TRUE(router->CallPredict("", "stale").status.ok());
}

TEST_F(ShardRouterTest, SpillLruDropReleasesThePin) {
  // One shard with room for 1 live + 1 spilled session: the third create
  // permanently drops the first session's history, and the router must
  // drop its pin with it (or pins_ grows without bound and the placement
  // load metric counts ghosts).
  ShardRouterOptions options = Options(1);
  options.shard.sessions.capacity = 1;
  options.shard.sessions.spill_capacity = 1;
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("", "g0", 1).status.ok());
  ASSERT_TRUE(router->CallCreate("", "g1", 2).status.ok());
  ASSERT_TRUE(router->CallCreate("", "g2", 3).status.ok());  // drops "g0"
  const auto snapshot = router->TakeSnapshot();
  EXPECT_EQ(TotalPinned(snapshot), 2u);  // g1 (spilled) + g2 (live), not 3
  EXPECT_GE(snapshot.shards[0].metrics.counter(serve::Counter::kSpillDropped),
            1u);
}

TEST_F(ShardRouterTest, DoomedRequestsDoNotConsumeTenantQuota) {
  ShardRouterOptions options = Options(2);
  options.admission.tokens_per_second = 0.001;  // effectively no refill
  options.admission.burst = 2.0;
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("t", "a", 1).status.ok());  // 1 token left
  router->CrashShard(router->ShardOf("a"));
  // Guaranteed-to-fail requests (pinned to a down shard) must not debit
  // the bucket — a client retrying against a degraded cluster would
  // otherwise burn its whole budget on failures.
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(router->CallPredict("t", "a").status.code(),
              StatusCode::kUnavailable);
  // The surviving token still admits real work.
  EXPECT_TRUE(router->CallCreate("t", "b", 2).status.ok());
}

// Satellite: the cluster's merged latency percentiles must equal the
// percentiles computed from the UNION of the per-shard log2 histograms —
// same buckets, same count, same observed max — not an average of per-shard
// percentiles (which would be wrong whenever shard loads differ).
TEST_F(ShardRouterTest, SnapshotMergesLatencyHistogramsAsTheirUnion) {
  auto router = MakeRouter(Options(3));
  BuildSessions(
      24,
      [&](const std::string& id, int u) { return router->CallCreate("", id, u); },
      [&](const std::string& id, int u, int p, double t) {
        return router->CallAppend("", id, u, p, t);
      });
  for (int i = 0; i < 24; ++i)
    ASSERT_TRUE(
        router->CallPredict("", "sess-" + std::to_string(i)).status.ok());

  const auto snap = router->TakeSnapshot();
  obs::Histogram::Snapshot merged;
  merged.buckets.assign(serve::ServeMetrics::kNumLatencyBuckets, 0);
  for (const auto& shard : snap.shards) {
    ASSERT_TRUE(shard.active);
    // Every shard served something, so the merge is a real 3-way union.
    ASSERT_GT(shard.metrics.latency_count, 0u) << shard.shard_id;
    for (size_t b = 0; b < merged.buckets.size(); ++b)
      merged.buckets[b] += shard.metrics.latency_buckets[b];
    merged.count += shard.metrics.latency_count;
    merged.max = std::max(merged.max, shard.metrics.latency_max_us);
  }
  EXPECT_EQ(snap.latency_count, merged.count);
  EXPECT_EQ(snap.latency_p50_us, merged.Percentile(0.50));
  EXPECT_EQ(snap.latency_p95_us, merged.Percentile(0.95));
  EXPECT_EQ(snap.latency_p99_us, merged.Percentile(0.99));
  // Percentiles are ordered and clamped by the union's max.
  EXPECT_LE(snap.latency_p50_us, snap.latency_p95_us);
  EXPECT_LE(snap.latency_p95_us, snap.latency_p99_us);
  EXPECT_LE(snap.latency_p99_us, static_cast<double>(merged.max));
}

// Acceptance: one request's spans share a trace id and are linked by flow
// events across at least two threads (submitter + shard worker).
TEST_F(ShardRouterTest, TraceIdLinksSpansAcrossThreadsViaFlowEvents) {
  obs::Tracer::Get().Clear();
  obs::Tracer::Get().Enable();
  auto router = MakeRouter(Options(3));
  ASSERT_TRUE(router->CallCreate("acme", "traced", 1).status.ok());
  auto submitted = router->SubmitPredict("acme", "traced");
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  const ServeResponse r = submitted.value().get();
  obs::Tracer::Get().Disable();
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_NE(r.trace_id, 0u) << "response must echo the request's trace id";

  const std::string hex =
      StrFormat("%llx", static_cast<unsigned long long>(r.trace_id));
  const std::string json = obs::Tracer::Get().ToChromeTraceJson();
  obs::Tracer::Get().Clear();

  // Walk the one-event-per-line serialization: collect the tids of X spans
  // carrying this trace id, and the flow phases keyed by it.
  std::set<int> span_tids;
  std::set<std::string> flow_phases;
  std::set<int> flow_tids;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const bool is_span =
        line.find("\"trace_id\": \"" + hex + "\"") != std::string::npos;
    const bool is_flow =
        line.find("\"id\": \"" + hex + "\"") != std::string::npos;
    if (!is_span && !is_flow) continue;
    const size_t tid_pos = line.find("\"tid\": ");
    ASSERT_NE(tid_pos, std::string::npos) << line;
    const int tid = std::atoi(line.c_str() + tid_pos + 7);
    if (is_span) span_tids.insert(tid);
    if (is_flow) {
      const size_t ph_pos = line.find("\"ph\": \"");
      ASSERT_NE(ph_pos, std::string::npos) << line;
      flow_phases.insert(line.substr(ph_pos + 7, 1));
      flow_tids.insert(tid);
    }
  }
  EXPECT_GE(span_tids.size(), 2u)
      << "request spans must land on >= 2 threads";
  // The flow chain starts on the submitting thread ("s"), steps through the
  // queue hop ("t"), and finishes on the worker ("f") — so chrome://tracing
  // draws one arrow through the whole request.
  EXPECT_TRUE(flow_phases.count("s")) << json;
  EXPECT_TRUE(flow_phases.count("t")) << json;
  EXPECT_TRUE(flow_phases.count("f")) << json;
  EXPECT_GE(flow_tids.size(), 2u) << "flow must cross threads";
}

// Acceptance: a fault-injected deadline miss triggers a flight-recorder
// dump whose records include the doomed request's trace id.
TEST_F(ShardRouterTest, DeadlineExceededTriggersFlightDumpWithTraceId) {
  ShardRouterOptions options = Options(1);
  options.shard.num_workers = 1;
  options.flight_dir = ::testing::TempDir();
  const std::string dump_path = options.flight_dir + "/flight_shard_0.jsonl";
  std::remove(dump_path.c_str());
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("acme", "doomed", 1).status.ok());

  // Every predict stalls 80 ms; the first occupies the lone worker, so the
  // second — carrying a 5 ms deadline — expires in the queue.
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(serve::kFaultServeSlowPredict) +
                             "=always@80")
                  .ok());
  auto blocker = router->SubmitPredict("acme", "doomed");
  ASSERT_TRUE(blocker.ok()) << blocker.status();
  auto doomed = router->SubmitPredict("acme", "doomed", /*deadline_ms=*/5.0);
  ASSERT_TRUE(doomed.ok()) << doomed.status();
  const ServeResponse r = doomed.value().get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status;
  ASSERT_NE(r.trace_id, 0u);
  (void)blocker.value().get();

  // The worker dumped the shard's ring before fulfilling the promise, so
  // the file is already complete here.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "expected anomaly dump at " << dump_path;
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("\"reason\": \"deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(dump.find(StrFormat(
                "\"trace_id\": \"%llx\"",
                static_cast<unsigned long long>(r.trace_id))),
            std::string::npos);
  EXPECT_NE(dump.find("\"status\": \"DeadlineExceeded\""), std::string::npos);
  std::remove(dump_path.c_str());
}

// On-demand dumps never collide: each DumpFlightRecorders call writes a
// fresh sequence-suffixed file set, and the retention cap deletes the
// oldest sets instead of letting the directory grow without bound.
TEST_F(ShardRouterTest, OnDemandDumpsAreSequencedAndRetained) {
  ShardRouterOptions options = Options(2);
  options.flight_dir = ::testing::TempDir() + "dump_seq";
  options.flight_dump_retention = 2;
  ASSERT_EQ(std::system(("rm -rf " + options.flight_dir + " && mkdir -p " +
                         options.flight_dir)
                            .c_str()),
            0);
  auto router = MakeRouter(options);
  ASSERT_TRUE(router->CallCreate("acme", "sess", 1).status.ok());

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(router->DumpFlightRecorders("collide_check").ok());
  EXPECT_EQ(router->on_demand_dump_count(), 3u);

  auto exists = [&](const std::string& name) {
    return std::ifstream(options.flight_dir + "/" + name).good();
  };
  // Newest two sets retained, oldest evicted (retention = 2).
  EXPECT_FALSE(exists("flight_router.00001.jsonl"));
  EXPECT_FALSE(exists("flight_shard_0.00001.jsonl"));
  EXPECT_TRUE(exists("flight_router.00002.jsonl"));
  EXPECT_TRUE(exists("flight_router.00003.jsonl"));
  EXPECT_TRUE(exists("flight_shard_0.00003.jsonl"));
  EXPECT_TRUE(exists("flight_shard_1.00003.jsonl"));

  // Distinct files per call: the newest set holds exactly one dump header,
  // not three appended ones.
  std::ifstream in(options.flight_dir + "/flight_router.00003.jsonl");
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  size_t headers = 0;
  for (size_t pos = dump.find("\"event\": \"flight_dump\"");
       pos != std::string::npos;
       pos = dump.find("\"event\": \"flight_dump\"", pos + 1))
    ++headers;
  EXPECT_EQ(headers, 1u) << dump;
  EXPECT_NE(dump.find("collide_check"), std::string::npos);

  // Unset flight_dir still fails fast.
  ShardRouterOptions no_dir = Options(1);
  auto bare = MakeRouter(no_dir);
  EXPECT_EQ(bare->DumpFlightRecorders("nope").code(),
            StatusCode::kFailedPrecondition);
}

// Acceptance: a deterministic over-quota scenario (fake clock) drives one
// tenant's burn rate over both window thresholds; ClusterHealth degrades
// while the well-behaved tenant's SLIs stay green.
TEST_F(ShardRouterTest, SustainedOverQuotaBurnDegradesHealthPerTenant) {
  ShardRouterOptions options = Options(2);
  options.admission.tokens_per_second = 1.0;  // 1 request/second sustained
  options.admission.burst = 2.0;
  options.slo.fast_window_seconds = 60;
  options.slo.slow_window_seconds = 120;
  std::atomic<int64_t> fake_second{1'000'000};
  options.clock = [&fake_second] {
    return std::chrono::steady_clock::time_point(
        std::chrono::seconds(fake_second.load()));
  };
  auto router = MakeRouter(options);
  EXPECT_EQ(router->ClusterHealth(), Health::kHealthy);

  // Two minutes of injected time: "calm" sends 1 rps (inside quota, all
  // good); "noisy" sends 20 rps against a 1 rps quota, so ~95% of its
  // requests reject with ResourceExhausted — an SLI error every time.
  for (int s = 0; s < 120; ++s) {
    fake_second.fetch_add(1);
    ASSERT_TRUE(
        router->CallCreate("calm", StrFormat("calm-%d", s), 1).status.ok());
    for (int i = 0; i < 20; ++i)
      (void)router->CallCreate("noisy", StrFormat("noisy-%d-%d", s, i), 1);
  }

  EXPECT_EQ(router->ClusterHealth(), Health::kDegraded)
      << "sustained burn must degrade cluster health";
  const auto snap = router->TakeSnapshot();
  EXPECT_EQ(snap.health, Health::kDegraded);
  const obs::TenantSli* calm = nullptr;
  const obs::TenantSli* noisy = nullptr;
  for (const auto& sli : snap.slo) {
    if (sli.tenant == "calm") calm = &sli;
    if (sli.tenant == "noisy") noisy = &sli;
  }
  ASSERT_NE(calm, nullptr);
  ASSERT_NE(noisy, nullptr);
  EXPECT_TRUE(noisy->burning);
  EXPECT_GT(noisy->fast_burn, options.slo.fast_burn_threshold);
  EXPECT_GT(noisy->slow_burn, options.slo.slow_burn_threshold);
  EXPECT_FALSE(calm->burning);
  EXPECT_DOUBLE_EQ(calm->fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(calm->slow_availability, 1.0);
  // The blast radius stops at observability: the noisy tenant's own
  // admitted requests and the calm tenant keep serving.
  EXPECT_TRUE(router->CallCreate("calm", "calm-after", 1).status.ok());

  // The router's black box kept records of the shed requests (op=Route).
  EXPECT_GT(router->router_flight_recorder().total_appended(), 0u);
  const auto records = router->router_flight_recorder().Snapshot();
  ASSERT_FALSE(records.empty());
  bool saw_route_shed = false;
  for (const auto& rec : records) {
    if (rec.op == obs::FlightOp::kRoute &&
        rec.status == static_cast<uint8_t>(StatusCode::kResourceExhausted))
      saw_route_shed = true;
  }
  EXPECT_TRUE(saw_route_shed);
}

}  // namespace
}  // namespace cascn::cluster
