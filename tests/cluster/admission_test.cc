// Admission control: per-tenant token buckets (with injected clocks, so
// every refill is deterministic) and the queue-depth load-shed gate.

#include "cluster/admission.h"

#include <chrono>

#include <gtest/gtest.h>

namespace cascn::cluster {
namespace {

using TimePoint = AdmissionController::TimePoint;

TimePoint T0() { return TimePoint{}; }

TimePoint After(double seconds) {
  return T0() + std::chrono::duration_cast<TimePoint::duration>(
                    std::chrono::duration<double>(seconds));
}

AdmissionOptions QuotaOptions(double rate, double burst) {
  AdmissionOptions options;
  options.tokens_per_second = rate;
  options.burst = burst;
  return options;
}

TEST(AdmissionTest, BurstThenRejectThenRefill) {
  AdmissionController admission(QuotaOptions(10.0, 2.0));
  // The bucket starts full: burst of 2 admitted back to back.
  EXPECT_TRUE(admission.AdmitTenant("acme", T0()).ok());
  EXPECT_TRUE(admission.AdmitTenant("acme", T0()).ok());
  const Status rejected = admission.AdmitTenant("acme", T0());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  // 100 ms at 10 tokens/s refills exactly one token.
  EXPECT_TRUE(admission.AdmitTenant("acme", After(0.1)).ok());
  EXPECT_EQ(admission.AdmitTenant("acme", After(0.1)).code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, TenantsAreIsolated) {
  AdmissionController admission(QuotaOptions(1.0, 1.0));
  EXPECT_TRUE(admission.AdmitTenant("a", T0()).ok());
  EXPECT_EQ(admission.AdmitTenant("a", T0()).code(),
            StatusCode::kResourceExhausted);
  // Tenant b's bucket is untouched by a's exhaustion.
  EXPECT_TRUE(admission.AdmitTenant("b", T0()).ok());
}

TEST(AdmissionTest, RefillIsCappedAtBurst) {
  AdmissionController admission(QuotaOptions(100.0, 3.0));
  // An hour idle refills to the burst cap, not to 360000 tokens.
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(admission.AdmitTenant("t", After(3600.0)).ok()) << i;
  EXPECT_EQ(admission.AdmitTenant("t", After(3600.0)).code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, DisabledQuotasAndAnonymousTenantsAlwaysAdmit) {
  AdmissionController disabled{AdmissionOptions{}};  // rate 0 = off
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(disabled.AdmitTenant("anyone", T0()).ok());

  AdmissionController strict(QuotaOptions(1.0, 1.0));
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(strict.AdmitTenant("", T0()).ok());  // unnamed = exempt
}

TEST(AdmissionTest, LoadShedGateTracksQueueFraction) {
  AdmissionOptions options;
  options.shed_queue_fraction = 0.85;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitLoad(84, 100).ok());
  EXPECT_TRUE(admission.AdmitLoad(85, 100).ok());  // exactly at threshold
  const Status shed = admission.AdmitLoad(86, 100);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.total_shed(), 1u);
}

TEST(AdmissionTest, SheddingCanBeDisabled) {
  AdmissionOptions options;
  options.shed_queue_fraction = 1.0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitLoad(100, 100).ok());
}

TEST(AdmissionTest, BackwardsClockSkewNeverMintsOrDestroysTokens) {
  AdmissionController admission(QuotaOptions(10.0, 2.0));
  // Drain the burst at t=100 s.
  EXPECT_TRUE(admission.AdmitTenant("t", After(100.0)).ok());
  EXPECT_TRUE(admission.AdmitTenant("t", After(100.0)).ok());
  EXPECT_EQ(admission.AdmitTenant("t", After(100.0)).code(),
            StatusCode::kResourceExhausted);
  // The clock jumps BACK 99 s (VM migration, NTP step): the bucket must
  // neither mint phantom tokens nor wedge — it re-anchors and stays empty.
  EXPECT_EQ(admission.AdmitTenant("t", After(1.0)).code(),
            StatusCode::kResourceExhausted);
  // Refill resumes from the re-anchored instant at the configured rate:
  // 50 ms is half a token, 100 ms is the first whole one.
  EXPECT_EQ(admission.AdmitTenant("t", After(1.05)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(admission.AdmitTenant("t", After(1.1)).ok());
  // And a later huge forward jump still refills to the cap, not beyond.
  EXPECT_TRUE(admission.AdmitTenant("t", After(9999.0)).ok());
  EXPECT_TRUE(admission.AdmitTenant("t", After(9999.0)).ok());
  EXPECT_EQ(admission.AdmitTenant("t", After(9999.0)).code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, StatsCountAdmissionsPerTenant) {
  AdmissionController admission(QuotaOptions(1.0, 2.0));
  EXPECT_TRUE(admission.AdmitTenant("beta", T0()).ok());
  EXPECT_TRUE(admission.AdmitTenant("alpha", T0()).ok());
  EXPECT_TRUE(admission.AdmitTenant("alpha", T0()).ok());
  EXPECT_FALSE(admission.AdmitTenant("alpha", T0()).ok());
  const auto stats = admission.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].tenant, "alpha");  // sorted by name
  EXPECT_EQ(stats[0].admitted, 2u);
  EXPECT_EQ(stats[0].rejected, 1u);
  EXPECT_EQ(stats[1].tenant, "beta");
  EXPECT_EQ(stats[1].admitted, 1u);
  EXPECT_EQ(stats[1].rejected, 0u);
  EXPECT_EQ(admission.total_shed(), 1u);
}

}  // namespace
}  // namespace cascn::cluster
