// Handoff files: round-trip fidelity, detection of torn/corrupt images,
// and the injected torn-write fault that the rebalance retry path absorbs.

#include "cluster/handoff.h"

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/file_util.h"
#include "fault/fault.h"

namespace cascn::cluster {
namespace {

class HandoffTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Get().Clear(); }
  void TearDown() override { fault::FaultRegistry::Get().Clear(); }

  static std::string TempPath(const char* name) {
    return ::testing::TempDir() + name;
  }
};

std::vector<HandoffEntry> SampleEntries() {
  return {
      {"session-a", std::string("\x01\x02\x03", 3)},
      {"session-b", ""},  // an empty blob is legal
      {"s", std::string(1000, 'x')},
  };
}

TEST_F(HandoffTest, SerializeParseRoundTrip) {
  const auto entries = SampleEntries();
  const std::string bytes = SerializeHandoff(7, entries);
  Result<HandoffImage> parsed = ParseHandoff(bytes, "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().source_shard, 7);
  ASSERT_EQ(parsed.value().entries.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed.value().entries[i].session_id, entries[i].session_id);
    EXPECT_EQ(parsed.value().entries[i].blob, entries[i].blob);
  }
}

TEST_F(HandoffTest, EmptyImageRoundTrips) {
  const std::string bytes = SerializeHandoff(0, {});
  Result<HandoffImage> parsed = ParseHandoff(bytes, "empty");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST_F(HandoffTest, TruncationAndBitRotAreIoErrors) {
  const std::string bytes = SerializeHandoff(1, SampleEntries());
  for (const size_t keep : {bytes.size() / 2, bytes.size() - 1, size_t{4}}) {
    Result<HandoffImage> torn = ParseHandoff(bytes.substr(0, keep), "torn");
    EXPECT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::kIoError) << keep;
  }
  std::string corrupt = bytes;
  corrupt[bytes.size() / 3] ^= 0x40;
  Result<HandoffImage> flipped = ParseHandoff(corrupt, "corrupt");
  EXPECT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kIoError);
}

TEST_F(HandoffTest, WrongMagicIsInvalidArgument) {
  std::string bytes = SerializeHandoff(1, SampleEntries());
  bytes[0] = 'X';
  // Re-stamp the CRC so only the magic is at fault.
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  Result<HandoffImage> parsed = ParseHandoff(bytes, "magic");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HandoffTest, WriteReadRoundTripsThroughDisk) {
  const std::string path = TempPath("handoff_roundtrip.bin");
  ASSERT_TRUE(WriteHandoffFile(path, 3, SampleEntries()).ok());
  Result<HandoffImage> read = ReadHandoffFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().source_shard, 3);
  EXPECT_EQ(read.value().entries.size(), 3u);
  std::remove(path.c_str());
}

TEST_F(HandoffTest, InjectedTornWriteFailsThenRetrySucceeds) {
  const std::string path = TempPath("handoff_torn.bin");
  std::remove(path.c_str());
  ASSERT_TRUE(fault::FaultRegistry::Get()
                  .Configure(std::string(kFaultHandoffTornWrite) + "=nth:1")
                  .ok());
  const auto entries = SampleEntries();
  // First write is torn mid-stream: it fails, and the destination does not
  // exist (only a torn temp file does).
  const Status torn = WriteHandoffFile(path, 2, entries);
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  EXPECT_FALSE(ReadHandoffFile(path).ok());
  // The torn temp image itself fails CRC validation if ever read.
  Result<std::string> tmp = ReadFileToString(path + ".tmp");
  ASSERT_TRUE(tmp.ok());
  EXPECT_EQ(ParseHandoff(tmp.value(), "tmp").status().code(),
            StatusCode::kIoError);
  // The retry (fault exhausted) lands the full image.
  ASSERT_TRUE(WriteHandoffFile(path, 2, entries).ok());
  Result<HandoffImage> read = ReadHandoffFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().entries.size(), entries.size());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace cascn::cluster
