#include "parallel/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.h"

namespace cascn::parallel {
namespace {

// Restores the thread override on scope exit so tests cannot leak a
// SetThreads() into each other.
struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetThreads(n); }
  ~ScopedThreads() { SetThreads(0); }
};

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(HardwareConcurrencyTest, AtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ScopedThreads threads(4);
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, MoreWorkThanThreads) {
  ScopedThreads threads(2);
  std::atomic<long> sum{0};
  ParallelFor(1000,
              [&sum](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  ScopedThreads threads(1);
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  ParallelFor(10, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<int>(i));  // unsynchronized: serial contract
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ScopedThreads threads(4);
  std::atomic<int> ran{0};
  try {
    ParallelFor(64, [&ran](size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("boom at 7");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // The throwing chunk ran; remaining chunks may have been abandoned.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);
}

TEST(ParallelForTest, PoolIsReusableAfterException) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      ParallelFor(16, [](size_t) { throw std::runtime_error("fail"); }),
      std::runtime_error);
  std::atomic<int> counter{0};
  ParallelFor(100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  ScopedThreads threads(4);
  std::atomic<long> sum{0};
  ParallelFor(8, [&sum](size_t) {
    ParallelFor(32, [&sum](size_t j) {
      sum.fetch_add(static_cast<long>(j));
    });
  });
  EXPECT_EQ(sum.load(), 8L * (31L * 32 / 2));
}

TEST(ParallelForRangeTest, RangesAreDisjointAndCoverAll) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelForRange(hits.size(), 64, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 64u);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ConfiguredThreadsTest, OverrideWinsAndResets) {
  const size_t base = ConfiguredThreads();
  EXPECT_GE(base, 1u);
  {
    ScopedThreads threads(3);
    EXPECT_EQ(ConfiguredThreads(), 3u);
  }
  EXPECT_EQ(ConfiguredThreads(), base);
}

}  // namespace
}  // namespace cascn::parallel
