#include "viz/tsne.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "viz/export.h"

namespace cascn {
namespace {

/// Two well-separated Gaussian blobs in 5-D.
Tensor TwoBlobs(int per_blob, Rng& rng) {
  Tensor x(2 * per_blob, 5);
  for (int i = 0; i < 2 * per_blob; ++i) {
    const double offset = i < per_blob ? 0.0 : 25.0;
    for (int j = 0; j < 5; ++j) x.At(i, j) = offset + rng.Normal();
  }
  return x;
}

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Tensor x = Tensor::RandomNormal(20, 4, 1.0, rng);
  TsneOptions opts;
  opts.iterations = 50;
  const Tensor y = TsneEmbed(x, opts);
  EXPECT_EQ(y.rows(), 20);
  EXPECT_EQ(y.cols(), 2);
}

TEST(TsneTest, DeterministicGivenOptions) {
  Rng rng(2);
  Tensor x = Tensor::RandomNormal(15, 3, 1.0, rng);
  TsneOptions opts;
  opts.iterations = 40;
  EXPECT_TRUE(AllClose(TsneEmbed(x, opts), TsneEmbed(x, opts)));
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  Rng rng(3);
  const int per_blob = 15;
  Tensor x = TwoBlobs(per_blob, rng);
  TsneOptions opts;
  opts.iterations = 250;
  const Tensor y = TsneEmbed(x, opts);
  // Mean intra-blob distance must be far below the inter-blob centroid
  // distance.
  double cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  for (int i = 0; i < per_blob; ++i) {
    cx0 += y.At(i, 0);
    cy0 += y.At(i, 1);
    cx1 += y.At(per_blob + i, 0);
    cy1 += y.At(per_blob + i, 1);
  }
  cx0 /= per_blob;
  cy0 /= per_blob;
  cx1 /= per_blob;
  cy1 /= per_blob;
  const double inter = std::hypot(cx0 - cx1, cy0 - cy1);
  double intra = 0;
  for (int i = 0; i < per_blob; ++i) {
    intra += std::hypot(y.At(i, 0) - cx0, y.At(i, 1) - cy0);
    intra += std::hypot(y.At(per_blob + i, 0) - cx1,
                        y.At(per_blob + i, 1) - cy1);
  }
  intra /= 2 * per_blob;
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(TsneTest, FinitesForDegeneratePoints) {
  // All-identical points must not produce NaNs.
  Tensor x(10, 3, 1.0);
  TsneOptions opts;
  opts.iterations = 30;
  const Tensor y = TsneEmbed(x, opts);
  for (int i = 0; i < y.rows(); ++i)
    for (int j = 0; j < 2; ++j) EXPECT_TRUE(std::isfinite(y.At(i, j)));
}

TEST(ExportTest, WriteMatrixCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/matrix.csv";
  Tensor m = Tensor::FromRows({{1, 2}, {3, 4}});
  ASSERT_TRUE(WriteMatrixCsv(path, m, {"a", "b"}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteMatrixCsvRejectsHeaderMismatch) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  EXPECT_FALSE(WriteMatrixCsv(path, Tensor(1, 2), {"only_one"}).ok());
}

TEST(ExportTest, WriteScatterCsv) {
  const std::string path = ::testing::TempDir() + "/scatter.csv";
  Tensor layout = Tensor::FromRows({{0.5, -1.0}, {2.0, 3.0}});
  ASSERT_TRUE(WriteScatterCsv(path, layout, {7.0, 8.0}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y,color");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,-1,7");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteScatterCsvValidatesShapes) {
  const std::string path = ::testing::TempDir() + "/x.csv";
  EXPECT_FALSE(WriteScatterCsv(path, Tensor(2, 3), {1.0, 2.0}).ok());
  EXPECT_FALSE(WriteScatterCsv(path, Tensor(2, 2), {1.0}).ok());
}

}  // namespace
}  // namespace cascn
