#include "tensor/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cascn {
namespace {

TEST(CholeskyTest, FactorsKnownSpdMatrix) {
  // A = L L^T with L = [[2,0],[1,3]].
  Tensor a = Tensor::FromRows({{4, 2}, {2, 10}});
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->At(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l->At(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l->At(1, 1), 3.0, 1e-12);
  EXPECT_NEAR(l->At(0, 1), 0.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Tensor a = Tensor::FromRows({{1, 5}, {5, 1}});  // indefinite
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Tensor(2, 3)).ok());
}

TEST(SolveSpdTest, SolvesRandomSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 3 + trial;
    // SPD via B B^T + n I.
    Tensor b = Tensor::RandomNormal(n, n, 1.0, rng);
    Tensor a = MatMulTransposeB(b, b);
    for (int i = 0; i < n; ++i) a.At(i, i) += n;
    Tensor x_true = Tensor::RandomNormal(n, 2, 1.0, rng);
    Tensor rhs = MatMul(a, x_true);
    auto x = SolveSpd(a, rhs);
    ASSERT_TRUE(x.ok());
    EXPECT_TRUE(AllClose(*x, x_true, 1e-8));
  }
}

TEST(SolveSpdTest, DimensionMismatchFails) {
  EXPECT_FALSE(SolveSpd(Tensor::Identity(3), Tensor(2, 1)).ok());
}

TEST(PowerIterationTest, DiagonalMatrixDominantEigenvalue) {
  CsrMatrix a = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 5.0}, {2, 2, 2.0}});
  EXPECT_NEAR(PowerIterationLargestEigenvalue(a), 5.0, 1e-6);
}

TEST(PowerIterationTest, SymmetricKnownSpectrum) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  CsrMatrix a = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  EXPECT_NEAR(PowerIterationLargestEigenvalue(a), 3.0, 1e-6);
}

TEST(PowerIterationTest, ZeroMatrixGivesZero) {
  CsrMatrix zero = CsrMatrix::FromTriplets(3, 3, {});
  EXPECT_NEAR(PowerIterationLargestEigenvalue(zero), 0.0, 1e-12);
}

TEST(StationaryDistributionTest, TwoStateChain) {
  // P = [[0.9, 0.1], [0.5, 0.5]] -> phi = (5/6, 1/6).
  CsrMatrix p = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 0.9}, {0, 1, 0.1}, {1, 0, 0.5}, {1, 1, 0.5}});
  auto phi = StationaryDistribution(p);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[0], 5.0 / 6.0, 1e-8);
  EXPECT_NEAR((*phi)[1], 1.0 / 6.0, 1e-8);
}

TEST(StationaryDistributionTest, UniformChain) {
  const int n = 4;
  std::vector<Triplet> trips;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) trips.push_back({i, j, 1.0 / n});
  auto phi = StationaryDistribution(CsrMatrix::FromTriplets(n, n, trips));
  ASSERT_TRUE(phi.ok());
  for (double v : *phi) EXPECT_NEAR(v, 1.0 / n, 1e-9);
}

TEST(StationaryDistributionTest, SumsToOne) {
  // Random stochastic matrix.
  Rng rng(31);
  const int n = 6;
  std::vector<Triplet> trips;
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(n);
    double sum = 0;
    for (int j = 0; j < n; ++j) {
      row[j] = rng.Uniform() + 0.01;
      sum += row[j];
    }
    for (int j = 0; j < n; ++j) trips.push_back({i, j, row[j] / sum});
  }
  auto phi = StationaryDistribution(CsrMatrix::FromTriplets(n, n, trips));
  ASSERT_TRUE(phi.ok());
  double total = 0;
  for (double v : *phi) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(StationaryDistributionTest, RejectsNonSquare) {
  EXPECT_FALSE(StationaryDistribution(CsrMatrix::FromTriplets(2, 3, {})).ok());
}

TEST(PrincipalComponentsTest, RecoversDominantDirection) {
  // Points stretched along (1, 1)/sqrt(2).
  Rng rng(41);
  Tensor x(200, 2);
  for (int i = 0; i < 200; ++i) {
    const double along = rng.Normal() * 10.0;
    const double across = rng.Normal() * 0.1;
    x.At(i, 0) = along + across;
    x.At(i, 1) = along - across;
  }
  Tensor comps = PrincipalComponents(x, 1);
  const double ratio = comps.At(0, 0) / comps.At(1, 0);
  EXPECT_NEAR(std::fabs(ratio), 1.0, 0.05);
}

TEST(PrincipalComponentsTest, ComponentsAreOrthonormal) {
  Rng rng(43);
  Tensor x = Tensor::RandomNormal(50, 5, 1.0, rng);
  Tensor comps = PrincipalComponents(x, 3);
  for (int a = 0; a < 3; ++a) {
    double norm = 0;
    for (int i = 0; i < 5; ++i) norm += comps.At(i, a) * comps.At(i, a);
    EXPECT_NEAR(norm, 1.0, 1e-6);
    for (int b = a + 1; b < 3; ++b) {
      double dot = 0;
      for (int i = 0; i < 5; ++i) dot += comps.At(i, a) * comps.At(i, b);
      EXPECT_NEAR(dot, 0.0, 1e-5);
    }
  }
}

}  // namespace
}  // namespace cascn
