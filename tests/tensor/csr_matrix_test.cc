#include "tensor/csr_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cascn {
namespace {

/// Random sparse matrix with the given density.
CsrMatrix RandomSparse(int rows, int cols, double density, Rng& rng) {
  std::vector<Triplet> trips;
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      if (rng.Bernoulli(density)) trips.push_back({i, j, rng.Normal()});
  return CsrMatrix::FromTriplets(rows, cols, std::move(trips));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrixTest, FromTripletsMergesDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}});
  EXPECT_EQ(m.nnz(), 2);
  Tensor dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(dense.At(1, 1), 5.0);
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  Tensor dense = Tensor::FromRows({{0, 1, 0}, {2, 0, 3}});
  EXPECT_TRUE(AllClose(CsrMatrix::FromDense(dense).ToDense(), dense));
}

TEST(CsrMatrixTest, FromDenseDropsZeros) {
  Tensor dense = Tensor::FromRows({{0, 1}, {0, 0}});
  EXPECT_EQ(CsrMatrix::FromDense(dense).nnz(), 1);
}

TEST(CsrMatrixTest, IdentityBehaves) {
  CsrMatrix eye = CsrMatrix::Identity(4);
  EXPECT_EQ(eye.nnz(), 4);
  Rng rng(3);
  Tensor x = Tensor::RandomNormal(4, 5, 1.0, rng);
  EXPECT_TRUE(AllClose(eye.MatMulDense(x), x));
}

class SpMMSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(SpMMSweep, MatchesDenseMatMul) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  CsrMatrix sparse = RandomSparse(m, k, 0.3, rng);
  Tensor dense = Tensor::RandomNormal(k, n, 1.0, rng);
  EXPECT_TRUE(AllClose(sparse.MatMulDense(dense),
                       MatMul(sparse.ToDense(), dense), 1e-9));
}

TEST_P(SpMMSweep, TransposeMatMulMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  CsrMatrix sparse = RandomSparse(m, k, 0.3, rng);
  Tensor dense = Tensor::RandomNormal(m, n, 1.0, rng);
  EXPECT_TRUE(AllClose(sparse.TransposeMatMulDense(dense),
                       MatMul(sparse.ToDense().Transposed(), dense), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpMMSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 4, 2),
                      std::make_tuple(6, 6, 6), std::make_tuple(10, 3, 7)));

TEST(CsrMatrixTest, TransposedRoundTrip) {
  Rng rng(17);
  CsrMatrix m = RandomSparse(5, 7, 0.4, rng);
  EXPECT_TRUE(AllClose(m.Transposed().ToDense(), m.ToDense().Transposed()));
  EXPECT_TRUE(AllClose(m.Transposed().Transposed().ToDense(), m.ToDense()));
}

TEST(CsrMatrixTest, AddWithCoefficients) {
  Rng rng(19);
  CsrMatrix a = RandomSparse(4, 4, 0.5, rng);
  CsrMatrix b = RandomSparse(4, 4, 0.5, rng);
  Tensor expected = a.ToDense();
  expected.Scale(2.0);
  expected.Axpy(-0.5, b.ToDense());
  EXPECT_TRUE(AllClose(a.Add(b, 2.0, -0.5).ToDense(), expected, 1e-12));
}

TEST(CsrMatrixTest, SparseSparseProductMatchesDense) {
  Rng rng(23);
  CsrMatrix a = RandomSparse(5, 6, 0.4, rng);
  CsrMatrix b = RandomSparse(6, 4, 0.4, rng);
  EXPECT_TRUE(AllClose(a.MatMulSparse(b).ToDense(),
                       MatMul(a.ToDense(), b.ToDense()), 1e-9));
}

TEST(CsrMatrixTest, ScaledMultipliesValues) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 1, 2.0}});
  EXPECT_DOUBLE_EQ(m.Scaled(-3.0).ToDense().At(0, 1), -6.0);
}

TEST(CsrMatrixTest, RowOffsetsAreConsistent) {
  Rng rng(29);
  CsrMatrix m = RandomSparse(8, 8, 0.3, rng);
  const auto& offsets = m.row_offsets();
  ASSERT_EQ(offsets.size(), 9u);
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), m.nnz());
  for (size_t i = 1; i < offsets.size(); ++i)
    EXPECT_GE(offsets[i], offsets[i - 1]);
}

}  // namespace
}  // namespace cascn
