#include "tensor/variable.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"

namespace cascn::ag {
namespace {

Variable RandomLeaf(int rows, int cols, uint64_t seed,
                    bool requires_grad = true) {
  Rng rng(seed);
  return Variable::Leaf(Tensor::RandomNormal(rows, cols, 1.0, rng),
                        requires_grad);
}

TEST(VariableTest, LeafHoldsValue) {
  Variable v = Variable::Leaf(Tensor::FromRows({{1, 2}}));
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_DOUBLE_EQ(v.value().At(0, 1), 2.0);
  EXPECT_FALSE(v.requires_grad());
}

TEST(VariableTest, ForwardValuesMatchTensorOps) {
  Variable a = Variable::Leaf(Tensor::FromRows({{1, 2}, {3, 4}}));
  Variable b = Variable::Leaf(Tensor::FromRows({{5, 6}, {7, 8}}));
  EXPECT_TRUE(AllClose(Add(a, b).value(), Tensor::FromRows({{6, 8}, {10, 12}})));
  EXPECT_TRUE(AllClose(Sub(a, b).value(),
                       Tensor::FromRows({{-4, -4}, {-4, -4}})));
  EXPECT_TRUE(AllClose(Mul(a, b).value(), Tensor::FromRows({{5, 12}, {21, 32}})));
  EXPECT_TRUE(AllClose(MatMul(a, b).value(),
                       Tensor::FromRows({{19, 22}, {43, 50}})));
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  // loss = sum(a * a) -> dloss/da = 2a.
  Variable a = Variable::Leaf(Tensor::FromRows({{2, -3}}), true);
  Variable loss = Sum(Square(a));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.grad().At(0, 1), -6.0);
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  Variable a = Variable::Leaf(Tensor::FromRows({{1.0}}), true);
  Sum(Square(a)).Backward();
  Sum(Square(a)).Backward();
  EXPECT_DOUBLE_EQ(a.grad().At(0, 0), 4.0);  // 2 + 2
  a.ZeroGrad();
  EXPECT_DOUBLE_EQ(a.grad().At(0, 0), 0.0);
}

TEST(VariableTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum((a + a) * a) = 2 sum(a^2) -> grad = 4a.
  Variable a = Variable::Leaf(Tensor::FromRows({{3.0}}), true);
  Variable loss = Sum(Mul(Add(a, a), a));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().At(0, 0), 12.0);
}

TEST(VariableTest, ConstantBranchesGetNoGradient) {
  Variable a = Variable::Leaf(Tensor::FromRows({{1.0}}), true);
  Variable c = Variable::Leaf(Tensor::FromRows({{5.0}}), false);
  Variable loss = Sum(Mul(a, c));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().At(0, 0), 5.0);
  EXPECT_TRUE(c.grad().empty());
}

// --- Gradient checks for every op -------------------------------------------

TEST(GradCheckTest, Add) {
  Variable a = RandomLeaf(3, 2, 1);
  Variable b = RandomLeaf(3, 2, 2, false);
  auto r = CheckGradient(a, [&](const Variable& x) { return Sum(Add(x, b)); });
  EXPECT_TRUE(r.ok) << "rel err " << r.max_rel_error;
}

TEST(GradCheckTest, SubBothSides) {
  Variable a = RandomLeaf(2, 3, 3);
  Variable b = RandomLeaf(2, 3, 4);
  auto ra =
      CheckGradient(a, [&](const Variable& x) { return Sum(Sub(x, b)); });
  EXPECT_TRUE(ra.ok);
  auto rb =
      CheckGradient(b, [&](const Variable& x) { return Sum(Sub(a, x)); });
  EXPECT_TRUE(rb.ok);
}

TEST(GradCheckTest, MulElementwise) {
  Variable a = RandomLeaf(3, 3, 5);
  Variable b = RandomLeaf(3, 3, 6, false);
  auto r = CheckGradient(
      a, [&](const Variable& x) { return Sum(Square(Mul(x, b))); });
  EXPECT_TRUE(r.ok) << r.max_rel_error;
}

TEST(GradCheckTest, AddRowBroadcast) {
  Variable a = RandomLeaf(4, 3, 7);
  Variable bias = RandomLeaf(1, 3, 8);
  auto ra = CheckGradient(a, [&](const Variable& x) {
    return Sum(Square(AddRowBroadcast(x, bias)));
  });
  EXPECT_TRUE(ra.ok);
  auto rb = CheckGradient(bias, [&](const Variable& x) {
    return Sum(Square(AddRowBroadcast(a, x)));
  });
  EXPECT_TRUE(rb.ok);
}

TEST(GradCheckTest, ScalarOps) {
  Variable a = RandomLeaf(2, 2, 9);
  auto r1 = CheckGradient(
      a, [&](const Variable& x) { return Sum(Square(ScalarMul(x, -2.5))); });
  EXPECT_TRUE(r1.ok);
  auto r2 = CheckGradient(
      a, [&](const Variable& x) { return Sum(Square(AddScalar(x, 1.5))); });
  EXPECT_TRUE(r2.ok);
}

TEST(GradCheckTest, ScaleByScalarBothInputs) {
  Variable a = RandomLeaf(3, 2, 10);
  Variable s = RandomLeaf(1, 1, 11);
  auto ra = CheckGradient(a, [&](const Variable& x) {
    return Sum(Square(ScaleByScalar(x, s)));
  });
  EXPECT_TRUE(ra.ok);
  auto rs = CheckGradient(s, [&](const Variable& x) {
    return Sum(Square(ScaleByScalar(a, x)));
  });
  EXPECT_TRUE(rs.ok);
}

TEST(GradCheckTest, MatMulBothSides) {
  Variable a = RandomLeaf(3, 4, 12);
  Variable b = RandomLeaf(4, 2, 13);
  auto ra = CheckGradient(
      a, [&](const Variable& x) { return Sum(Square(MatMul(x, b))); });
  EXPECT_TRUE(ra.ok) << ra.max_rel_error;
  auto rb = CheckGradient(
      b, [&](const Variable& x) { return Sum(Square(MatMul(a, x))); });
  EXPECT_TRUE(rb.ok) << rb.max_rel_error;
}

TEST(GradCheckTest, SparseMatMul) {
  CsrMatrix op = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 2.0}, {0, 2, -1.0}, {1, 1, 0.5}, {2, 0, 1.5}});
  Variable x = RandomLeaf(3, 2, 14);
  auto r = CheckGradient(x, [&](const Variable& v) {
    return Sum(Square(SparseMatMul(op, v)));
  });
  EXPECT_TRUE(r.ok) << r.max_rel_error;
}

TEST(GradCheckTest, Nonlinearities) {
  for (uint64_t seed : {20ull, 21ull}) {
    Variable a = RandomLeaf(3, 3, seed);
    EXPECT_TRUE(CheckGradient(a, [](const Variable& x) {
                  return Sum(Sigmoid(x));
                }).ok);
    EXPECT_TRUE(
        CheckGradient(a, [](const Variable& x) { return Sum(Tanh(x)); }).ok);
    EXPECT_TRUE(CheckGradient(a, [](const Variable& x) {
                  return Sum(Softplus(x));
                }).ok);
    EXPECT_TRUE(CheckGradient(a, [](const Variable& x) {
                  return Sum(Square(x));
                }).ok);
  }
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Values kept away from 0 so finite differences are valid.
  Tensor init = Tensor::FromRows({{1.0, -1.0}, {2.0, -0.5}});
  Variable a = Variable::Leaf(init, true);
  auto r =
      CheckGradient(a, [](const Variable& x) { return Sum(Relu(x)); });
  EXPECT_TRUE(r.ok);
}

TEST(GradCheckTest, SoftmaxRows) {
  Variable a = RandomLeaf(3, 4, 22);
  Variable weight = RandomLeaf(3, 4, 23, false);
  auto r = CheckGradient(a, [&](const Variable& x) {
    return Sum(Mul(SoftmaxRows(x), weight));
  });
  EXPECT_TRUE(r.ok) << r.max_rel_error;
}

TEST(GradCheckTest, Reductions) {
  Variable a = RandomLeaf(3, 4, 24);
  EXPECT_TRUE(
      CheckGradient(a, [](const Variable& x) { return Mean(x); }).ok);
  EXPECT_TRUE(CheckGradient(a, [](const Variable& x) {
                return Sum(Square(SumRows(x)));
              }).ok);
  EXPECT_TRUE(CheckGradient(a, [](const Variable& x) {
                return Sum(Square(MeanRows(x)));
              }).ok);
}

TEST(GradCheckTest, ConcatAndSlice) {
  Variable a = RandomLeaf(3, 2, 25);
  Variable b = RandomLeaf(3, 3, 26);
  auto rc = CheckGradient(a, [&](const Variable& x) {
    return Sum(Square(ConcatCols(x, b)));
  });
  EXPECT_TRUE(rc.ok);
  Variable c = RandomLeaf(4, 2, 27);
  auto rr = CheckGradient(c, [&](const Variable& x) {
    return Sum(Square(ConcatRows({x, a})));
  });
  EXPECT_TRUE(rr.ok);
  auto rs = CheckGradient(c, [](const Variable& x) {
    return Sum(Square(SliceRows(x, 1, 2)));
  });
  EXPECT_TRUE(rs.ok);
}

TEST(GradCheckTest, GatherRowsWithRepeats) {
  Variable table = RandomLeaf(5, 3, 28);
  const std::vector<int> indices = {0, 2, 2, 4};
  auto r = CheckGradient(table, [&](const Variable& x) {
    return Sum(Square(GatherRows(x, indices)));
  });
  EXPECT_TRUE(r.ok) << r.max_rel_error;
}

TEST(GradCheckTest, Transpose) {
  Variable a = RandomLeaf(2, 4, 29);
  Variable b = RandomLeaf(2, 2, 30, false);
  auto r = CheckGradient(a, [&](const Variable& x) {
    return Sum(Square(MatMul(Transpose(x), b)));
  });
  EXPECT_TRUE(r.ok);
}

TEST(GradCheckTest, DeepComposite) {
  // A small MLP-like composite touching many ops at once.
  Variable w1 = RandomLeaf(3, 4, 31);
  Variable b1 = RandomLeaf(1, 4, 32);
  Variable w2 = RandomLeaf(4, 1, 33);
  Variable x = RandomLeaf(2, 3, 34, false);
  auto forward = [&](const Variable& w) {
    Variable h = Tanh(AddRowBroadcast(MatMul(x, w), b1));
    return Sum(Square(MatMul(h, w2)));
  };
  auto r = CheckGradient(w1, forward);
  EXPECT_TRUE(r.ok) << r.max_rel_error;
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable a = RandomLeaf(2, 2, 35);
  EXPECT_DEATH(Add(a, a).Backward(), "scalar");
}

TEST(VariableTest, ShapeMismatchDies) {
  Variable a = RandomLeaf(2, 2, 36);
  Variable b = RandomLeaf(3, 2, 37);
  EXPECT_DEATH(Add(a, b), "shape");
}

}  // namespace
}  // namespace cascn::ag
