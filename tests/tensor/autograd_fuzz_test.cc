// Property-based fuzzing of the autodiff engine: random compositions of
// shape-preserving ops are gradient-checked against finite differences.
// Any op whose backward pass disagrees with its forward perturbation
// behaviour fails here, independent of the hand-written per-op tests.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/variable.h"

namespace cascn::ag {
namespace {

/// Applies a random shape-preserving smooth op.
Variable RandomUnaryOp(const Variable& x, Rng& rng) {
  switch (rng.UniformInt(6)) {
    case 0:
      return Sigmoid(x);
    case 1:
      return Tanh(x);
    case 2:
      return Softplus(x);
    case 3:
      return ScalarMul(x, rng.Uniform(-2.0, 2.0));
    case 4:
      return AddScalar(x, rng.Uniform(-1.0, 1.0));
    default:
      return Square(ScalarMul(x, 0.5));  // kept small to avoid blowup
  }
}

/// Mixes two same-shaped variables with a random binary op.
Variable RandomBinaryOp(const Variable& a, const Variable& b, Rng& rng) {
  switch (rng.UniformInt(3)) {
    case 0:
      return Add(a, b);
    case 1:
      return Sub(a, b);
    default:
      return Mul(a, b);
  }
}

class AutogradFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzz, RandomCompositionGradcheck) {
  Rng rng(GetParam());
  const int rows = 2 + static_cast<int>(rng.UniformInt(3));
  const int cols = 2 + static_cast<int>(rng.UniformInt(3));
  Variable leaf =
      Variable::Leaf(Tensor::RandomNormal(rows, cols, 0.7, rng), true);
  Variable constant =
      Variable::Leaf(Tensor::RandomNormal(rows, cols, 0.7, rng), false);

  // Rebuild the same random graph for every evaluation: snapshot the op
  // choices by re-seeding a local generator.
  const uint64_t graph_seed = rng.NextUint64();
  auto build = [&](const Variable& x) {
    Rng graph_rng(graph_seed);
    Variable a = x;
    Variable b = constant;
    for (int depth = 0; depth < 6; ++depth) {
      if (graph_rng.Bernoulli(0.5)) {
        a = RandomUnaryOp(a, graph_rng);
      } else {
        Variable mixed = RandomBinaryOp(a, b, graph_rng);
        b = a;
        a = mixed;
      }
    }
    return Mean(Square(a));
  };

  auto result = CheckGradient(leaf, build, 1e-5, 2e-5);
  EXPECT_TRUE(result.ok) << "seed " << GetParam() << " rel error "
                         << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzz,
                         ::testing::Range<uint64_t>(1, 25));

TEST(AutogradFuzzMatMul, RandomChainsWithMatMul) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    const int m = 2 + static_cast<int>(rng.UniformInt(3));
    const int k = 2 + static_cast<int>(rng.UniformInt(3));
    const int n = 2 + static_cast<int>(rng.UniformInt(3));
    Variable w = Variable::Leaf(Tensor::RandomNormal(k, n, 0.7, rng), true);
    Variable x =
        Variable::Leaf(Tensor::RandomNormal(m, k, 0.7, rng), false);
    Variable bias = Variable::Leaf(Tensor::RandomNormal(1, n, 0.7, rng),
                                   false);
    auto build = [&](const Variable& weight) {
      return Mean(Square(Tanh(AddRowBroadcast(MatMul(x, weight), bias))));
    };
    auto result = CheckGradient(w, build, 1e-5, 2e-5);
    EXPECT_TRUE(result.ok) << "seed " << seed << " rel "
                           << result.max_rel_error;
  }
}

}  // namespace
}  // namespace cascn::ag
