#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cascn {
namespace {

TEST(TensorTest, ConstructionZeroInitialises) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t.At(i, j), 0.0);
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(2, 2, 3.5);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 3.5);
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_DOUBLE_EQ(t.MeanValue(), 0.0);
}

TEST(TensorTest, FromRowsBuildsRowMajor) {
  Tensor t = Tensor::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(t.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 3.0);
}

TEST(TensorTest, IdentityMatrix) {
  Tensor eye = Tensor::Identity(3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(eye.At(i, j), i == j ? 1.0 : 0.0);
}

TEST(TensorTest, AddAxpyScale) {
  Tensor a = Tensor::FromRows({{1, 2}});
  Tensor b = Tensor::FromRows({{10, 20}});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 11.0);
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 32.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 32.0);
}

TEST(TensorTest, MapAppliesElementwise) {
  Tensor t = Tensor::FromRows({{1, -2}});
  Tensor m = t.Map([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), -2.0);  // original untouched
}

TEST(TensorTest, TransposedSwapsIndices) {
  Tensor t = Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.rows(), 3);
  EXPECT_EQ(tt.cols(), 2);
  EXPECT_DOUBLE_EQ(tt.At(2, 1), 6.0);
}

TEST(TensorTest, ReductionsAndNorm) {
  Tensor t = Tensor::FromRows({{3, -4}});
  EXPECT_DOUBLE_EQ(t.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(t.MeanValue(), -0.5);
  EXPECT_DOUBLE_EQ(t.AbsMax(), 4.0);
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(TensorTest, RowColSums) {
  Tensor t = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor cols = t.ColSums();
  EXPECT_DOUBLE_EQ(cols.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cols.At(0, 1), 6.0);
  Tensor rows = t.RowSums();
  EXPECT_DOUBLE_EQ(rows.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(rows.At(1, 0), 7.0);
}

TEST(TensorTest, RowAccessors) {
  Tensor t = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor row = t.Row(1);
  EXPECT_EQ(row.rows(), 1);
  EXPECT_DOUBLE_EQ(row.At(0, 1), 4.0);
  t.SetRow(0, Tensor::FromRows({{9, 8}}));
  EXPECT_DOUBLE_EQ(t.At(0, 0), 9.0);
}

TEST(TensorTest, MatMulKnownProduct) {
  Tensor a = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor b = Tensor::FromRows({{5, 6}, {7, 8}});
  Tensor c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(TensorTest, MatMulIdentityIsNoop) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(4, 4, 1.0, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Identity(4)), a));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Identity(4), a), a));
}

class MatMulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeSweep, TransposeVariantsAgreeWithExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Tensor a = Tensor::RandomNormal(m, k, 1.0, rng);
  Tensor b = Tensor::RandomNormal(k, n, 1.0, rng);
  // A^T via MatMulTransposeA(A, C) where A is (k x m).
  Tensor at = a.Transposed();
  EXPECT_TRUE(AllClose(MatMulTransposeA(at, b), MatMul(a, b), 1e-9));
  Tensor bt = b.Transposed();
  EXPECT_TRUE(AllClose(MatMulTransposeB(a, bt), MatMul(a, b), 1e-9));
}

TEST_P(MatMulShapeSweep, AssociatesWithScaling) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  Tensor a = Tensor::RandomNormal(m, k, 1.0, rng);
  Tensor b = Tensor::RandomNormal(k, n, 1.0, rng);
  Tensor scaled_a = a;
  scaled_a.Scale(2.0);
  Tensor expected = MatMul(a, b);
  expected.Scale(2.0);
  EXPECT_TRUE(AllClose(MatMul(scaled_a, b), expected, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 5), std::make_tuple(4, 7, 2),
                      std::make_tuple(8, 8, 8)));

TEST(TensorTest, ElementwiseBinaryOps) {
  Tensor a = Tensor::FromRows({{1, 2}});
  Tensor b = Tensor::FromRows({{3, 5}});
  EXPECT_TRUE(AllClose(Add(a, b), Tensor::FromRows({{4, 7}})));
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor::FromRows({{-2, -3}})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor::FromRows({{3, 10}})));
}

TEST(TensorTest, AllCloseRespectsTolerance) {
  Tensor a = Tensor::FromRows({{1.0}});
  Tensor b = Tensor::FromRows({{1.0 + 1e-6}});
  EXPECT_FALSE(AllClose(a, b, 1e-9));
  EXPECT_TRUE(AllClose(a, b, 1e-3));
  EXPECT_FALSE(AllClose(a, Tensor(2, 1)));
}

TEST(TensorTest, RandomGeneratorsAreDeterministic) {
  Rng r1(9), r2(9);
  EXPECT_TRUE(AllClose(Tensor::RandomNormal(3, 3, 1.0, r1),
                       Tensor::RandomNormal(3, 3, 1.0, r2)));
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(10);
  Tensor t = Tensor::RandomUniform(10, 10, -0.5, 0.5, rng);
  EXPECT_LE(t.AbsMax(), 0.5);
}

}  // namespace
}  // namespace cascn
