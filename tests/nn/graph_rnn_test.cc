#include "nn/graph_rnn_cells.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/cheb_conv.h"
#include "tensor/grad_check.h"

namespace cascn::nn {
namespace {

/// A tiny 3-node Chebyshev basis {I, L} for testing.
std::vector<CsrMatrix> TinyBasis(int n, int order) {
  std::vector<CsrMatrix> basis;
  basis.push_back(CsrMatrix::Identity(n));
  if (order >= 2) {
    // A symmetric "scaled Laplacian"-like operator.
    std::vector<Triplet> trips;
    for (int i = 0; i < n; ++i) trips.push_back({i, i, -0.5});
    for (int i = 0; i + 1 < n; ++i) {
      trips.push_back({i, i + 1, 0.25});
      trips.push_back({i + 1, i, 0.25});
    }
    basis.push_back(CsrMatrix::FromTriplets(n, n, trips));
  }
  for (int k = 2; k < order; ++k) {
    basis.push_back(basis[k - 1]
                        .MatMulSparse(basis[1])
                        .Scaled(2.0)
                        .Add(basis[k - 2], 1.0, -1.0));
  }
  return basis;
}

TEST(ChebConvTest, ForwardMatchesManualSum) {
  Rng rng(1);
  const int n = 3;
  ChebConv conv(n, 2, /*k=*/2, rng, /*with_bias=*/false);
  const auto basis = TinyBasis(n, 2);
  Tensor x_val = Tensor::RandomNormal(n, n, 1.0, rng);
  ag::Variable x = ag::Variable::Leaf(x_val);
  ag::Variable y = conv.Forward(basis, x);

  // Manual: sum_k T_k X W_k.
  auto params = conv.NamedParameters();
  ASSERT_EQ(params.size(), 2u);
  Tensor expected = MatMul(basis[0].MatMulDense(x_val),
                           params[0].second.value());
  expected.AddInPlace(
      MatMul(basis[1].MatMulDense(x_val), params[1].second.value()));
  EXPECT_TRUE(AllClose(y.value(), expected, 1e-12));
}

TEST(ChebConvTest, BiasIsAdded) {
  Rng rng(2);
  ChebConv conv(3, 2, 1, rng, /*with_bias=*/true);
  const auto basis = TinyBasis(3, 1);
  ag::Variable x = ag::Variable::Leaf(Tensor(3, 3));
  ag::Variable y = conv.Forward(basis, x);
  // Zero input: output must equal broadcast bias (zero-init) -> zeros.
  EXPECT_NEAR(y.value().AbsMax(), 0.0, 1e-12);
  EXPECT_EQ(static_cast<int>(conv.Parameters().size()), 2);
}

TEST(ChebConvTest, OrderMismatchDies) {
  Rng rng(3);
  ChebConv conv(3, 2, 2, rng);
  const auto basis = TinyBasis(3, 1);  // too short
  ag::Variable x = ag::Variable::Leaf(Tensor(3, 3));
  EXPECT_DEATH(conv.Forward(basis, x), "order mismatch");
}

TEST(ChebConvTest, GradCheck) {
  Rng rng(4);
  const int n = 3;
  ChebConv conv(n, 2, 2, rng);
  const auto basis = TinyBasis(n, 2);
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
  auto params = conv.Parameters();
  for (auto& p : params) {
    auto r = ag::CheckGradient(p, [&](const ag::Variable&) {
      return ag::Sum(ag::Square(conv.Forward(basis, x)));
    });
    EXPECT_TRUE(r.ok) << r.max_rel_error;
  }
}

TEST(GraphConvLstmCellTest, StepShapes) {
  Rng rng(5);
  const int n = 4, h = 3;
  GraphConvLstmCell cell(n, h, 2, rng);
  EXPECT_EQ(cell.num_nodes(), n);
  EXPECT_EQ(cell.hidden_dim(), h);
  EXPECT_EQ(cell.cheb_order(), 2);
  const auto basis = TinyBasis(n, 2);
  RnnState state = cell.InitialState();
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
  state = cell.Step(basis, x, state);
  EXPECT_EQ(state.h.rows(), n);
  EXPECT_EQ(state.h.cols(), h);
  EXPECT_EQ(state.c.rows(), n);
}

TEST(GraphConvLstmCellTest, HiddenBounded) {
  Rng rng(6);
  const int n = 3;
  GraphConvLstmCell cell(n, 4, 2, rng);
  const auto basis = TinyBasis(n, 2);
  RnnState state = cell.InitialState();
  for (int t = 0; t < 10; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(n, n, 2.0, rng));
    state = cell.Step(basis, x, state);
  }
  EXPECT_LE(state.h.value().AbsMax(), 1.0);
}

TEST(GraphConvLstmCellTest, GradientsReachEveryParameter) {
  Rng rng(7);
  const int n = 3;
  GraphConvLstmCell cell(n, 2, 2, rng);
  const auto basis = TinyBasis(n, 2);
  RnnState state = cell.InitialState();
  for (int t = 0; t < 2; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
    state = cell.Step(basis, x, state);
  }
  ag::Sum(ag::Square(state.h)).Backward();
  for (const auto& [name, p] : cell.NamedParameters())
    EXPECT_FALSE(p.grad().empty()) << name;
}

TEST(GraphConvLstmCellTest, GradCheckRepresentativeParams) {
  Rng rng(8);
  const int n = 2;
  GraphConvLstmCell cell(n, 2, 2, rng);
  const auto basis = TinyBasis(n, 2);
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
  auto forward = [&](const ag::Variable&) {
    RnnState s = cell.InitialState();
    s = cell.Step(basis, x, s);
    s = cell.Step(basis, x, s);
    return ag::Sum(ag::Square(s.h));
  };
  auto named = cell.NamedParameters();
  for (size_t i = 0; i < named.size(); i += 5) {
    auto r = ag::CheckGradient(named[i].second, forward);
    EXPECT_TRUE(r.ok) << named[i].first << " rel " << r.max_rel_error;
  }
}

TEST(GraphConvGruCellTest, StepShapesAndBounds) {
  Rng rng(9);
  const int n = 4;
  GraphConvGruCell cell(n, 3, 2, rng);
  const auto basis = TinyBasis(n, 2);
  RnnState state = cell.InitialState();
  for (int t = 0; t < 8; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
    state = cell.Step(basis, x, state);
    EXPECT_LE(state.h.value().AbsMax(), 1.0 + 1e-9);
  }
  EXPECT_EQ(state.h.rows(), n);
  EXPECT_EQ(state.h.cols(), 3);
}

TEST(GraphConvGruCellTest, GradientsFlow) {
  Rng rng(10);
  const int n = 3;
  GraphConvGruCell cell(n, 2, 2, rng);
  const auto basis = TinyBasis(n, 2);
  RnnState state = cell.InitialState();
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(n, n, 1.0, rng));
  state = cell.Step(basis, x, state);
  ag::Sum(ag::Square(state.h)).Backward();
  for (const auto& [name, p] : cell.NamedParameters())
    EXPECT_FALSE(p.grad().empty()) << name;
}

TEST(GraphConvCellsTest, WrongSignalShapeDies) {
  Rng rng(11);
  GraphConvLstmCell cell(4, 2, 2, rng);
  const auto basis = TinyBasis(4, 2);
  ag::Variable bad = ag::Variable::Leaf(Tensor(3, 4));
  EXPECT_DEATH(cell.Step(basis, bad, cell.InitialState()), "n x n");
}

}  // namespace
}  // namespace cascn::nn
