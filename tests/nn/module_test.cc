#include "nn/module.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace cascn::nn {
namespace {

class ToyModule : public Module {
 public:
  explicit ToyModule(Rng& rng) : inner_(2, 3, rng) {
    weight_ = RegisterParameter("weight", Tensor(2, 2, 1.5));
    RegisterSubmodule("inner", &inner_);
  }
  ag::Variable weight_;
  Linear inner_;
};

TEST(ModuleTest, ParametersIncludeSubmodules) {
  Rng rng(1);
  ToyModule m(rng);
  EXPECT_EQ(m.Parameters().size(), 3u);  // weight + inner weight/bias
}

TEST(ModuleTest, NamedParametersArePrefixed) {
  Rng rng(2);
  ToyModule m(rng);
  const auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "inner.weight");
  EXPECT_EQ(named[2].first, "inner.bias");
}

TEST(ModuleTest, ParameterCountSums) {
  Rng rng(3);
  ToyModule m(rng);
  EXPECT_EQ(m.ParameterCount(), 4 + 6 + 3);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(4);
  ToyModule m(rng);
  ag::Sum(ag::Square(m.weight_)).Backward();
  EXPECT_FALSE(m.weight_.grad().empty());
  m.ZeroGrad();
  EXPECT_DOUBLE_EQ(m.weight_.grad().AbsMax(), 0.0);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(5);
  Mlp original({3, 4, 1}, Activation::kRelu, rng);
  std::stringstream buffer;
  ASSERT_TRUE(original.Save(buffer).ok());

  Rng rng2(999);  // different init
  Mlp restored({3, 4, 1}, Activation::kRelu, rng2);
  ASSERT_TRUE(restored.Load(buffer).ok());

  const auto a = original.NamedParameters();
  const auto b = restored.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(AllClose(a[i].second.value(), b[i].second.value()))
        << a[i].first;
}

TEST(ModuleTest, LoadRejectsShapeMismatch) {
  Rng rng(6);
  Mlp small({2, 2, 1}, Activation::kRelu, rng);
  std::stringstream buffer;
  ASSERT_TRUE(small.Save(buffer).ok());
  Mlp big({3, 3, 1}, Activation::kRelu, rng);
  EXPECT_FALSE(big.Load(buffer).ok());
}

TEST(ModuleTest, LoadRejectsTruncatedStream) {
  Rng rng(7);
  Mlp mlp({2, 2, 1}, Activation::kRelu, rng);
  std::stringstream buffer;
  ASSERT_TRUE(mlp.Save(buffer).ok());
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_FALSE(mlp.Load(truncated).ok());
}

TEST(ModuleTest, LoadRejectsEmptyStream) {
  Rng rng(8);
  Mlp mlp({2, 1}, Activation::kRelu, rng);
  std::stringstream empty;
  EXPECT_FALSE(mlp.Load(empty).ok());
}

}  // namespace
}  // namespace cascn::nn
