#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/loss.h"

namespace cascn::nn {
namespace {

/// Minimises ||x - target||^2 with the given optimizer; returns final x.
template <typename Opt>
double MinimiseQuadratic(Opt& optimizer, ag::Variable& x, double target,
                         int steps) {
  for (int i = 0; i < steps; ++i) {
    ag::Variable loss = ag::Sum(ag::Square(ag::AddScalar(x, -target)));
    loss.Backward();
    optimizer.Step();
  }
  return x.value().At(0, 0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1, 10.0), true);
  Adam::Options opts;
  opts.learning_rate = 0.2;
  Adam adam({x}, opts);
  const double final = MinimiseQuadratic(adam, x, 3.0, 200);
  EXPECT_NEAR(final, 3.0, 1e-2);
}

TEST(AdamTest, StepZeroesGradients) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1, 1.0), true);
  Adam adam({x}, {});
  ag::Sum(ag::Square(x)).Backward();
  EXPECT_FALSE(x.grad().empty());
  adam.Step();
  EXPECT_DOUBLE_EQ(x.grad().AbsMax(), 0.0);
}

TEST(AdamTest, SkipsParametersWithoutGradients) {
  ag::Variable used = ag::Variable::Leaf(Tensor(1, 1, 1.0), true);
  ag::Variable unused = ag::Variable::Leaf(Tensor(1, 1, 5.0), true);
  Adam adam({used, unused}, {});
  ag::Sum(ag::Square(used)).Backward();
  adam.Step();
  EXPECT_DOUBLE_EQ(unused.value().At(0, 0), 5.0);
  EXPECT_NE(used.value().At(0, 0), 1.0);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1, 4.0), true);
  Adam::Options opts;
  opts.learning_rate = 0.1;
  opts.weight_decay = 1.0;
  Adam adam({x}, opts);
  // Loss gradient is 0 here (loss independent of x)... use a flat loss by
  // backwarding a constant-free graph: give x a zero gradient explicitly.
  ag::Variable zero = ag::ScalarMul(x, 0.0);
  ag::Sum(zero).Backward();
  adam.Step();
  EXPECT_LT(x.value().At(0, 0), 4.0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1, -8.0), true);
  Sgd::Options opts;
  opts.learning_rate = 0.1;
  Sgd sgd({x}, opts);
  const double final = MinimiseQuadratic(sgd, x, 2.0, 100);
  EXPECT_NEAR(final, 2.0, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  ag::Variable slow = ag::Variable::Leaf(Tensor(1, 1, 10.0), true);
  ag::Variable fast = ag::Variable::Leaf(Tensor(1, 1, 10.0), true);
  Sgd::Options plain;
  plain.learning_rate = 0.01;
  Sgd sgd_plain({slow}, plain);
  Sgd::Options with_momentum = plain;
  with_momentum.momentum = 0.9;
  Sgd sgd_momentum({fast}, with_momentum);
  for (int i = 0; i < 20; ++i) {
    ag::Sum(ag::Square(slow)).Backward();
    sgd_plain.Step();
    ag::Sum(ag::Square(fast)).Backward();
    sgd_momentum.Step();
  }
  EXPECT_LT(std::fabs(fast.value().At(0, 0)),
            std::fabs(slow.value().At(0, 0)));
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 2), true);
  ag::Sum(ag::ScalarMul(x, 30.0)).Backward();  // grad = (30, 30)
  std::vector<ag::Variable> params = {x};
  ClipGradNorm(params, 1.0);
  const double norm = std::hypot(x.grad().At(0, 0), x.grad().At(0, 1));
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(ClipGradNormTest, LeavesSmallGradientsUntouched) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1), true);
  ag::Sum(ag::ScalarMul(x, 0.5)).Backward();
  std::vector<ag::Variable> params = {x};
  ClipGradNorm(params, 10.0);
  EXPECT_DOUBLE_EQ(x.grad().At(0, 0), 0.5);
}

TEST(ClipGradNormTest, DisabledWhenNonPositive) {
  ag::Variable x = ag::Variable::Leaf(Tensor(1, 1), true);
  ag::Sum(ag::ScalarMul(x, 100.0)).Backward();
  std::vector<ag::Variable> params = {x};
  ClipGradNorm(params, 0.0);
  EXPECT_DOUBLE_EQ(x.grad().At(0, 0), 100.0);
}

TEST(LossTest, SquaredErrorValueAndGradient) {
  ag::Variable pred = ag::Variable::Leaf(Tensor(1, 1, 3.0), true);
  ag::Variable loss = SquaredError(pred, 1.0);
  EXPECT_DOUBLE_EQ(loss.value().At(0, 0), 4.0);
  loss.Backward();
  EXPECT_DOUBLE_EQ(pred.grad().At(0, 0), 4.0);  // 2 (pred - t)
}

TEST(LossTest, MeanLossAverages) {
  ag::Variable a = ag::Variable::Leaf(Tensor(1, 1, 2.0));
  ag::Variable b = ag::Variable::Leaf(Tensor(1, 1, 4.0));
  EXPECT_DOUBLE_EQ(MeanLoss({a, b}).value().At(0, 0), 3.0);
}

TEST(AdamVsSgd, AdamHandlesIllConditionedScalesBetter) {
  // f(x, y) = x^2 + 100 y^2: Adam's per-coordinate scaling wins at a shared
  // learning rate.
  auto run = [](bool use_adam) {
    ag::Variable v = ag::Variable::Leaf(Tensor::FromRows({{5.0, 5.0}}), true);
    std::unique_ptr<Optimizer> opt;
    if (use_adam) {
      Adam::Options o;
      o.learning_rate = 0.05;
      opt = std::make_unique<Adam>(std::vector<ag::Variable>{v}, o);
    } else {
      Sgd::Options o;
      o.learning_rate = 0.05;  // diverges on the stiff coordinate... clipped
      o.clip_norm = 1.0;
      opt = std::make_unique<Sgd>(std::vector<ag::Variable>{v}, o);
    }
    for (int i = 0; i < 150; ++i) {
      ag::Variable scaled =
          ag::Mul(v, ag::Variable::Leaf(Tensor::FromRows({{1.0, 10.0}})));
      ag::Sum(ag::Square(scaled)).Backward();
      opt->Step();
    }
    return v.value().Norm();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace cascn::nn
