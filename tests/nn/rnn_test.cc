#include "nn/rnn_cells.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"

namespace cascn::nn {
namespace {

TEST(LstmCellTest, StepShapes) {
  Rng rng(1);
  LstmCell cell(4, 6, rng);
  EXPECT_EQ(cell.input_dim(), 4);
  EXPECT_EQ(cell.hidden_dim(), 6);
  RnnState state = cell.InitialState(3);
  EXPECT_EQ(state.h.rows(), 3);
  EXPECT_EQ(state.h.cols(), 6);
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(3, 4, 1.0, rng));
  RnnState next = cell.Step(x, state);
  EXPECT_EQ(next.h.rows(), 3);
  EXPECT_EQ(next.h.cols(), 6);
  EXPECT_EQ(next.c.rows(), 3);
}

TEST(LstmCellTest, HiddenStateBounded) {
  Rng rng(2);
  LstmCell cell(3, 5, rng);
  RnnState state = cell.InitialState(2);
  for (int t = 0; t < 20; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(2, 3, 3.0, rng));
    state = cell.Step(x, state);
  }
  // h = o * tanh(c) is bounded by 1 in magnitude.
  EXPECT_LE(state.h.value().AbsMax(), 1.0);
}

TEST(LstmCellTest, GradientsReachAllParameters) {
  Rng rng(3);
  LstmCell cell(3, 4, rng);
  RnnState state = cell.InitialState(2);
  for (int t = 0; t < 3; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(2, 3, 1.0, rng));
    state = cell.Step(x, state);
  }
  ag::Sum(ag::Square(state.h)).Backward();
  for (const auto& p : cell.Parameters()) EXPECT_FALSE(p.grad().empty());
}

TEST(LstmCellTest, GradCheckThroughTwoSteps) {
  Rng rng(4);
  LstmCell cell(2, 3, rng);
  ag::Variable x1 = ag::Variable::Leaf(Tensor::RandomNormal(1, 2, 1.0, rng));
  ag::Variable x2 = ag::Variable::Leaf(Tensor::RandomNormal(1, 2, 1.0, rng));
  auto params = cell.Parameters();
  auto forward = [&](const ag::Variable&) {
    RnnState s = cell.InitialState(1);
    s = cell.Step(x1, s);
    s = cell.Step(x2, s);
    return ag::Sum(ag::Square(s.h));
  };
  // Check a representative subset (all 12 would be slow but fine; keep 4).
  for (size_t i = 0; i < params.size(); i += 3) {
    auto result = ag::CheckGradient(params[i], forward);
    EXPECT_TRUE(result.ok) << "param " << i << " rel " << result.max_rel_error;
  }
}

TEST(GruCellTest, StepShapes) {
  Rng rng(5);
  GruCell cell(4, 6, rng);
  RnnState state = cell.InitialState(2);
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(2, 4, 1.0, rng));
  RnnState next = cell.Step(x, state);
  EXPECT_EQ(next.h.rows(), 2);
  EXPECT_EQ(next.h.cols(), 6);
}

TEST(GruCellTest, InterpolationStaysBounded) {
  Rng rng(6);
  GruCell cell(3, 4, rng);
  RnnState state = cell.InitialState(1);
  for (int t = 0; t < 30; ++t) {
    ag::Variable x =
        ag::Variable::Leaf(Tensor::RandomNormal(1, 3, 2.0, rng));
    state = cell.Step(x, state);
    // GRU hidden is a convex combination of tanh candidates: |h| <= 1.
    EXPECT_LE(state.h.value().AbsMax(), 1.0 + 1e-9);
  }
}

TEST(GruCellTest, GradCheckThroughSequence) {
  Rng rng(7);
  GruCell cell(2, 3, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::RandomNormal(2, 2, 1.0, rng));
  auto params = cell.Parameters();
  auto forward = [&](const ag::Variable&) {
    RnnState s = cell.InitialState(2);
    s = cell.Step(x, s);
    s = cell.Step(x, s);
    return ag::Sum(ag::Square(s.h));
  };
  for (size_t i = 0; i < params.size(); i += 4) {
    auto result = ag::CheckGradient(params[i], forward);
    EXPECT_TRUE(result.ok) << "param " << i << " rel " << result.max_rel_error;
  }
}

TEST(GruCellTest, DeterministicGivenSeed) {
  Rng rng_a(8), rng_b(8);
  GruCell a(3, 4, rng_a), b(3, 4, rng_b);
  Rng data(9);
  Tensor input = Tensor::RandomNormal(2, 3, 1.0, data);
  RnnState sa = a.Step(ag::Variable::Leaf(input), a.InitialState(2));
  RnnState sb = b.Step(ag::Variable::Leaf(input), b.InitialState(2));
  EXPECT_TRUE(AllClose(sa.h.value(), sb.h.value()));
}

}  // namespace
}  // namespace cascn::nn
