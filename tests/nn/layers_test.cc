#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/grad_check.h"

namespace cascn::nn {
namespace {

TEST(InitTest, XavierUniformBounds) {
  Rng rng(1);
  const int fan_in = 8, fan_out = 4;
  Tensor w = XavierUniform(fan_in, fan_out, rng);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  EXPECT_EQ(w.rows(), fan_in);
  EXPECT_EQ(w.cols(), fan_out);
  EXPECT_LE(w.AbsMax(), bound);
}

TEST(InitTest, XavierNormalVariance) {
  Rng rng(2);
  Tensor w = XavierNormal(500, 500, rng);
  double ss = 0;
  for (int i = 0; i < w.rows(); ++i)
    for (int j = 0; j < w.cols(); ++j) ss += w.At(i, j) * w.At(i, j);
  EXPECT_NEAR(ss / w.size(), 2.0 / 1000, 2e-4);
}

TEST(LinearTest, ForwardShapeAndAffine) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.in_features(), 4);
  EXPECT_EQ(layer.out_features(), 3);
  ag::Variable x = ag::Variable::Leaf(Tensor(2, 4));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  // Zero input -> output equals bias (zero-initialised).
  EXPECT_NEAR(y.value().AbsMax(), 0.0, 1e-12);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(5, 3, 1.0, rng));
  ag::Sum(ag::Square(layer.Forward(x))).Backward();
  for (const auto& p : layer.Parameters()) {
    EXPECT_FALSE(p.grad().empty());
  }
}

TEST(LinearTest, ParameterCount) {
  Rng rng(5);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
}

TEST(MlpTest, ForwardShape) {
  Rng rng(6);
  Mlp mlp({5, 8, 3, 1}, Activation::kRelu, rng);
  EXPECT_EQ(mlp.in_features(), 5);
  EXPECT_EQ(mlp.out_features(), 1);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(7, 5, 1.0, rng));
  ag::Variable y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 1);
}

class MlpActivationSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpActivationSweep, TrainableEndToEnd) {
  Rng rng(7);
  Mlp mlp({3, 6, 1}, GetParam(), rng);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(4, 3, 1.0, rng));
  ag::Sum(ag::Square(mlp.Forward(x))).Backward();
  int with_grad = 0;
  for (const auto& p : mlp.Parameters())
    if (!p.grad().empty()) ++with_grad;
  EXPECT_EQ(with_grad, static_cast<int>(mlp.Parameters().size()));
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpActivationSweep,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid));

TEST(EmbeddingTest, LookupReturnsRows) {
  Rng rng(9);
  Embedding emb(10, 4, rng);
  EXPECT_EQ(emb.vocab_size(), 10);
  EXPECT_EQ(emb.dim(), 4);
  ag::Variable rows = emb.Lookup({2, 2, 7});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_EQ(rows.cols(), 4);
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(rows.value().At(0, j), rows.value().At(1, j));
    EXPECT_DOUBLE_EQ(rows.value().At(0, j), emb.table().value().At(2, j));
  }
}

TEST(EmbeddingTest, GradientScattersToUsedRowsOnly) {
  Rng rng(10);
  Embedding emb(6, 3, rng);
  ag::Sum(ag::Square(emb.Lookup({1, 1}))).Backward();
  const Tensor& g = emb.table().grad();
  ASSERT_FALSE(g.empty());
  for (int i = 0; i < 6; ++i) {
    double row_norm = 0;
    for (int j = 0; j < 3; ++j) row_norm += std::fabs(g.At(i, j));
    if (i == 1) {
      EXPECT_GT(row_norm, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(row_norm, 0.0);
    }
  }
}

TEST(MlpGradCheck, NumericalGradientsMatch) {
  Rng rng(11);
  Mlp mlp({3, 4, 1}, Activation::kTanh, rng);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(2, 3, 1.0, rng));
  auto params = mlp.Parameters();
  for (auto& p : params) {
    auto result = ag::CheckGradient(p, [&](const ag::Variable&) {
      return ag::Sum(ag::Square(mlp.Forward(x)));
    });
    EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
  }
}

}  // namespace
}  // namespace cascn::nn
