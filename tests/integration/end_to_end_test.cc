// End-to-end pipeline test: generate cascades -> build dataset -> train
// CasCN for a few epochs -> verify learning happened and beats a naive
// predictor. This exercises the full stack the way the quickstart example
// and the bench harness do.

#include <cmath>

#include <gtest/gtest.h>

#include "../testing/test_data.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/statistics.h"

namespace cascn {
namespace {

using testing::TinyCascnConfig;
using testing::TinyDataset;
using testing::TinyTrainerOptions;

TEST(EndToEndTest, CascnTrainsAndBeatsMeanPredictor) {
  const CascadeDataset dataset = TinyDataset(/*seed=*/1234,
                                             /*num_cascades=*/200);
  ASSERT_GE(dataset.train.size(), 20u);
  ASSERT_GE(dataset.test.size(), 4u);

  CascnModel model(TinyCascnConfig());
  const double untrained = EvaluateMsle(model, dataset.test);

  TrainerOptions opts = TinyTrainerOptions(6);
  const TrainResult result = TrainRegressor(model, dataset, opts);
  const double trained = EvaluateMsle(model, dataset.test);

  // Training must improve on the untrained network.
  EXPECT_LT(trained, untrained);
  EXPECT_FALSE(result.history.empty());

  // And come close to (or beat) the best constant predictor: the
  // train-mean label.
  double mean_label = 0;
  for (const auto& s : dataset.train) mean_label += s.log_label;
  mean_label /= dataset.train.size();
  double mean_msle = 0;
  for (const auto& s : dataset.test) {
    const double err = mean_label - s.log_label;
    mean_msle += err * err;
  }
  mean_msle /= dataset.test.size();
  EXPECT_LT(trained, mean_msle * 1.5);
}

TEST(EndToEndTest, TrainedModelPredictionsCorrelateWithLabels) {
  const CascadeDataset dataset = TinyDataset(4321, 200);
  CascnModel model(TinyCascnConfig());
  TrainRegressor(model, dataset, TinyTrainerOptions(6));

  // Pearson correlation between predictions and labels on test.
  std::vector<double> preds, labels;
  for (const auto& s : dataset.test) {
    preds.push_back(model.PredictLog(s).value().At(0, 0));
    labels.push_back(s.log_label);
  }
  const size_t n = preds.size();
  double mp = 0, ml = 0;
  for (size_t i = 0; i < n; ++i) {
    mp += preds[i];
    ml += labels[i];
  }
  mp /= n;
  ml /= n;
  double cov = 0, vp = 0, vl = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (preds[i] - mp) * (labels[i] - ml);
    vp += (preds[i] - mp) * (preds[i] - mp);
    vl += (labels[i] - ml) * (labels[i] - ml);
  }
  ASSERT_GT(vl, 0);
  ASSERT_GT(vp, 0) << "trained predictions must not collapse to a constant";
  const double corr = cov / std::sqrt(vp * vl);
  EXPECT_GT(corr, 0.1) << "trained CasCN should track label ordering";
}

TEST(EndToEndTest, DatasetStatisticsAreSane) {
  const CascadeDataset dataset = TinyDataset();
  const DatasetStatistics stats = ComputeDatasetStatistics(dataset);
  EXPECT_GT(stats.train.num_cascades, 0);
  EXPECT_GE(stats.train.avg_nodes, 5.0);  // the min-observed filter
  EXPECT_GT(stats.train.avg_edges, 0.0);
  // Observed trees: edges = nodes - 1.
  EXPECT_NEAR(stats.train.avg_edges, stats.train.avg_nodes - 1, 1e-9);
}

}  // namespace
}  // namespace cascn
