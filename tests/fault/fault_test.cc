// The fault-injection framework's own contract: zero effect when nothing is
// armed, deterministic seeded triggering when armed, resume-safe keyed
// evaluation, and loud rejection of malformed configuration.

#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::fault {
namespace {

/// Every test leaves the global registry empty.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Get().Clear(); }
  void TearDown() override { FaultRegistry::Get().Clear(); }
};

TEST_F(FaultTest, DisabledRegistryNeverFires) {
  EXPECT_FALSE(FaultRegistry::Get().enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ShouldFire("any.point"));
    EXPECT_FALSE(ShouldFire("any.point", static_cast<uint64_t>(i)));
  }
  EXPECT_TRUE(InjectStatus("any.point").ok());
  EXPECT_FALSE(MaybeDelay("any.point"));
  EXPECT_DOUBLE_EQ(PoisonNaN("any.point", 1.5, 0), 1.5);
  // Nothing was even evaluated: the disabled path records no stats.
  EXPECT_EQ(FaultRegistry::Get().stats("any.point").evaluations, 0u);
}

TEST_F(FaultTest, AlwaysTriggerFiresEveryEvaluation) {
  FaultRegistry::Get().Arm("p", FaultSpec{});
  EXPECT_TRUE(FaultRegistry::Get().enabled());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ShouldFire("p"));
  const auto stats = FaultRegistry::Get().stats("p");
  EXPECT_EQ(stats.evaluations, 5u);
  EXPECT_EQ(stats.fires, 5u);
  // Unarmed points are unaffected.
  EXPECT_FALSE(ShouldFire("other"));
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  FaultSpec spec;
  spec.trigger = Trigger::kNth;
  spec.n = 3;
  FaultRegistry::Get().Arm("p", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(ShouldFire("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST_F(FaultTest, EveryNTriggerIsPeriodic) {
  FaultSpec spec;
  spec.trigger = Trigger::kEveryN;
  spec.n = 2;
  FaultRegistry::Get().Arm("p", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(ShouldFire("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultTest, ProbabilityTriggerIsDeterministicInSeedAndKey) {
  const uint64_t original_seed = FaultRegistry::Get().seed();
  FaultSpec spec;
  spec.trigger = Trigger::kProbability;
  spec.probability = 0.5;
  FaultRegistry::Get().set_seed(42);
  FaultRegistry::Get().Arm("p", spec);
  std::vector<bool> first;
  for (uint64_t k = 0; k < 64; ++k) first.push_back(ShouldFire("p", k));
  // Same seed and keys: identical schedule — this is what makes a resumed
  // trainer see the same faults as an uninterrupted one.
  std::vector<bool> second;
  for (uint64_t k = 0; k < 64; ++k) second.push_back(ShouldFire("p", k));
  EXPECT_EQ(first, second);
  // With p=0.5 over 64 keys both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  // A different seed produces a different schedule.
  FaultRegistry::Get().set_seed(43);
  std::vector<bool> reseeded;
  for (uint64_t k = 0; k < 64; ++k) reseeded.push_back(ShouldFire("p", k));
  EXPECT_NE(first, reseeded);
  FaultRegistry::Get().set_seed(original_seed);
}

TEST_F(FaultTest, ProbabilityBoundsAreRespected) {
  FaultSpec never;
  never.trigger = Trigger::kProbability;
  never.probability = 0.0;
  FaultRegistry::Get().Arm("never", never);
  FaultSpec always;
  always.trigger = Trigger::kProbability;
  always.probability = 1.0;
  FaultRegistry::Get().Arm("always", always);
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_FALSE(ShouldFire("never", k));
    EXPECT_TRUE(ShouldFire("always", k));
  }
}

TEST_F(FaultTest, ConfigureParsesTheEnvSyntax) {
  ASSERT_TRUE(FaultRegistry::Get()
                  .Configure("a=always, b=prob:0.25,c=nth:4,d=every:8@2.5")
                  .ok());
  EXPECT_TRUE(ShouldFire("a"));
  EXPECT_EQ(FaultRegistry::Get().stats("b").evaluations, 0u);
  EXPECT_DOUBLE_EQ(FaultRegistry::Get().ArmedValue("d", 10.0), 2.5);
  // Unarmed value falls back.
  EXPECT_DOUBLE_EQ(FaultRegistry::Get().ArmedValue("zzz", 10.0), 10.0);
}

TEST_F(FaultTest, ConfigureRejectsMalformedEntries) {
  EXPECT_FALSE(FaultRegistry::Get().Configure("justapoint").ok());
  EXPECT_FALSE(FaultRegistry::Get().Configure("p=banana").ok());
  EXPECT_FALSE(FaultRegistry::Get().Configure("p=prob:1.5").ok());
  EXPECT_FALSE(FaultRegistry::Get().Configure("p=nth:0").ok());
  EXPECT_FALSE(FaultRegistry::Get().Configure("=always").ok());
  FaultRegistry::Get().Clear();
}

TEST_F(FaultTest, InjectStatusNamesThePoint) {
  FaultRegistry::Get().Arm("checkpoint.load_fail", FaultSpec{});
  const Status status = InjectStatus("checkpoint.load_fail");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("checkpoint.load_fail"), std::string::npos);
}

TEST_F(FaultTest, PoisonNaNProducesNaNOnFire) {
  FaultSpec spec;
  spec.trigger = Trigger::kNth;
  spec.n = 1;
  FaultRegistry::Get().Arm("p", spec);
  EXPECT_TRUE(std::isnan(PoisonNaN("p", 2.0, 0)));
  EXPECT_DOUBLE_EQ(PoisonNaN("p", 2.0, 1), 2.0);
}

TEST_F(FaultTest, DisarmAndClearRestoreTheFastPath) {
  FaultRegistry::Get().Arm("p", FaultSpec{});
  FaultRegistry::Get().Arm("q", FaultSpec{});
  FaultRegistry::Get().Disarm("p");
  EXPECT_FALSE(ShouldFire("p"));
  EXPECT_TRUE(FaultRegistry::Get().enabled());  // q is still armed
  FaultRegistry::Get().Disarm("q");
  EXPECT_FALSE(FaultRegistry::Get().enabled());
}

TEST_F(FaultTest, StatsSnapshotCoversAllPoints) {
  FaultRegistry::Get().Configure("a=always,b=nth:5");
  ShouldFire("a");
  ShouldFire("b");
  const auto snapshot = FaultRegistry::Get().StatsSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(FaultRegistry::Get().total_fires(), 1u);
}

}  // namespace
}  // namespace cascn::fault
