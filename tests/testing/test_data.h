// Shared helpers for model tests: a tiny deterministic dataset and small
// model configurations that keep unit tests fast.

#ifndef CASCN_TESTS_TESTING_TEST_DATA_H_
#define CASCN_TESTS_TESTING_TEST_DATA_H_

#include "common/logging.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"

namespace cascn::testing {

/// A small Weibo-like dataset: ~25-60 train samples with ~8+ nodes each.
inline CascadeDataset TinyDataset(uint64_t seed = 99, int num_cascades = 120) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = num_cascades;
  config.user_universe = 200;
  config.max_size = 80;
  Rng rng(seed);
  const auto cascades = GenerateCascades(config, rng);
  DatasetOptions opts;
  opts.observation_window = 60.0;
  opts.min_observed_size = 5;
  auto dataset = BuildDataset(cascades, opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  return std::move(dataset).value();
}

/// A CasCN configuration small enough for unit tests.
inline CascnConfig TinyCascnConfig() {
  CascnConfig config;
  config.padded_size = 12;
  config.hidden_dim = 6;
  config.cheb_order = 2;
  config.max_sequence_length = 6;
  config.num_time_intervals = 4;
  config.mlp_hidden1 = 8;
  config.mlp_hidden2 = 4;
  return config;
}

/// Trainer options for short smoke-training runs.
inline TrainerOptions TinyTrainerOptions(int epochs = 3) {
  TrainerOptions opts;
  opts.max_epochs = epochs;
  opts.batch_size = 8;
  opts.learning_rate = 1e-2;
  opts.patience = epochs;
  return opts;
}

}  // namespace cascn::testing

#endif  // CASCN_TESTS_TESTING_TEST_DATA_H_
