#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace cascn::obs {
namespace {

TEST(BenchReportTest, EmptyReportCarriesSchemaEnvelope) {
  BenchReport report("empty");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"created_unix\""), std::string::npos);
  EXPECT_NE(json.find("\"results\": []"), std::string::npos);
}

TEST(BenchReportTest, ConfigPreservesInsertionOrderAndTypes) {
  BenchReport report("cfg");
  report.AddConfig("scale", 1.5)
      .AddConfig("workers", 8)
      .AddConfig("host", "ci-runner");
  const std::string json = report.ToJson();
  const size_t scale = json.find("\"scale\": 1.5");
  const size_t workers = json.find("\"workers\": 8");
  const size_t host = json.find("\"host\": \"ci-runner\"");
  ASSERT_NE(scale, std::string::npos);
  ASSERT_NE(workers, std::string::npos);
  ASSERT_NE(host, std::string::npos);
  EXPECT_LT(scale, workers);
  EXPECT_LT(workers, host);
}

TEST(BenchReportTest, HistogramEmitsInterpolatedPercentiles) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  BenchReport report("hist");
  report.AddHistogram("latency_us", histogram.TakeSnapshot());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"max\": 1000"), std::string::npos);
}

TEST(BenchReportTest, ResultsAreEmbeddedVerbatim) {
  BenchReport report("res");
  report.AddResult(
      JsonObjectBuilder().Add("benchmark", "BM_X/4").Add("ns", 12.5).Build());
  report.AddResult(JsonObjectBuilder().Add("benchmark", "BM_Y/8").Build());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("{\"benchmark\": \"BM_X/4\", \"ns\": 12.5}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"benchmark\": \"BM_Y/8\"}"), std::string::npos);
}

TEST(BenchReportTest, CaptureMetricsEmbedsRegistrySnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("widgets_total").Increment(3);
  BenchReport report("metrics");
  report.CaptureMetrics(registry);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"widgets_total\""), std::string::npos);
}

TEST(BenchReportTest, CaptureProfileEmbedsOpsAndMemory) {
  BenchReport report("prof");
  report.CaptureProfile();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"profile\": {"), std::string::npos);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
}

TEST(BenchReportTest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/bench_report_test.json";
  BenchReport report("roundtrip");
  report.AddConfig("k", 2).SetWallClockSeconds(1.25);
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJson());
  std::remove(path.c_str());
}

TEST(BenchReportTest, WriteFileFailsOnBadPath) {
  BenchReport report("bad");
  EXPECT_FALSE(report.WriteFile("/nonexistent-dir/x/y.json").ok());
}

TEST(BenchReportTest, DefaultPathHonorsEnvDir) {
  EXPECT_EQ(BenchReport::DefaultPath("micro_kernels"),
            "BENCH_micro_kernels.json");
  ::setenv("CASCN_BENCH_REPORT_DIR", "/tmp/reports", 1);
  EXPECT_EQ(BenchReport::DefaultPath("micro_kernels"),
            "/tmp/reports/BENCH_micro_kernels.json");
  ::unsetenv("CASCN_BENCH_REPORT_DIR");
}

TEST(BenchReportTest, GitShaIsNonEmpty) {
  EXPECT_FALSE(BenchReport::GitSha().empty());
}

}  // namespace
}  // namespace cascn::obs
