#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::obs {
namespace {

FlightRecord MakeRecord(uint64_t trace_id, const std::string& tenant) {
  FlightRecord r;
  r.trace_id = trace_id;
  r.queue_wait_ns = 1234;
  r.exec_ns = 5678;
  r.shard_id = 2;
  r.op = FlightOp::kPredict;
  r.status = 0;  // kOk
  r.fault_bits = kFaultBitSlowPredict;
  r.set_tenant(tenant);
  r.set_session("sess-1");
  return r;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
}

TEST(FlightRecorderTest, AppendSnapshotRoundTripsFields) {
  FlightRecorder recorder(16);
  recorder.Append(MakeRecord(0xabc123, "acme"));
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& r = records[0];
  EXPECT_EQ(r.trace_id, 0xabc123u);
  EXPECT_EQ(r.queue_wait_ns, 1234u);
  EXPECT_EQ(r.exec_ns, 5678u);
  EXPECT_EQ(r.shard_id, 2);
  EXPECT_EQ(r.op, FlightOp::kPredict);
  EXPECT_EQ(r.fault_bits, kFaultBitSlowPredict);
  EXPECT_STREQ(r.tenant, "acme");
  EXPECT_STREQ(r.session, "sess-1");
}

TEST(FlightRecorderTest, TenantAndSessionTruncateAtFifteenBytes) {
  FlightRecord r;
  r.set_tenant("a-very-long-tenant-name-indeed");
  r.set_session("an-equally-long-session-identifier");
  EXPECT_EQ(std::string(r.tenant), "a-very-long-ten");
  EXPECT_EQ(std::string(r.session), "an-equally-long");
}

TEST(FlightRecorderTest, RingOverwriteKeepsNewestInArrivalOrder) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Append(MakeRecord(/*trace_id=*/100 + i, "t"));
  }
  EXPECT_EQ(recorder.total_appended(), 20u);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first, and only the last 8 appends survive the lapping.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq_no, 12 + i);
    EXPECT_EQ(records[i].trace_id, 112 + i);
  }
}

TEST(FlightRecorderTest, ConcurrentAppendsAllAccountedFor) {
  FlightRecorder recorder(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Append(MakeRecord(static_cast<uint64_t>(t) << 32 | i, "t"));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.total_appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Every surviving slot is a coherent record (no torn reads): seq_nos are
  // unique and within the appended range.
  const std::vector<FlightRecord> records = recorder.Snapshot();
  EXPECT_LE(records.size(), recorder.capacity());
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq_no, records[i].seq_no);
  }
  for (const FlightRecord& r : records) {
    EXPECT_LT(r.seq_no, static_cast<uint64_t>(kThreads) * kPerThread);
  }
}

TEST(FlightRecorderTest, ToJsonLinesHeaderAndRecordSchema) {
  FlightRecorder recorder(8);
  recorder.Append(MakeRecord(0xdeadbeef, "acme"));
  const std::string dump = recorder.ToJsonLines("unit_test");
  std::istringstream lines(dump);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"event\": \"flight_dump\""), std::string::npos);
  EXPECT_NE(header.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(header.find("\"records\": 1"), std::string::npos);
  std::string record;
  ASSERT_TRUE(std::getline(lines, record));
  EXPECT_NE(record.find("\"trace_id\": \"deadbeef\""), std::string::npos);
  EXPECT_NE(record.find("\"tenant\": \"acme\""), std::string::npos);
  EXPECT_NE(record.find("\"op\": \"Predict\""), std::string::npos);
  EXPECT_NE(record.find("\"status\": \"OK\""), std::string::npos);
  EXPECT_NE(record.find("\"shard\": 2"), std::string::npos);
  EXPECT_NE(record.find("\"queue_wait_ns\": 1234"), std::string::npos);
  EXPECT_NE(record.find("\"exec_ns\": 5678"), std::string::npos);
  // Each line must be a standalone JSON object: balanced braces throughout.
  for (const std::string& line : {header, record}) {
    int depth = 0;
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

TEST(FlightRecorderTest, HostileTenantNamesAreJsonEscaped) {
  FlightRecorder recorder(8);
  FlightRecord r = MakeRecord(1, "a\"b\\c\nd");
  recorder.Append(r);
  const std::string dump = recorder.ToJsonLines("escape");
  EXPECT_NE(dump.find("a\\\"b\\\\c\\nd"), std::string::npos);
  // No raw newline may survive inside a record line.
  std::istringstream lines(dump);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 2);  // header + one record, nothing split
}

TEST(FlightRecorderTest, DumpAppendsToFile) {
  FlightRecorder recorder(8);
  recorder.Append(MakeRecord(7, "t"));
  const std::string path =
      ::testing::TempDir() + "/cascn_flight_dump_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.Dump(path, "first").ok());
  ASSERT_TRUE(recorder.Dump(path, "second").ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  // Both dumps landed in the same file, in order.
  const size_t first = text.find("\"reason\": \"first\"");
  const size_t second = text.find("\"reason\": \"second\"");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpRejectsBadPath) {
  FlightRecorder recorder(8);
  EXPECT_FALSE(recorder.Dump("/nonexistent-dir/flight.jsonl", "bad").ok());
}

TEST(FlightRecorderTest, TriggerDumpIsNoOpWithoutPath) {
  FlightRecorder recorder(8);
  recorder.Append(MakeRecord(1, "t"));
  recorder.TriggerDump("anomaly");
  EXPECT_EQ(recorder.dumps_triggered(), 0u);
}

TEST(FlightRecorderTest, TriggerDumpWritesConfiguredPath) {
  FlightRecorder recorder(8);
  recorder.Append(MakeRecord(0x42, "t"));
  const std::string path =
      ::testing::TempDir() + "/cascn_flight_trigger_test.jsonl";
  std::remove(path.c_str());
  recorder.SetDumpPath(path);
  EXPECT_EQ(recorder.dump_path(), path);
  recorder.TriggerDump("deadline_exceeded");
  EXPECT_EQ(recorder.dumps_triggered(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"reason\": \"deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(content.str().find("\"trace_id\": \"42\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cascn::obs
