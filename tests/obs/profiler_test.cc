#include "obs/profiler.h"

#include <chrono>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "tensor/variable.h"

namespace cascn::obs {
namespace {

/// Enables + resets the global profiler for one test, restoring the
/// disabled state afterwards so tests stay order-independent.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Get().Enable();
    Profiler::Get().Reset();
  }
  void TearDown() override {
    Profiler::Get().Disable();
    Profiler::Get().Reset();
  }
};

ag::Variable MatMulChainLoss(int n, int chain) {
  Rng rng(7);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(n, n, 0.1, rng), true);
  ag::Variable y = x;
  for (int i = 0; i < chain; ++i) y = ag::Tanh(ag::MatMul(y, x));
  return ag::Mean(ag::Square(y));
}

TEST_F(ProfilerTest, RecordsForwardAndBackwardPerOp) {
  const ag::Variable loss = MatMulChainLoss(24, 4);
  loss.Backward();

  const auto snap = Profiler::Get().TakeSnapshot();
  const auto& matmul = snap.ops[static_cast<int>(OpKind::kMatMul)];
  EXPECT_EQ(matmul.forward_calls, 4u);
  EXPECT_EQ(matmul.backward_calls, 4u);
  // 2 m k n forward, double that backward, per call.
  EXPECT_EQ(matmul.forward_flops, 4u * 2 * 24 * 24 * 24);
  EXPECT_EQ(matmul.backward_flops, 2 * matmul.forward_flops);
  EXPECT_EQ(matmul.forward_bytes, 4u * 24 * 24 * sizeof(double));
  EXPECT_GT(matmul.forward_ns, 0u);
  EXPECT_GT(matmul.backward_ns, 0u);

  const auto& tanh = snap.ops[static_cast<int>(OpKind::kTanh)];
  EXPECT_EQ(tanh.forward_calls, 4u);
  EXPECT_EQ(tanh.backward_calls, 4u);
  // Leaf nodes never record.
  EXPECT_EQ(snap.ops[static_cast<int>(OpKind::kLeaf)].forward_calls, 0u);
  EXPECT_EQ(snap.ops[static_cast<int>(OpKind::kLeaf)].backward_calls, 0u);
}

TEST_F(ProfilerTest, OpAttributionCoversStepWallClock) {
  // The per-op forward attribution must account for the bulk of the time a
  // step actually spends in op constructors. The ops below do real work
  // (64x64 matmul chains), so op time dominates graph bookkeeping; wide
  // tolerances keep this robust on loaded CI machines.
  const auto start = std::chrono::steady_clock::now();
  const ag::Variable loss = MatMulChainLoss(64, 8);
  loss.Backward();
  const double wall_ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                               start)
          .count();

  const auto snap = Profiler::Get().TakeSnapshot();
  const double attributed_ns = static_cast<double>(snap.TotalNs());
  EXPECT_GT(attributed_ns, 0.3 * wall_ns);
  // Timers never overlap (ops do not nest, backward closures run serially),
  // so attribution cannot exceed wall-clock by more than timer noise.
  EXPECT_LT(attributed_ns, 1.1 * wall_ns);
}

TEST_F(ProfilerTest, AllocationAccountingReturnsToZero) {
  const int64_t live_before = Profiler::Get().live_bytes();
  {
    const ag::Variable loss = MatMulChainLoss(16, 3);
    loss.Backward();
    // Graph retained: node values and grads are still live.
    EXPECT_GT(Profiler::Get().live_bytes(), live_before);
  }
  // Everything allocated by the step was tracked and freed.
  EXPECT_EQ(Profiler::Get().live_bytes(), live_before);
  EXPECT_EQ(Profiler::Get().alloc_count(), Profiler::Get().free_count());
  EXPECT_GE(Profiler::Get().peak_live_bytes(),
            static_cast<int64_t>(16 * 16 * sizeof(double)));
}

TEST_F(ProfilerTest, SparseMatMulFlopsScaleWithNnz) {
  const CsrMatrix op = CsrMatrix::Identity(8);
  Rng rng(3);
  const ag::Variable x =
      ag::Variable::Leaf(Tensor::RandomNormal(8, 4, 1.0, rng), true);
  ag::Sum(ag::SparseMatMul(op, x)).Backward();
  const auto snap = Profiler::Get().TakeSnapshot();
  const auto& spmm = snap.ops[static_cast<int>(OpKind::kSparseMatMul)];
  EXPECT_EQ(spmm.forward_calls, 1u);
  EXPECT_EQ(spmm.forward_flops, 2u * 8 * 4);  // 2 * nnz * cols
  EXPECT_EQ(spmm.backward_flops, spmm.forward_flops);
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  Profiler::Get().Disable();
  const ag::Variable loss = MatMulChainLoss(16, 2);
  loss.Backward();
  const auto snap = Profiler::Get().TakeSnapshot();
  EXPECT_EQ(snap.TotalNs(), 0u);
  for (const auto& op : snap.ops) {
    EXPECT_EQ(op.forward_calls, 0u);
    EXPECT_EQ(op.backward_calls, 0u);
  }
  EXPECT_EQ(snap.alloc_count, 0u);
  EXPECT_EQ(snap.live_bytes, 0);
}

TEST_F(ProfilerTest, BackwardAttributesNodesBuiltWhileDisabled) {
  // op kinds are tagged unconditionally at construction, so a graph built
  // with profiling off still attributes its backward once profiling is on.
  Profiler::Get().Disable();
  const ag::Variable loss = MatMulChainLoss(16, 2);
  Profiler::Get().Enable();
  loss.Backward();
  const auto snap = Profiler::Get().TakeSnapshot();
  const auto& matmul = snap.ops[static_cast<int>(OpKind::kMatMul)];
  EXPECT_EQ(matmul.forward_calls, 0u);
  EXPECT_EQ(matmul.backward_calls, 2u);
  // backward FLOP estimates are only stamped while profiling.
  EXPECT_EQ(matmul.backward_flops, 0u);
  EXPECT_GT(matmul.backward_ns, 0u);
}

TEST_F(ProfilerTest, SnapshotJsonAndTableListBusyOpsOnly) {
  ag::Sum(MatMulChainLoss(8, 1)).value();  // MatMul, Tanh, Square, Mean, Sum
  const auto snap = Profiler::Get().TakeSnapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"mat_mul\""), std::string::npos);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_EQ(json.find("\"relu\""), std::string::npos);  // never called
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("mat_mul"), std::string::npos);
  EXPECT_EQ(table.find("relu"), std::string::npos);
}

TEST_F(ProfilerTest, ExportToRegistryPublishesGauges) {
  MatMulChainLoss(8, 1).Backward();
  MetricsRegistry registry;
  Profiler::Get().ExportToRegistry(registry);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("profile_op_mat_mul_calls"), std::string::npos);
  EXPECT_NE(json.find("profile_peak_live_bytes"), std::string::npos);
}

TEST(OpKindNameTest, AllKindsNamed) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    EXPECT_FALSE(OpKindName(static_cast<OpKind>(i)).empty()) << i;
  }
}

}  // namespace
}  // namespace cascn::obs
