#include "obs/shutdown.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace cascn::obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ShutdownDumpTest, NoPathsIsANoOpSuccess) {
  EXPECT_TRUE(ShutdownDump().ok());
}

TEST(ShutdownDumpTest, WritesMetricsSnapshotFromGivenRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("shutdown_test_total").Increment(7);
  const std::string path = ::testing::TempDir() + "/shutdown_metrics.json";
  ShutdownDumpOptions options;
  options.metrics_path = path;
  options.registry = &registry;
  ASSERT_TRUE(ShutdownDump(options).ok());
  EXPECT_NE(ReadAll(path).find("\"shutdown_test_total\": 7"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ShutdownDumpTest, MetricsOverrideWinsOverRegistrySnapshot) {
  // The override exists for registries that die before exit (e.g. a
  // PredictionService-local registry snapshotted just before destruction).
  const std::string path = ::testing::TempDir() + "/shutdown_override.json";
  ShutdownDumpOptions options;
  options.metrics_path = path;
  options.metrics_json_override = "{\"from_override\": true}";
  ASSERT_TRUE(ShutdownDump(options).ok());
  EXPECT_EQ(ReadAll(path), "{\"from_override\": true}\n");
  std::remove(path.c_str());
}

TEST(ShutdownDumpTest, CapturesSpansRecordedAfterEarlierTraceWrites) {
  // The bug this API removes: binaries wrote the trace mid-main, dropping
  // spans recorded afterwards (service destructors, late flushes). A dump
  // at exit must include them.
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable();
  const auto t0 = std::chrono::steady_clock::now();
  tracer.RecordSpan("early_span", t0, t0 + std::chrono::microseconds(5));

  const std::string early_path = ::testing::TempDir() + "/trace_early.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(early_path).ok());

  tracer.RecordSpan("late_span", t0, t0 + std::chrono::microseconds(9));
  const std::string final_path = ::testing::TempDir() + "/trace_final.json";
  ShutdownDumpOptions options;
  options.trace_path = final_path;
  ASSERT_TRUE(ShutdownDump(options).ok());
  tracer.Disable();

  EXPECT_EQ(ReadAll(early_path).find("late_span"), std::string::npos);
  const std::string final_trace = ReadAll(final_path);
  EXPECT_NE(final_trace.find("early_span"), std::string::npos);
  EXPECT_NE(final_trace.find("late_span"), std::string::npos);
  std::remove(early_path.c_str());
  std::remove(final_path.c_str());
  tracer.Clear();
}

TEST(ShutdownDumpTest, FlushesEverySinkAndIgnoresNulls) {
  // VectorTelemetrySink uses the default (no-op) Flush; the point here is
  // that ShutdownDump walks the list without choking on null entries.
  VectorTelemetrySink sink;
  sink.Emit("{\"event\": \"x\"}");
  ShutdownDumpOptions options;
  options.telemetry = {nullptr, &sink, nullptr};
  EXPECT_TRUE(ShutdownDump(options).ok());
  EXPECT_EQ(sink.lines().size(), 1u);
}

TEST(ShutdownDumpTest, BadMetricsPathReportsErrorButStillWritesTrace) {
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable();
  const auto t0 = std::chrono::steady_clock::now();
  tracer.RecordSpan("survivor_span", t0, t0 + std::chrono::microseconds(2));

  const std::string trace_path = ::testing::TempDir() + "/trace_survivor.json";
  ShutdownDumpOptions options;
  options.metrics_path = "/nonexistent-dir/x/metrics.json";
  options.trace_path = trace_path;
  EXPECT_FALSE(ShutdownDump(options).ok());
  tracer.Disable();

  EXPECT_NE(ReadAll(trace_path).find("survivor_span"), std::string::npos);
  std::remove(trace_path.c_str());
  tracer.Clear();
}

}  // namespace
}  // namespace cascn::obs
