#include "obs/debug_server.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace cascn::obs {
namespace {

Result<std::unique_ptr<DebugServer>> StartEphemeral(bool allow_quit = false) {
  DebugServerOptions options;
  options.port = 0;
  options.allow_quit = allow_quit;
  return DebugServer::Start(options);
}

TEST(DebugServerTest, StatuszServesBuildInfoConfigAndSections) {
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->AddConfig("num_workers", "4");
  (*server)->AddStatusSection("serve", [] { return "queue_depth: 3\n"; });
  const auto result = HttpGet((*server)->port(), "/statusz");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, 200);
  EXPECT_NE(result->body.find("build_sha:"), std::string::npos);
  EXPECT_NE(result->body.find("uptime_s:"), std::string::npos);
  EXPECT_NE(result->body.find("num_workers = 4"), std::string::npos)
      << result->body;
  EXPECT_NE(result->body.find("[serve]"), std::string::npos) << result->body;
  EXPECT_NE(result->body.find("queue_depth: 3"), std::string::npos);
}

TEST(DebugServerTest, MetricszMergesGlobalAndExportedMetrics) {
  MetricsRegistry::Get()
      .GetCounter("debug_server_test_global_total")
      .Increment();
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->AddMetricsExporter([](MetricsRegistry& registry) {
    registry.GetGauge("debug_server_test_exported").Set(42);
  });
  const auto text = HttpGet((*server)->port(), "/metricsz");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->status, 200);
  EXPECT_NE(text->body.find("debug_server_test_global_total"),
            std::string::npos);
  EXPECT_NE(text->body.find("debug_server_test_exported = 42"),
            std::string::npos)
      << text->body;
  EXPECT_NE(text->body.find("# TYPE debug_server_test_exported gauge"),
            std::string::npos)
      << text->body;

  // JSON format: one unified document, both sources present.
  const auto json = HttpGet((*server)->port(), "/metricsz?format=json");
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->status, 200);
  EXPECT_EQ(json->body.find("#"), std::string::npos) << "no text headers";
  EXPECT_NE(json->body.find("\"counters\""), std::string::npos);
  EXPECT_NE(json->body.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json->body.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json->body.find("debug_server_test_global_total"),
            std::string::npos);
  EXPECT_NE(json->body.find("debug_server_test_exported"),
            std::string::npos);
}

TEST(DebugServerTest, TracezReportsSampledSpans) {
  auto server = StartEphemeral();  // Start() enables sampling
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE(Tracer::Get().sampling());
  { ScopedSpan span("tracez_test_span", 0x1234); }
  const auto result = HttpGet((*server)->port(), "/tracez");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, 200);
  EXPECT_NE(result->body.find("tracez_test_span"), std::string::npos)
      << result->body;
  EXPECT_NE(result->body.find("\"open_spans\""), std::string::npos);
  Tracer::Get().DisableSampling();
}

TEST(DebugServerTest, TracezShowsCurrentlyOpenSpans) {
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  {
    ScopedSpan open("tracez_open_span", 0xfeed1234);
    const auto result = HttpGet((*server)->port(), "/tracez");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NE(result->body.find("tracez_open_span"), std::string::npos)
        << result->body;
    EXPECT_NE(result->body.find("feed1234"), std::string::npos);
  }
  Tracer::Get().DisableSampling();
}

TEST(DebugServerTest, UnknownPathIs404AndBadMethodIs405) {
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  const auto missing = HttpGet((*server)->port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->status, 404);
}

TEST(DebugServerTest, QuitIsGatedBehindOptIn) {
  auto locked = StartEphemeral(/*allow_quit=*/false);
  ASSERT_TRUE(locked.ok()) << locked.status();
  const auto denied = HttpGet((*locked)->port(), "/quitquitquit");
  ASSERT_TRUE(denied.ok()) << denied.status();
  EXPECT_EQ(denied->status, 403);
  EXPECT_FALSE((*locked)->quit_requested());

  auto open = StartEphemeral(/*allow_quit=*/true);
  ASSERT_TRUE(open.ok()) << open.status();
  const auto granted = HttpGet((*open)->port(), "/quitquitquit");
  ASSERT_TRUE(granted.ok()) << granted.status();
  EXPECT_EQ(granted->status, 200);
  EXPECT_TRUE((*open)->quit_requested());
  Tracer::Get().DisableSampling();
}

TEST(DebugServerTest, AddEndpointServesCustomHandlerWithQuery) {
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->AddEndpoint("/customz", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "fmt=" + request.QueryOr("format", "text");
    return response;
  });
  const auto plain = HttpGet((*server)->port(), "/customz");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->body, "fmt=text");
  const auto json = HttpGet((*server)->port(), "/customz?format=json");
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->body, "fmt=json");
  Tracer::Get().DisableSampling();
}

TEST(DebugServerTest, ServersStartedCountsEveryStart) {
  const uint64_t before = DebugServer::servers_started();
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ(DebugServer::servers_started(), before + 1);
  Tracer::Get().DisableSampling();
}

TEST(DebugServerTest, StopIsIdempotentAndServerRestartable) {
  auto server = StartEphemeral();
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();
  EXPECT_GT(port, 0);
  (*server)->Stop();
  (*server)->Stop();
  // The port is free again: a new server can bind an ephemeral port fine.
  auto second = StartEphemeral();
  ASSERT_TRUE(second.ok()) << second.status();
  const auto result = HttpGet((*second)->port(), "/statusz");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, 200);
  Tracer::Get().DisableSampling();
}

}  // namespace
}  // namespace cascn::obs
