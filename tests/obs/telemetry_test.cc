#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::obs {
namespace {

TEST(JsonObjectBuilderTest, EmptyObject) {
  EXPECT_EQ(JsonObjectBuilder().Build(), "{}");
}

TEST(JsonObjectBuilderTest, TypedFieldsInInsertionOrder) {
  const std::string json = JsonObjectBuilder()
                               .Add("event", "epoch")
                               .Add("epoch", 3)
                               .Add("loss", 0.5)
                               .Add("count", uint64_t{18446744073709551615u})
                               .Add("done", false)
                               .Build();
  EXPECT_EQ(json,
            "{\"event\": \"epoch\", \"epoch\": 3, \"loss\": 0.5, "
            "\"count\": 18446744073709551615, \"done\": false}");
}

TEST(JsonObjectBuilderTest, EscapesStrings) {
  const std::string json =
      JsonObjectBuilder().Add("name", "a\"b\\c\nd").Build();
  EXPECT_EQ(json, "{\"name\": \"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonObjectBuilderTest, NonFiniteDoublesBecomeNull) {
  const std::string json = JsonObjectBuilder()
                               .Add("nan", std::nan(""))
                               .Add("inf", HUGE_VAL)
                               .Build();
  EXPECT_EQ(json, "{\"nan\": null, \"inf\": null}");
}

TEST(VectorTelemetrySinkTest, CollectsInOrder) {
  VectorTelemetrySink sink;
  sink.Emit("{\"a\": 1}");
  sink.Emit("{\"b\": 2}");
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\": 1}");
  EXPECT_EQ(lines[1], "{\"b\": 2}");
}

TEST(VectorTelemetrySinkTest, ThreadSafeEmit) {
  VectorTelemetrySink sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&sink] {
      for (int i = 0; i < kPerThread; ++i) sink.Emit("{}");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.lines().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(FileTelemetrySinkTest, WritesJsonLines) {
  const std::string path =
      ::testing::TempDir() + "/cascn_telemetry_test.jsonl";
  std::remove(path.c_str());
  {
    auto sink = FileTelemetrySink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    (*sink)->Emit("{\"epoch\": 1}");
    (*sink)->Emit("{\"epoch\": 2}");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"epoch\": 1}");
  EXPECT_EQ(lines[1], "{\"epoch\": 2}");
  std::remove(path.c_str());
}

TEST(FileTelemetrySinkTest, OpenFailsOnBadPath) {
  EXPECT_FALSE(FileTelemetrySink::Open("/nonexistent-dir/t.jsonl").ok());
}

}  // namespace
}  // namespace cascn::obs
