#include "obs/metrics_registry.h"

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.value(), 1.5);
}

TEST(HistogramTest, ZeroValueLandsInFirstBucket) {
  Histogram histogram;
  histogram.Record(0);
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.mean, 0.0);
  EXPECT_LE(snap.PercentileUpperBound(0.50), 2.0);
}

TEST(HistogramTest, ValueAboveLastBucketIsAbsorbed) {
  Histogram histogram(4);  // buckets up to [8, inf)
  histogram.Record(uint64_t{1} << 40);
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.max, uint64_t{1} << 40);
}

TEST(HistogramTest, EmptySnapshotPercentilesAreZero) {
  Histogram histogram;
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.PercentileUpperBound(0.50), 0.0);
  EXPECT_EQ(snap.PercentileUpperBound(0.99), 0.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndBucketed) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_NEAR(snap.mean, 500.5, 1e-9);
  const double p50 = snap.PercentileUpperBound(0.50);
  const double p90 = snap.PercentileUpperBound(0.90);
  const double p99 = snap.PercentileUpperBound(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p99, 2048.0);
}

TEST(HistogramTest, InterpolatedPercentileTracksUniformData) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const auto snap = histogram.TakeSnapshot();
  // Uniform 1..1000: the interpolated estimate should land near the true
  // quantile, and always within the containing log2 bucket.
  EXPECT_NEAR(snap.Percentile(0.50), 500.0, 160.0);
  EXPECT_NEAR(snap.Percentile(0.90), 900.0, 130.0);
  // Clamped to the observed max, never the bucket upper bound (2048).
  EXPECT_LE(snap.Percentile(0.99), 1000.0);
  EXPECT_GE(snap.Percentile(0.99), 900.0);
  // Monotone in q.
  EXPECT_LE(snap.Percentile(0.50), snap.Percentile(0.90));
  EXPECT_LE(snap.Percentile(0.90), snap.Percentile(0.99));
  // Never exceeds the loose upper bound.
  EXPECT_LE(snap.Percentile(0.50), snap.PercentileUpperBound(0.50));
}

TEST(HistogramTest, InterpolatedPercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.TakeSnapshot().Percentile(0.99), 0.0);

  Histogram single;
  single.Record(0);
  // A lone zero sample: estimate clamps to the observed max of 0.
  EXPECT_EQ(single.TakeSnapshot().Percentile(0.50), 0.0);

  Histogram one_value;
  for (int i = 0; i < 10; ++i) one_value.Record(100);
  const auto snap = one_value.TakeSnapshot();
  EXPECT_LE(snap.Percentile(0.99), 100.0);
  EXPECT_GE(snap.Percentile(0.01), 64.0);  // within the [64, 128) bucket
}

TEST(HistogramTest, ConcurrentRecordAndSnapshot) {
  Histogram histogram;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerWriter; ++i)
        histogram.Record(static_cast<uint64_t>(i % 512));
    });
  }
  // A reader snapshotting mid-flight must always see a self-consistent
  // structure (counts never exceed the final total).
  std::thread reader([&histogram] {
    for (int i = 0; i < 100; ++i) {
      const auto snap = histogram.TakeSnapshot();
      EXPECT_LE(snap.count,
                static_cast<uint64_t>(kWriters) * kPerWriter);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_EQ(histogram.TakeSnapshot().count,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits");
  Counter& b = registry.GetCounter("hits");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(&registry.GetGauge("depth"), &registry.GetGauge("depth"));
  EXPECT_EQ(&registry.GetHistogram("lat"), &registry.GetHistogram("lat"));
}

TEST(MetricsRegistryTest, TextAndJsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total").Increment(7);
  registry.GetGauge("queue_depth").Set(3.0);
  registry.GetHistogram("batch_size").Record(4);

  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("requests_total = 7"), std::string::npos);
  EXPECT_NE(text.find("queue_depth = 3"), std::string::npos);
  EXPECT_NE(text.find("batch_size: n=1"), std::string::npos);

  const std::string json = registry.JsonSnapshot();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"requests_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\": {\"count\": 1"), std::string::npos);
}

TEST(MetricsRegistryTest, TextExpositionEmitsTypeAndHelpHeaders) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total").Increment();
  registry.GetGauge("queue_depth").Set(1.0);
  registry.GetHistogram("batch_size").Record(4);

  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP requests_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE batch_size histogram"), std::string::npos);
  // A header precedes its family's sample line.
  EXPECT_LT(text.find("# TYPE requests_total counter"),
            text.find("requests_total = 1"));

  // Headers are OpenMetrics-style comments and must NOT leak into JSON —
  // that output is schema-consumed and stays byte-stable.
  const std::string json = registry.JsonSnapshot();
  EXPECT_EQ(json.find('#'), std::string::npos) << json;
}

TEST(MetricsRegistryTest, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.GetCounter("rpcs_total{shard=\"0\"}").Increment();
  registry.GetCounter("rpcs_total{shard=\"1\"}").Increment();
  const std::string text = registry.TextSnapshot();
  // One TYPE line for the family, keyed on the name minus its label set.
  size_t count = 0;
  for (size_t pos = text.find("# TYPE rpcs_total counter");
       pos != std::string::npos;
       pos = text.find("# TYPE rpcs_total counter", pos + 1))
    ++count;
  EXPECT_EQ(count, 1u) << text;
}

TEST(MetricsRegistryTest, ExportToMergesIntoDestination) {
  MetricsRegistry source;
  source.GetCounter("exported_total").Increment(5);
  source.GetGauge("exported_gauge").Set(2.5);
  source.GetHistogram("exported_hist").Record(8);
  source.GetHistogram("exported_hist").Record(100);

  MetricsRegistry dest;
  dest.GetCounter("exported_total").Increment(2);  // pre-existing: adds
  dest.GetHistogram("exported_hist").Record(8);
  source.ExportTo(dest);

  EXPECT_EQ(dest.GetCounter("exported_total").value(), 7u);
  EXPECT_EQ(dest.GetGauge("exported_gauge").value(), 2.5);
  const Histogram::Snapshot merged =
      dest.GetHistogram("exported_hist").TakeSnapshot();
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.max, 100u);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("shared").Increment();
        registry.GetHistogram("sizes").Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("sizes").TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, GlobalInstanceIsStable) {
  EXPECT_EQ(&MetricsRegistry::Get(), &MetricsRegistry::Get());
}

TEST(EscapeLabelValueTest, PassesCleanValuesThrough) {
  EXPECT_EQ(EscapeLabelValue("acme-prod_01"), "acme-prod_01");
  EXPECT_EQ(EscapeLabelValue(""), "");
}

TEST(EscapeLabelValueTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  // Escaping composes: an attacker-supplied closing sequence stays inert.
  EXPECT_EQ(EscapeLabelValue("\"} evil{x=\""), "\\\"} evil{x=\\\"");
}

TEST(EscapeLabelValueTest, DropsNulAndHexEscapesOtherControls) {
  EXPECT_EQ(EscapeLabelValue(std::string_view("a\0b", 3)), "ab");
  EXPECT_EQ(EscapeLabelValue("a\x01"), "a\\x01");
  EXPECT_EQ(EscapeLabelValue("\x1f"), "\\x1f");
}

TEST(MetricsRegistryTest, LabeledNamesSurviveTextExpositionLiterally) {
  MetricsRegistry registry;
  const std::string name =
      "requests_total{tenant=\"" + EscapeLabelValue("a\"b") + "\"}";
  registry.GetCounter(name).Increment(3);
  const std::string text = registry.TextSnapshot();
  // Text format is line-oriented; the escaped label value appears verbatim.
  EXPECT_NE(text.find("requests_total{tenant=\"a\\\"b\"} = 3"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HostileNamesKeepJsonExpositionBalanced) {
  MetricsRegistry registry;
  registry
      .GetCounter("evil{tenant=\"" + EscapeLabelValue("x\"\\\n") + "\"}")
      .Increment();
  registry.GetGauge("g\tname").Set(1.0);
  const std::string json = registry.JsonSnapshot();
  // No raw control characters and no unescaped quotes that would terminate
  // a JSON string early: brace/quote structure must stay balanced.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, NewlineInNameCannotSplitTextLines) {
  MetricsRegistry registry;
  registry.GetCounter("bad\nname").Increment();
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("bad\\nname = 1"), std::string::npos);
}

TEST(MetricsRegistryDeathTest, EmbeddedNulInNameIsRejected) {
  MetricsRegistry registry;
  const std::string nul_name("nul\0metric", 10);
  EXPECT_DEATH(registry.GetCounter(nul_name), "NUL");
  EXPECT_DEATH(registry.GetGauge(nul_name), "NUL");
  EXPECT_DEATH(registry.GetHistogram(nul_name), "NUL");
}

}  // namespace
}  // namespace cascn::obs
