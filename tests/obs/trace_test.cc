#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics_registry.h"
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascn::obs {
namespace {

// The tracer is process-global, so every test starts from a clean slate and
// leaves tracing disabled for the rest of the binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    CASCN_TRACE_SPAN("ignored");
  }
  Tracer::Get().RecordSpan("ignored", std::chrono::steady_clock::now(),
                           std::chrono::steady_clock::now());
  EXPECT_EQ(Tracer::Get().event_count(), 0u);
}

TEST_F(TraceTest, ScopedSpanRecordsWhenEnabled) {
  Tracer::Get().Enable();
  {
    CASCN_TRACE_SPAN("outer");
    CASCN_TRACE_SPAN("inner");
  }
  EXPECT_EQ(Tracer::Get().event_count(), 2u);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, ExplicitCrossThreadSpanHasDuration) {
  Tracer::Get().Enable();
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::milliseconds(5);
  Tracer::Get().RecordSpan("queue_wait", start, end);
  EXPECT_EQ(Tracer::Get().event_count(), 1u);
  // 5 ms = 5000 us; serialized dur must reflect it.
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"dur\": 5000.000"), std::string::npos);
}

TEST_F(TraceTest, NegativeDurationClampsToZero) {
  Tracer::Get().Enable();
  const auto now = std::chrono::steady_clock::now();
  Tracer::Get().RecordSpan("backwards", now, now - std::chrono::seconds(1));
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"dur\": 0.000"), std::string::npos);
}

TEST_F(TraceTest, SpansFromManyThreadsAllLand) {
  Tracer::Get().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        CASCN_TRACE_SPAN("worker_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::Get().event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TraceTest, RingBufferBoundsRetainedEvents) {
  Tracer::Get().Enable();
  for (size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    CASCN_TRACE_SPAN("wrap");
  }
  EXPECT_EQ(Tracer::Get().event_count(), Tracer::kRingCapacity);
}

TEST_F(TraceTest, ClearDropsEverything) {
  Tracer::Get().Enable();
  {
    CASCN_TRACE_SPAN("soon_gone");
  }
  ASSERT_GT(Tracer::Get().event_count(), 0u);
  Tracer::Get().Clear();
  EXPECT_EQ(Tracer::Get().event_count(), 0u);
}

TEST_F(TraceTest, WriteChromeTraceProducesParseableFile) {
  Tracer::Get().Enable();
  {
    CASCN_TRACE_SPAN("file_span");
  }
  const std::string path = ::testing::TempDir() + "/cascn_trace_test.json";
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"file_span\""), std::string::npos);
  // Balanced braces — a cheap structural sanity check without a parser.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceRejectsBadPath) {
  EXPECT_FALSE(
      Tracer::Get().WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, RequestScopedSpanCarriesTraceIdAndFlowEvents) {
  Tracer::Get().Enable();
  const uint64_t trace_id = 0xdeadbeefcafeULL;
  const auto start = std::chrono::steady_clock::now();
  Tracer::Get().RecordSpan("submit", start, start + std::chrono::microseconds(10),
                           trace_id, SpanFlow::kOut);
  Tracer::Get().RecordSpan("queue", start, start + std::chrono::microseconds(20),
                           trace_id, SpanFlow::kStep);
  Tracer::Get().RecordSpan("execute", start,
                           start + std::chrono::microseconds(30), trace_id,
                           SpanFlow::kIn);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  // Every span's X event carries the id as an arg...
  EXPECT_NE(json.find("\"trace_id\": \"deadbeefcafe\""), std::string::npos);
  // ...and the flow chain start/step/finish events all key on it.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"deadbeefcafe\""), std::string::npos);
}

TEST_F(TraceTest, PlainSpansEmitNoFlowEvents) {
  Tracer::Get().Enable();
  {
    CASCN_TRACE_SPAN("plain");
  }
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_EQ(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_EQ(json.find("trace_id"), std::string::npos);
}

TEST_F(TraceTest, RingOverflowCountsDroppedSpans) {
  Tracer::Get().Enable();
  ASSERT_EQ(Tracer::Get().dropped_count(), 0u);
  const uint64_t counter_before =
      MetricsRegistry::Get().GetCounter("trace_spans_dropped").value();
  constexpr size_t kOverflow = 5;
  for (size_t i = 0; i < Tracer::kRingCapacity + kOverflow; ++i) {
    CASCN_TRACE_SPAN("overflow");
  }
  EXPECT_EQ(Tracer::Get().dropped_count(), kOverflow);
  // Exported through the global registry for alerting...
  EXPECT_EQ(
      MetricsRegistry::Get().GetCounter("trace_spans_dropped").value(),
      counter_before + kOverflow);
  // ...and embedded in the trace itself so a truncated file says so.
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"spans_dropped\": 5"), std::string::npos);
  // Clear resets the per-trace count (the registry counter is cumulative).
  Tracer::Get().Clear();
  EXPECT_EQ(Tracer::Get().dropped_count(), 0u);
}

}  // namespace
}  // namespace cascn::obs
