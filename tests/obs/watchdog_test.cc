#include "obs/watchdog.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace cascn::obs {
namespace {

using std::chrono::steady_clock;

/// Hand-cranked clock + PollOnce make every test deterministic: no real
/// sleeping, no background-thread races.
struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{};
  void Advance(double ms) {
    now += std::chrono::duration_cast<steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  }
};

WatchdogOptions DeterministicOptions(FakeClock& clock) {
  WatchdogOptions options;
  options.stall_ms = 100.0;
  options.clock = [&clock] { return clock.now; };
  return options;
}

WatchTarget MakeTarget(std::string name, std::function<uint64_t()> progress,
                       std::function<bool()> busy,
                       std::function<void()> on_stall = nullptr,
                       std::function<void()> on_recover = nullptr) {
  WatchTarget target;
  target.name = std::move(name);
  target.progress = std::move(progress);
  target.busy = std::move(busy);
  target.on_stall = std::move(on_stall);
  target.on_recover = std::move(on_recover);
  return target;
}

TEST(WatchdogTest, StallFiresOncePerEpisodeAndRearms) {
  FakeClock clock;
  Watchdog watchdog(DeterministicOptions(clock));
  WorkerHeartbeat heartbeat;
  std::atomic<bool> busy{true};
  int stalls = 0, recoveries = 0;
  watchdog.Watch(MakeTarget(
      "w", [&] { return heartbeat.count(); }, [&] { return busy.load(); },
      [&] { ++stalls; }, [&] { ++recoveries; }));

  // Quiet but under the threshold: nothing fires.
  clock.Advance(99);
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stalls_total(), 0u);

  // Over the threshold: exactly one stall, and repeated polls while the
  // stall persists must NOT re-fire.
  clock.Advance(2);
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stalls_total(), 1u);
  EXPECT_EQ(stalls, 1);
  for (int i = 0; i < 5; ++i) {
    clock.Advance(500);
    watchdog.PollOnce();
  }
  EXPECT_EQ(watchdog.stalls_total(), 1u);
  EXPECT_EQ(stalls, 1);
  EXPECT_EQ(recoveries, 0);

  // Progress resumes: recovery fires and detection re-arms, so a second
  // quiet-while-busy stretch is a NEW episode.
  heartbeat.Beat();
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.recoveries_total(), 1u);
  EXPECT_EQ(recoveries, 1);
  clock.Advance(101);
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stalls_total(), 2u);
  EXPECT_EQ(stalls, 2);
}

TEST(WatchdogTest, IdleTargetNeverFalsePositives) {
  FakeClock clock;
  Watchdog watchdog(DeterministicOptions(clock));
  WorkerHeartbeat heartbeat;
  int stalls = 0;
  watchdog.Watch(MakeTarget(
      "idle", [&] { return heartbeat.count(); }, [] { return false; },
      [&] { ++stalls; }));
  // An empty-queue service sits quiet forever without tripping.
  for (int i = 0; i < 100; ++i) {
    clock.Advance(1000);
    watchdog.PollOnce();
  }
  EXPECT_EQ(watchdog.stalls_total(), 0u);
  EXPECT_EQ(stalls, 0);
}

TEST(WatchdogTest, IdlePeriodDoesNotCountTowardLaterStall) {
  FakeClock clock;
  Watchdog watchdog(DeterministicOptions(clock));
  std::atomic<bool> busy{false};
  watchdog.Watch(
      MakeTarget("w", [] { return 0ull; }, [&] { return busy.load(); }));
  // Long idle stretch, then work arrives: the stall window starts at the
  // busy transition, not at the last heartbeat.
  clock.Advance(10'000);
  watchdog.PollOnce();
  busy.store(true);
  clock.Advance(99);
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stalls_total(), 0u);
  clock.Advance(2);
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stalls_total(), 1u);
}

TEST(WatchdogTest, StallDumpContainsOpenSpans) {
  FakeClock clock;
  WatchdogOptions options = DeterministicOptions(clock);
  options.anomaly_dir = ::testing::TempDir();
  Watchdog watchdog(options);
  Tracer::Get().EnableSampling();  // Start() would do this; tests PollOnce.
  std::atomic<bool> busy{true};
  watchdog.Watch(MakeTarget("shard/0", [] { return 0ull; },
                            [&] { return busy.load(); }));
  {
    ScopedSpan span("stuck_predict", 0xdeadbeef, SpanFlow::kIn);
    clock.Advance(101);
    watchdog.PollOnce();
  }
  Tracer::Get().DisableSampling();
  const std::string path = watchdog.last_dump_path();
  ASSERT_FALSE(path.empty());
  // Slash in the target name must be sanitized out of the filename.
  EXPECT_EQ(path.find("shard/0"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"event\": \"watchdog_stall\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("stuck_predict"), std::string::npos) << dump;
  EXPECT_NE(dump.find("deadbeef"), std::string::npos) << dump;
}

TEST(WatchdogTest, StallsBumpGlobalCounter) {
  const uint64_t before =
      MetricsRegistry::Get().GetCounter("watchdog_stalls_total").value();
  FakeClock clock;
  Watchdog watchdog(DeterministicOptions(clock));
  watchdog.Watch(
      MakeTarget("w", [] { return 0ull; }, [] { return true; }));
  clock.Advance(101);
  watchdog.PollOnce();
  EXPECT_EQ(
      MetricsRegistry::Get().GetCounter("watchdog_stalls_total").value(),
      before + 1);
}

TEST(WatchdogTest, BackgroundThreadDetectsRealStall) {
  WatchdogOptions fast;
  fast.poll_ms = 5.0;
  fast.stall_ms = 20.0;
  Watchdog watchdog(fast);
  watchdog.Watch(
      MakeTarget("w", [] { return 0ull; }, [] { return true; }));
  watchdog.Start();
  const auto deadline =
      steady_clock::now() + std::chrono::seconds(5);
  while (watchdog.stalls_total() == 0 && steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  watchdog.Stop();
  Tracer::Get().DisableSampling();  // Start() enabled it.
  EXPECT_GE(watchdog.stalls_total(), 1u);
  EXPECT_EQ(watchdog.stalls_total(), 1u) << "stall must not re-fire";
}

TEST(WatchdogTest, StatusJsonListsTargets) {
  FakeClock clock;
  Watchdog watchdog(DeterministicOptions(clock));
  watchdog.Watch(
      MakeTarget("alpha", [] { return 7ull; }, [] { return false; }));
  watchdog.PollOnce();
  const std::string json = watchdog.StatusJson();
  EXPECT_NE(json.find("\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("7"), std::string::npos) << json;
}

}  // namespace
}  // namespace cascn::obs
