#include "obs/slo.h"

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace cascn::obs {
namespace {

using std::chrono::seconds;

// A fixed, arbitrary origin well past zero so window subtraction never goes
// negative. Tests advance from here deterministically.
SloTracker::TimePoint T0() {
  return SloTracker::TimePoint(std::chrono::seconds(1'000'000));
}

SloOptions TestOptions() {
  SloOptions opts;
  opts.availability_target = 0.999;  // error budget = 0.1%
  opts.latency_slo_us = 0;
  opts.fast_window_seconds = 60;
  opts.slow_window_seconds = 600;
  opts.fast_burn_threshold = 14.0;
  opts.slow_burn_threshold = 1.0;
  return opts;
}

const TenantSli* FindTenant(const std::vector<TenantSli>& slis,
                            const std::string& tenant) {
  for (const TenantSli& sli : slis)
    if (sli.tenant == tenant) return &sli;
  return nullptr;
}

TEST(SloTrackerTest, AllGoodTrafficHasZeroBurn) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  for (int s = 0; s < 120; ++s)
    for (int i = 0; i < 10; ++i)
      tracker.RecordRequest("acme", now + seconds(s), /*ok=*/true, 100);
  const auto slis = tracker.Snapshot(now + seconds(120));
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_EQ(slis[0].tenant, "acme");
  EXPECT_DOUBLE_EQ(slis[0].fast_availability, 1.0);
  EXPECT_DOUBLE_EQ(slis[0].slow_availability, 1.0);
  EXPECT_DOUBLE_EQ(slis[0].fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(slis[0].slow_burn, 0.0);
  EXPECT_FALSE(slis[0].burning);
  EXPECT_FALSE(tracker.AnyTenantBurning(now + seconds(120)));
}

TEST(SloTrackerTest, TenantWithNoRecentTrafficIsNotBurning) {
  SloTracker tracker(TestOptions());
  tracker.RecordRequest("acme", T0(), /*ok=*/false, 100);
  // Far beyond the slow window: every bucket has expired.
  const auto later = T0() + seconds(10'000);
  const auto slis = tracker.Snapshot(later);
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_EQ(slis[0].fast_total, 0u);
  EXPECT_EQ(slis[0].slow_total, 0u);
  EXPECT_DOUBLE_EQ(slis[0].fast_availability, 1.0);
  EXPECT_DOUBLE_EQ(slis[0].slow_availability, 1.0);
  EXPECT_FALSE(slis[0].burning);
}

TEST(SloTrackerTest, FastSpikeAloneDoesNotPage) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  // Heavy clean traffic fills the slow window with good samples (51,000)…
  for (int s = 0; s < 510; ++s)
    for (int i = 0; i < 100; ++i)
      tracker.RecordRequest("acme", now + seconds(s), true, 100);
  // …then a brief trickle of pure failures (30 bad): the fast window sees
  // only errors so its burn explodes, but against the slow window's volume
  // the error rate stays inside budget (30/51030 < 0.1%) — NOT flagged.
  for (int s = 540; s < 570; ++s)
    tracker.RecordRequest("acme", now + seconds(s), false, 100);
  const auto at = now + seconds(570);
  const auto slis = tracker.Snapshot(at);
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_GT(slis[0].fast_burn, 14.0);
  EXPECT_LT(slis[0].slow_burn, 1.0) << "slow window should dilute the spike";
  EXPECT_FALSE(slis[0].burning);
  EXPECT_FALSE(tracker.AnyTenantBurning(at));
}

TEST(SloTrackerTest, SustainedErrorsAcrossBothWindowsBurn) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  // Ten minutes of 50% errors: both windows far exceed their thresholds
  // (error rate 0.5 / budget 0.001 = burn 500).
  for (int s = 0; s < 600; ++s)
    for (int i = 0; i < 10; ++i)
      tracker.RecordRequest("acme", now + seconds(s), /*ok=*/(i % 2 == 0),
                            100);
  const auto at = now + seconds(600);
  const auto slis = tracker.Snapshot(at);
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_NEAR(slis[0].fast_availability, 0.5, 1e-9);
  EXPECT_NEAR(slis[0].slow_availability, 0.5, 1e-9);
  EXPECT_GT(slis[0].fast_burn, 14.0);
  EXPECT_GT(slis[0].slow_burn, 1.0);
  EXPECT_TRUE(slis[0].burning);
  EXPECT_TRUE(tracker.AnyTenantBurning(at));
}

TEST(SloTrackerTest, SlowSuccessesViolateLatencySlo) {
  SloOptions opts = TestOptions();
  opts.latency_slo_us = 50'000;  // 50 ms
  SloTracker tracker(opts);
  const auto now = T0();
  tracker.RecordRequest("acme", now, /*ok=*/true, 10'000);   // good
  tracker.RecordRequest("acme", now, /*ok=*/true, 200'000);  // too slow: bad
  tracker.RecordRequest("acme", now, /*ok=*/false, 1'000);   // failed: bad
  const auto slis = tracker.Snapshot(now + seconds(1));
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_EQ(slis[0].fast_total, 3u);
  EXPECT_EQ(slis[0].fast_good, 1u);
}

TEST(SloTrackerTest, BurningTenantDoesNotTaintOthers) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  for (int s = 0; s < 600; ++s) {
    tracker.RecordRequest("noisy", now + seconds(s), /*ok=*/false, 100);
    tracker.RecordRequest("calm", now + seconds(s), /*ok=*/true, 100);
  }
  const auto at = now + seconds(600);
  const auto slis = tracker.Snapshot(at);
  const TenantSli* noisy = FindTenant(slis, "noisy");
  const TenantSli* calm = FindTenant(slis, "calm");
  ASSERT_NE(noisy, nullptr);
  ASSERT_NE(calm, nullptr);
  EXPECT_TRUE(noisy->burning);
  EXPECT_FALSE(calm->burning);
  EXPECT_DOUBLE_EQ(calm->fast_burn, 0.0);
  EXPECT_TRUE(tracker.AnyTenantBurning(at));
}

TEST(SloTrackerTest, OldBucketsExpireAsTimeAdvances) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  for (int s = 0; s < 600; ++s)
    tracker.RecordRequest("acme", now + seconds(s), /*ok=*/false, 100);
  ASSERT_TRUE(tracker.AnyTenantBurning(now + seconds(600)));
  // One slow-window later with no traffic, the burn has fully decayed.
  const auto later = now + seconds(600 + 601);
  const auto slis = tracker.Snapshot(later);
  ASSERT_EQ(slis.size(), 1u);
  EXPECT_EQ(slis[0].slow_total, 0u);
  EXPECT_FALSE(slis[0].burning);
  EXPECT_FALSE(tracker.AnyTenantBurning(later));
}

TEST(SloTrackerTest, ExportToRegistryEmitsLabeledGauges) {
  SloTracker tracker(TestOptions());
  const auto now = T0();
  for (int s = 0; s < 600; ++s)
    tracker.RecordRequest("acme", now + seconds(s), /*ok=*/false, 100);
  MetricsRegistry& registry = MetricsRegistry::Get();
  tracker.ExportToRegistry(registry, now + seconds(600));
  EXPECT_GT(registry.GetGauge("slo_fast_burn{tenant=\"acme\"}").value(),
            14.0);
  EXPECT_GT(registry.GetGauge("slo_slow_burn{tenant=\"acme\"}").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("slo_fast_availability{tenant=\"acme\"}").value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("slo_burning{tenant=\"acme\"}").value(), 1.0);
}

TEST(SloTrackerTest, ExportEscapesHostileTenantLabels) {
  SloTracker tracker(TestOptions());
  tracker.RecordRequest("bad\"guy", T0(), /*ok=*/true, 100);
  MetricsRegistry& registry = MetricsRegistry::Get();
  tracker.ExportToRegistry(registry, T0() + seconds(1));
  // The quote inside the tenant name is escaped inside the label value, so
  // the metric name remains unambiguous.
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("slo_burning{tenant=\"bad\\\"guy\"}").value(), 0.0);
}

TEST(SloTrackerTest, WindowsClampToSaneMinimums) {
  SloOptions opts;
  opts.fast_window_seconds = 0;
  opts.slow_window_seconds = -5;
  SloTracker tracker(opts);
  EXPECT_GE(tracker.options().fast_window_seconds, 1);
  EXPECT_GE(tracker.options().slow_window_seconds,
            tracker.options().fast_window_seconds);
  // Still functional after clamping.
  tracker.RecordRequest("t", T0(), true, 1);
  EXPECT_EQ(tracker.Snapshot(T0()).size(), 1u);
}

}  // namespace
}  // namespace cascn::obs
