#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cascn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad input").ToString(),
            "InvalidArgument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "boom");
}

Status FailsThenPropagates(bool fail) {
  CASCN_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_EQ(FailsThenPropagates(true).message(), "inner");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 4);
  EXPECT_EQ(r.value(), 4);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(Half(7).value_or(-1), -1);
  EXPECT_EQ(Half(8).value_or(-1), 4);
}

Result<int> Quarter(int x) {
  CASCN_ASSIGN_OR_RETURN(int half, Half(x));
  CASCN_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(ResultTest, MoveOnlyValue) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(42);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 42);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace cascn
