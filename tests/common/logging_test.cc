#include "common/logging.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace cascn {
namespace {

/// Restores the global level and CASCN_LOG_LEVEL after each test so the
/// rest of the binary is unaffected.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override {
    unsetenv("CASCN_LOG_LEVEL");
    SetLogLevel(previous_);
  }
  LogLevel previous_;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsAllLevels) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelIsCaseInsensitive) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST_F(LoggingTest, ParseLogLevelRejectsGarbage) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("fatal", &level));  // not settable from env
  EXPECT_EQ(level, LogLevel::kError);            // untouched on failure
}

TEST_F(LoggingTest, InitLogLevelFromEnvAppliesValidLevel) {
  setenv("CASCN_LOG_LEVEL", "error", /*overwrite=*/1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, InitLogLevelFromEnvIgnoresInvalidValue) {
  SetLogLevel(LogLevel::kWarning);
  setenv("CASCN_LOG_LEVEL", "extremely-loud", /*overwrite=*/1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, InitLogLevelFromEnvNoopWithoutVariable) {
  SetLogLevel(LogLevel::kDebug);
  unsetenv("CASCN_LOG_LEVEL");
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

}  // namespace
}  // namespace cascn
