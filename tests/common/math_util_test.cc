#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(Log2p1Test, KnownValues) {
  EXPECT_DOUBLE_EQ(Log2p1(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2p1(1), 1.0);
  EXPECT_DOUBLE_EQ(Log2p1(3), 2.0);
  EXPECT_DOUBLE_EQ(Log2p1(7), 3.0);
}

TEST(Log2p1Test, InverseRoundTrips) {
  for (double x : {0.0, 1.0, 5.0, 100.0, 12345.0}) {
    EXPECT_NEAR(Exp2m1(Log2p1(x)), x, 1e-9 * (1 + x));
  }
}

TEST(SigmoidTest, SymmetryAndLimits) {
  EXPECT_DOUBLE_EQ(Sigmoid(0), 0.5);
  EXPECT_NEAR(Sigmoid(10) + Sigmoid(-10), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(100), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100), 0.0, 1e-12);
  // No overflow for extreme inputs.
  EXPECT_TRUE(std::isfinite(Sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e6)));
}

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5}), 5.0);
}

TEST(StdDevTest, PopulationFormula) {
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0.0);
  EXPECT_NEAR(StdDev({1, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({7}), 0.0);
}

TEST(MaxValueTest, Basic) {
  EXPECT_DOUBLE_EQ(MaxValue({1, 9, 3}), 9.0);
  EXPECT_DOUBLE_EQ(MaxValue({}), 0.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, UnsortedInputIsHandled) {
  EXPECT_DOUBLE_EQ(Percentile({40, 10, 30, 20}, 100), 40.0);
}

TEST(MeanSquaredErrorTest, MatchesManualComputation) {
  const double mse = MeanSquaredError({1.0, 2.0}, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(mse, (1.0 + 4.0) / 2.0);
}

TEST(MeanSquaredErrorTest, ZeroForExactPredictions) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.5, -2.0}, {1.5, -2.0}), 0.0);
}

}  // namespace
}  // namespace cascn
