#include "common/cli_flags.h"

#include <gtest/gtest.h>

namespace cascn {
namespace {

CliFlags ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  CliFlags flags;
  EXPECT_TRUE(
      flags.Parse(static_cast<int>(argv.size()),
                  const_cast<char**>(argv.data()))
          .ok());
  return flags;
}

TEST(CliFlagsTest, EqualsSyntax) {
  const CliFlags flags = ParseArgs({"--epochs=20", "--lr=0.01"});
  EXPECT_EQ(flags.GetInt("epochs", 0), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0), 0.01);
}

TEST(CliFlagsTest, SpaceSyntax) {
  const CliFlags flags = ParseArgs({"--name", "weibo"});
  EXPECT_EQ(flags.GetString("name", ""), "weibo");
}

TEST(CliFlagsTest, BareFlagIsTrue) {
  const CliFlags flags = ParseArgs({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
}

TEST(CliFlagsTest, DefaultsWhenMissing) {
  const CliFlags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("epochs", 7), 7);
  EXPECT_EQ(flags.GetString("x", "d"), "d");
  EXPECT_FALSE(flags.GetBool("flag", false));
}

TEST(CliFlagsTest, PositionalArgumentsKeptInOrder) {
  const CliFlags flags = ParseArgs({"first", "--k=1", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(CliFlagsTest, MalformedIntFallsBackToDefault) {
  const CliFlags flags = ParseArgs({"--epochs=abc"});
  EXPECT_EQ(flags.GetInt("epochs", 3), 3);
}

TEST(CliFlagsTest, BareDashDashIsError) {
  CliFlags flags;
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(CliFlagsTest, BoolRecognisesSpellings) {
  const CliFlags flags = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

}  // namespace
}  // namespace cascn
