#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "b");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitTest, SingleFieldWhenNoDelimiter) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  const auto parts = SplitWhitespace("  a \t b\n  c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, RemovesEdges) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(PrefixSuffixTest, StartsAndEnds) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ParseInt64Test, ParsesValid) {
  ASSERT_TRUE(ParseInt64("42").ok());
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13 "), 13);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("3.14").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesValid) {
  ASSERT_TRUE(ParseDouble("3.5").ok());
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace cascn
