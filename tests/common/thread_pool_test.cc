#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, MoreWorkThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  ParallelFor(pool, 1000, [&sum](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(HardwareConcurrencyTest, AtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace cascn
