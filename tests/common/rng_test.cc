#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cascn {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextUint64() == b.NextUint64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.Split();
  // The child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(41);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int x = rng.Poisson(100.0);
    EXPECT_GE(x, 0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, ParetoRespectsMinimumAndTail) {
  Rng rng(43);
  double log_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Pareto(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    log_sum += std::log(x / 2.0);
  }
  // E[log(X/x_min)] = 1/alpha for Pareto.
  EXPECT_NEAR(log_sum / n, 1.0 / 3.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, LogNormalMeanIsExpMuPlusHalfSigmaSq) {
  Rng rng(GetParam());
  // mu = -sigma^2/2 makes the mean 1 (the generator's normalisation).
  const double sigma = 0.8;
  double sum = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i)
    sum += rng.LogNormal(-0.5 * sigma * sigma, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST_P(RngSeedSweep, UniformMeanIsHalf) {
  Rng rng(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 42, 31337, 0xDEADBEEF));

}  // namespace
}  // namespace cascn
