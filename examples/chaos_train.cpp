// Chaos smoke: prove crash-safe training end to end.
//
// Trains CasCN twice on the same simulated dataset:
//
//   1. Uninterrupted: all --epochs epochs in one run.
//   2. Chaos: the run is killed after --kill_after epochs (the process just
//      stops training, like a crash at an epoch boundary), then resumed
//      from the train-state file to the same total epoch count — with the
//      "trainer.nan_loss" fault poisoning batch losses the whole time, so
//      the non-finite guard and the resume path are exercised together.
//
// Both runs save a model checkpoint; the two files must be byte-identical,
// which CI asserts with cmp. Exit status is non-zero if the checkpoints
// differ, so the binary is its own assertion.
//
//   ./chaos_train [--cascades=200] [--epochs=4] [--kill_after=2]
//                 [--state=/tmp/chaos_state.bin]
//                 [--out=/tmp/chaos] [--seed=42]
//                 [--nan_prob=0.1] [--verbose]
//
// Writes <out>_full.ckpt and <out>_resumed.ckpt.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"
#include "fault/fault.h"
#include "serve/checkpoint.h"

namespace cascn {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CASCN_CHECK(in.good()) << "cannot read " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int Main(int argc, char** argv) {
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const int num_cascades = static_cast<int>(flags.GetInt("cascades", 200));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 4));
  const int kill_after = static_cast<int>(flags.GetInt("kill_after", 2));
  const std::string state_path =
      flags.GetString("state", "/tmp/chaos_state.bin");
  const std::string out = flags.GetString("out", "/tmp/chaos");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double nan_prob = flags.GetDouble("nan_prob", 0.1);
  const bool verbose = flags.GetBool("verbose", false);
  CASCN_CHECK(kill_after >= 1 && kill_after < epochs)
      << "--kill_after must interrupt the run: 1 <= kill_after < epochs";

  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = num_cascades;
  Rng rng(seed);
  const std::vector<Cascade> cascades = GenerateCascades(gen, rng);
  DatasetOptions data_opts;
  data_opts.observation_window = 60.0;
  data_opts.min_observed_size = 10;
  auto dataset = BuildDataset(cascades, data_opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  std::printf("chaos_train: %zu train cascades, %d epochs, kill after %d, "
              "nan_prob %.2f\n",
              dataset->train.size(), epochs, kill_after, nan_prob);

  CascnConfig config;
  config.padded_size = 32;
  config.hidden_dim = 12;
  config.cheb_order = 2;
  config.seed = seed;

  auto arm_faults = [&] {
    fault::FaultRegistry::Get().Clear();
    if (nan_prob > 0.0) {
      fault::FaultRegistry::Get().set_seed(seed);
      char spec[64];
      std::snprintf(spec, sizeof(spec), "trainer.nan_loss=prob:%.4f",
                    nan_prob);
      CASCN_CHECK(fault::FaultRegistry::Get().Configure(spec).ok());
    }
  };
  auto options = [&](int max_epochs, const std::string& checkpoint) {
    TrainerOptions trainer;
    trainer.max_epochs = max_epochs;
    trainer.patience = max_epochs + 1;  // no early stop: epochs are fixed
    trainer.seed = seed;
    trainer.verbose = verbose;
    trainer.checkpoint_path = checkpoint;
    return trainer;
  };

  // Run 1: uninterrupted reference (no state file).
  arm_faults();
  CascnModel full_model(config);
  const TrainResult full =
      TrainRegressor(full_model, *dataset, options(epochs, ""));
  const std::string full_ckpt = out + "_full.ckpt";
  CASCN_CHECK(serve::SaveCascnCheckpoint(full_ckpt, full_model).ok());
  std::printf("full run: %zu epochs, %lld poisoned steps skipped, "
              "best MSLE %.4f\n",
              full.history.size(),
              static_cast<long long>(full.skipped_steps),
              full.best_validation_msle);

  // Run 2: "crash" at the kill point, then a fresh process-equivalent
  // resumes from the state file and finishes the run.
  std::remove(state_path.c_str());
  arm_faults();
  CascnModel killed_model(config);
  TrainRegressor(killed_model, *dataset, options(kill_after, state_path));
  std::printf("killed after epoch %d (state in %s)\n", kill_after,
              state_path.c_str());

  arm_faults();
  CascnModel resumed_model(config);
  const TrainResult resumed =
      TrainRegressor(resumed_model, *dataset, options(epochs, state_path));
  fault::FaultRegistry::Get().Clear();
  CASCN_CHECK(resumed.resumed_from_checkpoint)
      << "resume did not pick up the state file";
  const std::string resumed_ckpt = out + "_resumed.ckpt";
  CASCN_CHECK(serve::SaveCascnCheckpoint(resumed_ckpt, resumed_model).ok());
  std::printf("resumed run: %zu epochs total, %lld poisoned steps skipped, "
              "best MSLE %.4f\n",
              resumed.history.size(),
              static_cast<long long>(resumed.skipped_steps),
              resumed.best_validation_msle);

  // The whole point: interrupted + resumed training produces the exact
  // same bytes as never crashing at all.
  const std::string a = ReadAll(full_ckpt);
  const std::string b = ReadAll(resumed_ckpt);
  if (a.size() != b.size() || std::memcmp(a.data(), b.data(), a.size()) != 0) {
    std::fprintf(stderr,
                 "chaos_train: FAIL — %s and %s differ (%zu vs %zu bytes)\n",
                 full_ckpt.c_str(), resumed_ckpt.c_str(), a.size(), b.size());
    return 1;
  }
  std::printf("chaos_train: OK — checkpoints byte-identical (%zu bytes), "
              "skipped steps match: %s\n",
              a.size(),
              full.skipped_steps == resumed.skipped_steps ? "yes" : "NO");
  return full.skipped_steps == resumed.skipped_steps ? 0 : 1;
}

}  // namespace
}  // namespace cascn

int main(int argc, char** argv) { return cascn::Main(argc, argv); }
