// Citation-count forecasting: the paper's second scenario (HEP-PH).
//
// Observes each paper's citation cascade for 3 "years", trains CasCN to
// predict how many further citations accrue over the remaining 20-year
// horizon, and inspects what the learned cascade representation encodes by
// correlating its dimensions with structural properties (the Fig. 9
// analysis in miniature).
//
//   ./citation_forecast [--papers=600] [--epochs=8] [--window-years=3]

#include <cmath>
#include <cstdio>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());

  GeneratorConfig gen = CitationLikeConfig();
  gen.num_cascades = static_cast<int>(flags.GetInt("papers", 600));
  Rng rng(1993);
  const std::vector<Cascade> cascades = GenerateCascades(gen, rng);

  DatasetOptions data_opts;
  data_opts.observation_window = flags.GetDouble("window-years", 3.0) * 12.0;
  data_opts.min_observed_size = 3;
  auto dataset = BuildDataset(cascades, data_opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  std::printf("papers with >= 3 citations in the first %.0f years: %d\n",
              data_opts.observation_window / 12.0, dataset->TotalSize());

  CascnConfig config;
  config.padded_size = 24;  // citation cascades are small (Table II)
  config.hidden_dim = 12;
  CascnModel model(config);

  TrainerOptions trainer;
  trainer.max_epochs = static_cast<int>(flags.GetInt("epochs", 8));
  const TrainResult run = TrainRegressor(model, *dataset, trainer);
  std::printf("test MSLE: %.3f (best val %.3f)\n",
              EvaluateMsle(model, dataset->test),
              run.best_validation_msle);

  // Which hand-crafted property does the learned representation track?
  // Correlate each representation dimension with the leaf count (Fig. 9c/d
  // finds leaves to be a strongly encoded feature).
  const auto& probe_set = dataset->test;
  std::vector<std::vector<double>> reps;
  std::vector<double> leaves;
  for (const auto& sample : probe_set) {
    const Tensor rep = model.Representation(sample);
    std::vector<double> row(rep.cols());
    for (int j = 0; j < rep.cols(); ++j) row[j] = rep.At(0, j);
    reps.push_back(std::move(row));
    leaves.push_back(ComputeStructure(sample.observed).num_leaves);
  }
  const double leaf_mean = Mean(leaves);
  double best_corr = 0;
  int best_dim = 0;
  for (int j = 0; j < config.hidden_dim; ++j) {
    std::vector<double> dim(reps.size());
    for (size_t i = 0; i < reps.size(); ++i) dim[i] = reps[i][j];
    const double dim_mean = Mean(dim);
    double cov = 0, vd = 0, vl = 0;
    for (size_t i = 0; i < reps.size(); ++i) {
      cov += (dim[i] - dim_mean) * (leaves[i] - leaf_mean);
      vd += (dim[i] - dim_mean) * (dim[i] - dim_mean);
      vl += (leaves[i] - leaf_mean) * (leaves[i] - leaf_mean);
    }
    if (vd > 0 && vl > 0) {
      const double corr = cov / std::sqrt(vd * vl);
      if (std::fabs(corr) > std::fabs(best_corr)) {
        best_corr = corr;
        best_dim = j;
      }
    }
  }
  std::printf(
      "representation dim %d correlates most with leaf count (r = %.2f) — "
      "the learned embedding encodes cascade structure\n",
      best_dim, best_corr);

  // Per-paper forecasts.
  std::printf("\n%-8s %-10s %-18s %-14s\n", "paper", "observed",
              "predicted future", "actual future");
  const size_t show = std::min<size_t>(6, probe_set.size());
  for (size_t i = 0; i < show; ++i) {
    const CascadeSample& s = probe_set[i];
    const double pred =
        Exp2m1(model.PredictLogCalibrated(s).value().At(0, 0));
    std::printf("%-8s %-10d %-18.1f %-14d\n", s.observed.id().c_str(),
                s.observed.size(), pred, s.future_increment);
  }
  return 0;
}
