// Weibo re-tweet growth prediction: the paper's headline scenario.
//
// Trains CasCN and the strongest baseline (DeepHawkes) on the same
// Weibo-like dataset, compares their test MSLE, persists the trained CasCN
// to disk, reloads it into a fresh model and verifies the predictions
// survive the round trip — the workflow of a user deploying the model.
//
//   ./weibo_retweet_prediction [--cascades=500] [--epochs=8]
//                              [--window-minutes=60] [--model-out=path]

#include <cstdio>
#include <fstream>

#include "baselines/deephawkes_model.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());

  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = static_cast<int>(flags.GetInt("cascades", 500));
  Rng rng(2024);
  const std::vector<Cascade> cascades = GenerateCascades(gen, rng);

  DatasetOptions data_opts;
  data_opts.observation_window = flags.GetDouble("window-minutes", 60.0);
  data_opts.min_observed_size = 10;
  auto dataset = BuildDataset(cascades, data_opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  std::printf(
      "observing %.0f minutes of each cascade: %zu train / %zu val / %zu "
      "test\n",
      data_opts.observation_window, dataset->train.size(),
      dataset->validation.size(), dataset->test.size());

  TrainerOptions trainer;
  trainer.max_epochs = static_cast<int>(flags.GetInt("epochs", 8));

  // --- CasCN ----------------------------------------------------------
  CascnConfig config;
  config.padded_size = 32;
  config.hidden_dim = 12;
  CascnModel cascn_model(config);
  const TrainResult cascn_run =
      TrainRegressor(cascn_model, *dataset, trainer);
  const double cascn_msle = EvaluateMsle(cascn_model, dataset->test);
  std::printf("CasCN      : test MSLE %.3f (best val %.3f @ epoch %d)\n",
              cascn_msle, cascn_run.best_validation_msle,
              cascn_run.best_epoch);

  // --- DeepHawkes (the paper's second-best method) ----------------------
  DeepHawkesModel::Config dh_config;
  dh_config.user_universe = gen.user_universe;
  DeepHawkesModel deephawkes(dh_config);
  const TrainResult dh_run = TrainRegressor(deephawkes, *dataset, trainer);
  const double dh_msle = EvaluateMsle(deephawkes, dataset->test);
  std::printf("DeepHawkes : test MSLE %.3f (best val %.3f @ epoch %d)\n",
              dh_msle, dh_run.best_validation_msle, dh_run.best_epoch);

  if (cascn_msle < dh_msle) {
    std::printf("CasCN reduces MSLE by %.1f%% over DeepHawkes\n",
                100.0 * (dh_msle - cascn_msle) / dh_msle);
  }

  // --- Persist, reload, and verify -------------------------------------
  const std::string model_path =
      flags.GetString("model-out", "/tmp/cascn_weibo.bin");
  {
    std::ofstream out(model_path, std::ios::binary);
    CASCN_CHECK(cascn_model.Save(out).ok());
  }
  CascnConfig restored_config = config;
  restored_config.seed = 999;  // different init, will be overwritten
  CascnModel restored(restored_config);
  restored.set_output_offset(cascn_model.output_offset());
  {
    std::ifstream in(model_path, std::ios::binary);
    CASCN_CHECK(restored.Load(in).ok());
  }
  const CascadeSample& probe = dataset->test[0];
  const double original_pred =
      cascn_model.PredictLogCalibrated(probe).value().At(0, 0);
  const double restored_pred =
      restored.PredictLogCalibrated(probe).value().At(0, 0);
  CASCN_CHECK(std::abs(original_pred - restored_pred) < 1e-12);
  std::printf(
      "model saved to %s and reloaded; prediction for %s: %.1f further "
      "re-tweets (actual %d)\n",
      model_path.c_str(), probe.observed.id().c_str(),
      Exp2m1(restored_pred), probe.future_increment);
  return 0;
}
