// Quickstart: the smallest end-to-end CasCN workflow.
//
//   1. Simulate Weibo-like re-tweet cascades.
//   2. Build a labelled dataset (observe 1 hour, predict the rest).
//   3. Train CasCN and report test MSLE against the paper's metric.
//
//   ./quickstart [--cascades=400] [--epochs=8] [--verbose]

#include <cstdio>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());

  // 1. Simulate cascades.
  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = static_cast<int>(flags.GetInt("cascades", 400));
  Rng rng(42);
  const std::vector<Cascade> cascades = GenerateCascades(gen, rng);
  std::printf("simulated %zu cascades (user universe %d)\n", cascades.size(),
              gen.user_universe);

  // 2. Observe each cascade for 1 hour; the label is how much further it
  //    grows over the rest of the 24 h tracking window.
  DatasetOptions data_opts;
  data_opts.observation_window = 60.0;  // minutes
  data_opts.min_observed_size = 10;
  auto dataset = BuildDataset(cascades, data_opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  std::printf("dataset: %zu train / %zu val / %zu test cascades\n",
              dataset->train.size(), dataset->validation.size(),
              dataset->test.size());

  // 3. Train CasCN.
  CascnConfig config;
  config.padded_size = 32;
  config.hidden_dim = 12;
  config.cheb_order = 2;
  CascnModel model(config);
  std::printf("CasCN with %lld trainable parameters\n",
              static_cast<long long>(model.ParameterCount()));

  TrainerOptions trainer;
  trainer.max_epochs = static_cast<int>(flags.GetInt("epochs", 8));
  trainer.verbose = flags.GetBool("verbose", false);
  const TrainResult result = TrainRegressor(model, *dataset, trainer);
  std::printf("best validation MSLE %.3f at epoch %d\n",
              result.best_validation_msle, result.best_epoch);

  const double test_msle = EvaluateMsle(model, dataset->test);
  std::printf("test MSLE: %.3f\n", test_msle);

  // Show a few individual predictions (back-transformed to counts).
  std::printf("\n%-10s %-16s %-16s\n", "cascade", "predicted growth",
              "actual growth");
  const size_t show = std::min<size_t>(5, dataset->test.size());
  for (size_t i = 0; i < show; ++i) {
    const CascadeSample& s = dataset->test[i];
    const double pred_log =
        model.PredictLogCalibrated(s).value().At(0, 0);
    std::printf("%-10s %-16.1f %-16d\n", s.observed.id().c_str(),
                Exp2m1(pred_log), s.future_increment);
  }
  return 0;
}
