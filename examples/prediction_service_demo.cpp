// Prediction-service demo: the full serving lifecycle.
//
//   1. Train a small CasCN on simulated Weibo-like cascades.
//   2. Write it to a checkpoint file.
//   3. Bring up a PredictionService that reloads the checkpoint from disk
//      (one model replica per worker — nothing is shared with training).
//   4. Replay a fresh stream of simulated cascades as thousands of
//      concurrent sessions: create / append / predict / close, driven from
//      several client threads.
//   5. Print the metrics snapshot and a few live forecasts.
//
//   ./prediction_service_demo [--cascades=300] [--epochs=4] [--workers=4]
//                             [--sessions=1200] [--clients=8] [--threads=N]
//                             [--shards=1] [--tenants=2]
//
// --shards >= 2 serves through the sharded cluster tier instead of a single
// PredictionService: sessions are consistent-hash routed across shards
// (tenant labels round-robin across --tenants), and after the replay the
// demo performs a live rebalance — draining one shard and handing its
// sessions off to the survivors — then keeps predicting to show nothing
// was lost.
//
// Resilience control plane (cluster mode only):
//   --allow_stale=1   enable the resilience plane with degraded-mode stale
//                     reads: when a pinned shard is open or dead and the
//                     retry budget is spent, predicts answer from the
//                     last-good cache (marked stale) instead of erroring
//   --supervisor=1    run a ShardSupervisor thread and stage a self-healing
//                     drill after the rebalance: one shard is crashed under
//                     the supervisor's watch, auto-restarts on its backoff
//                     schedule, and the lost sessions re-create
//                     bit-identical. Counters (cluster_stale_serves_total,
//                     cluster_supervisor_restarts_total, breaker states)
//                     land on /metricsz when --debug_port is set.
//
// --threads (default: the CASCN_THREADS environment variable, else all
// cores) sets the shared-pool size used for intra-batch parallel training;
// 1 forces the serial path.
//
// Observability outputs (all optional):
//   --trace_out=trace.json       enable tracing, dump a Chrome trace-event
//                                file (open in chrome://tracing / Perfetto)
//   --telemetry_out=t.jsonl      per-epoch training telemetry (JSON lines)
//   --metrics_out=metrics.json   unified metrics-registry snapshot
//   --flight_dir=DIR             arm the black-box flight recorders: runs an
//                                anomaly drill (a fault-stalled worker makes
//                                a deadlined request expire, triggering a
//                                deadline_exceeded dump to
//                                DIR/flight_demo.jsonl), and in cluster mode
//                                dumps every shard's ring plus the router's
//                                to DIR/flight_*.jsonl on demand
//
// Live introspection (all optional; see src/obs/debug_server.h):
//   --debug_port=N           serve /statusz /metricsz /tracez /flightz /sloz
//                            on 127.0.0.1:N (0 = ephemeral; defaults to the
//                            CASCN_DEBUG_PORT environment variable). A stall
//                            watchdog rides along, watching the trainer's
//                            batch heartbeat and every serving worker.
//   --debug_allow_quit=1     un-gate /quitquitquit (403 otherwise)
//   --debug_linger_ms=MS     keep the process alive up to MS after the
//                            replay so the endpoints can be curled; a
//                            /quitquitquit (when allowed) ends the linger
//   --watchdog_drill=1       deterministically wedge a drill shard, let the
//                            watchdog catch it, and print the dump path

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_router.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"
#include "fault/fault.h"
#include "obs/debug_server.h"
#include "obs/metrics_registry.h"
#include "obs/shutdown.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "parallel/parallel_for.h"
#include "serve/checkpoint.h"
#include "serve/prediction_service.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const double window = 60.0;  // observe 1 hour of each cascade

  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) parallel::SetThreads(static_cast<size_t>(threads));
  std::printf("training threads: %zu\n", parallel::ConfiguredThreads());

  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  const std::string telemetry_out = flags.GetString("telemetry_out", "");
  const std::string flight_dir = flags.GetString("flight_dir", "");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  std::unique_ptr<obs::FileTelemetrySink> telemetry;
  if (!telemetry_out.empty()) {
    auto sink = obs::FileTelemetrySink::Open(telemetry_out);
    CASCN_CHECK(sink.ok()) << sink.status();
    telemetry = std::move(sink).value();
  }

  // Live introspection server + stall watchdog, both opt-in via
  // --debug_port / CASCN_DEBUG_PORT. The watchdog shares the server's
  // lifetime: it watches the trainer's batch heartbeat during training and
  // (below) every serving worker during the replay.
  const int debug_port =
      static_cast<int>(flags.GetInt("debug_port", obs::DebugServer::EnvPort()));
  const int64_t debug_linger_ms = flags.GetInt("debug_linger_ms", 0);
  std::unique_ptr<obs::DebugServer> debug_server;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (debug_port >= 0) {
    obs::DebugServerOptions server_options;
    server_options.port = debug_port;
    server_options.allow_quit = flags.GetInt("debug_allow_quit", 0) != 0;
    auto started = obs::DebugServer::Start(server_options);
    CASCN_CHECK(started.ok()) << started.status();
    debug_server = std::move(started).value();
    debug_server->AddConfig("binary", "prediction_service_demo");

    obs::WatchdogOptions watchdog_options;
    watchdog_options.anomaly_dir = flight_dir.empty() ? "/tmp" : flight_dir;
    watchdog = std::make_unique<obs::Watchdog>(watchdog_options);
    debug_server->AddStatusSection(
        "watchdog", [&watchdog] { return watchdog->StatusJson() + "\n"; });
    std::printf("debug server on http://127.0.0.1:%d (statusz metricsz "
                "tracez flightz sloz%s)\n",
                debug_server->port(),
                server_options.allow_quit ? " quitquitquit" : "");
  }
  // Keeps the endpoints curl-able after the replay: sleeps until
  // --debug_linger_ms elapses or /quitquitquit is accepted.
  const auto linger = [&] {
    if (!debug_server || debug_linger_ms <= 0) return;
    std::printf("lingering up to %lld ms on port %d...\n",
                static_cast<long long>(debug_linger_ms), debug_server->port());
    std::fflush(stdout);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(debug_linger_ms);
    while (!debug_server->quit_requested() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };

  // 1. Train.
  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = static_cast<int>(flags.GetInt("cascades", 300));
  gen.user_universe = 1000;
  Rng rng(42);
  DatasetOptions data_opts;
  data_opts.observation_window = window;
  data_opts.min_observed_size = 5;
  auto dataset = BuildDataset(GenerateCascades(gen, rng), data_opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();

  CascnConfig config;
  config.padded_size = 24;
  config.hidden_dim = 8;
  CascnModel model(config);
  TrainerOptions trainer;
  trainer.max_epochs = static_cast<int>(flags.GetInt("epochs", 4));
  trainer.telemetry = telemetry.get();
  // Under the watchdog, the training loop is just another worker: it beats
  // once per batch and a wedged batch shows up as a stall on "trainer".
  obs::WorkerHeartbeat train_heartbeat;
  std::atomic<bool> training{false};
  if (watchdog) {
    trainer.heartbeat = &train_heartbeat;
    obs::WatchTarget target;
    target.name = "trainer";
    target.progress = [&train_heartbeat] { return train_heartbeat.count(); };
    target.busy = [&training] { return training.load(); };
    watchdog->Watch(target);
    watchdog->Start();
  }
  training.store(true);
  const TrainResult train = TrainRegressor(model, *dataset, trainer);
  training.store(false);
  std::printf("trained CasCN: best validation MSLE %.3f (epoch %d)\n",
              train.best_validation_msle, train.best_epoch);

  // 2. Checkpoint.
  const std::string ckpt = "/tmp/cascn_demo.ckpt";
  CASCN_CHECK(serve::SaveCascnCheckpoint(ckpt, model).ok());
  std::printf("checkpoint written to %s\n", ckpt.c_str());

  // 2b. Anomaly drill (--flight_dir): stall a single-worker service with an
  // injected 80ms predict, let a 5ms-deadline request expire behind it, and
  // let the flight recorder dump the evidence on its own — the black box
  // working exactly as it would after a real incident.
  if (!flight_dir.empty()) {
    serve::ServiceOptions drill_opts;
    drill_opts.num_workers = 1;
    drill_opts.sessions.observation_window = window;
    drill_opts.flight_dump_path = flight_dir + "/flight_demo.jsonl";
    auto drill =
        serve::PredictionService::CreateFromCheckpoint(drill_opts, ckpt);
    CASCN_CHECK(drill.ok()) << drill.status();
    CASCN_CHECK(drill.value()->CallCreate("drill", 1).status.ok());
    CASCN_CHECK(fault::FaultRegistry::Get()
                    .Configure("serve.slow_predict=always@80")
                    .ok());
    auto blocker = drill.value()->SubmitPredict("drill", -1.0);
    CASCN_CHECK(blocker.ok()) << blocker.status();
    auto doomed = drill.value()->SubmitPredict("drill", 5.0);
    CASCN_CHECK(doomed.ok()) << doomed.status();
    const serve::ServeResponse r = doomed.value().get();
    CASCN_CHECK(r.status.code() == StatusCode::kDeadlineExceeded) << r.status;
    (void)blocker.value().get();
    fault::FaultRegistry::Get().Clear();
    std::printf("anomaly drill: deadline miss (trace %llx) dumped to %s\n",
                static_cast<unsigned long long>(r.trace_id),
                drill_opts.flight_dump_path.c_str());
  }

  // 2c. Watchdog drill (--watchdog_drill=1, needs --debug_port): wedge one
  // shard of a throwaway two-shard cluster with the slow-shard fault while
  // requests queue behind it. A dedicated fast-poll watchdog declares the
  // stall, self-dumps the open-span table, and the router's on_stall hook
  // dumps every flight recorder — the whole incident pipeline, on demand.
  if (debug_server && flags.GetInt("watchdog_drill", 0) != 0) {
    cluster::ShardRouterOptions drill_opts;
    drill_opts.num_shards = 2;
    drill_opts.shard.num_workers = 1;
    // One request per micro-batch so the backlog stays visibly queued
    // behind the wedged predict instead of draining into a single batch.
    drill_opts.shard.max_batch = 1;
    drill_opts.shard.sessions.observation_window = window;
    drill_opts.flight_dir = flight_dir;
    auto drill = cluster::ShardRouter::CreateFromCheckpoint(drill_opts, ckpt);
    CASCN_CHECK(drill.ok()) << drill.status();
    CASCN_CHECK(drill.value()->CallCreate("drill", "wedged", 1).status.ok());
    const int victim = drill.value()->ShardOf("wedged");
    CASCN_CHECK(victim >= 0);

    obs::WatchdogOptions drill_watchdog_options;
    drill_watchdog_options.poll_ms = 5.0;
    drill_watchdog_options.stall_ms = 50.0;
    drill_watchdog_options.anomaly_dir =
        flight_dir.empty() ? "/tmp" : flight_dir;
    obs::Watchdog drill_watchdog(drill_watchdog_options);
    drill.value()->RegisterWatchdogTargets(drill_watchdog);
    drill_watchdog.Start();

    CASCN_CHECK(
        fault::FaultRegistry::Get()
            .Configure(cluster::SlowShardFaultPoint(victim) + "=always@500")
            .ok());
    std::vector<std::future<serve::ServeResponse>> wedged;
    for (int i = 0; i < 3; ++i) {
      auto submitted = drill.value()->SubmitPredict("drill", "wedged");
      CASCN_CHECK(submitted.ok()) << submitted.status();
      wedged.push_back(std::move(submitted).value());
    }
    const auto drill_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (drill_watchdog.stalls_total() == 0 &&
           std::chrono::steady_clock::now() < drill_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    CASCN_CHECK(drill_watchdog.stalls_total() >= 1)
        << "watchdog drill: stall never declared";
    fault::FaultRegistry::Get().Clear();
    for (auto& future : wedged) (void)future.get();
    drill_watchdog.Stop();
    CASCN_CHECK(!drill_watchdog.last_dump_path().empty());
    std::printf("watchdog drill: stall on shard %d detected, dump at %s\n",
                victim, drill_watchdog.last_dump_path().c_str());
    drill.value().reset();
  }

  // 3. Build a fresh cascade stream to replay as concurrent sessions.
  const int target_sessions =
      static_cast<int>(flags.GetInt("sessions", 1200));
  GeneratorConfig live = WeiboLikeConfig();
  live.num_cascades = target_sessions * 2;
  live.user_universe = 1000;
  Rng live_rng(2024);
  std::vector<std::vector<AdoptionEvent>> replays;
  for (const Cascade& cascade : GenerateCascades(live, live_rng)) {
    const Cascade prefix = cascade.Prefix(window);
    if (prefix.size() < 3) continue;
    replays.push_back(prefix.events());
    if (static_cast<int>(replays.size()) == target_sessions) break;
  }

  const int clients = static_cast<int>(flags.GetInt("clients", 8));
  const int workers = static_cast<int>(flags.GetInt("workers", 4));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const int tenants = static_cast<int>(flags.GetInt("tenants", 2));

  // Sharded serving path: the same lifecycle through the cluster tier,
  // finished with a live rebalance that proves session state survives a
  // shard being drained away.
  const bool allow_stale = flags.GetInt("allow_stale", 0) != 0;
  const bool run_supervisor = flags.GetInt("supervisor", 0) != 0;
  if (shards >= 2) {
    cluster::ShardRouterOptions cluster_opts;
    cluster_opts.num_shards = shards;
    cluster_opts.shard.num_workers = workers;
    cluster_opts.shard.queue_capacity = 8192;
    cluster_opts.shard.sessions.observation_window = window;
    cluster_opts.shard.sessions.capacity = 8192;
    cluster_opts.flight_dir = flight_dir;
    // Either resilience flag switches the control plane on; --allow_stale
    // additionally opens the degraded-mode stale-read path.
    cluster_opts.resilience.enabled = allow_stale || run_supervisor;
    cluster_opts.allow_stale = allow_stale;

    auto router =
        cluster::ShardRouter::CreateFromCheckpoint(cluster_opts, ckpt);
    CASCN_CHECK(router.ok()) << router.status();
    std::unique_ptr<cluster::ShardSupervisor> supervisor;
    if (run_supervisor) {
      supervisor =
          std::make_unique<cluster::ShardSupervisor>(*router.value());
      supervisor->Start();
      std::printf("shard supervisor up (auto-restart, capped backoff)\n");
    }
    if (debug_server) {
      router.value()->RegisterDebugEndpoints(*debug_server);
      router.value()->RegisterWatchdogTargets(*watchdog);
    }
    std::printf("cluster up: %d shards x %d workers, %d tenant labels\n",
                shards, workers, tenants);
    std::printf("replaying %zu live cascades...\n", replays.size());

    const auto tenant_of = [tenants](size_t i) {
      return "tenant-" +
             std::to_string(i % static_cast<size_t>(std::max(1, tenants)));
    };
    std::vector<double> forecasts(replays.size(), 0.0);
    std::vector<std::thread> cluster_drivers;
    for (int c = 0; c < clients; ++c) {
      cluster_drivers.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < replays.size();
             i += static_cast<size_t>(clients)) {
          const std::string id = "live-" + std::to_string(i);
          CASCN_CHECK(router.value()
                          ->CallCreate(tenant_of(i), id, replays[i][0].user)
                          .status.ok());
          for (size_t step = 1; step < replays[i].size(); ++step) {
            const AdoptionEvent& e = replays[i][step];
            const auto append = router.value()->CallAppend(
                tenant_of(i), id, e.user, e.parents[0], e.time);
            CASCN_CHECK(append.status.ok()) << append.status;
          }
          const auto p = router.value()->CallPredict(tenant_of(i), id);
          CASCN_CHECK(p.status.ok()) << p.status;
          forecasts[i] = p.log_prediction;
        }
      });
    }
    for (auto& d : cluster_drivers) d.join();

    auto snapshot = router.value()->TakeSnapshot();
    std::printf("\n%s", snapshot.ToString().c_str());

    // Live rebalance: drain the highest shard and hand its sessions to the
    // survivors, then re-predict — every forecast must be unchanged.
    const int victim = shards - 1;
    std::printf("\nrebalancing: draining shard %d...\n", victim);
    const Status removed = router.value()->RemoveShard(victim);
    CASCN_CHECK(removed.ok()) << removed;
    size_t checked = 0;
    for (size_t i = 0; i < replays.size(); ++i) {
      const auto p = router.value()->CallPredict(
          tenant_of(i), "live-" + std::to_string(i));
      CASCN_CHECK(p.status.ok()) << p.status;
      CASCN_CHECK(p.log_prediction == forecasts[i])
          << "session live-" << i << " drifted across the rebalance: got "
          << p.log_prediction << " want " << forecasts[i]
          << " stale=" << (p.stale ? 1 : 0);
      ++checked;
    }
    std::printf("shard %d removed: %zu sessions re-verified bit-identical "
                "on %d surviving shards\n",
                victim, checked, router.value()->num_shards());

    // Self-healing drill (--supervisor): crash a surviving shard under the
    // supervisor's watch. With --allow_stale the outage is bridged by
    // last-good answers; either way the shard auto-restarts on its backoff
    // schedule and the lost sessions re-create bit-identical.
    if (supervisor) {
      const int crash_victim = router.value()->ShardIds().front();
      std::printf("\nsupervisor drill: crashing shard %d...\n", crash_victim);
      const auto crash_at = std::chrono::steady_clock::now();
      router.value()->CrashShard(crash_victim);
      if (allow_stale) {
        // A couple of reads against the dead shard: served stale from the
        // last-good cache (or honestly NotFound if the restart wins the
        // race and the revived shard is already empty).
        int stale_seen = 0;
        for (size_t i = 0; i < replays.size() && stale_seen < 2; ++i) {
          const auto p = router.value()->CallPredict(
              tenant_of(i), "live-" + std::to_string(i));
          if (p.status.ok() && p.stale) ++stale_seen;
        }
        std::printf("degraded mode: %d predicts answered stale while the "
                    "shard was down\n",
                    stale_seen);
      }
      while (supervisor->restarts_total() == 0) {
        CASCN_CHECK(std::chrono::steady_clock::now() - crash_at <
                    std::chrono::seconds(10))
            << "supervisor never restarted shard " << crash_victim;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      const double healed_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - crash_at)
                                   .count();
      size_t relearned = 0;
      for (size_t i = 0; i < replays.size(); ++i) {
        const std::string id = "live-" + std::to_string(i);
        auto p = router.value()->CallPredict(tenant_of(i), id);
        if (!p.status.ok() || p.stale) {
          // Lost with the crashed shard: replay its events and re-verify.
          CASCN_CHECK(router.value()
                          ->CallCreate(tenant_of(i), id, replays[i][0].user)
                          .status.ok());
          for (size_t step = 1; step < replays[i].size(); ++step) {
            const AdoptionEvent& e = replays[i][step];
            CASCN_CHECK(router.value()
                            ->CallAppend(tenant_of(i), id, e.user,
                                         e.parents[0], e.time)
                            .status.ok());
          }
          p = router.value()->CallPredict(tenant_of(i), id);
          ++relearned;
        }
        CASCN_CHECK(p.status.ok() && !p.stale) << id << ": " << p.status;
        CASCN_CHECK(p.log_prediction == forecasts[i])
            << id << " drifted across the supervisor restart";
      }
      std::printf("supervisor drill: shard %d auto-restarted in %.0f ms, "
                  "%zu sessions re-created bit-identical\n",
                  crash_victim, healed_ms, relearned);
    }

    if (!flight_dir.empty()) {
      // On-demand black-box dump: every surviving shard's ring plus the
      // router's own, appended as JSON lines under --flight_dir.
      const Status dumped =
          router.value()->DumpFlightRecorders("demo_on_demand");
      CASCN_CHECK(dumped.ok()) << dumped;
      std::printf("flight recorders dumped to %s/flight_*.jsonl\n",
                  flight_dir.c_str());
    }

    obs::MetricsRegistry registry;
    router.value()->ExportToRegistry(registry);
    std::printf("\ncluster registry:\n%s", registry.TextSnapshot().c_str());
    const std::string cluster_metrics_json = registry.JsonSnapshot();
    linger();
    // The supervisor, watchdog targets and debug handlers all capture the
    // router; stop every one of them before it goes away.
    if (supervisor) supervisor->Stop();
    if (watchdog) watchdog->Stop();
    if (debug_server) debug_server->Stop();
    router.value().reset();

    obs::ShutdownDumpOptions dump;
    dump.trace_path = trace_out;
    dump.metrics_path = metrics_out;
    dump.metrics_json_override = cluster_metrics_json;
    dump.telemetry = {telemetry.get()};
    CASCN_CHECK(obs::ShutdownDump(dump).ok());
    if (!metrics_out.empty())
      std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
    return 0;
  }

  // 4. Serve from the checkpoint (fresh replicas, nothing reused).
  serve::ServiceOptions service_opts;
  service_opts.num_workers = workers;
  service_opts.queue_capacity = 8192;
  service_opts.sessions.observation_window = window;
  service_opts.sessions.capacity = 8192;
  auto service = serve::PredictionService::CreateFromCheckpoint(service_opts,
                                                                ckpt);
  CASCN_CHECK(service.ok()) << service.status();
  if (debug_server) {
    service.value()->RegisterDebugEndpoints(*debug_server);
    watchdog->Watch(service.value()->MakeWatchdogTarget("serve"));
  }
  std::printf("service up: %d workers, queue capacity %zu\n",
              service.value()->num_workers(), service_opts.queue_capacity);
  std::printf("replaying %zu live cascades...\n", replays.size());
  std::vector<double> final_counts(replays.size(), 0.0);
  std::vector<std::thread> drivers;
  for (int c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      // Each client owns sessions c, c+clients, ...; all clients run
      // concurrently, so sessions from every client overlap in time.
      for (size_t i = static_cast<size_t>(c); i < replays.size();
           i += static_cast<size_t>(clients)) {
        const std::string id = "live-" + std::to_string(i);
        CASCN_CHECK(
            service.value()->CallCreate(id, replays[i][0].user).status.ok());
      }
      bool progressed = true;
      for (size_t step = 1; progressed; ++step) {
        progressed = false;
        for (size_t i = static_cast<size_t>(c); i < replays.size();
             i += static_cast<size_t>(clients)) {
          if (step >= replays[i].size()) continue;
          progressed = true;
          const AdoptionEvent& e = replays[i][step];
          const auto append = service.value()->CallAppend(
              "live-" + std::to_string(i), e.user, e.parents[0], e.time);
          CASCN_CHECK(append.status.ok()) << append.status;
        }
      }
      for (size_t i = static_cast<size_t>(c); i < replays.size();
           i += static_cast<size_t>(clients)) {
        const auto p =
            service.value()->CallPredict("live-" + std::to_string(i));
        CASCN_CHECK(p.status.ok()) << p.status;
        final_counts[i] = p.count_prediction;
      }
    });
  }
  for (auto& d : drivers) d.join();

  const size_t live_sessions = service.value()->sessions().size();
  std::printf("served %zu sessions (%zu still live)\n", replays.size(),
              live_sessions);
  std::printf("\nsample forecasts (observed first hour -> expected further "
              "adoptions):\n");
  for (size_t i = 0; i < std::min<size_t>(5, replays.size()); ++i)
    std::printf("  live-%zu: observed %zu, forecast %+.1f\n", i,
                replays[i].size(), final_counts[i]);

  // 5. Metrics: bridge the serve counters into the service's registry so
  // one snapshot carries everything (plus queue depth and batch sizes).
  service.value()->Shutdown();
  const auto snapshot = service.value()->metrics().TakeSnapshot();
  std::printf("\n%s", snapshot.ToString().c_str());
  serve::ExportToRegistry(snapshot, service.value()->registry());
  std::printf("\nunified registry:\n%s",
              service.value()->registry().TextSnapshot().c_str());
  std::printf("\ntrainer registry:\n%s",
              obs::MetricsRegistry::Get().TextSnapshot().c_str());
  // The service-local registry dies with the service; snapshot it now so
  // the exit-time dump can still write it.
  const std::string service_metrics_json =
      service.value()->registry().JsonSnapshot();

  // 6. Exit-time flush. Destroy the service *first* so the spans its
  // destructor records land in the trace instead of being dropped, then
  // dump every observability surface in one call.
  linger();
  if (watchdog) watchdog->Stop();  // its serve target captures the service
  if (debug_server) debug_server->Stop();
  service.value().reset();
  obs::ShutdownDumpOptions dump;
  dump.trace_path = trace_out;
  dump.metrics_path = metrics_out;
  dump.metrics_json_override = service_metrics_json;
  dump.telemetry = {telemetry.get()};
  CASCN_CHECK(obs::ShutdownDump(dump).ok());
  if (!metrics_out.empty())
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  if (!trace_out.empty())
    std::printf("trace with %zu events written to %s "
                "(open in chrome://tracing or ui.perfetto.dev)\n",
                obs::Tracer::Get().event_count(), trace_out.c_str());
  return 0;
}
