// Dataset tooling: exports synthetic cascades in the DeepHawkes text format
// (the format of the paper's public Sina Weibo dataset), reads them back,
// and prints corpus statistics — demonstrating that real dataset files drop
// into the pipeline unchanged.
//
//   ./cascade_dataset_tool [--cascades=300] [--out=/tmp/cascades.txt]

#include <cstdio>
#include <fstream>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"
#include "data/statistics.h"
#include "data/text_format.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());

  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = static_cast<int>(flags.GetInt("cascades", 300));
  Rng rng(7);
  const std::vector<Cascade> cascades = GenerateCascades(gen, rng);

  // Export in the DeepHawkes line format.
  const std::string path = flags.GetString("out", "/tmp/cascades.txt");
  {
    std::ofstream out(path);
    CASCN_CHECK(out.is_open()) << "cannot write " << path;
    WriteCascades(cascades, out);
  }
  std::printf("wrote %zu cascades to %s (DeepHawkes text format)\n",
              cascades.size(), path.c_str());

  // Read them back.
  std::ifstream in(path);
  auto restored = ReadCascades(in, gen.user_universe);
  CASCN_CHECK(restored.ok()) << restored.status();
  std::printf("re-parsed %zu cascades\n", restored->size());

  // Corpus statistics (Fig. 4 / Fig. 5 style).
  std::printf("\ncascade size distribution (log bins):\n");
  for (const auto& bin : SizeDistribution(*restored)) {
    std::printf("  [%4d, %4d): %d\n", bin.size_lo, bin.size_hi, bin.count);
  }
  std::printf("\npopularity saturation (fraction of final size):\n");
  for (const auto& point : SaturationCurve(*restored, gen.horizon, 6)) {
    std::printf("  t = %6.0f min: %.2f\n", point.time,
                point.fraction_of_final);
  }

  // Build a labelled dataset from the re-parsed file, as a real user would.
  DatasetOptions opts;
  opts.observation_window = 60.0;
  opts.min_observed_size = 10;
  auto dataset = BuildDataset(*restored, opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  const DatasetStatistics stats = ComputeDatasetStatistics(*dataset);
  std::printf(
      "\ndataset from file: %d train (avg %.1f nodes, %.1f edges), %d val, "
      "%d test\n",
      stats.train.num_cascades, stats.train.avg_nodes, stats.train.avg_edges,
      stats.validation.num_cascades, stats.test.num_cascades);
  return 0;
}
