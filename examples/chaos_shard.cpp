// Chaos smoke: prove the sharded serving tier survives a shard kill.
//
// Drives a 3-shard ShardRouter through the full failure story:
//
//   1. Seed load: --sessions sessions with small cascades, one recorded
//      reference prediction each.
//   2. Tenant quota: a greedy tenant bursts past its token bucket and is
//      turned away with ResourceExhausted — distinct from every other
//      failure status in this file.
//   3. Shard kill mid-load: the "cluster.shard_crash" fault point destroys
//      one shard (no drain) while predicts are in flight. Cluster health
//      must degrade, requests pinned to the dead shard must fail, and every
//      survivor must still predict bit-identically to its reference.
//   4. Rejoin: RestartShard() brings the shard back, health recovers, and
//      the lost sessions are re-created from their event logs — after which
//      their predictions match the originals exactly.
//   5. Torn-write rebalance: with "cluster.handoff_torn_write" armed,
//      RemoveShard() drains a shard through the CRC'd handoff file; the
//      first write is torn, the retry lands, and no session is lost.
//   6. Supervisor drill: a second router with the resilience control plane
//      on (--allow_stale semantics) loses a shard under sustained load.
//      Stale last-good answers bridge the outage with zero errors, the
//      ShardSupervisor auto-restarts the shard no earlier than its backoff
//      and within bounds, and every lost session re-creates bit-identical.
//      supervisor_restarts_total / stale_serves_total land in the metrics
//      registry.
//
// Every step is asserted with CASCN_CHECK, so the binary is its own test:
// exit status 0 means the whole story held together.
//
//   ./chaos_shard [--sessions=240] [--shards=3] [--out=/tmp/chaos_shard]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_router.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "core/cascn_model.h"
#include "fault/fault.h"
#include "serve/checkpoint.h"

namespace cascn {
namespace {

int Main(int argc, char** argv) {
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const int sessions = static_cast<int>(flags.GetInt("sessions", 240));
  const int shards = static_cast<int>(flags.GetInt("shards", 3));
  const std::string out = flags.GetString("out", "/tmp/chaos_shard");
  CASCN_CHECK(shards >= 3) << "--shards must be >= 3 (one dies, one drains)";
  fault::FaultRegistry::Get().Clear();

  // A small untrained model is enough: the scenario tests serving
  // mechanics, and "bit-identical" only needs determinism, not accuracy.
  CascnConfig config;
  config.padded_size = 32;
  config.hidden_dim = 12;
  config.cheb_order = 2;
  config.seed = 42;
  CascnModel model(config);
  model.set_output_offset(2.0);
  const std::string ckpt = out + ".ckpt";
  CASCN_CHECK(serve::SaveCascnCheckpoint(ckpt, model).ok());

  cluster::ShardRouterOptions options;
  options.num_shards = shards;
  options.shard.num_workers = 2;
  options.shard.sessions.observation_window = 60.0;
  options.shard.sessions.capacity = static_cast<size_t>(sessions) + 64;
  options.admission.tokens_per_second = 1.0;  // named tenants: tiny rate...
  options.admission.burst = 8.0;              // ...and an 8-request burst
  // The whole chaos story runs in seconds of wall clock, so shrink the SLO
  // burn windows to the same timescale: a tenant that burns its error
  // budget degrades cluster health, and a couple of quiet seconds later the
  // burn ages out and health recovers.
  options.slo.fast_window_seconds = 1;
  options.slo.slow_window_seconds = 2;
  auto made = cluster::ShardRouter::CreateFromCheckpoint(options, ckpt);
  CASCN_CHECK(made.ok()) << made.status();
  auto router = std::move(made).value();
  std::printf("chaos_shard: %d shards up, seeding %d sessions\n", shards,
              sessions);

  // Phase 1: seed sessions (the empty tenant is quota-exempt bulk load)
  // and record each session's reference prediction and its pinned shard.
  const auto session_id = [](int i) { return "sess-" + std::to_string(i); };
  const auto replay_session_on = [&](cluster::ShardRouter& target, int i) {
    const std::string id = session_id(i);
    CASCN_CHECK(target.CallCreate("", id, i % 7).status.ok()) << id;
    for (int e = 0; e < 2 + i % 3; ++e) {
      CASCN_CHECK(target
                      .CallAppend("", id, 10 + e + i, e,
                                  1.0 + e + 0.25 * (i % 4))
                      .status.ok())
          << id << " event " << e;
    }
  };
  const auto replay_session = [&](int i) { replay_session_on(*router, i); };
  std::vector<double> forecasts(sessions);
  std::vector<int> home(sessions);
  for (int i = 0; i < sessions; ++i) {
    replay_session(i);
    const serve::ServeResponse r = router->CallPredict("", session_id(i));
    CASCN_CHECK(r.status.ok() && std::isfinite(r.log_prediction)) << r.status;
    forecasts[i] = r.log_prediction;
    home[i] = router->ShardOf(session_id(i));
  }

  // Phase 2: a greedy tenant bursts 32 predicts against its quota of 8.
  int quota_ok = 0, quota_rejected = 0;
  for (int i = 0; i < 32; ++i) {
    const serve::ServeResponse r =
        router->CallPredict("greedy", session_id(0));
    if (r.status.ok()) {
      ++quota_ok;
    } else {
      CASCN_CHECK(r.status.code() == StatusCode::kResourceExhausted)
          << r.status;
      ++quota_rejected;
    }
  }
  CASCN_CHECK(quota_ok >= 1 && quota_rejected >= 1)
      << "quota never engaged: ok=" << quota_ok
      << " rejected=" << quota_rejected;
  std::printf("greedy tenant: %d admitted, %d rejected ResourceExhausted\n",
              quota_ok, quota_rejected);

  // The burst burned the greedy tenant's error budget across both SLO
  // windows, so the cluster reports degraded — on SLO grounds alone, every
  // shard is still up. Waiting out the slow window clears the burn.
  CASCN_CHECK(router->ClusterHealth() == serve::Health::kDegraded);
  const auto wait_for_burn_to_clear = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        1000 * options.slo.slow_window_seconds + 200));
  };
  wait_for_burn_to_clear();
  CASCN_CHECK(router->ClusterHealth() == serve::Health::kHealthy);
  std::printf("greedy tenant burn degraded the cluster, then aged out of "
              "the %ds SLO window\n", options.slo.slow_window_seconds);

  // Phase 3: kill shard `victim` mid-load. The fault point is evaluated on
  // every routed request; the 40th one pulls the trigger.
  const int victim = 1;
  CASCN_CHECK(fault::FaultRegistry::Get()
                  .Configure(std::string(cluster::kFaultShardCrash) +
                             "=nth:40@" + std::to_string(victim))
                  .ok());
  int dead_session_failures = 0;
  for (int i = 0; i < sessions; ++i) {
    const serve::ServeResponse r = router->CallPredict("", session_id(i));
    if (r.status.ok()) {
      CASCN_CHECK(r.log_prediction == forecasts[i])
          << session_id(i) << " drifted mid-crash";
    } else {
      // Pinned to the crashed shard (predicts mutate nothing, so the only
      // failure cause in this wave is the shard dying underneath the pin).
      CASCN_CHECK(home[i] == victim) << session_id(i) << ": " << r.status;
      ++dead_session_failures;
    }
  }
  CASCN_CHECK(
      fault::FaultRegistry::Get().stats(cluster::kFaultShardCrash).fires >= 1)
      << "shard_crash fault never fired";
  fault::FaultRegistry::Get().Clear();
  CASCN_CHECK(dead_session_failures > 0)
      << "shard_crash fault never fired: no pinned session failed";
  CASCN_CHECK(router->ClusterHealth() == serve::Health::kDegraded);
  const auto crashed_snapshot = router->TakeSnapshot();
  CASCN_CHECK(crashed_snapshot.crashed_shards == 1);
  std::printf("shard %d crashed mid-load: %d pinned sessions unavailable, "
              "cluster degraded, survivors bit-identical\n",
              victim, dead_session_failures);

  // Phase 4: rejoin, then re-create the lost sessions from their event
  // logs. Every session pinned to the victim is gone — including the ones
  // that got a prediction out before the 40th request pulled the trigger.
  // Same events, same model => the exact same prediction bits.
  CASCN_CHECK(router->RestartShard(victim).ok());
  // The crash wave's Unavailable failures count against the default
  // tenant's SLO; age them out so the recovery check below sees shard
  // health alone.
  wait_for_burn_to_clear();
  CASCN_CHECK(router->ClusterHealth() == serve::Health::kHealthy);
  int recreated = 0;
  for (int i = 0; i < sessions; ++i) {
    if (home[i] != victim) continue;
    replay_session(i);
    const serve::ServeResponse r = router->CallPredict("", session_id(i));
    CASCN_CHECK(r.status.ok()) << r.status;
    CASCN_CHECK(r.log_prediction == forecasts[i])
        << session_id(i) << " drifted across crash + re-create";
    ++recreated;
  }
  CASCN_CHECK(recreated >= dead_session_failures)
      << recreated << " re-created vs " << dead_session_failures
      << " observed failures";
  std::printf("shard %d rejoined: healthy again, %d sessions re-created "
              "bit-identical\n",
              victim, recreated);

  // Phase 5: rebalance away the highest shard with the first handoff write
  // torn. The retry must land and every session must survive the move.
  CASCN_CHECK(fault::FaultRegistry::Get()
                  .Configure(std::string(cluster::kFaultHandoffTornWrite) +
                             "=nth:1")
                  .ok());
  const int drained = shards - 1;
  CASCN_CHECK(router->RemoveShard(drained).ok());
  CASCN_CHECK(
      fault::FaultRegistry::Get().stats(cluster::kFaultHandoffTornWrite)
          .fires >= 1)
      << "torn-write fault never exercised the retry path";
  fault::FaultRegistry::Get().Clear();
  CASCN_CHECK(router->num_shards() == shards - 1);
  CASCN_CHECK(router->ClusterHealth() == serve::Health::kHealthy);
  for (int i = 0; i < sessions; ++i) {
    const serve::ServeResponse r = router->CallPredict("", session_id(i));
    CASCN_CHECK(r.status.ok()) << session_id(i) << ": " << r.status;
    CASCN_CHECK(r.log_prediction == forecasts[i])
        << session_id(i) << " drifted across the torn-write rebalance";
  }
  std::printf("shard %d drained through a torn first write: all %d sessions "
              "predict bit-identical on %d shards\n",
              drained, sessions, router->num_shards());

  // Phase 6: supervisor drill on a fresh router with the resilience plane
  // on. A shard dies under sustained load; stale last-good answers bridge
  // the outage, the supervisor restarts the shard on its backoff schedule,
  // and the lost sessions re-create bit-identical — zero session loss.
  cluster::ShardRouterOptions drill_options = options;
  drill_options.resilience.enabled = true;
  drill_options.resilience.hedging = false;  // isolate the supervisor story
  drill_options.allow_stale = true;
  auto drill_made =
      cluster::ShardRouter::CreateFromCheckpoint(drill_options, ckpt);
  CASCN_CHECK(drill_made.ok()) << drill_made.status();
  auto drill = std::move(drill_made).value();
  for (int i = 0; i < sessions; ++i) {
    replay_session_on(*drill, i);
    // The predict both checks determinism across router instances and
    // primes the last-good cache the outage below will serve from.
    const serve::ServeResponse r = drill->CallPredict("", session_id(i));
    CASCN_CHECK(r.status.ok() && r.log_prediction == forecasts[i])
        << session_id(i) << " drifted across router instances";
  }

  cluster::SupervisorOptions sup_options;
  sup_options.poll_interval_ms = 5.0;
  sup_options.restart_backoff_ms = 100.0;
  cluster::ShardSupervisor supervisor(*drill, sup_options);
  supervisor.Start();

  const int drill_victim = 0;
  const auto crash_at = std::chrono::steady_clock::now();
  drill->CrashShard(drill_victim);
  CASCN_CHECK(drill->ClusterHealth() == serve::Health::kDegraded);
  // Sustained load across the outage: every predict must produce an
  // answer — fresh from a live shard or stale from the last-good cache —
  // never an error, until the supervisor has healed the cluster.
  int stale_bridged = 0, fresh_during_outage = 0;
  bool outage_over = false;
  while (!outage_over && supervisor.restarts_total() == 0) {
    CASCN_CHECK(std::chrono::steady_clock::now() - crash_at <
                std::chrono::seconds(5))
        << "supervisor never restarted shard " << drill_victim;
    for (int i = 0; i < sessions; ++i) {
      const serve::ServeResponse r = drill->CallPredict("", session_id(i));
      if (!r.status.ok()) {
        // While the shard is crashed, a lost session degrades to a stale
        // answer — so an honest NotFound can only mean RestartShard already
        // cleared the crashed set mid-pass and the revived (empty) shard
        // answered for a pin it no longer holds. The restart counter may
        // lag that clear by a beat; the wait below picks it up.
        CASCN_CHECK(r.status.code() == StatusCode::kNotFound)
            << session_id(i) << " errored mid-outage: " << r.status;
        outage_over = true;
        break;
      }
      CASCN_CHECK(r.log_prediction == forecasts[i]) << session_id(i);
      if (r.stale) {
        ++stale_bridged;
        CASCN_CHECK(r.stale_age_ms >= 0.0);
      } else {
        ++fresh_during_outage;
      }
    }
  }
  while (supervisor.restarts_total() == 0) {
    CASCN_CHECK(std::chrono::steady_clock::now() - crash_at <
                std::chrono::seconds(5))
        << "restart landed but the supervisor never counted it";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double healed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - crash_at)
          .count();
  supervisor.Stop();
  CASCN_CHECK(supervisor.restarts_total() >= 1);
  // The restart respected the backoff floor and stayed within bounds (the
  // ceiling is generous: one backoff plus scheduling slack, far below the
  // 5 s watchdog above).
  CASCN_CHECK(healed_ms >= sup_options.restart_backoff_ms)
      << "restarted after " << healed_ms << " ms, before the "
      << sup_options.restart_backoff_ms << " ms backoff";
  CASCN_CHECK(stale_bridged >= 1)
      << "the outage was never bridged by a stale answer";
  CASCN_CHECK(fresh_during_outage >= 1)
      << "surviving shards went silent during the outage";

  // Zero session loss: sessions pinned to the restarted (now empty) shard
  // re-create from their event logs and predict bit-identical; everyone
  // else never noticed.
  int relearned = 0;
  for (int i = 0; i < sessions; ++i) {
    serve::ServeResponse r = drill->CallPredict("", session_id(i));
    if (!r.status.ok() || r.stale) {
      replay_session_on(*drill, i);
      r = drill->CallPredict("", session_id(i));
      ++relearned;
    }
    CASCN_CHECK(r.status.ok() && !r.stale) << session_id(i) << ": "
                                           << r.status;
    CASCN_CHECK(r.log_prediction == forecasts[i])
        << session_id(i) << " drifted across the supervisor restart";
  }
  CASCN_CHECK(relearned >= 1) << "no session was pinned to the victim";

  // The drill's counters are scrape-visible.
  cluster::ResilienceControl* rc = drill->resilience();
  CASCN_CHECK(rc != nullptr);
  CASCN_CHECK(rc->supervisor_restarts() >= 1);
  CASCN_CHECK(rc->stale_serves() >= static_cast<uint64_t>(stale_bridged));
  obs::MetricsRegistry registry;
  drill->ExportToRegistry(registry);
  const std::string scrape = registry.TextSnapshot();
  CASCN_CHECK(scrape.find("cluster_supervisor_restarts_total") !=
              std::string::npos);
  CASCN_CHECK(scrape.find("cluster_stale_serves_total") != std::string::npos);
  std::printf(
      "supervisor drill: shard %d healed in %.0f ms (backoff %.0f ms), "
      "%d stale-bridged predicts, %d sessions re-created, zero errors\n",
      drill_victim, healed_ms, sup_options.restart_backoff_ms, stale_bridged,
      relearned);

  const auto snapshot = router->TakeSnapshot();
  std::printf("%s", snapshot.ToString().c_str());
  std::printf("chaos_shard: OK\n");
  return 0;
}

}  // namespace
}  // namespace cascn

int main(int argc, char** argv) { return cascn::Main(argc, argv); }
