#include "data/text_format.h"

#include <algorithm>
#include <functional>
#include <istream>
#include <map>
#include <ostream>

#include "common/string_util.h"

namespace cascn {

namespace {

/// Stable hash of a user token into [0, universe).
int HashUser(const std::string& token, int universe) {
  // FNV-1a, then reduce; deterministic across runs and platforms.
  uint64_t h = 1469598103934665603ULL;
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<uint64_t>(universe));
}

struct ParsedPath {
  std::string adopter;
  std::string parent;  // empty for the root path
  double time = 0.0;
};

}  // namespace

Result<Cascade> ParseCascadeLine(const std::string& line, int user_universe) {
  if (user_universe < 1)
    return Status::InvalidArgument("user_universe must be >= 1");
  const std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() < 5)
    return Status::InvalidArgument(
        "cascade line needs 5 tab-separated fields, got " +
        std::to_string(fields.size()));
  const std::string& message_id = fields[0];
  const std::vector<std::string> path_tokens = SplitWhitespace(fields[4]);
  if (path_tokens.empty())
    return Status::InvalidArgument("cascade line has no adoption paths");

  std::vector<ParsedPath> paths;
  paths.reserve(path_tokens.size());
  for (const std::string& token : path_tokens) {
    const size_t colon = token.rfind(':');
    if (colon == std::string::npos)
      return Status::InvalidArgument("path missing ':<time>': " + token);
    CASCN_ASSIGN_OR_RETURN(double time, ParseDouble(token.substr(colon + 1)));
    const std::vector<std::string> chain =
        Split(token.substr(0, colon), '/');
    if (chain.empty() || chain.back().empty())
      return Status::InvalidArgument("empty adoption chain: " + token);
    ParsedPath p;
    p.adopter = chain.back();
    if (chain.size() >= 2) p.parent = chain[chain.size() - 2];
    p.time = time;
    paths.push_back(std::move(p));
  }

  // Adoptions sorted by time; the root path (no parent) must be first.
  std::stable_sort(paths.begin(), paths.end(),
                   [](const ParsedPath& a, const ParsedPath& b) {
                     return a.time < b.time;
                   });
  if (!paths[0].parent.empty() || paths[0].time != 0.0)
    return Status::InvalidArgument(
        "first adoption must be the root at time 0");

  std::map<std::string, int> node_of_user;
  std::vector<AdoptionEvent> events;
  for (const ParsedPath& p : paths) {
    if (node_of_user.count(p.adopter)) continue;  // keep first adoption only
    AdoptionEvent e;
    e.node = static_cast<int>(events.size());
    e.user = HashUser(p.adopter, user_universe);
    e.time = p.time;
    if (!p.parent.empty()) {
      const auto it = node_of_user.find(p.parent);
      if (it == node_of_user.end())
        return Status::InvalidArgument("path parent '" + p.parent +
                                       "' has not adopted yet");
      e.parents.push_back(it->second);
    }
    node_of_user.emplace(p.adopter, e.node);
    events.push_back(std::move(e));
  }
  return Cascade::Create(message_id, std::move(events));
}

Result<std::vector<Cascade>> ReadCascades(std::istream& in,
                                          int user_universe) {
  std::vector<Cascade> out;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    auto parsed = ParseCascadeLine(line, user_universe);
    if (!parsed.ok())
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_number,
                    parsed.status().message().c_str()));
    out.push_back(std::move(parsed).value());
  }
  return out;
}

std::string FormatCascadeLine(const Cascade& cascade) {
  // Reconstruct root->node chains via primary parents.
  std::vector<std::string> paths;
  paths.reserve(cascade.size());
  std::function<std::string(int)> chain_of = [&](int node) -> std::string {
    const AdoptionEvent& e = cascade.event(node);
    if (e.parents.empty()) return std::to_string(e.user);
    return chain_of(e.parents[0]) + "/" + std::to_string(e.user);
  };
  for (int i = 0; i < cascade.size(); ++i) {
    paths.push_back(chain_of(i) + ":" +
                    StrFormat("%g", cascade.event(i).time));
  }
  return cascade.id() + "\t" + std::to_string(cascade.event(0).user) +
         "\t0\t" + std::to_string(cascade.size()) + "\t" + Join(paths, " ");
}

void WriteCascades(const std::vector<Cascade>& cascades, std::ostream& out) {
  for (const Cascade& c : cascades) out << FormatCascadeLine(c) << "\n";
}

}  // namespace cascn
