#include "data/cascade_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn {

GeneratorConfig WeiboLikeConfig() {
  GeneratorConfig c;
  c.num_cascades = 1000;
  c.user_universe = 2000;
  c.horizon = 1440.0;  // minutes in 24 h
  c.max_size = 800;
  c.attract_min = 0.4;
  c.attract_alpha = 2.0;
  c.influence_sigma = 0.5;
  c.root_boost = 8.0;
  c.child_scale = 1.0;
  // Re-tweet reaction times are minutes: a ~30 min memory makes cascades
  // observable within 1-3 h windows and saturated well inside 24 h
  // (Fig. 5a), with multi-generation spread stretching the tail.
  c.decay_rate = 1.0 / 30.0;
  c.depth_damping = 0.7;
  c.inheritance = 0.55;
  c.extra_parent_prob = 0.0;
  return c;
}

GeneratorConfig CitationLikeConfig() {
  GeneratorConfig c;
  c.num_cascades = 1000;
  c.user_universe = 4000;
  c.horizon = 240.0;  // months in 20 years
  c.max_size = 200;
  c.attract_min = 0.3;
  c.attract_alpha = 2.2;
  c.influence_sigma = 0.45;
  c.root_boost = 2.4;
  c.child_scale = 0.9;
  // Citations accrue over years: a ~70 month memory reaches ~50% of final
  // popularity by year 3 of the 20-year horizon (Fig. 5b), far slower
  // relative to the horizon than the Weibo kernel.
  c.decay_rate = 1.0 / 70.0;
  c.attract_cap = 1.9;
  c.depth_damping = 0.75;
  c.inheritance = 0.45;
  c.extra_parent_prob = 0.25;
  return c;
}

namespace {

/// Pending adoption: a child scheduled to join the cascade.
struct PendingAdoption {
  double time = 0.0;
  int parent = 0;
  int depth = 0;  // depth of the child being scheduled
  bool operator>(const PendingAdoption& other) const {
    return time > other.time;
  }
};

Cascade SimulateOne(const GeneratorConfig& config, int index,
                    const std::vector<double>& user_influence, Rng& rng) {
  // Per-cascade attractiveness drives the heavy-tailed final size; the cap
  // keeps branching subcritical (near-critical branching itself produces a
  // power-law size tail, Fig. 4).
  const double attract =
      std::min(rng.Pareto(config.attract_min, config.attract_alpha),
               config.attract_cap);

  std::vector<AdoptionEvent> events;
  std::vector<double> fertility;  // effective per-node fertility f_v
  std::priority_queue<PendingAdoption, std::vector<PendingAdoption>,
                      std::greater<PendingAdoption>>
      queue;

  auto spawn_children = [&](int node, double node_time, int node_depth,
                            double mean_children) {
    const int kids = rng.Poisson(mean_children);
    for (int k = 0; k < kids; ++k) {
      const double delay = rng.Exponential(config.decay_rate);
      const double t = node_time + delay;
      if (t <= config.horizon) queue.push({t, node, node_depth + 1});
    }
  };

  // Root.
  AdoptionEvent root;
  root.node = 0;
  root.user = static_cast<int>(rng.UniformInt(config.user_universe));
  root.time = 0.0;
  events.push_back(root);
  fertility.push_back(user_influence[root.user]);
  spawn_children(0, 0.0, 0, attract * config.root_boost * fertility[0]);

  while (!queue.empty() &&
         static_cast<int>(events.size()) < config.max_size) {
    const PendingAdoption next = queue.top();
    queue.pop();
    AdoptionEvent e;
    e.node = static_cast<int>(events.size());
    e.user = static_cast<int>(rng.UniformInt(config.user_universe));
    e.time = next.time;
    e.parents.push_back(next.parent);
    // Citation-style extra parents: attach to 1-2 random earlier nodes.
    if (config.extra_parent_prob > 0 && e.node >= 2 &&
        rng.Bernoulli(config.extra_parent_prob)) {
      const int extra = 1 + (rng.Bernoulli(0.3) ? 1 : 0);
      for (int x = 0; x < extra; ++x) {
        const int candidate = static_cast<int>(rng.UniformInt(e.node));
        if (candidate != next.parent &&
            std::find(e.parents.begin(), e.parents.end(), candidate) ==
                e.parents.end()) {
          e.parents.push_back(candidate);
        }
      }
    }
    events.push_back(e);
    // Effective fertility mixes the parent's (hot lineages stay hot) with
    // the adopting user's own influence.
    fertility.push_back(config.inheritance * fertility[next.parent] +
                        (1.0 - config.inheritance) * user_influence[e.user]);
    spawn_children(e.node, e.time, next.depth,
                   attract * config.child_scale * fertility.back() *
                       std::pow(config.depth_damping, next.depth));
  }

  auto cascade = Cascade::Create(StrFormat("c%d", index), std::move(events));
  CASCN_CHECK(cascade.ok()) << "generator produced an invalid cascade: "
                            << cascade.status().ToString();
  return std::move(cascade).value();
}

}  // namespace

std::vector<Cascade> GenerateCascades(const GeneratorConfig& config,
                                      Rng& rng) {
  CASCN_CHECK(config.num_cascades >= 0 && config.user_universe >= 1);
  CASCN_CHECK(config.horizon > 0 && config.max_size >= 1);
  // Log-normal influence normalised to mean 1 (mean of LogNormal(mu, s) is
  // exp(mu + s^2/2), so mu = -s^2/2).
  const double mu = -0.5 * config.influence_sigma * config.influence_sigma;
  std::vector<double> user_influence(config.user_universe);
  for (double& inf : user_influence)
    inf = rng.LogNormal(mu, config.influence_sigma);

  std::vector<Cascade> cascades;
  cascades.reserve(config.num_cascades);
  for (int i = 0; i < config.num_cascades; ++i)
    cascades.push_back(SimulateOne(config, i, user_influence, rng));
  return cascades;
}

}  // namespace cascn
