#include "data/statistics.h"

#include <algorithm>

#include "common/logging.h"

namespace cascn {

namespace {

SplitStatistics ComputeSplit(const std::vector<CascadeSample>& samples) {
  SplitStatistics s;
  s.num_cascades = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  double nodes = 0, edges = 0;
  for (const CascadeSample& sample : samples) {
    nodes += sample.observed.size();
    edges += sample.observed.num_edges();
  }
  s.avg_nodes = nodes / samples.size();
  s.avg_edges = edges / samples.size();
  return s;
}

}  // namespace

DatasetStatistics ComputeDatasetStatistics(const CascadeDataset& dataset) {
  DatasetStatistics stats;
  stats.train = ComputeSplit(dataset.train);
  stats.validation = ComputeSplit(dataset.validation);
  stats.test = ComputeSplit(dataset.test);
  return stats;
}

std::vector<SizeHistogramBin> SizeDistribution(
    const std::vector<Cascade>& cascades) {
  int max_size = 1;
  for (const Cascade& c : cascades) max_size = std::max(max_size, c.size());
  std::vector<SizeHistogramBin> bins;
  for (int lo = 1; lo <= max_size; lo *= 2) {
    SizeHistogramBin bin;
    bin.size_lo = lo;
    bin.size_hi = lo * 2;
    bins.push_back(bin);
  }
  for (const Cascade& c : cascades) {
    int b = 0;
    while (c.size() >= bins[b].size_hi) ++b;
    ++bins[b].count;
  }
  return bins;
}

std::vector<SaturationPoint> SaturationCurve(
    const std::vector<Cascade>& cascades, double horizon, int num_points) {
  CASCN_CHECK(horizon > 0 && num_points >= 1);
  std::vector<SaturationPoint> curve(num_points);
  for (int p = 0; p < num_points; ++p)
    curve[p].time = horizon * (p + 1) / num_points;
  if (cascades.empty()) return curve;
  double final_mass = 0;
  for (const Cascade& c : cascades) final_mass += c.size();
  for (int p = 0; p < num_points; ++p) {
    double mass = 0;
    for (const Cascade& c : cascades) mass += c.SizeAtTime(curve[p].time);
    curve[p].fraction_of_final = mass / final_mass;
  }
  return curve;
}

}  // namespace cascn
