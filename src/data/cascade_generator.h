// Synthetic cascade generators.
//
// The paper evaluates on Sina Weibo re-tweet cascades and HEP-PH citation
// cascades, neither of which ships with this repository. These generators
// produce the closest synthetic equivalent: a marked Hawkes-style branching
// process in which each adopter spawns children at a rate that is the
// product of a per-cascade attractiveness (Pareto: makes final sizes
// power-law, Fig. 4), a per-user influence (log-normal), and a memory
// kernel decaying with age (exponential: makes popularity saturate within
// the tracking window, Fig. 5).
//
// Crucially, a cascade's *future* growth under this process is a genuine
// function of its observed structure (frontier of recently-active,
// high-influence nodes) and temporal pattern (recent arrival rate), which
// is precisely the signal CasCN and the baselines compete to extract. The
// substitution therefore preserves the comparative behaviour the paper's
// evaluation measures.

#ifndef CASCN_DATA_CASCADE_GENERATOR_H_
#define CASCN_DATA_CASCADE_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "graph/cascade.h"

namespace cascn {

/// Parameters of the branching-process simulator.
struct GeneratorConfig {
  /// Number of cascades to simulate.
  int num_cascades = 1000;
  /// Size of the user universe; adopters are drawn from it.
  int user_universe = 2000;
  /// Full tracking horizon in native time units (Weibo: minutes, 24 h =
  /// 1440; citations: months, ~20 y = 240).
  double horizon = 1440.0;
  /// Hard cap on simulated cascade size (memory guard).
  int max_size = 800;

  /// Per-cascade attractiveness A ~ Pareto(x_min=attract_min, alpha),
  /// truncated at attract_cap. The cap keeps the branching process at or
  /// below criticality so sizes follow the near-critical power law instead
  /// of piling up at max_size.
  double attract_min = 0.4;
  double attract_alpha = 2.0;
  double attract_cap = 1.7;
  /// Per-user influence theta ~ LogNormal(mu, sigma), normalised to mean 1.
  double influence_sigma = 0.8;
  /// Mean number of children of the root is A * root_boost.
  double root_boost = 3.0;
  /// Mean children per non-root adopter is A * theta * child_scale.
  double child_scale = 0.55;
  /// Exponential memory kernel rate: child delays ~ Exp(decay_rate); larger
  /// means faster saturation.
  double decay_rate = 1.0 / 240.0;
  /// Fertility multiplier per hop of depth: a node at depth d spawns
  /// children at rate proportional to depth_damping^d. Re-tweets of
  /// re-tweets attract less attention; this makes future growth depend on
  /// the *joint* recency-and-depth composition of the cascade frontier — a
  /// structural-temporal signal that aggregate features cannot summarise
  /// but snapshot-sequence models can.
  double depth_damping = 1.0;
  /// Influence inheritance: a node's effective fertility is
  ///   f_child = inheritance * f_parent + (1 - inheritance) * theta_user.
  /// Positive values create persistent "hot" sub-lineages whose signature
  /// is the local branching pattern of the subtree — structure-resolved
  /// signal that snapshot-sequence models can read but aggregate features
  /// cannot. 0 disables inheritance.
  double inheritance = 0.0;
  /// Probability that an adoption attaches to 1-2 extra earlier nodes
  /// (citation DAGs; 0 for re-tweet trees).
  double extra_parent_prob = 0.0;
};

/// Weibo-like defaults: minute granularity, 24 h horizon, bursty decay.
GeneratorConfig WeiboLikeConfig();

/// HEP-PH-like defaults: month granularity, 20-year horizon, slow decay,
/// smaller cascades, multi-parent citation edges.
GeneratorConfig CitationLikeConfig();

/// Simulates `config.num_cascades` full-horizon cascades. Deterministic in
/// (config, rng seed). Cascade ids are "c<N>" in generation order, which
/// doubles as publication order for chronological splits.
std::vector<Cascade> GenerateCascades(const GeneratorConfig& config, Rng& rng);

}  // namespace cascn

#endif  // CASCN_DATA_CASCADE_GENERATOR_H_
