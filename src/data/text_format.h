// DeepHawkes text format reader/writer.
//
// The public Sina Weibo dataset used by the paper (released with DeepHawkes,
// github.com/CaoQi92/DeepHawkes) stores one cascade per line:
//
//   <message_id>\t<root_user>\t<publish_time>\t<num_adoptions>\t<paths>
//
// where <paths> is a space-separated list of retweet chains, each
// "u0/u1/.../uk:t" meaning user uk adopted at relative time t via that
// chain (u0 is always the root user). This module converts between that
// format and Cascade so the real dataset drops into the pipeline unchanged.

#ifndef CASCN_DATA_TEXT_FORMAT_H_
#define CASCN_DATA_TEXT_FORMAT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/cascade.h"

namespace cascn {

/// Parses one DeepHawkes-format line into a Cascade. User ids in the file
/// are arbitrary strings; they are hashed into [0, user_universe). Paths
/// must be consistent (every non-terminal chain user must itself have
/// adopted earlier).
Result<Cascade> ParseCascadeLine(const std::string& line, int user_universe);

/// Reads every line of `in` as a cascade; malformed lines produce an error
/// naming the line number.
Result<std::vector<Cascade>> ReadCascades(std::istream& in,
                                          int user_universe);

/// Serialises a cascade to one DeepHawkes-format line (synthetic user ids
/// are written as decimal strings; publish_time is written as 0).
std::string FormatCascadeLine(const Cascade& cascade);

/// Writes all cascades, one per line.
void WriteCascades(const std::vector<Cascade>& cascades, std::ostream& out);

}  // namespace cascn

#endif  // CASCN_DATA_TEXT_FORMAT_H_
