#include "data/dataset.h"

#include <cmath>
#include <cstring>

#include "common/math_util.h"

namespace cascn {

namespace {

// FNV-1a, 64-bit.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t& h, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void HashValue(uint64_t& h, T value) {
  HashBytes(h, &value, sizeof(value));
}

}  // namespace

uint64_t SampleFingerprint(const CascadeSample& sample) {
  uint64_t h = kFnvOffset;
  const std::string& id = sample.observed.id();
  HashBytes(h, id.data(), id.size());
  HashValue(h, sample.observation_window);
  for (const AdoptionEvent& e : sample.observed.events()) {
    HashValue(h, e.node);
    HashValue(h, e.user);
    HashValue(h, e.time);
    for (int parent : e.parents) HashValue(h, parent);
    // Separator so {parents={1},node=2} != {parents={1,2}}.
    HashValue(h, int{-1});
  }
  return h;
}

Result<CascadeDataset> BuildDataset(const std::vector<Cascade>& cascades,
                                    const DatasetOptions& options) {
  if (options.observation_window <= 0)
    return Status::InvalidArgument("observation window must be positive");
  if (options.min_observed_size < 1)
    return Status::InvalidArgument("min_observed_size must be >= 1");
  if (options.train_fraction <= 0 || options.train_fraction >= 1)
    return Status::InvalidArgument("train_fraction must be in (0, 1)");

  std::vector<CascadeSample> samples;
  for (const Cascade& cascade : cascades) {
    const int observed_size = cascade.SizeAtTime(options.observation_window);
    if (observed_size < options.min_observed_size) continue;
    if (options.max_observed_size > 0 &&
        observed_size > options.max_observed_size)
      continue;
    CascadeSample sample;
    sample.observed = cascade.Prefix(options.observation_window);
    sample.observation_window = options.observation_window;
    sample.future_increment = cascade.size() - observed_size;
    sample.log_label = Log2p1(sample.future_increment);
    samples.push_back(std::move(sample));
  }
  if (samples.empty())
    return Status::InvalidArgument(
        "no cascade survives the observation filter");

  CascadeDataset dataset;
  const size_t n = samples.size();
  const size_t train_end =
      static_cast<size_t>(std::llround(options.train_fraction * n));
  const size_t val_end = train_end + (n - train_end) / 2;
  for (size_t i = 0; i < n; ++i) {
    if (i < train_end) {
      dataset.train.push_back(std::move(samples[i]));
    } else if (i < val_end) {
      dataset.validation.push_back(std::move(samples[i]));
    } else {
      dataset.test.push_back(std::move(samples[i]));
    }
  }
  return dataset;
}

}  // namespace cascn
