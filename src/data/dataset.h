// Dataset assembly: turns full-horizon cascades into observed prefixes with
// future-increment labels, filtered and split chronologically 70/15/15 as in
// Section V-A of the paper.

#ifndef CASCN_DATA_DATASET_H_
#define CASCN_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/cascade.h"

namespace cascn {

/// One labelled example: a cascade observed for `observation_window` native
/// time units, with the ground-truth growth over the rest of the tracking
/// horizon.
struct CascadeSample {
  /// The prefix of the cascade inside the observation window.
  Cascade observed;
  double observation_window = 0.0;
  /// Ground truth: nodes adopted after the window (Delta S_i).
  int future_increment = 0;
  /// log2(1 + future_increment): the regression target.
  double log_label = 0.0;
};

/// Content fingerprint of the model-visible part of a sample (cascade id,
/// events, observation window). Two samples with identical observed content
/// hash equal; any append/edit changes the hash. Models key their per-sample
/// encoding caches by this value — never by object address, which heap reuse
/// can silently recycle for a different cascade.
uint64_t SampleFingerprint(const CascadeSample& sample);

/// Chronologically split samples.
struct CascadeDataset {
  std::vector<CascadeSample> train;
  std::vector<CascadeSample> validation;
  std::vector<CascadeSample> test;

  int TotalSize() const {
    return static_cast<int>(train.size() + validation.size() + test.size());
  }
};

/// Options for dataset construction.
struct DatasetOptions {
  /// Observation window T in the cascades' native time unit.
  double observation_window = 60.0;
  /// Cascades with fewer observed adoptions are dropped (the paper follows
  /// DeepHawkes: fewer than 10 observed re-tweets are filtered out; citation
  /// datasets use a smaller floor because cascades are smaller).
  int min_observed_size = 10;
  /// Cascades with more observed adoptions are dropped (the reference
  /// implementation bounds cascades at a maximum node count so the padded
  /// graph filters cover every observed node). 0 disables the cap.
  int max_observed_size = 0;
  /// Fraction of (filtered, chronologically ordered) cascades for training;
  /// the remainder is split evenly into validation and test (paper: 70%,
  /// then even split).
  double train_fraction = 0.7;
};

/// Builds a labelled, split dataset from full-horizon cascades (assumed in
/// publication order). Returns InvalidArgument when options are malformed
/// or no cascade survives filtering.
Result<CascadeDataset> BuildDataset(const std::vector<Cascade>& cascades,
                                    const DatasetOptions& options);

}  // namespace cascn

#endif  // CASCN_DATA_DATASET_H_
