// Dataset statistics reproducing the descriptive artefacts of the paper:
// Table II (split sizes, average nodes/edges), Fig. 4 (cascade-size
// distribution) and Fig. 5 (popularity saturation over time).

#ifndef CASCN_DATA_STATISTICS_H_
#define CASCN_DATA_STATISTICS_H_

#include <vector>

#include "data/dataset.h"
#include "graph/cascade.h"

namespace cascn {

/// Per-split averages for Table II.
struct SplitStatistics {
  int num_cascades = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;
};

/// Table II row set for one observation window.
struct DatasetStatistics {
  SplitStatistics train;
  SplitStatistics validation;
  SplitStatistics test;
};

/// Computes Table II statistics over a built dataset (observed prefixes).
DatasetStatistics ComputeDatasetStatistics(const CascadeDataset& dataset);

/// One bar of the Fig. 4 log-log size histogram.
struct SizeHistogramBin {
  /// Inclusive lower and exclusive upper cascade-size bound.
  int size_lo = 0;
  int size_hi = 0;
  int count = 0;
};

/// Histogram of final cascade sizes with logarithmic bin edges
/// 1, 2, 4, ..., capturing the power-law shape of Fig. 4.
std::vector<SizeHistogramBin> SizeDistribution(
    const std::vector<Cascade>& cascades);

/// One point of the Fig. 5 saturation curve.
struct SaturationPoint {
  double time = 0.0;
  /// Fraction of total adoption mass reached by `time`:
  /// sum_c size_c(time) / sum_c size_c. Size-weighted so single-node
  /// cascades (trivially at 100%) do not dominate the curve.
  double fraction_of_final = 0.0;
};

/// Saturation curve: fraction of final popularity reached vs. time,
/// aggregated over cascades, evaluated at `num_points` evenly spaced times
/// in (0, horizon].
std::vector<SaturationPoint> SaturationCurve(
    const std::vector<Cascade>& cascades, double horizon, int num_points);

}  // namespace cascn

#endif  // CASCN_DATA_STATISTICS_H_
