#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cascn {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer literal");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE)
    return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not an integer: " + buf);
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty float literal");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not a double: " + buf);
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cascn
