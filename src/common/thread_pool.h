// Fixed-size worker pool used by the benchmark harness to train independent
// model configurations concurrently, plus a ParallelFor convenience.

#ifndef CASCN_COMMON_THREAD_POOL_H_
#define CASCN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cascn {

/// A fixed set of worker threads draining a FIFO task queue. Destruction
/// waits for all submitted tasks to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [0, n) across `pool`, blocking until all complete.
/// body must be safe to invoke concurrently for distinct i.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body);

/// Number of hardware threads, at least 1.
size_t HardwareConcurrency();

}  // namespace cascn

#endif  // CASCN_COMMON_THREAD_POOL_H_
