// Result<T>: a value or an error Status, in the style of arrow::Result.
//
// Functions that either produce a value or fail return Result<T>. Callers
// must check ok() before dereferencing.

#ifndef CASCN_COMMON_RESULT_H_
#define CASCN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cascn {

/// Holds either a successfully produced T or the Status describing why
/// production failed. A Result constructed from a value is OK; a Result
/// constructed from a non-OK Status carries that error. Constructing a
/// Result from an OK Status is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit so `return SomeStatusError();` works.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ holds a T.
  std::optional<T> value_;
};

}  // namespace cascn

/// Assigns the value of a Result-producing expression to `lhs`, or propagates
/// its error Status. Usable only in functions returning Status or Result<T>.
#define CASCN_ASSIGN_OR_RETURN(lhs, expr)                    \
  CASCN_ASSIGN_OR_RETURN_IMPL_(                              \
      CASCN_CONCAT_(_cascn_result_, __LINE__), lhs, expr)

#define CASCN_CONCAT_INNER_(a, b) a##b
#define CASCN_CONCAT_(a, b) CASCN_CONCAT_INNER_(a, b)
#define CASCN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // CASCN_COMMON_RESULT_H_
