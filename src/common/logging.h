// Minimal leveled logger used across CasCN. Thread-safe; writes to stderr.
//
//   CASCN_LOG(INFO) << "trained epoch " << epoch << " loss=" << loss;
//   CASCN_CHECK(cond) << "explanation";
//
// The global level can be raised to silence training chatter in tests.

#ifndef CASCN_COMMON_LOGGING_H_
#define CASCN_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace cascn {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" / "error" (case-insensitive).
/// Returns false and leaves `level` untouched on anything else.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// Applies the CASCN_LOG_LEVEL environment variable, if set and valid, to
/// the global level. Runs automatically at startup (static initializer in
/// logging.cc) so tests and benches can silence or amplify chatter without
/// code changes; exposed for tests and for re-reading after setenv.
void InitLogLevelFromEnv();

namespace internal_logging {

/// Accumulates one log line and emits it (with a timestamp and level tag) on
/// destruction. Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the active
/// level; keeps the macro expression well-formed.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets the ternary in CASCN_CHECK produce void on both branches while still
/// allowing `<< ...` on the message (glog's Voidify trick: & binds looser
/// than <<).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace cascn

#define CASCN_LOG_DEBUG ::cascn::LogLevel::kDebug
#define CASCN_LOG_INFO ::cascn::LogLevel::kInfo
#define CASCN_LOG_WARNING ::cascn::LogLevel::kWarning
#define CASCN_LOG_ERROR ::cascn::LogLevel::kError
#define CASCN_LOG_FATAL ::cascn::LogLevel::kFatal

#define CASCN_LOG(severity)                                               \
  ::cascn::internal_logging::LogMessage(CASCN_LOG_##severity, __FILE__,   \
                                        __LINE__)                         \
      .stream()

/// Aborts with a message when `condition` is false. Active in all builds:
/// invariant violations in a database-style library must not be silently
/// ignored in release mode.
#define CASCN_CHECK(condition)                                            \
  (condition) ? (void)0                                                   \
              : ::cascn::internal_logging::Voidify() &                    \
                    ::cascn::internal_logging::LogMessage(                \
                        CASCN_LOG_FATAL, __FILE__, __LINE__)              \
                            .stream()                                     \
                        << "Check failed: " #condition " "

#define CASCN_DCHECK(condition) CASCN_CHECK(condition)

#endif  // CASCN_COMMON_LOGGING_H_
