// Status: error-code-plus-message result of an operation that can fail.
//
// CasCN does not use C++ exceptions on public API paths. Functions that can
// fail return a Status (or a Result<T>, see result.h) in the style of
// RocksDB/Arrow. A default-constructed Status is OK.

#ifndef CASCN_COMMON_STATUS_H_
#define CASCN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cascn {

/// Error category of a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kNotImplemented,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail: an OK marker, or an error code
/// with a message. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cascn

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// return Status.
#define CASCN_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::cascn::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // CASCN_COMMON_STATUS_H_
