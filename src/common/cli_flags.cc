#include "common/cli_flags.h"

#include "common/string_util.h"

namespace cascn {

Status CliFlags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) return Status::InvalidArgument("bare '--' argument");
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return Status::OK();
}

bool CliFlags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t CliFlags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt64(it->second);
  return parsed.ok() ? *parsed : default_value;
}

double CliFlags::GetDouble(const std::string& name,
                           double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? *parsed : default_value;
}

bool CliFlags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cascn
