// Small string helpers shared across CasCN: splitting, joining, trimming,
// numeric parsing with error reporting, and printf-style formatting.

#ifndef CASCN_COMMON_STRING_UTIL_H_
#define CASCN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cascn {

/// Splits `s` on `delim`; keeps empty fields (",a,," -> {"", "a", "", ""}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a signed integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cascn

#endif  // CASCN_COMMON_STRING_UTIL_H_
