// Tiny command-line flag parser used by the examples and bench binaries.
//
//   CliFlags flags;
//   CASCN_CHECK(flags.Parse(argc, argv).ok());
//   int epochs = flags.GetInt("epochs", 20);

#ifndef CASCN_COMMON_CLI_FLAGS_H_
#define CASCN_COMMON_CLI_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cascn {

/// Parses `--name=value` and `--name value` style flags; bare `--name` is
/// treated as boolean true. Positional arguments are collected in order.
class CliFlags {
 public:
  /// Consumes argv; returns InvalidArgument on malformed input.
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cascn

#endif  // CASCN_COMMON_CLI_FLAGS_H_
