// Deterministic pseudo-random number generation for simulations and model
// initialisation. All randomness in CasCN flows through Rng so experiments
// are reproducible from a single seed.
//
// The core generator is splitmix64-seeded xoshiro256**, a small, fast,
// high-quality generator; distributions (uniform, normal, exponential,
// Poisson, Pareto, categorical) are implemented on top of it so results do
// not depend on the standard library's unspecified distribution algorithms.

#ifndef CASCN_COMMON_RNG_H_
#define CASCN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cascn {

/// Deterministic random number generator with the distributions the cascade
/// simulators and neural-network initialisers need. Not thread-safe; create
/// one Rng per thread (Split() derives independent streams).
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent generator; the child stream does not overlap
  /// this one for practical sequence lengths.
  Rng Split();

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Pre: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate. Pre: rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean. Pre: mean >= 0.
  /// Uses Knuth's method for small means and normal approximation above 64.
  int Poisson(double mean);

  /// Pareto (power-law) sample >= x_min with tail exponent alpha.
  /// Pre: x_min > 0, alpha > 0.
  double Pareto(double x_min, double alpha);

  /// Bernoulli trial.
  bool Bernoulli(double p);

  /// Index sampled proportionally to `weights` (need not be normalised).
  /// Pre: weights non-empty with non-negative entries and positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Complete generator state, for checkpoint/resume: a generator whose
  /// state is saved and later restored continues the exact same stream.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State SaveState() const {
    State state;
    for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
    state.has_cached_normal = has_cached_normal_;
    state.cached_normal = cached_normal_;
    return state;
  }

  void RestoreState(const State& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
    has_cached_normal_ = state.has_cached_normal;
    cached_normal_ = state.cached_normal;
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cascn

#endif  // CASCN_COMMON_RNG_H_
