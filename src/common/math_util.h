// Scalar math helpers: stable log transforms and basic descriptive
// statistics used by the feature extractors and evaluation code.

#ifndef CASCN_COMMON_MATH_UTIL_H_
#define CASCN_COMMON_MATH_UTIL_H_

#include <cmath>
#include <vector>

namespace cascn {

/// log2(1 + x); the label transform used throughout the paper's evaluation
/// (sizes are compared in log scale, base 2 as in DeepCas/DeepHawkes).
inline double Log2p1(double x) { return std::log2(1.0 + x); }

/// Inverse of Log2p1.
inline double Exp2m1(double y) { return std::exp2(y) - 1.0; }

/// Numerically-stable sigmoid.
inline double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than two elements.
double StdDev(const std::vector<double>& v);

/// Largest element; 0 for an empty vector.
double MaxValue(const std::vector<double>& v);

/// Linear-interpolation percentile, p in [0, 100]; 0 for an empty vector.
double Percentile(std::vector<double> v, double p);

/// Mean squared error between log-transformed sizes: the paper's MSLE
/// (Eq. 20) computed over matched prediction/truth pairs already in log
/// space. Pre: equal non-zero lengths.
double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& truth);

}  // namespace cascn

#endif  // CASCN_COMMON_MATH_UTIL_H_
