// Whole-file I/O with crash-safe writes and errno-bearing errors.
//
// WriteFileAtomic is the write primitive for everything durable (model
// checkpoints, trainer resume state): it streams into a sibling temp file
// and renames it over the destination only after a successful flush, so a
// crash — or an injected fault — at any instant leaves either the previous
// complete file or a stray temp file, never a torn destination. All failure
// Statuses name the path and carry strerror(errno).

#ifndef CASCN_COMMON_FILE_UTIL_H_
#define CASCN_COMMON_FILE_UTIL_H_

#include <string>

#include "common/result.h"

namespace cascn {

/// Reads the entire file into a string. IoError (path + strerror) when the
/// file cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `bytes`: writes `path`.tmp, flushes,
/// verifies the stream survived the final flush (short writes are errors,
/// not silent truncation), then renames over `path`. On any failure the
/// temp file is removed and `path` is untouched.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

}  // namespace cascn

#endif  // CASCN_COMMON_FILE_UTIL_H_
