#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cascn {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  std::string lower(name);
  for (char& c : lower)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("CASCN_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    std::fprintf(stderr, "[W logging] unrecognized CASCN_LOG_LEVEL=\"%s\" "
                 "(want debug|info|warning|error); keeping current level\n",
                 env);
  }
}

namespace {

// Applies CASCN_LOG_LEVEL before main(). Touches only the atomic level and
// stderr, so static-initialization order is irrelevant.
[[maybe_unused]] const bool g_env_level_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool emit = static_cast<int>(level_) >=
                    g_log_level.load(std::memory_order_relaxed);
  if (emit || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace cascn
