#include "common/math_util.h"

#include <algorithm>

#include "common/logging.h"

namespace cascn {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double ss = 0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size()));
}

double MaxValue(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& truth) {
  CASCN_CHECK(!pred.empty() && pred.size() == truth.size());
  double sum = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace cascn
