#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cascn {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

Rng Rng::Split() { return Rng(NextUint64()); }

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CASCN_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller with a guard against log(0).
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  CASCN_DCHECK(rate > 0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  CASCN_DCHECK(mean >= 0);
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // simulator's large-burst tail.
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

double Rng::Pareto(double x_min, double alpha) {
  CASCN_DCHECK(x_min > 0 && alpha > 0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return x_min / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  CASCN_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    CASCN_DCHECK(w >= 0);
    total += w;
  }
  CASCN_CHECK(total > 0) << "Categorical weights sum to zero";
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace cascn
