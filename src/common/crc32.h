// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the payload
// checksum used by checkpoint files to distinguish a cleanly written file
// from a torn or bit-rotted one. Table-driven, byte-at-a-time; fast enough
// for checkpoint-sized payloads and dependency-free.

#ifndef CASCN_COMMON_CRC32_H_
#define CASCN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cascn {

/// Incremental update: feeds `len` bytes into a running CRC. Start from
/// `crc = 0` (Crc32 below does this for you) and chain calls to checksum
/// scattered buffers.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// One-shot CRC-32 of a buffer.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace cascn

#endif  // CASCN_COMMON_CRC32_H_
