#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace cascn {

namespace {

std::string ErrnoText() {
  return errno != 0 ? std::strerror(errno) : "unknown error";
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::IoError(
        StrFormat("cannot open %s: %s", path.c_str(), ErrnoText().c_str()));
  std::string bytes;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    bytes.append(buffer, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    return Status::IoError(
        StrFormat("error reading %s: %s", path.c_str(), ErrnoText().c_str()));
  return bytes;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  errno = 0;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::IoError(StrFormat("cannot open %s for writing: %s",
                                     tmp.c_str(), ErrnoText().c_str()));
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    const std::string why = ErrnoText();
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("short write to %s (%zu of %zu bytes): %s", tmp.c_str(),
                  written, bytes.size(), why.c_str()));
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = ErrnoText();
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("cannot rename %s over %s: %s",
                                     tmp.c_str(), path.c_str(), why.c_str()));
  }
  return Status::OK();
}

}  // namespace cascn
