#include "baselines/hawkes_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace cascn {

HawkesProcessModel::HawkesProcessModel() : HawkesProcessModel(Config()) {}

HawkesProcessModel::HawkesProcessModel(const Config& config)
    : config_(config) {
  CASCN_CHECK(config.theta_min > 0 && config.theta_max > config.theta_min);
  CASCN_CHECK(config.theta_grid >= 2);
  CASCN_CHECK(config.kappa_cap > 0 && config.kappa_cap < 1);
}

namespace {

/// Log likelihood of the observed adoptions under kernel
/// kappa * theta * exp(-theta s), with kappa profiled out.
/// Returns the profile LL and writes the profiled kappa.
double ProfileLogLikelihood(const Cascade& cascade, double window,
                            double theta, double kappa_cap, double* kappa_out) {
  const int n = cascade.size();
  // Compensator shape: sum_i (1 - e^{-theta (T - t_i)}).
  double compensator_shape = 0;
  for (int i = 0; i < n; ++i)
    compensator_shape +=
        1.0 - std::exp(-theta * (window - cascade.event(i).time));
  const double events = static_cast<double>(n - 1);
  double kappa = compensator_shape > 1e-12 ? events / compensator_shape : 0.0;
  kappa = std::clamp(kappa, 0.0, kappa_cap);
  *kappa_out = kappa;
  if (events == 0) return 0.0;

  double ll = 0;
  for (int j = 1; j < n; ++j) {
    // Intensity at t_j from all strictly earlier adoptions.
    double excitation = 0;
    for (int i = 0; i < j; ++i) {
      const double dt = cascade.event(j).time - cascade.event(i).time;
      excitation += std::exp(-theta * dt);
    }
    // Guard simultaneous events (excitation from t_i == t_j is excluded by
    // i < j but dt can still be 0 for ties; e^0 = 1 keeps this finite).
    ll += std::log(std::max(kappa * theta * excitation, 1e-12));
  }
  ll -= kappa * compensator_shape;
  return ll;
}

}  // namespace

HawkesFit HawkesProcessModel::FitCascade(const CascadeSample& sample) const {
  const Cascade& cascade = sample.observed;
  const double window = sample.observation_window;
  HawkesFit best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();

  // Log-spaced theta grid.
  const double log_lo = std::log(config_.theta_min);
  const double log_hi = std::log(config_.theta_max);
  for (int g = 0; g < config_.theta_grid; ++g) {
    const double theta = std::exp(
        log_lo + (log_hi - log_lo) * g / (config_.theta_grid - 1));
    double kappa = 0;
    const double ll = ProfileLogLikelihood(cascade, window, theta,
                                           config_.kappa_cap, &kappa);
    if (ll > best.log_likelihood) {
      best.log_likelihood = ll;
      best.theta = theta;
      best.kappa = kappa;
    }
  }

  // Branching-process extrapolation.
  double residual = 0;
  for (int i = 0; i < cascade.size(); ++i)
    residual += best.kappa *
                std::exp(-best.theta * (window - cascade.event(i).time));
  best.expected_future = residual / (1.0 - best.kappa);
  return best;
}

double HawkesProcessModel::RawLogEstimate(const CascadeSample& sample) const {
  return Log2p1(FitCascade(sample).expected_future);
}

Status HawkesProcessModel::Fit(const CascadeDataset& dataset) {
  if (dataset.train.empty())
    return Status::InvalidArgument("Hawkes calibration needs train data");
  // Least squares y = a + b x over (raw log estimate, log label).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(dataset.train.size());
  for (const CascadeSample& sample : dataset.train) {
    const double x = RawLogEstimate(sample);
    const double y = sample.log_label;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-9) {
    slope_ = 0.0;
    intercept_ = sy / n;
  } else {
    slope_ = (n * sxy - sx * sy) / denom;
    intercept_ = (sy - slope_ * sx) / n;
  }
  fitted_ = true;
  return Status::OK();
}

ag::Variable HawkesProcessModel::PredictLog(const CascadeSample& sample) {
  CASCN_CHECK(fitted_) << "HawkesProcessModel::Fit must run before predict";
  Tensor out(1, 1);
  out.At(0, 0) = intercept_ + slope_ * RawLogEstimate(sample);
  return ag::Variable::Leaf(std::move(out));
}

HybridModel::HybridModel(CascadeRegressor* deep, HawkesProcessModel* hawkes)
    : deep_(deep), hawkes_(hawkes) {
  CASCN_CHECK(deep != nullptr && hawkes != nullptr);
}

Status HybridModel::Fit(const CascadeDataset& dataset) {
  if (dataset.validation.empty())
    return Status::InvalidArgument("hybrid weighting needs validation data");
  if (!hawkes_->fitted())
    return Status::FailedPrecondition("Hawkes model is not fitted");
  // Precompute both predictions once per validation sample.
  std::vector<double> deep_preds, hawkes_preds, labels;
  for (const CascadeSample& sample : dataset.validation) {
    deep_preds.push_back(
        deep_->PredictLogCalibrated(sample).value().At(0, 0));
    hawkes_preds.push_back(
        hawkes_->PredictLogCalibrated(sample).value().At(0, 0));
    labels.push_back(sample.log_label);
  }
  double best_msle = std::numeric_limits<double>::infinity();
  for (double w = 0.0; w <= 1.0 + 1e-9; w += 0.05) {
    double msle = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double pred = w * deep_preds[i] + (1 - w) * hawkes_preds[i];
      msle += (pred - labels[i]) * (pred - labels[i]);
    }
    msle /= labels.size();
    if (msle < best_msle) {
      best_msle = msle;
      weight_ = w;
    }
  }
  return Status::OK();
}

ag::Variable HybridModel::PredictLog(const CascadeSample& sample) {
  const double deep = deep_->PredictLogCalibrated(sample).value().At(0, 0);
  const double hawkes =
      hawkes_->PredictLogCalibrated(sample).value().At(0, 0);
  Tensor out(1, 1);
  out.At(0, 0) = weight_ * deep + (1 - weight_) * hawkes;
  return ag::Variable::Leaf(std::move(out));
}

}  // namespace cascn
