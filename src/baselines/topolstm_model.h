// Topo-LSTM baseline (Wang et al., ICDM 2017): a DAG-structured LSTM whose
// recurrence follows the diffusion topology. Nodes are processed in
// adoption order; each node's LSTM step consumes its user embedding and the
// mean of its parents' (h, c) states, yielding a topology-aware embedding
// per node. Node states are mean-pooled and an MLP regresses the log
// increment size (the paper swaps Topo-LSTM's activation classifier for a
// size regressor the same way). Topo-LSTM sees structure and identity but
// no adoption times — the deficit Table III notes.

#ifndef CASCN_BASELINES_TOPOLSTM_MODEL_H_
#define CASCN_BASELINES_TOPOLSTM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn {

/// DAG-structured LSTM over the diffusion topology.
class TopoLstmModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    int user_universe = 2000;
    int embedding_dim = 16;
    int hidden_dim = 12;
    int mlp_hidden1 = 32;
    int mlp_hidden2 = 16;
    uint64_t seed = 42;
  };

  explicit TopoLstmModel(const Config& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "Topo-LSTM"; }

 private:
  Config config_;
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::unique_ptr<nn::LstmCell> cell_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_TOPOLSTM_MODEL_H_
