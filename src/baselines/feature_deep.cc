#include "baselines/feature_deep.h"

#include "common/logging.h"
#include "common/rng.h"

namespace cascn {

FeatureDeepModel::FeatureDeepModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  const int num_features =
      static_cast<int>(FeatureNames(config.feature_options).size());
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{num_features, config.hidden1, config.hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("mlp", mlp_.get());
}

void FeatureDeepModel::PrepareScaler(
    const std::vector<CascadeSample>& train_samples) {
  const FeatureMatrix train =
      ExtractFeatureMatrix(train_samples, config_.feature_options);
  scaler_ = FitScaler(train.features);
  scaler_ready_ = true;
  feature_cache_.clear();
}

ag::Variable FeatureDeepModel::PredictLog(const CascadeSample& sample) {
  CASCN_CHECK(scaler_ready_) << "PrepareScaler must run before prediction";
  auto it = feature_cache_.find(&sample);
  if (it == feature_cache_.end()) {
    const std::vector<double> row =
        ExtractFeatures(sample, config_.feature_options);
    Tensor features(1, static_cast<int>(row.size()));
    for (size_t j = 0; j < row.size(); ++j)
      features.At(0, static_cast<int>(j)) =
          (row[j] - scaler_.mean[j]) / scaler_.stddev[j];
    it = feature_cache_.emplace(&sample, std::move(features)).first;
  }
  return mlp_->Forward(ag::Variable::Leaf(it->second));
}

}  // namespace cascn
