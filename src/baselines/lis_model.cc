#include "baselines/lis_model.h"

#include "common/rng.h"

namespace cascn {

LisModel::LisModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  influence_ = std::make_unique<nn::Embedding>(config.user_universe,
                                               config.latent_dim, rng);
  susceptibility_ = std::make_unique<nn::Embedding>(config.user_universe,
                                                    config.latent_dim, rng);
  head_ = std::make_unique<nn::Linear>(config.latent_dim, 1, rng);
  RegisterSubmodule("influence", influence_.get());
  RegisterSubmodule("susceptibility", susceptibility_.get());
  RegisterSubmodule("head", head_.get());
}

ag::Variable LisModel::PredictLog(const CascadeSample& sample) {
  const Cascade& cascade = sample.observed;
  // Edge lists: parent users (influencers) and child users (susceptibles).
  std::vector<int> parents, children;
  for (int i = 1; i < cascade.size(); ++i) {
    for (int p : cascade.event(i).parents) {
      parents.push_back(cascade.event(p).user % config_.user_universe);
      children.push_back(cascade.event(i).user % config_.user_universe);
    }
  }
  if (parents.empty()) {
    // Root-only cascade: use the root's influence against itself.
    const int root = cascade.event(0).user % config_.user_universe;
    parents.push_back(root);
    children.push_back(root);
  }
  const ag::Variable interactions =
      ag::Mul(influence_->Lookup(parents), susceptibility_->Lookup(children));
  // Mean over edges keeps the scale independent of cascade size; the head
  // learns the mapping to log growth.
  return head_->Forward(ag::MeanRows(interactions));
}

}  // namespace cascn
