#include "baselines/deepcas_model.h"

#include <functional>

#include "common/logging.h"
#include "nn/init.h"

namespace cascn {

DeepCasModel::DeepCasModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  user_embedding_ = std::make_unique<nn::Embedding>(config.user_universe,
                                                    config.embedding_dim, rng);
  gru_fwd_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                           config.hidden_dim, rng);
  gru_bwd_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                           config.hidden_dim, rng);
  attention_w_ = RegisterParameter(
      "attention_w",
      nn::XavierUniform(2 * config.hidden_dim, config.attention_dim, rng));
  attention_v_ = RegisterParameter(
      "attention_v", nn::XavierUniform(config.attention_dim, 1, rng));
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{2 * config.hidden_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("user_embedding", user_embedding_.get());
  RegisterSubmodule("gru_fwd", gru_fwd_.get());
  RegisterSubmodule("gru_bwd", gru_bwd_.get());
  RegisterSubmodule("mlp", mlp_.get());
}

const std::vector<std::vector<int>>& DeepCasModel::WalkUsers(
    const CascadeSample& sample) {
  auto it = walk_cache_.find(&sample);
  if (it != walk_cache_.end()) return it->second;
  Rng rng(std::hash<std::string>{}(sample.observed.id()) ^ config_.seed);
  const auto walks =
      SampleCascadeWalks(sample.observed, config_.walk_options, rng);
  std::vector<std::vector<int>> per_step(
      config_.walk_options.walk_length,
      std::vector<int>(walks.size(), 0));
  for (size_t w = 0; w < walks.size(); ++w)
    for (int t = 0; t < config_.walk_options.walk_length; ++t)
      per_step[t][w] =
          sample.observed.event(walks[w][t]).user % config_.user_universe;
  return walk_cache_.emplace(&sample, std::move(per_step)).first->second;
}

ag::Variable DeepCasModel::PredictLog(const CascadeSample& sample) {
  const auto& per_step = WalkUsers(sample);
  const int num_walks = static_cast<int>(per_step[0].size());

  // Bidirectional GRU over the walk batch.
  nn::RnnState fwd = gru_fwd_->InitialState(num_walks);
  for (const auto& users : per_step)
    fwd = gru_fwd_->Step(user_embedding_->Lookup(users), fwd);
  nn::RnnState bwd = gru_bwd_->InitialState(num_walks);
  for (auto it = per_step.rbegin(); it != per_step.rend(); ++it)
    bwd = gru_bwd_->Step(user_embedding_->Lookup(*it), bwd);
  const ag::Variable walk_repr = ag::ConcatCols(fwd.h, bwd.h);  // K x 2h

  // Attention over walks: softmax(tanh(H Wa) va) weighted sum.
  const ag::Variable scores = ag::MatMul(
      ag::Tanh(ag::MatMul(walk_repr, attention_w_)), attention_v_);  // K x 1
  const ag::Variable attn =
      ag::SoftmaxRows(ag::Transpose(scores));  // 1 x K
  return mlp_->Forward(ag::MatMul(attn, walk_repr));
}

}  // namespace cascn
