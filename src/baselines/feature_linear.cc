#include "baselines/feature_linear.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "tensor/linalg.h"

namespace cascn {

namespace {

std::vector<double> DefaultL2Grid() {
  std::vector<double> grid = {1.0, 0.5};
  for (double v = 0.1; v >= 1e-8 / 2; v /= 10) {
    grid.push_back(v);
    grid.push_back(v / 2);
  }
  return grid;
}

}  // namespace

FeatureLinearModel::FeatureLinearModel(const FeatureOptions& options,
                                       std::vector<double> l2_candidates)
    : options_(options), l2_candidates_(std::move(l2_candidates)) {
  if (l2_candidates_.empty()) l2_candidates_ = DefaultL2Grid();
}

Status FeatureLinearModel::Fit(const CascadeDataset& dataset) {
  if (dataset.train.empty() || dataset.validation.empty())
    return Status::InvalidArgument("ridge fit needs train and validation");
  FeatureMatrix train = ExtractFeatureMatrix(dataset.train, options_);
  scaler_ = FitScaler(train.features);
  ApplyScaler(scaler_, train.features);
  FeatureMatrix val = ExtractFeatureMatrix(dataset.validation, options_);
  ApplyScaler(scaler_, val.features);

  const int d = train.features.cols();
  const int n = train.features.rows();
  // Normal equations with intercept handled by augmenting a ones column.
  Tensor x_aug(n, d + 1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x_aug.At(i, j) = train.features.At(i, j);
    x_aug.At(i, d) = 1.0;
  }
  const Tensor xtx = MatMulTransposeA(x_aug, x_aug);
  const Tensor xty = MatMulTransposeA(x_aug, train.labels);

  double best_msle = std::numeric_limits<double>::infinity();
  for (double l2 : l2_candidates_) {
    Tensor regularised = xtx;
    // Do not penalise the intercept.
    for (int j = 0; j < d; ++j) regularised.At(j, j) += l2 * n;
    auto solved = SolveSpd(regularised, xty);
    if (!solved.ok()) continue;
    const Tensor& beta = *solved;
    double msle = 0;
    for (int i = 0; i < val.features.rows(); ++i) {
      double pred = beta.At(d, 0);
      for (int j = 0; j < d; ++j)
        pred += beta.At(j, 0) * val.features.At(i, j);
      const double err = pred - val.labels.At(i, 0);
      msle += err * err;
    }
    msle /= val.features.rows();
    if (msle < best_msle) {
      best_msle = msle;
      selected_l2_ = l2;
      weights_.assign(d, 0.0);
      for (int j = 0; j < d; ++j) weights_[j] = beta.At(j, 0);
      intercept_ = beta.At(d, 0);
    }
  }
  if (!std::isfinite(best_msle))
    return Status::Internal("every ridge solve failed");
  fitted_ = true;
  return Status::OK();
}

double FeatureLinearModel::PredictRow(
    const std::vector<double>& features) const {
  double pred = intercept_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    const double standardized =
        (features[j] - scaler_.mean[j]) / scaler_.stddev[j];
    pred += weights_[j] * standardized;
  }
  return pred;
}

ag::Variable FeatureLinearModel::PredictLog(const CascadeSample& sample) {
  CASCN_CHECK(fitted_) << "FeatureLinearModel::Fit must run before predict";
  Tensor out(1, 1);
  out.At(0, 0) = PredictRow(ExtractFeatures(sample, options_));
  return ag::Variable::Leaf(std::move(out));
}

}  // namespace cascn
