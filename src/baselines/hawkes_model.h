// Parametric self-exciting (Hawkes-style) point-process predictor: the
// paper's "generative process" category (Section II, e.g. Mishra et al.
// 2016; Gao et al. 2015) implemented directly rather than via deep
// learning.
//
// The observed cascade is modelled as a branching process in which each
// adoption at time t_i excites future adoptions with kernel
//   phi(t - t_i) = kappa * theta * exp(-theta (t - t_i)).
// The branching factor kappa and memory rate theta are fitted per cascade
// by maximum likelihood on the observed window [0, T] (grid + golden
// refinement over theta; kappa has a closed form given theta). The
// expected future increment follows from branching-process extrapolation:
// each observed node still owes kappa * exp(-theta (T - t_i)) direct
// children, and every future adoption spawns kappa more on average, so
//   E[future] = sum_i kappa e^{-theta (T - t_i)} / (1 - kappa)   (kappa < 1)
//
// A global isotonic-free linear correction in log space (a, b) is fitted
// on the training split, mirroring how feature-driven Hawkes predictors
// calibrate their point-process estimates.
//
// HybridModel (the paper's future-work item 3) couples the generative
// estimate with a trained CasCN: the final prediction is a convex
// combination chosen on the validation split.

#ifndef CASCN_BASELINES_HAWKES_MODEL_H_
#define CASCN_BASELINES_HAWKES_MODEL_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/regressor.h"

namespace cascn {

/// Per-cascade fitted point-process parameters.
struct HawkesFit {
  /// Mean direct children per adoption (branching factor), clamped below 1.
  double kappa = 0.0;
  /// Exponential memory rate.
  double theta = 0.0;
  /// Point-process estimate of the future increment.
  double expected_future = 0.0;
  /// Observed-window log likelihood at the optimum.
  double log_likelihood = 0.0;
};

/// Self-exciting point-process regressor.
class HawkesProcessModel : public CascadeRegressor {
 public:
  struct Config {
    /// theta search grid bounds (rates per native time unit).
    double theta_min = 1e-4;
    double theta_max = 1.0;
    int theta_grid = 24;
    /// Branching factor is clamped to [0, kappa_cap] to keep the geometric
    /// extrapolation finite.
    double kappa_cap = 0.95;
  };

  HawkesProcessModel();
  explicit HawkesProcessModel(const Config& config);

  /// Fits the global log-space calibration (a + b * log-estimate) on the
  /// training split by least squares.
  Status Fit(const CascadeDataset& dataset);

  /// MLE fit of one observed cascade (exposed for analysis/tests).
  HawkesFit FitCascade(const CascadeSample& sample) const;

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override { return {}; }
  std::string name() const override { return "Hawkes"; }

  bool fitted() const { return fitted_; }

 private:
  double RawLogEstimate(const CascadeSample& sample) const;

  Config config_;
  double intercept_ = 0.0;
  double slope_ = 1.0;
  bool fitted_ = false;
};

/// Convex combination of a trained CasCN-style model and the Hawkes
/// estimate, weighted on the validation split (future-work item 3).
class HybridModel : public CascadeRegressor {
 public:
  /// Both models must already be trained/fitted; they must outlive this
  /// object.
  HybridModel(CascadeRegressor* deep, HawkesProcessModel* hawkes);

  /// Selects the mixing weight in [0, 1] minimising validation MSLE.
  Status Fit(const CascadeDataset& dataset);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override { return {}; }
  std::string name() const override { return "CasCN+Hawkes"; }

  double weight() const { return weight_; }

 private:
  CascadeRegressor* deep_;
  HawkesProcessModel* hawkes_;
  double weight_ = 0.5;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_HAWKES_MODEL_H_
