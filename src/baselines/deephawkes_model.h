// DeepHawkes baseline (Cao et al., CIKM 2017): bridges Hawkes processes and
// deep learning. Every observed adoption contributes its full retweet path
// (root -> ... -> adopter), encoded by a GRU over user embeddings; path
// representations are weighted by a learned, non-parametric time-decay
// factor of the adoption time (the Hawkes interpretable factor) and
// sum-pooled before an MLP regresses the log increment size.
//
// Because shared GRU weights make every path's encoding equal to its
// parent's encoding extended by one step, the implementation computes one
// hidden state per node via the parent recursion h_v = GRU(x_v, h_parent),
// which is exactly the per-path computation with shared prefixes removed.
// DeepHawkes captures identity and timing but little topology — the gap to
// CasCN reported in Table III.

#ifndef CASCN_BASELINES_DEEPHAWKES_MODEL_H_
#define CASCN_BASELINES_DEEPHAWKES_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn {

/// Path GRU + time decay + sum pooling + MLP.
class DeepHawkesModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    int user_universe = 2000;
    int embedding_dim = 16;
    int hidden_dim = 12;
    /// Number of decay intervals over the observation window.
    int num_time_intervals = 8;
    int mlp_hidden1 = 32;
    int mlp_hidden2 = 16;
    uint64_t seed = 42;
  };

  explicit DeepHawkesModel(const Config& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "DeepHawkes"; }

 private:
  Config config_;
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::unique_ptr<nn::GruCell> gru_;
  ag::Variable decay_raw_;  // num_time_intervals x 1; softplus-positive
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_DEEPHAWKES_MODEL_H_
