#include "baselines/topolstm_model.h"

#include "common/logging.h"

namespace cascn {

TopoLstmModel::TopoLstmModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  user_embedding_ = std::make_unique<nn::Embedding>(config.user_universe,
                                                    config.embedding_dim, rng);
  cell_ = std::make_unique<nn::LstmCell>(config.embedding_dim,
                                         config.hidden_dim, rng);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.hidden_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("user_embedding", user_embedding_.get());
  RegisterSubmodule("cell", cell_.get());
  RegisterSubmodule("mlp", mlp_.get());
}

ag::Variable TopoLstmModel::PredictLog(const CascadeSample& sample) {
  const Cascade& cascade = sample.observed;
  std::vector<nn::RnnState> states(cascade.size());
  ag::Variable pooled;
  for (int i = 0; i < cascade.size(); ++i) {
    const AdoptionEvent& e = cascade.event(i);
    // Aggregate parent states by mean (DAG aggregation).
    nn::RnnState agg;
    if (e.parents.empty()) {
      agg = cell_->InitialState(1);
    } else {
      const double inv = 1.0 / static_cast<double>(e.parents.size());
      for (int p : e.parents) {
        if (!agg.h.defined()) {
          agg.h = states[p].h;
          agg.c = states[p].c;
        } else {
          agg.h = ag::Add(agg.h, states[p].h);
          agg.c = ag::Add(agg.c, states[p].c);
        }
      }
      if (e.parents.size() > 1) {
        agg.h = ag::ScalarMul(agg.h, inv);
        agg.c = ag::ScalarMul(agg.c, inv);
      }
    }
    const ag::Variable x =
        user_embedding_->Lookup({e.user % config_.user_universe});
    states[i] = cell_->Step(x, agg);
    pooled = pooled.defined() ? ag::Add(pooled, states[i].h) : states[i].h;
  }
  return mlp_->Forward(
      ag::ScalarMul(pooled, 1.0 / static_cast<double>(cascade.size())));
}

}  // namespace cascn
