// DeepCas baseline (Li et al., WWW 2017): the first end-to-end deep
// predictor of cascade growth. A cascade is sampled as K fixed-length
// random walks; each walk is a sequence of user embeddings read by a
// bidirectional GRU; walk representations are combined with learned
// attention and an MLP regresses the log increment size. DeepCas uses
// structure and node identity but no adoption timing — the gap Table III
// attributes to it.

#ifndef CASCN_BASELINES_DEEPCAS_MODEL_H_
#define CASCN_BASELINES_DEEPCAS_MODEL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "graph/random_walk.h"
#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn {

/// Walks -> embeddings -> bi-GRU -> attention -> MLP.
class DeepCasModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    int user_universe = 2000;
    int embedding_dim = 16;
    int hidden_dim = 12;
    int attention_dim = 8;
    WalkOptions walk_options{/*num_walks=*/8, /*walk_length=*/8};
    int mlp_hidden1 = 32;
    int mlp_hidden2 = 16;
    uint64_t seed = 42;
  };

  explicit DeepCasModel(const Config& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "DeepCas"; }
  void ClearCache() override { walk_cache_.clear(); }

 private:
  const std::vector<std::vector<int>>& WalkUsers(const CascadeSample& sample);

  Config config_;
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::unique_ptr<nn::GruCell> gru_fwd_;
  std::unique_ptr<nn::GruCell> gru_bwd_;
  ag::Variable attention_w_;  // 2*hidden x attention_dim
  ag::Variable attention_v_;  // attention_dim x 1
  std::unique_ptr<nn::Mlp> mlp_;
  // walk_cache_[sample][t] = user ids at walk position t (one per walk).
  std::unordered_map<const CascadeSample*, std::vector<std::vector<int>>>
      walk_cache_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_DEEPCAS_MODEL_H_
