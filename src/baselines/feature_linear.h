// Features-linear baseline (Section V-B): hand-crafted structural/temporal
// features fed to a ridge (L2-regularised linear) regression on the log
// label. The L2 coefficient is swept over a candidate grid and chosen on
// the validation split, as in the paper's hyper-parameter protocol.

#ifndef CASCN_BASELINES_FEATURE_LINEAR_H_
#define CASCN_BASELINES_FEATURE_LINEAR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/regressor.h"
#include "features/cascade_features.h"

namespace cascn {

/// Closed-form ridge regression over cascade features.
class FeatureLinearModel : public CascadeRegressor {
 public:
  /// `l2_candidates` defaults to the paper's grid {1, 0.5, 0.1, ..., 1e-8}
  /// when empty.
  explicit FeatureLinearModel(const FeatureOptions& options = {},
                              std::vector<double> l2_candidates = {});

  /// Fits on dataset.train, selecting the L2 coefficient with the lowest
  /// validation MSLE.
  Status Fit(const CascadeDataset& dataset);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override { return {}; }
  std::string name() const override { return "Features-linear"; }

  double selected_l2() const { return selected_l2_; }
  bool fitted() const { return fitted_; }

 private:
  /// Raw prediction for one standardized feature row.
  double PredictRow(const std::vector<double>& features) const;

  FeatureOptions options_;
  std::vector<double> l2_candidates_;
  FeatureScaler scaler_;
  std::vector<double> weights_;  // per feature
  double intercept_ = 0.0;
  double selected_l2_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_FEATURE_LINEAR_H_
