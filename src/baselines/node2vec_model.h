// Node2Vec baseline (Grover & Leskovec 2016): biased random walks over the
// training cascades train skip-gram-with-negative-sampling (SGNS) user
// embeddings; a cascade is then represented by the mean embedding of its
// observed adopters and an MLP regresses the log increment size. As the
// paper observes, bag-of-node-embeddings discards both topology and time,
// so Node2Vec anchors the bottom of Table III.

#ifndef CASCN_BASELINES_NODE2VEC_MODEL_H_
#define CASCN_BASELINES_NODE2VEC_MODEL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "graph/random_walk.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace cascn {

/// Frozen SGNS user embeddings + trainable MLP head.
class Node2VecModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    int user_universe = 2000;
    int embedding_dim = 16;
    Node2VecOptions walk_options;
    /// Skip-gram context radius.
    int window = 3;
    /// Negative samples per positive pair.
    int negatives = 4;
    /// Passes over the walk corpus.
    int sgns_epochs = 2;
    double sgns_learning_rate = 0.05;
    int mlp_hidden1 = 32;
    int mlp_hidden2 = 16;
    uint64_t seed = 42;
  };

  explicit Node2VecModel(const Config& config);

  /// Pretrains the user embeddings on walks over `train_samples`' observed
  /// cascades. Must run before training the head / predicting.
  void PretrainEmbeddings(const std::vector<CascadeSample>& train_samples);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  /// Only the MLP head trains end-to-end; embeddings stay frozen.
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "Node2Vec"; }
  void ClearCache() override { representation_cache_.clear(); }

  const Tensor& embeddings() const { return embeddings_; }

 private:
  Config config_;
  Tensor embeddings_;  // user_universe x dim (frozen after pretraining)
  bool pretrained_ = false;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unordered_map<const CascadeSample*, Tensor> representation_cache_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_NODE2VEC_MODEL_H_
