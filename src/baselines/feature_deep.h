// Features-deep baseline (Section V-B): the same hand-crafted feature
// vectors as Features-linear, fed to an MLP trained with the shared
// Adam/MSLE loop — the paper's "strong baseline" for fair comparison with
// deep models.

#ifndef CASCN_BASELINES_FEATURE_DEEP_H_
#define CASCN_BASELINES_FEATURE_DEEP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "features/cascade_features.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace cascn {

/// MLP over standardized cascade features.
class FeatureDeepModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    FeatureOptions feature_options;
    int hidden1 = 32;
    int hidden2 = 16;
    uint64_t seed = 42;
  };

  explicit FeatureDeepModel(const Config& config);

  /// Fits the feature scaler on the training split. Must run before
  /// training/prediction.
  void PrepareScaler(const std::vector<CascadeSample>& train_samples);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "Features-deep"; }
  void ClearCache() override { feature_cache_.clear(); }

 private:
  Config config_;
  std::unique_ptr<nn::Mlp> mlp_;
  FeatureScaler scaler_;
  bool scaler_ready_ = false;
  std::unordered_map<const CascadeSample*, Tensor> feature_cache_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_FEATURE_DEEP_H_
