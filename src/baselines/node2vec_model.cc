#include "baselines/node2vec_model.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace cascn {

Node2VecModel::Node2VecModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.embedding_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("mlp", mlp_.get());
}

void Node2VecModel::PretrainEmbeddings(
    const std::vector<CascadeSample>& train_samples) {
  Rng rng(config_.seed ^ 0xBADC0DEULL);
  const int v = config_.user_universe;
  const int d = config_.embedding_dim;
  const double init = 0.5 / d;
  Tensor in_table = Tensor::RandomUniform(v, d, -init, init, rng);
  Tensor out_table(v, d);

  // Walk corpus in user-id space.
  std::vector<std::vector<int>> corpus;
  for (const CascadeSample& sample : train_samples) {
    const auto walks =
        SampleNode2VecWalks(sample.observed, config_.walk_options, rng);
    for (const auto& walk : walks) {
      std::vector<int> users;
      users.reserve(walk.size());
      for (int node : walk)
        users.push_back(sample.observed.event(node).user % v);
      corpus.push_back(std::move(users));
    }
  }

  // SGNS: one positive pair + `negatives` uniform negatives per context.
  const double lr = config_.sgns_learning_rate;
  std::vector<double> grad_center(d);
  for (int epoch = 0; epoch < config_.sgns_epochs; ++epoch) {
    for (const auto& walk : corpus) {
      for (size_t c = 0; c < walk.size(); ++c) {
        const int center = walk[c];
        const size_t lo = c >= static_cast<size_t>(config_.window)
                              ? c - config_.window
                              : 0;
        const size_t hi = std::min(walk.size(), c + config_.window + 1);
        for (size_t o = lo; o < hi; ++o) {
          if (o == c) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          for (int neg = -1; neg < config_.negatives; ++neg) {
            const int target =
                neg < 0 ? walk[o]
                        : static_cast<int>(rng.UniformInt(v));
            const double label = neg < 0 ? 1.0 : 0.0;
            double dot = 0;
            for (int j = 0; j < d; ++j)
              dot += in_table.At(center, j) * out_table.At(target, j);
            const double g = (Sigmoid(dot) - label) * lr;
            for (int j = 0; j < d; ++j) {
              grad_center[j] += g * out_table.At(target, j);
              out_table.At(target, j) -= g * in_table.At(center, j);
            }
          }
          for (int j = 0; j < d; ++j)
            in_table.At(center, j) -= grad_center[j];
        }
      }
    }
  }
  embeddings_ = std::move(in_table);
  pretrained_ = true;
  representation_cache_.clear();
}

ag::Variable Node2VecModel::PredictLog(const CascadeSample& sample) {
  CASCN_CHECK(pretrained_)
      << "PretrainEmbeddings must run before prediction";
  auto it = representation_cache_.find(&sample);
  if (it == representation_cache_.end()) {
    Tensor rep(1, config_.embedding_dim);
    const Cascade& cascade = sample.observed;
    for (int i = 0; i < cascade.size(); ++i) {
      const int user = cascade.event(i).user % config_.user_universe;
      for (int j = 0; j < config_.embedding_dim; ++j)
        rep.At(0, j) += embeddings_.At(user, j);
    }
    rep.Scale(1.0 / cascade.size());
    it = representation_cache_.emplace(&sample, std::move(rep)).first;
  }
  return mlp_->Forward(ag::Variable::Leaf(it->second));
}

}  // namespace cascn
