// LIS baseline (Wang et al., AAAI 2015): Latent Influence & Susceptibility.
// Each user carries a low-dimensional influence vector I_u and
// susceptibility vector S_u; diffusion strength along an observed edge
// (u -> v) is I_u . S_v. Adapted for size regression as in the paper's
// Table III: the summed edge interactions of the observed cascade form its
// representation, which a linear head maps to the log increment size.
// LIS sees neither topology beyond pairwise edges nor time, so it trails
// the structural-temporal models — the behaviour Table III reports.

#ifndef CASCN_BASELINES_LIS_MODEL_H_
#define CASCN_BASELINES_LIS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace cascn {

/// Latent influence/susceptibility regression model.
class LisModel : public nn::Module, public CascadeRegressor {
 public:
  struct Config {
    int user_universe = 2000;
    /// Latent dimensionality of influence/susceptibility vectors.
    int latent_dim = 8;
    uint64_t seed = 42;
  };

  explicit LisModel(const Config& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "LIS"; }

 private:
  Config config_;
  std::unique_ptr<nn::Embedding> influence_;
  std::unique_ptr<nn::Embedding> susceptibility_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace cascn

#endif  // CASCN_BASELINES_LIS_MODEL_H_
