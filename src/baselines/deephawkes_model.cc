#include "baselines/deephawkes_model.h"

#include "common/logging.h"
#include "core/encoder.h"

namespace cascn {

DeepHawkesModel::DeepHawkesModel(const Config& config) : config_(config) {
  Rng rng(config.seed);
  user_embedding_ = std::make_unique<nn::Embedding>(config.user_universe,
                                                    config.embedding_dim, rng);
  gru_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                       config.hidden_dim, rng);
  decay_raw_ = RegisterParameter(
      "decay_raw", Tensor(config.num_time_intervals, 1, 0.5413));
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.hidden_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("user_embedding", user_embedding_.get());
  RegisterSubmodule("gru", gru_.get());
  RegisterSubmodule("mlp", mlp_.get());
}

ag::Variable DeepHawkesModel::PredictLog(const CascadeSample& sample) {
  const Cascade& cascade = sample.observed;
  // Per-node hidden states via the parent recursion (see header).
  std::vector<ag::Variable> hidden(cascade.size());
  ag::Variable pooled;
  for (int i = 0; i < cascade.size(); ++i) {
    const AdoptionEvent& e = cascade.event(i);
    nn::RnnState prev;
    prev.h = e.parents.empty() ? gru_->InitialState(1).h
                               : hidden[e.parents[0]];
    const ag::Variable x =
        user_embedding_->Lookup({e.user % config_.user_universe});
    hidden[i] = gru_->Step(x, prev).h;

    // Hawkes time-decay weight for this adoption.
    const int interval = DecayInterval(e.time, sample.observation_window,
                                       config_.num_time_intervals);
    const ag::Variable weighted = ag::ScaleByScalar(
        hidden[i], ag::Softplus(ag::SliceRows(decay_raw_, interval, 1)));
    pooled = pooled.defined() ? ag::Add(pooled, weighted) : weighted;
  }
  return mlp_->Forward(pooled);
}

}  // namespace cascn
