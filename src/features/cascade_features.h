// Hand-crafted cascade features for the Feature-linear and Feature-deep
// baselines (Section V-B): structural features (leaf count, degrees, path
// lengths), temporal features (elapsed times, cumulative and incremental
// growth per time bin), and identity summaries.

#ifndef CASCN_FEATURES_CASCADE_FEATURES_H_
#define CASCN_FEATURES_CASCADE_FEATURES_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace cascn {

/// Configuration of the feature extractor.
struct FeatureOptions {
  /// Number of equal-width time bins for the growth features (the paper
  /// uses 10-minute bins for Weibo and 31-day bins for HEP-PH; bin width is
  /// observation_window / num_time_bins here).
  int num_time_bins = 6;
};

/// Names of the extracted features, in column order.
std::vector<std::string> FeatureNames(const FeatureOptions& options);

/// Extracts one feature row for an observed cascade.
std::vector<double> ExtractFeatures(const CascadeSample& sample,
                                    const FeatureOptions& options);

/// Stacks feature rows for a whole split into a (samples x features)
/// matrix, plus the matching log-label vector (samples x 1).
struct FeatureMatrix {
  Tensor features;
  Tensor labels;
};
FeatureMatrix ExtractFeatureMatrix(const std::vector<CascadeSample>& samples,
                                   const FeatureOptions& options);

/// Per-column standardisation parameters (fit on train, applied to all).
struct FeatureScaler {
  std::vector<double> mean;
  std::vector<double> stddev;
};
FeatureScaler FitScaler(const Tensor& features);
void ApplyScaler(const FeatureScaler& scaler, Tensor& features);

}  // namespace cascn

#endif  // CASCN_FEATURES_CASCADE_FEATURES_H_
