#include "features/cascade_features.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "graph/metrics.h"

namespace cascn {

std::vector<std::string> FeatureNames(const FeatureOptions& options) {
  std::vector<std::string> names = {
      "num_nodes",       "num_edges",       "num_leaves",
      "leaf_fraction",   "mean_out_degree", "max_out_degree",
      "root_degree",     "mean_depth",      "max_depth",
      "first_adoption",  "last_adoption",   "mean_adoption_time",
      "std_adoption_time",
  };
  for (int b = 0; b < options.num_time_bins; ++b)
    names.push_back(StrFormat("cumulative_bin%d", b));
  for (int b = 0; b < options.num_time_bins; ++b)
    names.push_back(StrFormat("incremental_bin%d", b));
  return names;
}

std::vector<double> ExtractFeatures(const CascadeSample& sample,
                                    const FeatureOptions& options) {
  CASCN_CHECK(options.num_time_bins >= 1);
  const Cascade& cascade = sample.observed;
  const CascadeStructure structure = ComputeStructure(cascade);
  const double window = sample.observation_window;

  std::vector<double> adoption_times;
  adoption_times.reserve(cascade.size());
  for (int i = 1; i < cascade.size(); ++i)
    adoption_times.push_back(cascade.event(i).time);

  std::vector<double> row;
  // Structural (raw counts, as in the paper's feature set).
  row.push_back(structure.num_nodes);
  row.push_back(structure.num_edges);
  row.push_back(structure.num_leaves);
  row.push_back(static_cast<double>(structure.num_leaves) /
                structure.num_nodes);
  row.push_back(structure.mean_out_degree);
  row.push_back(structure.max_out_degree);
  row.push_back(structure.root_degree);
  row.push_back(structure.mean_depth);
  row.push_back(structure.max_depth);
  // Temporal: normalised to the observation window.
  row.push_back(adoption_times.empty() ? 1.0
                                       : adoption_times.front() / window);
  row.push_back(adoption_times.empty() ? 0.0
                                       : adoption_times.back() / window);
  row.push_back(Mean(adoption_times) / window);
  row.push_back(StdDev(adoption_times) / window);
  // Growth per bin.
  std::vector<double> incremental(options.num_time_bins, 0.0);
  for (double t : adoption_times) {
    int bin = static_cast<int>(t / window * options.num_time_bins);
    bin = std::clamp(bin, 0, options.num_time_bins - 1);
    incremental[bin] += 1.0;
  }
  double cumulative = 1.0;  // root
  for (int b = 0; b < options.num_time_bins; ++b) {
    cumulative += incremental[b];
    row.push_back(cumulative);
  }
  for (int b = 0; b < options.num_time_bins; ++b)
    row.push_back(incremental[b]);
  return row;
}

FeatureMatrix ExtractFeatureMatrix(const std::vector<CascadeSample>& samples,
                                   const FeatureOptions& options) {
  CASCN_CHECK(!samples.empty());
  const std::vector<double> first = ExtractFeatures(samples[0], options);
  FeatureMatrix out;
  out.features = Tensor(static_cast<int>(samples.size()),
                        static_cast<int>(first.size()));
  out.labels = Tensor(static_cast<int>(samples.size()), 1);
  for (size_t i = 0; i < samples.size(); ++i) {
    const std::vector<double> row =
        i == 0 ? first : ExtractFeatures(samples[i], options);
    CASCN_CHECK(row.size() == first.size());
    for (size_t j = 0; j < row.size(); ++j)
      out.features.At(static_cast<int>(i), static_cast<int>(j)) = row[j];
    out.labels.At(static_cast<int>(i), 0) = samples[i].log_label;
  }
  return out;
}

FeatureScaler FitScaler(const Tensor& features) {
  FeatureScaler scaler;
  scaler.mean.resize(features.cols());
  scaler.stddev.resize(features.cols());
  for (int j = 0; j < features.cols(); ++j) {
    std::vector<double> column(features.rows());
    for (int i = 0; i < features.rows(); ++i) column[i] = features.At(i, j);
    scaler.mean[j] = Mean(column);
    const double sd = StdDev(column);
    scaler.stddev[j] = sd > 1e-12 ? sd : 1.0;
  }
  return scaler;
}

void ApplyScaler(const FeatureScaler& scaler, Tensor& features) {
  CASCN_CHECK(static_cast<int>(scaler.mean.size()) == features.cols());
  for (int i = 0; i < features.rows(); ++i)
    for (int j = 0; j < features.cols(); ++j)
      features.At(i, j) =
          (features.At(i, j) - scaler.mean[j]) / scaler.stddev[j];
}

}  // namespace cascn
