// Deterministic, seeded fault injection for robustness testing.
//
// Subsystems declare named injection points (e.g. "checkpoint.torn_write",
// "trainer.nan_loss", "serve.slow_predict") at the places where production
// failures strike: mid-write crashes, poisoned losses, slow replica loads.
// Tests, chaos jobs, and benchmarks arm points with a trigger — via the
// CASCN_FAULTS environment variable or the Arm()/Configure() API — and the
// hardened layer above gets to prove it survives.
//
//   CASCN_FAULTS="trainer.nan_loss=prob:0.1,checkpoint.load_fail=nth:2"
//   CASCN_FAULTS="serve.slow_predict=every:8@5"   # @5 = 5 ms payload
//   CASCN_FAULTS_SEED=42                          # reseed all points
//
// Determinism: whether an evaluation fires is a pure function of
// (seed, point name, evaluation key) — a splitmix64 hash, not a stateful
// stream — so a run that restarts mid-way (trainer resume) and passes its
// own keys (e.g. the global step) sees the exact same faults as an
// uninterrupted run. When no key is passed, the per-point evaluation
// counter is the key.
//
// Overhead: when nothing is armed, every ShouldFire() is one relaxed atomic
// load and a branch (the CASCN_PROFILE pattern); armed evaluation takes the
// registry mutex, which is fine because faults are a test-and-chaos-only
// mode, never a production hot path.
//
// Triggers:
//   always      fire on every evaluation
//   prob:P      fire with probability P per evaluation (deterministic hash)
//   nth:N       fire on exactly the Nth evaluation (1-based)
//   every:N     fire on every Nth evaluation
// An optional "@V" suffix attaches a double payload the injection point
// interprets (delay milliseconds, truncation bytes, ...).

#ifndef CASCN_FAULT_FAULT_H_
#define CASCN_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cascn::fault {

/// How an armed point decides to fire.
enum class Trigger { kAlways, kProbability, kNth, kEveryN };

/// Configuration of one armed injection point.
struct FaultSpec {
  Trigger trigger = Trigger::kAlways;
  double probability = 1.0;  // kProbability only
  uint64_t n = 1;            // kNth (1-based) and kEveryN period
  double value = 0.0;        // point-specific payload ("@V" suffix)
};

/// Process-global table of armed injection points. All methods thread-safe.
class FaultRegistry {
 public:
  /// The global instance; parses CASCN_FAULTS / CASCN_FAULTS_SEED on first
  /// use (a malformed spec aborts loudly — a chaos run with a typoed fault
  /// list must not silently test nothing).
  static FaultRegistry& Get();

  /// Arms `point` (replacing any existing spec) and enables the registry.
  void Arm(const std::string& point, const FaultSpec& spec);

  /// Disarms one point; the registry stays enabled while any point is armed.
  void Disarm(const std::string& point);

  /// Disarms everything, zeroes all statistics, disables the registry.
  void Clear();

  /// Parses and arms a comma-separated spec list (the CASCN_FAULTS syntax
  /// above). InvalidArgument on malformed entries; earlier entries in the
  /// list stay armed.
  Status Configure(std::string_view config);

  /// Reseeds the firing hash. Distinct seeds give independent fault
  /// schedules; the default is fixed so runs are reproducible out of the
  /// box.
  void set_seed(uint64_t seed) {
    seed_.store(seed, std::memory_order_relaxed);
  }
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  /// False the instant nothing is armed — the zero-overhead gate.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Evaluates `point` using its own evaluation counter as the key.
  bool ShouldFire(std::string_view point);

  /// Evaluates `point` with a caller-supplied key (0-based). Keyed
  /// evaluation is resume-safe: the decision depends only on
  /// (seed, point, key), never on how many evaluations this process saw.
  bool ShouldFire(std::string_view point, uint64_t key);

  /// Payload ("@V") of an armed point, or `fallback` when not armed.
  double ArmedValue(std::string_view point, double fallback) const;

  /// Evaluation / fire counts of one point (zeros when never armed).
  struct PointStats {
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };
  PointStats stats(const std::string& point) const;

  /// Every armed point with its statistics, sorted by name.
  std::vector<std::pair<std::string, PointStats>> StatsSnapshot() const;

  /// Total fires across all points since the last Clear().
  uint64_t total_fires() const;

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };

  FaultRegistry();

  bool Evaluate(Armed& armed, std::string_view point, uint64_t key);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seed_;
  mutable std::mutex mutex_;
  std::map<std::string, Armed, std::less<>> points_;
};

/// Hot-path check: one relaxed load when the registry is disabled.
inline bool ShouldFire(std::string_view point) {
  FaultRegistry& registry = FaultRegistry::Get();
  if (!registry.enabled()) return false;
  return registry.ShouldFire(point);
}

/// Keyed hot-path check (resume-safe; see FaultRegistry::ShouldFire).
inline bool ShouldFire(std::string_view point, uint64_t key) {
  FaultRegistry& registry = FaultRegistry::Get();
  if (!registry.enabled()) return false;
  return registry.ShouldFire(point, key);
}

/// OK unless `point` fires, in which case an IoError naming the point —
/// the standard way to make an I/O layer exhibit a failure.
Status InjectStatus(std::string_view point);

/// Sleeps for the point's "@V" payload in milliseconds (default 10 ms) when
/// it fires; returns whether it fired. Models slow disks and replicas.
bool MaybeDelay(std::string_view point);

/// Returns NaN when `point` fires for `key`, otherwise `v` unchanged.
/// Models numeric poisoning (overflowed loss, corrupted gradient).
double PoisonNaN(std::string_view point, double v, uint64_t key);

}  // namespace cascn::fault

#endif  // CASCN_FAULT_FAULT_H_
