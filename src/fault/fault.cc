#include "fault/fault.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::fault {

namespace {

constexpr uint64_t kDefaultSeed = 0x5EEDFA0175CADE5ULL;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Uniform double in [0, 1) from (seed, point, key) — the stateless firing
/// hash that makes keyed evaluation resume-safe.
double FiringUniform(uint64_t seed, std::string_view point, uint64_t key) {
  const uint64_t mixed =
      SplitMix64(seed ^ Fnv1a(point) ^ SplitMix64(key * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

Result<FaultSpec> ParseSpec(std::string_view text) {
  FaultSpec spec;
  std::string_view body = text;
  const size_t at = body.rfind('@');
  if (at != std::string_view::npos) {
    CASCN_ASSIGN_OR_RETURN(spec.value, ParseDouble(body.substr(at + 1)));
    body = body.substr(0, at);
  }
  const size_t colon = body.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? body : body.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view()
                                      : body.substr(colon + 1);
  if (name == "always") {
    if (!arg.empty())
      return Status::InvalidArgument("trigger 'always' takes no argument");
    spec.trigger = Trigger::kAlways;
  } else if (name == "prob") {
    spec.trigger = Trigger::kProbability;
    CASCN_ASSIGN_OR_RETURN(spec.probability, ParseDouble(arg));
    if (spec.probability < 0.0 || spec.probability > 1.0)
      return Status::InvalidArgument(
          StrFormat("probability %g outside [0, 1]", spec.probability));
  } else if (name == "nth" || name == "every") {
    spec.trigger = name == "nth" ? Trigger::kNth : Trigger::kEveryN;
    CASCN_ASSIGN_OR_RETURN(const int64_t n, ParseInt64(arg));
    if (n < 1)
      return Status::InvalidArgument(
          StrFormat("trigger '%s' needs a count >= 1", std::string(name).c_str()));
    spec.n = static_cast<uint64_t>(n);
  } else {
    return Status::InvalidArgument("unknown fault trigger: " +
                                   std::string(name));
  }
  return spec;
}

}  // namespace

FaultRegistry::FaultRegistry() : seed_(kDefaultSeed) {
  if (const char* seed_env = std::getenv("CASCN_FAULTS_SEED");
      seed_env != nullptr && seed_env[0] != '\0') {
    const auto parsed = ParseInt64(seed_env);
    CASCN_CHECK(parsed.ok()) << "bad CASCN_FAULTS_SEED: " << seed_env;
    seed_.store(static_cast<uint64_t>(parsed.value()),
                std::memory_order_relaxed);
  }
  if (const char* faults = std::getenv("CASCN_FAULTS");
      faults != nullptr && faults[0] != '\0') {
    const Status status = Configure(faults);
    CASCN_CHECK(status.ok()) << "bad CASCN_FAULTS: " << status;
  }
}

FaultRegistry& FaultRegistry::Get() {
  static FaultRegistry* registry = new FaultRegistry();  // leaked, like Tracer
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Armed& armed = points_[point];
  armed.spec = spec;
  armed.evaluations = 0;
  armed.fires = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
  if (points_.empty()) enabled_.store(false, std::memory_order_relaxed);
}

void FaultRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

Status FaultRegistry::Configure(std::string_view config) {
  for (const std::string& raw_entry : Split(config, ',')) {
    const std::string_view entry = Trim(raw_entry);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos)
      return Status::InvalidArgument(
          "fault entry missing '=trigger': " + std::string(entry));
    const std::string point(Trim(entry.substr(0, eq)));
    if (point.empty())
      return Status::InvalidArgument("fault entry with empty point name: " +
                                     std::string(entry));
    CASCN_ASSIGN_OR_RETURN(const FaultSpec spec,
                           ParseSpec(Trim(entry.substr(eq + 1))));
    Arm(point, spec);
  }
  return Status::OK();
}

bool FaultRegistry::Evaluate(Armed& armed, std::string_view point,
                             uint64_t key) {
  ++armed.evaluations;
  bool fire = false;
  switch (armed.spec.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kProbability:
      fire = FiringUniform(seed(), point, key) < armed.spec.probability;
      break;
    case Trigger::kNth:
      fire = key + 1 == armed.spec.n;
      break;
    case Trigger::kEveryN:
      fire = (key + 1) % armed.spec.n == 0;
      break;
  }
  if (fire) ++armed.fires;
  return fire;
}

bool FaultRegistry::ShouldFire(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  return Evaluate(it->second, point, it->second.evaluations);
}

bool FaultRegistry::ShouldFire(std::string_view point, uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  return Evaluate(it->second, point, key);
}

double FaultRegistry::ArmedValue(std::string_view point,
                                 double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return fallback;
  return it->second.spec.value != 0.0 ? it->second.spec.value : fallback;
}

FaultRegistry::PointStats FaultRegistry::stats(
    const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return PointStats{};
  return PointStats{it->second.evaluations, it->second.fires};
}

std::vector<std::pair<std::string, FaultRegistry::PointStats>>
FaultRegistry::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, PointStats>> out;
  out.reserve(points_.size());
  for (const auto& [name, armed] : points_)
    out.emplace_back(name, PointStats{armed.evaluations, armed.fires});
  return out;
}

uint64_t FaultRegistry::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, armed] : points_) total += armed.fires;
  return total;
}

Status InjectStatus(std::string_view point) {
  if (!ShouldFire(point)) return Status::OK();
  return Status::IoError("injected fault at '" + std::string(point) + "'");
}

bool MaybeDelay(std::string_view point) {
  FaultRegistry& registry = FaultRegistry::Get();
  if (!registry.enabled()) return false;
  if (!registry.ShouldFire(point)) return false;
  const double ms = registry.ArmedValue(point, /*fallback=*/10.0);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
  return true;
}

double PoisonNaN(std::string_view point, double v, uint64_t key) {
  if (!ShouldFire(point, key)) return v;
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace cascn::fault
