#include "graph/chebyshev.h"

#include "common/logging.h"

namespace cascn {

std::vector<CsrMatrix> ChebyshevBasis(const CsrMatrix& scaled_laplacian,
                                      int order, int active_n) {
  CASCN_CHECK(order >= 1);
  CASCN_CHECK(scaled_laplacian.rows() == scaled_laplacian.cols());
  CASCN_CHECK(active_n >= 1 && active_n <= scaled_laplacian.rows());
  std::vector<CsrMatrix> basis;
  basis.reserve(order);
  // T_0: identity over active nodes only.
  std::vector<Triplet> eye;
  eye.reserve(active_n);
  for (int i = 0; i < active_n; ++i) eye.push_back({i, i, 1.0});
  basis.push_back(CsrMatrix::FromTriplets(scaled_laplacian.rows(),
                                          scaled_laplacian.cols(),
                                          std::move(eye)));
  if (order >= 2) basis.push_back(scaled_laplacian);
  for (int k = 2; k < order; ++k) {
    // T_k = 2 L~ T_{k-1} - T_{k-2}
    basis.push_back(scaled_laplacian.MatMulSparse(basis[k - 1])
                        .Scaled(2.0)
                        .Add(basis[k - 2], 1.0, -1.0));
  }
  return basis;
}

}  // namespace cascn
