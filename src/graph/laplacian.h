// Cascade Laplacians (Section IV-B).
//
// CasCN convolves over a *directed* Laplacian of each cascade, the
// CasLaplacian (Algorithm 1, Eq. 5-8):
//
//   P_c   = (1 - alpha) E/n + alpha D^{-1} W     (teleport-smoothed walk)
//   phi^T P_c = phi^T, sum(phi) = 1              (stationary distribution)
//   Delta_c = Phi^{1/2} (I - P_c) Phi^{-1/2}     (Diplacian, Li & Zhang)
//
// The teleport term makes P_c irreducible so phi exists and is strictly
// positive even though cascades are DAGs rather than strongly connected
// graphs. Rows of D^{-1} W that are empty (nodes with no outgoing edge)
// would leave P_c sub-stochastic, so dangling rows fall back to the uniform
// distribution — the standard PageRank dangling-node fix.
//
// The undirected normalised Laplacian L = I - D^{-1/2} W_sym D^{-1/2} is
// also provided for the CasCN-Undirected ablation (Table IV).
//
// Both are returned scaled for Chebyshev filtering:
//   L~ = 2 L / lambda_max - I          (Eq. 2/4)
// lambda_max is either estimated per cascade by power iteration or
// approximated by 2 (Table V compares the two).

#ifndef CASCN_GRAPH_LAPLACIAN_H_
#define CASCN_GRAPH_LAPLACIAN_H_

#include "common/result.h"
#include "graph/cascade.h"
#include "tensor/csr_matrix.h"

namespace cascn {

/// Options for CasLaplacian construction.
struct CasLaplacianOptions {
  /// Teleport weight alpha in Eq. 7. The walk follows cascade edges with
  /// probability alpha and jumps uniformly with probability 1 - alpha.
  double alpha = 0.85;
  /// Iteration budget for the stationary-distribution power iteration.
  int stationary_max_iterations = 2000;
  double stationary_tolerance = 1e-10;
};

/// Algorithm 1: the directed CasLaplacian Delta_c of an observed cascade.
/// Computed over the cascade's `n` active nodes (with the root
/// self-connection contributing to W as in Fig. 3), then embedded in a
/// padded_size x padded_size matrix with zeros outside the active block.
/// Returns FailedPrecondition if the stationary iteration fails (should not
/// happen for alpha in (0,1)).
Result<CsrMatrix> CascadeLaplacian(const Cascade& cascade, int padded_size,
                                   const CasLaplacianOptions& options = {});

/// Undirected normalised Laplacian L = I - D^{-1/2} W_sym D^{-1/2} over the
/// symmetrised cascade adjacency, embedded in a padded matrix as above.
/// Isolated nodes contribute identity rows.
CsrMatrix UndirectedNormalizedLaplacian(const Cascade& cascade,
                                        int padded_size);

/// Chebyshev rescaling: 2 L / lambda_max - I restricted to the top-left
/// `active_n` block (the padded region stays zero so padding nodes carry no
/// signal). Pre: lambda_max > 0.
CsrMatrix ScaleLaplacian(const CsrMatrix& laplacian, double lambda_max,
                         int active_n);

/// Largest eigenvalue of the active block of `laplacian` via power
/// iteration; falls back to 2.0 when the estimate degenerates (e.g.,
/// single-node cascades).
double EstimateLambdaMax(const CsrMatrix& laplacian, int active_n);

}  // namespace cascn

#endif  // CASCN_GRAPH_LAPLACIAN_H_
