#include "graph/cascade.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn {

Result<Cascade> Cascade::Create(std::string id,
                                std::vector<AdoptionEvent> events) {
  if (events.empty())
    return Status::InvalidArgument("cascade must have at least the root");
  if (events[0].time != 0.0)
    return Status::InvalidArgument("root event must be at time 0");
  if (!events[0].parents.empty())
    return Status::InvalidArgument("root event must have no parents");
  for (size_t i = 0; i < events.size(); ++i) {
    const AdoptionEvent& e = events[i];
    if (e.node != static_cast<int>(i))
      return Status::InvalidArgument(
          StrFormat("event %zu has node id %d, expected %zu", i, e.node, i));
    if (i > 0) {
      if (e.time < events[i - 1].time)
        return Status::InvalidArgument("event times must be non-decreasing");
      if (e.parents.empty())
        return Status::InvalidArgument(
            StrFormat("non-root event %zu has no parent", i));
      for (int p : e.parents) {
        if (p < 0 || p >= static_cast<int>(i))
          return Status::InvalidArgument(
              StrFormat("event %zu has invalid parent %d", i, p));
      }
    }
  }
  Cascade c;
  c.id_ = std::move(id);
  c.events_ = std::move(events);
  return c;
}

int Cascade::num_edges() const {
  int n = 0;
  for (const auto& e : events_) n += static_cast<int>(e.parents.size());
  return n;
}

int Cascade::SizeAtTime(double time) const {
  // Events are time-sorted: binary search for the first event after `time`.
  const auto it = std::upper_bound(
      events_.begin(), events_.end(), time,
      [](double t, const AdoptionEvent& e) { return t < e.time; });
  return static_cast<int>(it - events_.begin());
}

Cascade Cascade::Prefix(double max_time) const {
  const int n = std::max(1, SizeAtTime(max_time));
  return PrefixBySize(n);
}

Cascade Cascade::PrefixBySize(int count) const {
  const int n = std::clamp(count, 1, size());
  Cascade out;
  out.id_ = id_;
  out.events_.assign(events_.begin(), events_.begin() + n);
  return out;
}

CsrMatrix Cascade::AdjacencyMatrix(int n, int padded_size,
                                   bool root_self_loop) const {
  const int limit = std::min(n, size());
  CASCN_CHECK(padded_size >= limit);
  std::vector<Triplet> trips;
  if (root_self_loop) trips.push_back({0, 0, 1.0});
  for (int i = 1; i < limit; ++i) {
    for (int p : events_[i].parents) {
      if (p < limit) trips.push_back({p, i, 1.0});
    }
  }
  return CsrMatrix::FromTriplets(padded_size, padded_size, std::move(trips));
}

}  // namespace cascn
