// Chebyshev polynomial basis of a scaled Laplacian:
//   T_0 = I, T_1 = L~, T_k = 2 L~ T_{k-1} - T_{k-2}   (Eq. 2)
// Precomputed once per cascade and shared by every gate convolution of the
// recurrent model.

#ifndef CASCN_GRAPH_CHEBYSHEV_H_
#define CASCN_GRAPH_CHEBYSHEV_H_

#include <vector>

#include "tensor/csr_matrix.h"

namespace cascn {

/// Returns {T_0, ..., T_{order-1}} of `scaled_laplacian`. The identity term
/// T_0 is restricted to the top-left `active_n` block so padded nodes stay
/// silent. Pre: order >= 1, square input.
std::vector<CsrMatrix> ChebyshevBasis(const CsrMatrix& scaled_laplacian,
                                      int order, int active_n);

}  // namespace cascn

#endif  // CASCN_GRAPH_CHEBYSHEV_H_
