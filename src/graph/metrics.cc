#include "graph/metrics.h"

#include <algorithm>

namespace cascn {

std::vector<int> NodeDepths(const Cascade& cascade) {
  std::vector<int> depth(cascade.size(), 0);
  for (int i = 1; i < cascade.size(); ++i)
    depth[i] = depth[cascade.event(i).parents[0]] + 1;
  return depth;
}

std::vector<int> OutDegrees(const Cascade& cascade) {
  std::vector<int> out(cascade.size(), 0);
  for (int i = 1; i < cascade.size(); ++i)
    for (int p : cascade.event(i).parents) ++out[p];
  return out;
}

CascadeStructure ComputeStructure(const Cascade& cascade) {
  CascadeStructure s;
  s.num_nodes = cascade.size();
  s.num_edges = cascade.num_edges();

  const std::vector<int> out_deg = OutDegrees(cascade);
  const std::vector<int> depths = NodeDepths(cascade);

  double depth_sum = 0;
  for (int i = 0; i < cascade.size(); ++i) {
    if (out_deg[i] == 0) ++s.num_leaves;
    s.max_out_degree = std::max(s.max_out_degree, out_deg[i]);
    s.max_depth = std::max(s.max_depth, depths[i]);
    depth_sum += depths[i];
  }
  s.root_degree = out_deg[0];
  const double n = cascade.size();
  s.mean_out_degree = s.num_edges / n;
  s.mean_in_degree = s.num_edges / n;
  s.mean_depth = depth_sum / n;
  return s;
}

}  // namespace cascn
