#include "graph/laplacian.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "tensor/linalg.h"

namespace cascn {

namespace {

/// Extracts the n x n active-block dense adjacency (with root self-loop)
/// from an observed cascade.
Tensor ActiveAdjacency(const Cascade& cascade, int n) {
  Tensor w(n, n);
  w.At(0, 0) = 1.0;  // root self-connection (Fig. 3)
  for (int i = 1; i < n; ++i) {
    for (int p : cascade.event(i).parents) {
      if (p < n) w.At(p, i) = 1.0;
    }
  }
  return w;
}

/// Embeds an n x n dense block into a padded sparse matrix.
CsrMatrix EmbedPadded(const Tensor& block, int padded_size) {
  std::vector<Triplet> trips;
  for (int i = 0; i < block.rows(); ++i)
    for (int j = 0; j < block.cols(); ++j)
      if (block.At(i, j) != 0.0) trips.push_back({i, j, block.At(i, j)});
  return CsrMatrix::FromTriplets(padded_size, padded_size, std::move(trips));
}

}  // namespace

Result<CsrMatrix> CascadeLaplacian(const Cascade& cascade, int padded_size,
                                   const CasLaplacianOptions& options) {
  if (options.alpha <= 0.0 || options.alpha >= 1.0)
    return Status::InvalidArgument("CasLaplacian alpha must be in (0, 1)");
  const int n = std::min(cascade.size(), padded_size);
  CASCN_CHECK(padded_size >= n && n >= 1);

  // Step 1: degree and weighted adjacency of the active block.
  const Tensor w = ActiveAdjacency(cascade, n);
  std::vector<double> out_degree(n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) out_degree[i] += w.At(i, j);

  // Step 2: transition matrix P_c = (1-a) E/n + a D^{-1} W (Eq. 7), with
  // dangling rows replaced by the uniform distribution so P_c stays
  // row-stochastic.
  const double teleport = (1.0 - options.alpha) / n;
  Tensor pc(n, n, teleport);
  for (int i = 0; i < n; ++i) {
    if (out_degree[i] > 0) {
      for (int j = 0; j < n; ++j)
        pc.At(i, j) += options.alpha * w.At(i, j) / out_degree[i];
    } else {
      for (int j = 0; j < n; ++j) pc.At(i, j) += options.alpha / n;
    }
  }

  // Step 3: stationary distribution phi^T P_c = phi^T.
  const CsrMatrix pc_sparse = CsrMatrix::FromDense(pc);
  CASCN_ASSIGN_OR_RETURN(
      std::vector<double> phi,
      StationaryDistribution(pc_sparse, options.stationary_max_iterations,
                             options.stationary_tolerance));

  // Steps 4-5: Delta_c = Phi^{1/2} (I - P_c) Phi^{-1/2} (Eq. 8).
  Tensor delta(n, n);
  for (int i = 0; i < n; ++i) {
    CASCN_CHECK(phi[i] > 0) << "stationary distribution must be positive";
    const double sqrt_phi_i = std::sqrt(phi[i]);
    for (int j = 0; j < n; ++j) {
      const double identity = i == j ? 1.0 : 0.0;
      delta.At(i, j) =
          sqrt_phi_i * (identity - pc.At(i, j)) / std::sqrt(phi[j]);
    }
  }
  return EmbedPadded(delta, padded_size);
}

CsrMatrix UndirectedNormalizedLaplacian(const Cascade& cascade,
                                        int padded_size) {
  const int n = std::min(cascade.size(), padded_size);
  Tensor w = ActiveAdjacency(cascade, n);
  // The root self-connection is a snapshot-representation artefact; the
  // standard normalised Laplacian is defined over a loop-free W.
  w.At(0, 0) = 0.0;
  // Symmetrise.
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double v = std::max(w.At(i, j), w.At(j, i));
      w.At(i, j) = v;
      w.At(j, i) = v;
    }
  std::vector<double> degree(n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) degree[i] += w.At(i, j);

  Tensor lap(n, n);
  for (int i = 0; i < n; ++i) {
    lap.At(i, i) = 1.0;
    if (degree[i] <= 0) continue;  // isolated: identity row
    for (int j = 0; j < n; ++j) {
      if (w.At(i, j) == 0.0 || degree[j] <= 0) continue;
      lap.At(i, j) -= w.At(i, j) / std::sqrt(degree[i] * degree[j]);
    }
  }
  return EmbedPadded(lap, padded_size);
}

CsrMatrix ScaleLaplacian(const CsrMatrix& laplacian, double lambda_max,
                         int active_n) {
  CASCN_CHECK(lambda_max > 0) << "lambda_max must be positive";
  CASCN_CHECK(active_n >= 1 && active_n <= laplacian.rows());
  // 2 L / lambda_max - I on the active block only; the padded region stays
  // identically zero so padding nodes never mix into the signal.
  std::vector<Triplet> trips;
  const auto& offsets = laplacian.row_offsets();
  const auto& cols = laplacian.col_indices();
  const auto& vals = laplacian.values();
  const double scale = 2.0 / lambda_max;
  for (int r = 0; r < laplacian.rows(); ++r)
    for (int k = offsets[r]; k < offsets[r + 1]; ++k)
      trips.push_back({r, cols[k], scale * vals[k]});
  for (int i = 0; i < active_n; ++i) trips.push_back({i, i, -1.0});
  return CsrMatrix::FromTriplets(laplacian.rows(), laplacian.cols(),
                                 std::move(trips));
}

double EstimateLambdaMax(const CsrMatrix& laplacian, int active_n) {
  if (active_n <= 1) return 2.0;
  const double lambda = PowerIterationLargestEigenvalue(laplacian);
  if (!std::isfinite(lambda) || lambda < 1e-6) return 2.0;
  return lambda;
}

}  // namespace cascn
