// Random-walk samplers over cascade graphs.
//
// DeepCas (Li et al. 2017) represents a cascade as a bag of truncated random
// walks; Node2Vec (Grover & Leskovec 2016) biases walks with return (p) and
// in-out (q) parameters. Both are baselines in Table III, and CasCN-Path
// (Table IV) feeds walks instead of snapshot sequences into CasCN.

#ifndef CASCN_GRAPH_RANDOM_WALK_H_
#define CASCN_GRAPH_RANDOM_WALK_H_

#include <vector>

#include "common/rng.h"
#include "graph/cascade.h"

namespace cascn {

/// Options for DeepCas-style walk sampling.
struct WalkOptions {
  int num_walks = 10;    // K sequences per cascade
  int walk_length = 10;  // L nodes per sequence
};

/// Samples `num_walks` forward walks of up to `walk_length` nodes. Walk
/// starts are drawn proportionally to out-degree + 1; steps follow outgoing
/// edges uniformly, restarting at a fresh start node when a leaf is reached
/// (DeepCas Section 4.1 behaviour). Each walk is a list of node indices.
std::vector<std::vector<int>> SampleCascadeWalks(const Cascade& cascade,
                                                 const WalkOptions& options,
                                                 Rng& rng);

/// Options for Node2Vec biased walks on the undirected view of a cascade.
struct Node2VecOptions {
  int num_walks_per_node = 4;
  int walk_length = 8;
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
};

/// Second-order biased walks over the symmetrised cascade graph, starting
/// from every node.
std::vector<std::vector<int>> SampleNode2VecWalks(
    const Cascade& cascade, const Node2VecOptions& options, Rng& rng);

}  // namespace cascn

#endif  // CASCN_GRAPH_RANDOM_WALK_H_
