// Cascade: the timestamped diffusion DAG of one message (a post and its
// re-tweets, or a paper and its citations). Matches Definition 1 of the
// paper: an evolving sequence of directed acyclic graphs where node 0 is
// the original poster and every later node attaches to one or more earlier
// nodes at its adoption time.

#ifndef CASCN_GRAPH_CASCADE_H_
#define CASCN_GRAPH_CASCADE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/csr_matrix.h"

namespace cascn {

/// One adoption (re-tweet/citation) event.
struct AdoptionEvent {
  /// Node index inside the cascade; event i creates node i.
  int node = 0;
  /// Global user id (author of the re-tweet / citing paper).
  int user = 0;
  /// Earlier node indices this node attaches to. Empty only for the root.
  /// The first entry is the primary parent (the re-tweeted user); citation
  /// cascades may carry extra parents.
  std::vector<int> parents;
  /// Adoption time, in the dataset's native unit, relative to the root post
  /// (root has time 0).
  double time = 0.0;
};

/// An immutable cascade: validated, time-sorted adoption events.
class Cascade {
 public:
  Cascade() = default;

  /// Validates and builds a cascade. Requirements: non-empty; event i has
  /// node == i; times non-decreasing with events[0].time == 0; the root has
  /// no parents and every other event has >= 1 parent, all with smaller
  /// node index.
  static Result<Cascade> Create(std::string id,
                                std::vector<AdoptionEvent> events);

  const std::string& id() const { return id_; }
  int size() const { return static_cast<int>(events_.size()); }
  const std::vector<AdoptionEvent>& events() const { return events_; }
  const AdoptionEvent& event(int i) const { return events_[i]; }

  /// Number of edges (sum of parent-list sizes).
  int num_edges() const;

  /// Time of the last adoption.
  double last_time() const { return events_.back().time; }

  /// Number of nodes adopted at or before `time`.
  int SizeAtTime(double time) const;

  /// The sub-cascade containing events with time <= max_time (at least the
  /// root). The id is preserved.
  Cascade Prefix(double max_time) const;

  /// The sub-cascade of the first `count` events (clamped to size).
  Cascade PrefixBySize(int count) const;

  /// Directed adjacency matrix A with A[parent][child] = 1 for the first
  /// `n` nodes, padded with zero rows/cols up to `padded_size`.
  /// When `root_self_loop`, A[0][0] = 1 (the paper adds a self-connection
  /// for the initiator, Fig. 3). Pre: padded_size >= min(n, size()).
  CsrMatrix AdjacencyMatrix(int n, int padded_size,
                            bool root_self_loop = false) const;

 private:
  std::string id_;
  std::vector<AdoptionEvent> events_;
};

}  // namespace cascn

#endif  // CASCN_GRAPH_CASCADE_H_
