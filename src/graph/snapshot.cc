#include "graph/snapshot.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cascn {

std::vector<CascadeSnapshot> BuildSnapshotSequence(
    const Cascade& cascade, const SnapshotOptions& opts) {
  CASCN_CHECK(opts.padded_size >= 1 && opts.max_sequence_length >= 1);
  const int usable = std::min(cascade.size(), opts.padded_size);

  // Choose which prefix lengths become snapshots: every event when the
  // cascade is short, an even subsample (always ending at the full observed
  // prefix) otherwise.
  std::vector<int> prefix_lengths;
  if (usable <= opts.max_sequence_length) {
    for (int n = 1; n <= usable; ++n) prefix_lengths.push_back(n);
  } else {
    const int steps = opts.max_sequence_length;
    if (steps == 1) {
      prefix_lengths.push_back(usable);  // keep the full observed prefix
    } else {
      for (int s = 0; s < steps; ++s) {
        // Evenly spaced in [1, usable], inclusive of both ends.
        const int n =
            1 + static_cast<int>(std::llround(static_cast<double>(s) *
                                              (usable - 1) / (steps - 1)));
        prefix_lengths.push_back(n);
      }
    }
    prefix_lengths.erase(
        std::unique(prefix_lengths.begin(), prefix_lengths.end()),
        prefix_lengths.end());
  }

  std::vector<CascadeSnapshot> out;
  out.reserve(prefix_lengths.size());
  for (size_t s = 0; s < prefix_lengths.size(); ++s) {
    const int n = prefix_lengths[s];
    CascadeSnapshot snap;
    snap.num_nodes = n;
    snap.time = cascade.event(n - 1).time;
    // Only the first snapshot (the lone initiator) carries the root
    // self-connection, mirroring Fig. 3.
    snap.adjacency = cascade.AdjacencyMatrix(n, opts.padded_size,
                                             /*root_self_loop=*/s == 0);
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace cascn
