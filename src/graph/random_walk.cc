#include "graph/random_walk.h"

#include <algorithm>

#include "common/logging.h"

namespace cascn {

namespace {

/// children[i] = outgoing neighbours of node i (all parent links reversed).
std::vector<std::vector<int>> BuildChildren(const Cascade& cascade) {
  std::vector<std::vector<int>> children(cascade.size());
  for (int i = 1; i < cascade.size(); ++i)
    for (int p : cascade.event(i).parents) children[p].push_back(i);
  return children;
}

}  // namespace

std::vector<std::vector<int>> SampleCascadeWalks(const Cascade& cascade,
                                                 const WalkOptions& options,
                                                 Rng& rng) {
  CASCN_CHECK(options.num_walks >= 1 && options.walk_length >= 1);
  const auto children = BuildChildren(cascade);
  std::vector<double> start_weights(cascade.size());
  for (int i = 0; i < cascade.size(); ++i)
    start_weights[i] = static_cast<double>(children[i].size()) + 1.0;

  std::vector<std::vector<int>> walks;
  walks.reserve(options.num_walks);
  for (int w = 0; w < options.num_walks; ++w) {
    std::vector<int> walk;
    walk.reserve(options.walk_length);
    int current = static_cast<int>(rng.Categorical(start_weights));
    walk.push_back(current);
    while (static_cast<int>(walk.size()) < options.walk_length) {
      const auto& outs = children[current];
      if (outs.empty()) {
        // Leaf: restart from a fresh start node (walk continues, matching
        // DeepCas's fixed-length sequences padded by restarts).
        current = static_cast<int>(rng.Categorical(start_weights));
      } else {
        current = outs[rng.UniformInt(outs.size())];
      }
      walk.push_back(current);
    }
    walks.push_back(std::move(walk));
  }
  return walks;
}

std::vector<std::vector<int>> SampleNode2VecWalks(
    const Cascade& cascade, const Node2VecOptions& options, Rng& rng) {
  CASCN_CHECK(options.num_walks_per_node >= 1 && options.walk_length >= 1);
  CASCN_CHECK(options.p > 0 && options.q > 0);
  // Undirected neighbour lists.
  std::vector<std::vector<int>> nbrs(cascade.size());
  for (int i = 1; i < cascade.size(); ++i) {
    for (int p : cascade.event(i).parents) {
      nbrs[p].push_back(i);
      nbrs[i].push_back(p);
    }
  }
  std::vector<std::vector<int>> walks;
  walks.reserve(static_cast<size_t>(cascade.size()) *
                options.num_walks_per_node);
  std::vector<double> weights;
  for (int start = 0; start < cascade.size(); ++start) {
    for (int w = 0; w < options.num_walks_per_node; ++w) {
      std::vector<int> walk{start};
      int prev = -1;
      int current = start;
      while (static_cast<int>(walk.size()) < options.walk_length) {
        const auto& outs = nbrs[current];
        if (outs.empty()) break;
        int next;
        if (prev < 0) {
          next = outs[rng.UniformInt(outs.size())];
        } else {
          // Second-order bias: 1/p to return, 1 for common neighbours of
          // prev, 1/q otherwise. Cascades are trees or near-trees, so the
          // "distance 1" case is checked by membership in prev's list.
          weights.assign(outs.size(), 0.0);
          const auto& prev_nbrs = nbrs[prev];
          for (size_t k = 0; k < outs.size(); ++k) {
            if (outs[k] == prev) {
              weights[k] = 1.0 / options.p;
            } else if (std::find(prev_nbrs.begin(), prev_nbrs.end(),
                                 outs[k]) != prev_nbrs.end()) {
              weights[k] = 1.0;
            } else {
              weights[k] = 1.0 / options.q;
            }
          }
          next = outs[rng.Categorical(weights)];
        }
        walk.push_back(next);
        prev = current;
        current = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace cascn
