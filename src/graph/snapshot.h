// Sub-cascade snapshot sampling (Section IV-A, Fig. 3): a cascade observed
// for time T becomes a sequence of adjacency matrices, one per retained
// adoption event, each capturing the cascade topology at that diffusion
// time. The first snapshot contains only the root with a self-connection.

#ifndef CASCN_GRAPH_SNAPSHOT_H_
#define CASCN_GRAPH_SNAPSHOT_H_

#include <vector>

#include "graph/cascade.h"
#include "tensor/csr_matrix.h"

namespace cascn {

/// One sub-cascade snapshot g_i^{t_j}.
struct CascadeSnapshot {
  /// Number of nodes adopted by this snapshot (the prefix length).
  int num_nodes = 0;
  /// Adoption time of the newest node in the snapshot.
  double time = 0.0;
  /// Padded adjacency matrix a_i^{t_j} (padded_size x padded_size); the
  /// root's self-connection is included in the first snapshot only, as in
  /// Fig. 3 of the paper.
  CsrMatrix adjacency;
};

/// Options controlling snapshot extraction.
struct SnapshotOptions {
  /// Matrices are padded to this size; nodes beyond it are dropped (the
  /// model's filter shapes are tied to this size).
  int padded_size = 50;
  /// Upper bound on sequence length. A cascade with more events is
  /// subsampled evenly (keeping the first and last snapshot) so the
  /// recurrence depth stays bounded.
  int max_sequence_length = 20;
};

/// Builds the snapshot sequence G_i^T for an observed cascade. The cascade
/// should already be truncated to the observation window (Cascade::Prefix).
std::vector<CascadeSnapshot> BuildSnapshotSequence(const Cascade& cascade,
                                                   const SnapshotOptions& opts);

}  // namespace cascn

#endif  // CASCN_GRAPH_SNAPSHOT_H_
