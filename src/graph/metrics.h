// Structural measurements of a cascade graph: the quantities the paper's
// feature-based baselines consume (Section V-B) and Fig. 9 colors by.

#ifndef CASCN_GRAPH_METRICS_H_
#define CASCN_GRAPH_METRICS_H_

#include <vector>

#include "graph/cascade.h"

namespace cascn {

/// Summary structural statistics of one (observed) cascade.
struct CascadeStructure {
  int num_nodes = 0;
  int num_edges = 0;
  /// Nodes with no children.
  int num_leaves = 0;
  /// Mean out-degree / in-degree over nodes (in-degree of the root is 0).
  double mean_out_degree = 0.0;
  double mean_in_degree = 0.0;
  int max_out_degree = 0;
  /// Root-to-node hop distances (via primary parents).
  double mean_depth = 0.0;
  int max_depth = 0;
  /// Children of the root.
  int root_degree = 0;
};

/// Computes structural statistics for `cascade`.
CascadeStructure ComputeStructure(const Cascade& cascade);

/// Hop distance from the root for every node (primary-parent path).
std::vector<int> NodeDepths(const Cascade& cascade);

/// Out-degree (children count across all parent links) for every node.
std::vector<int> OutDegrees(const Cascade& cascade);

}  // namespace cascn

#endif  // CASCN_GRAPH_METRICS_H_
