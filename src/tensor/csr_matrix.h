// CsrMatrix: compressed-sparse-row matrix of doubles.
//
// Cascade graph operators (adjacency, Laplacians, Chebyshev polynomials of
// the Laplacian) are sparse: a cascade with n nodes has O(n) edges. Graph
// convolutions multiply these operators with dense node-feature matrices, so
// the central kernel here is SpMM (sparse x dense -> dense).

#ifndef CASCN_TENSOR_CSR_MATRIX_H_
#define CASCN_TENSOR_CSR_MATRIX_H_

#include <vector>

#include "obs/profiler.h"
#include "tensor/tensor.h"

namespace cascn {

/// One entry of a sparse matrix in coordinate form.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Immutable sparse matrix in CSR layout.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from coordinate triplets; duplicate (row, col) entries are
  /// summed. Pre: all coordinates within [0, rows) x [0, cols).
  static CsrMatrix FromTriplets(int rows, int cols,
                                std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping exact zeros.
  static CsrMatrix FromDense(const Tensor& dense);

  /// n x n identity.
  static CsrMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(values_.size()); }

  const obs::TrackedVector<int>& row_offsets() const { return row_offsets_; }
  const obs::TrackedVector<int>& col_indices() const { return col_indices_; }
  const obs::TrackedVector<double>& values() const { return values_; }

  /// Dense copy.
  Tensor ToDense() const;

  /// this * dense. Pre: cols() == dense.rows().
  Tensor MatMulDense(const Tensor& dense) const;

  /// this^T * dense without materialising the transpose.
  /// Pre: rows() == dense.rows().
  Tensor TransposeMatMulDense(const Tensor& dense) const;

  /// Sparse transpose.
  CsrMatrix Transposed() const;

  /// alpha * this + beta * other (sparse result). Pre: same shape.
  CsrMatrix Add(const CsrMatrix& other, double alpha = 1.0,
                double beta = 1.0) const;

  /// this * other (sparse result). Pre: cols() == other.rows().
  CsrMatrix MatMulSparse(const CsrMatrix& other) const;

  /// Scales all stored values by alpha.
  CsrMatrix Scaled(double alpha) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  // Tracked so the profiler can account live/peak operator bytes.
  obs::TrackedVector<int> row_offsets_;  // size rows_ + 1
  obs::TrackedVector<int> col_indices_;  // size nnz
  obs::TrackedVector<double> values_;    // size nnz
};

}  // namespace cascn

#endif  // CASCN_TENSOR_CSR_MATRIX_H_
