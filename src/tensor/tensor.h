// Tensor: a dense row-major matrix of doubles. The value type underlying the
// cascn autodiff engine (variable.h) and all model parameters.
//
// Tensors are 2-D throughout CasCN; vectors are represented as 1xN or Nx1
// matrices. Operations that can fail on caller-supplied shapes return
// Status/Result; shape mismatches inside the engine are programming errors
// and CHECK-fail.

#ifndef CASCN_TENSOR_TENSOR_H_
#define CASCN_TENSOR_TENSOR_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/profiler.h"

namespace cascn {

/// Dense row-major matrix of doubles.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() = default;

  /// Zero-initialised rows x cols tensor. Pre: rows, cols >= 0.
  Tensor(int rows, int cols);

  /// Tensor filled with `value`.
  Tensor(int rows, int cols, double value);

  /// Builds from nested initializer-style data; all rows must have equal
  /// length.
  static Tensor FromRows(const std::vector<std::vector<double>>& rows);

  /// rows x cols with independent samples from N(0, stddev^2).
  static Tensor RandomNormal(int rows, int cols, double stddev, Rng& rng);

  /// rows x cols with independent samples from U[lo, hi).
  static Tensor RandomUniform(int rows, int cols, double lo, double hi,
                              Rng& rng);

  /// Identity matrix of size n.
  static Tensor Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator()(int r, int c) { return At(r, c); }
  double operator()(int r, int c) const { return At(r, c); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(double value);
  /// Sets every element to zero.
  void Zero() { Fill(0.0); }

  /// this += other. Pre: same shape.
  void AddInPlace(const Tensor& other);
  /// this += alpha * other. Pre: same shape.
  void Axpy(double alpha, const Tensor& other);
  /// this *= alpha.
  void Scale(double alpha);

  /// Element-wise transform (out-of-place).
  Tensor Map(const std::function<double(double)>& f) const;

  Tensor Transposed() const;

  /// Sum over all elements.
  double Sum() const;
  /// Mean over all elements; 0 if empty.
  double MeanValue() const;
  /// Largest absolute element; 0 if empty.
  double AbsMax() const;
  /// Frobenius norm.
  double Norm() const;

  /// 1 x cols vector of column sums.
  Tensor ColSums() const;
  /// rows x 1 vector of row sums.
  Tensor RowSums() const;

  /// Copy of row r as a 1 x cols tensor.
  Tensor Row(int r) const;
  /// Writes `row` (1 x cols) into row r.
  void SetRow(int r, const Tensor& row);

  /// Human-readable rendering for debugging/tests.
  std::string ToString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  // Tracked so the profiler can account live/peak tensor bytes.
  obs::TrackedVector<double> data_;
};

/// C = A * B. Pre: A.cols == B.rows.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C += A * B (accumulating). Pre: shapes compatible, c is A.rows x B.cols.
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B without materialising A^T. Pre: A.rows == B.rows.
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// C = A * B^T without materialising B^T. Pre: A.cols == B.cols.
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// Element-wise binary ops. Pre: same shape.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// True when all elements differ by at most `tol`.
bool AllClose(const Tensor& a, const Tensor& b, double tol = 1e-9);

}  // namespace cascn

#endif  // CASCN_TENSOR_TENSOR_H_
