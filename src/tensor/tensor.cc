#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/logging.h"
#include "parallel/parallel_for.h"

namespace cascn {

namespace {

// Multiply-add count below which a matmul is not worth farming out to the
// pool. 2^19 keeps every per-snapshot kernel in the tiny CasCN configs —
// and the bench-guard calibration benchmark (BM_DenseMatMul/64, 64^3 =
// 2^18 work) — on the fast serial path.
constexpr uint64_t kParallelDenseCutoff = uint64_t{1} << 19;

bool UseParallelKernel(uint64_t work) {
  return work >= kParallelDenseCutoff && parallel::ConfiguredThreads() > 1;
}

// Rows per chunk so each worker claims a handful of chunks (load balance)
// without degenerating into per-row claims.
size_t RowGrain(int rows) {
  const size_t chunks = parallel::ConfiguredThreads() * 4;
  return std::max<size_t>(1, static_cast<size_t>(rows) / chunks);
}

}  // namespace

Tensor::Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
  CASCN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(static_cast<size_t>(rows) * cols, 0.0);
}

Tensor::Tensor(int rows, int cols, double value) : Tensor(rows, cols) {
  Fill(value);
}

Tensor Tensor::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Tensor();
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows[0].size());
  Tensor t(r, c);
  for (int i = 0; i < r; ++i) {
    CASCN_CHECK(static_cast<int>(rows[i].size()) == c)
        << "ragged rows in Tensor::FromRows";
    for (int j = 0; j < c; ++j) t.At(i, j) = rows[i][j];
  }
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, double stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (double& x : t.data_) x = rng.Normal(0.0, stddev);
  return t;
}

Tensor Tensor::RandomUniform(int rows, int cols, double lo, double hi,
                             Rng& rng) {
  Tensor t(rows, cols);
  for (double& x : t.data_) x = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.At(i, i) = 1.0;
  return t;
}

void Tensor::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  CASCN_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(double alpha, const Tensor& other) {
  CASCN_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

Tensor Tensor::Map(const std::function<double(double)>& f) const {
  Tensor out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  return out;
}

double Tensor::Sum() const {
  double s = 0;
  for (double x : data_) s += x;
  return s;
}

double Tensor::MeanValue() const {
  return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

double Tensor::AbsMax() const {
  double m = 0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Tensor::Norm() const {
  double s = 0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Tensor Tensor::ColSums() const {
  Tensor out(1, cols_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out.At(0, j) += At(i, j);
  return out;
}

Tensor Tensor::RowSums() const {
  Tensor out(rows_, 1);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out.At(i, 0) += At(i, j);
  return out;
}

Tensor Tensor::Row(int r) const {
  CASCN_CHECK(r >= 0 && r < rows_);
  Tensor out(1, cols_);
  for (int j = 0; j < cols_; ++j) out.At(0, j) = At(r, j);
  return out;
}

void Tensor::SetRow(int r, const Tensor& row) {
  CASCN_CHECK(r >= 0 && r < rows_ && row.rows() == 1 && row.cols() == cols_);
  for (int j = 0; j < cols_; ++j) At(r, j) = row.At(0, j);
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")[";
  for (int i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : ", [");
    for (int j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << At(i, j);
    }
    os << "]";
  }
  os << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  MatMulAccum(a, b, c);
  return c;
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor& c) {
  CASCN_CHECK(a.cols() == b.rows());
  CASCN_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  const double* ad = a.data();
  const double* bd = b.data();
  double* cd = c.data();
  // i-k-j ordering: streams through B and C rows, autovectorises well.
  // Output rows are independent, so large shapes are row-partitioned over
  // the shared pool; each element's accumulation order (p ascending) is the
  // same in both branches, so results are bit-identical either way.
  auto rows = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      for (int p = 0; p < k; ++p) {
        const double av = ad[i * k + p];
        if (av == 0.0) continue;
        const double* brow = bd + static_cast<size_t>(p) * n;
        double* crow = cd + i * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  const uint64_t work = uint64_t(m) * uint64_t(k) * uint64_t(n);
  if (UseParallelKernel(work)) {
    parallel::ParallelForRange(static_cast<size_t>(m), RowGrain(m), rows);
  } else {
    rows(0, static_cast<size_t>(m));
  }
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  CASCN_CHECK(a.rows() == b.rows());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  Tensor c(m, n);
  const double* ad = a.data();
  const double* bd = b.data();
  double* cd = c.data();
  const uint64_t work = uint64_t(m) * uint64_t(k) * uint64_t(n);
  if (UseParallelKernel(work)) {
    // Partition output rows i; the p loop stays innermost-ascending so each
    // element accumulates in the same order as the serial branch below —
    // bit-identical results at any thread count.
    parallel::ParallelForRange(
        static_cast<size_t>(m), RowGrain(m), [&](size_t i0, size_t i1) {
          for (size_t i = i0; i < i1; ++i) {
            double* crow = cd + i * n;
            for (int p = 0; p < k; ++p) {
              const double av = ad[static_cast<size_t>(p) * m + i];
              if (av == 0.0) continue;
              const double* brow = bd + static_cast<size_t>(p) * n;
              for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        });
    return c;
  }
  for (int p = 0; p < k; ++p) {
    const double* arow = ad + static_cast<size_t>(p) * m;
    const double* brow = bd + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = cd + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  CASCN_CHECK(a.cols() == b.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  const double* ad = a.data();
  const double* bd = b.data();
  // Independent dot products per output element: row-partitioning cannot
  // change any accumulation order.
  auto rows = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const double* arow = ad + i * k;
      for (int j = 0; j < n; ++j) {
        const double* brow = bd + static_cast<size_t>(j) * k;
        double s = 0;
        for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
        c.At(static_cast<int>(i), j) = s;
      }
    }
  };
  const uint64_t work = uint64_t(m) * uint64_t(k) * uint64_t(n);
  if (UseParallelKernel(work)) {
    parallel::ParallelForRange(static_cast<size_t>(m), RowGrain(m), rows);
  } else {
    rows(0, static_cast<size_t>(m));
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CASCN_CHECK(a.SameShape(b));
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CASCN_CHECK(a.SameShape(b));
  Tensor c = a;
  c.Axpy(-1.0, b);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CASCN_CHECK(a.SameShape(b));
  Tensor c(a.rows(), a.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j) c.At(i, j) = a.At(i, j) * b.At(i, j);
  return c;
}

bool AllClose(const Tensor& a, const Tensor& b, double tol) {
  if (!a.SameShape(b)) return false;
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      if (std::fabs(a.At(i, j) - b.At(i, j)) > tol) return false;
  return true;
}

}  // namespace cascn
