#include "tensor/variable.h"

#include <chrono>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace cascn::ag {

namespace {

// Capture target for the calling thread; see ScopedGradCapture.
thread_local GradSink* t_active_sink = nullptr;

}  // namespace

namespace internal {

void Node::AccumGrad(const Tensor& g) {
  // Only requires_grad leaves (model parameters) are shared across
  // concurrently-built per-sample graphs; divert those into the thread's
  // sink when capture is active. Intermediate nodes are private to their
  // graph and accumulate in place as always.
  if (requires_grad && t_active_sink != nullptr) {
    t_active_sink->Accumulate(this, g);
    return;
  }
  if (grad.empty()) grad = Tensor(value.rows(), value.cols());
  grad.AddInPlace(g);
}

}  // namespace internal

void GradSink::Accumulate(internal::Node* node, const Tensor& g) {
  auto [it, inserted] = index_.try_emplace(node, entries_.size());
  if (inserted) {
    entries_.emplace_back(node, g);
  } else {
    entries_[it->second].second.AddInPlace(g);
  }
}

void GradSink::Merge(const GradSink& other) {
  for (const auto& [node, g] : other.entries_) Accumulate(node, g);
}

void GradSink::Flush() {
  for (auto& [node, g] : entries_) {
    if (node->grad.empty())
      node->grad = Tensor(node->value.rows(), node->value.cols());
    node->grad.AddInPlace(g);
  }
  Clear();
}

void GradSink::Clear() {
  entries_.clear();
  index_.clear();
}

ScopedGradCapture::ScopedGradCapture(GradSink* sink)
    : previous_(t_active_sink) {
  t_active_sink = sink;
}

ScopedGradCapture::~ScopedGradCapture() { t_active_sink = previous_; }

using internal::Node;

namespace {

/// Creates an op node over `parents` whose needs_grad is derived from them.
std::shared_ptr<Node> MakeOpNode(Tensor value,
                                 std::vector<std::shared_ptr<Node>> parents,
                                 std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->needs_grad) {
      node->needs_grad = true;
      break;
    }
  }
  if (node->needs_grad) node->backward = std::move(backward);
  return node;
}

const std::shared_ptr<Node>& CheckedNode(const Variable& v) {
  CASCN_CHECK(v.defined()) << "operation on a null Variable";
  return v.node();
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scopes one op construction for the profiler: started before the forward
/// compute, finished via Done() with work estimates. Tags the node with its
/// op kind unconditionally (an int store) so Backward() can attribute the
/// closure even when profiling is switched on later; timing and FLOP
/// accumulation only happen while the profiler is active.
struct OpProfile {
  explicit OpProfile(obs::OpKind kind)
      : kind(kind), active(obs::Profiler::Get().enabled()) {
    if (active) start_ns = NowNs();
  }

  Variable Done(std::shared_ptr<Node> node, uint64_t forward_flops,
                uint64_t backward_flops) const {
    node->op = kind;
    if (active) {
      node->profile_backward_flops = backward_flops;
      obs::Profiler::Get().RecordForward(
          kind, NowNs() - start_ns, forward_flops,
          static_cast<uint64_t>(node->value.size()) * sizeof(double));
    }
    return Variable::FromNode(std::move(node));
  }

  obs::OpKind kind;
  bool active;
  uint64_t start_ns = 0;
};

uint64_t Elems(const std::shared_ptr<Node>& n) {
  return static_cast<uint64_t>(n->value.size());
}

}  // namespace

Variable Variable::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->needs_grad = requires_grad;
  return FromNode(std::move(node));
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Variable::value() const {
  CASCN_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  CASCN_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  CASCN_CHECK(defined());
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  CASCN_CHECK(defined());
  return node_->grad;
}

bool Variable::requires_grad() const {
  CASCN_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  CASCN_CHECK(defined());
  if (!node_->grad.empty()) node_->grad.Zero();
}

void Variable::Backward() const {
  CASCN_CHECK(defined());
  CASCN_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1)
      << "Backward() requires a scalar (1x1) loss";
  // Iterative post-order DFS to produce a topological order (parents before
  // children in `order` after the walk; we then traverse in reverse).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent].get();
      ++next_parent;
      if (parent->needs_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  Tensor seed(1, 1);
  seed.At(0, 0) = 1.0;
  node_->AccumGrad(seed);
  const bool profiling = obs::Profiler::Get().enabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (!node->backward || node->grad.empty()) continue;
    if (profiling) {
      const uint64_t start_ns = NowNs();
      node->backward(*node);
      obs::Profiler::Get().RecordBackward(node->op, NowNs() - start_ns,
                                          node->profile_backward_flops);
    } else {
      node->backward(*node);
    }
  }
}

// ---- Element-wise and broadcast arithmetic --------------------------------

Variable Add(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(an->value.SameShape(bn->value)) << "Add shape mismatch";
  OpProfile prof(obs::OpKind::kAdd);
  const uint64_t n = Elems(an);
  return prof.Done(
      MakeOpNode(cascn::Add(an->value, bn->value), {an, bn},
                 [](Node& self) {
                   if (self.parents[0]->needs_grad)
                     self.parents[0]->AccumGrad(self.grad);
                   if (self.parents[1]->needs_grad)
                     self.parents[1]->AccumGrad(self.grad);
                 }),
      n, 2 * n);
}

Variable Sub(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(an->value.SameShape(bn->value)) << "Sub shape mismatch";
  OpProfile prof(obs::OpKind::kSub);
  const uint64_t n = Elems(an);
  return prof.Done(
      MakeOpNode(cascn::Sub(an->value, bn->value), {an, bn},
                 [](Node& self) {
                   if (self.parents[0]->needs_grad)
                     self.parents[0]->AccumGrad(self.grad);
                   if (self.parents[1]->needs_grad) {
                     Tensor neg = self.grad;
                     neg.Scale(-1.0);
                     self.parents[1]->AccumGrad(neg);
                   }
                 }),
      n, 2 * n);
}

Variable Mul(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(an->value.SameShape(bn->value)) << "Mul shape mismatch";
  OpProfile prof(obs::OpKind::kMul);
  const uint64_t n = Elems(an);
  return prof.Done(
      MakeOpNode(cascn::Mul(an->value, bn->value), {an, bn},
                 [](Node& self) {
                   if (self.parents[0]->needs_grad)
                     self.parents[0]->AccumGrad(
                         cascn::Mul(self.grad, self.parents[1]->value));
                   if (self.parents[1]->needs_grad)
                     self.parents[1]->AccumGrad(
                         cascn::Mul(self.grad, self.parents[0]->value));
                 }),
      n, 2 * n);
}

Variable AddRowBroadcast(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(bn->value.rows() == 1 && bn->value.cols() == an->value.cols())
      << "AddRowBroadcast expects b to be 1 x a.cols";
  OpProfile prof(obs::OpKind::kAddRowBroadcast);
  const uint64_t n = Elems(an);
  Tensor out = an->value;
  for (int i = 0; i < out.rows(); ++i)
    for (int j = 0; j < out.cols(); ++j) out.At(i, j) += bn->value.At(0, j);
  return prof.Done(
      MakeOpNode(std::move(out), {an, bn},
                 [](Node& self) {
                   if (self.parents[0]->needs_grad)
                     self.parents[0]->AccumGrad(self.grad);
                   if (self.parents[1]->needs_grad)
                     self.parents[1]->AccumGrad(self.grad.ColSums());
                 }),
      n, 2 * n);
}

Variable ScalarMul(const Variable& a, double alpha) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kScalarMul);
  const uint64_t n = Elems(an);
  Tensor out = an->value;
  out.Scale(alpha);
  return prof.Done(MakeOpNode(std::move(out), {an},
                              [alpha](Node& self) {
                                Tensor g = self.grad;
                                g.Scale(alpha);
                                self.parents[0]->AccumGrad(g);
                              }),
                   n, n);
}

Variable AddScalar(const Variable& a, double alpha) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kAddScalar);
  const uint64_t n = Elems(an);
  Tensor out = an->value;
  for (int i = 0; i < out.rows(); ++i)
    for (int j = 0; j < out.cols(); ++j) out.At(i, j) += alpha;
  return prof.Done(MakeOpNode(std::move(out), {an},
                              [](Node& self) {
                                self.parents[0]->AccumGrad(self.grad);
                              }),
                   n, n);
}

Variable ScaleByScalar(const Variable& a, const Variable& s) {
  const auto& an = CheckedNode(a);
  const auto& sn = CheckedNode(s);
  CASCN_CHECK(sn->value.rows() == 1 && sn->value.cols() == 1)
      << "ScaleByScalar expects a 1x1 scale";
  OpProfile prof(obs::OpKind::kScaleByScalar);
  const uint64_t n = Elems(an);
  Tensor out = an->value;
  out.Scale(sn->value.At(0, 0));
  return prof.Done(
      MakeOpNode(std::move(out), {an, sn},
                 [](Node& self) {
                   const double sv = self.parents[1]->value.At(0, 0);
                   if (self.parents[0]->needs_grad) {
                     Tensor g = self.grad;
                     g.Scale(sv);
                     self.parents[0]->AccumGrad(g);
                   }
                   if (self.parents[1]->needs_grad) {
                     Tensor gs(1, 1);
                     gs.At(0, 0) =
                         cascn::Mul(self.grad, self.parents[0]->value).Sum();
                     self.parents[1]->AccumGrad(gs);
                   }
                 }),
      n, 2 * n);
}

// ---- Matrix products -------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(an->value.cols() == bn->value.rows()) << "MatMul shape mismatch";
  OpProfile prof(obs::OpKind::kMatMul);
  const uint64_t m = static_cast<uint64_t>(an->value.rows());
  const uint64_t k = static_cast<uint64_t>(an->value.cols());
  const uint64_t n = static_cast<uint64_t>(bn->value.cols());
  return prof.Done(
      MakeOpNode(cascn::MatMul(an->value, bn->value), {an, bn},
                 [](Node& self) {
                   // dL/dA = G B^T ; dL/dB = A^T G
                   if (self.parents[0]->needs_grad)
                     self.parents[0]->AccumGrad(
                         MatMulTransposeB(self.grad, self.parents[1]->value));
                   if (self.parents[1]->needs_grad)
                     self.parents[1]->AccumGrad(
                         MatMulTransposeA(self.parents[0]->value, self.grad));
                 }),
      2 * m * k * n, 4 * m * k * n);
}

Variable SparseMatMul(const CsrMatrix& op, const Variable& x) {
  const auto& xn = CheckedNode(x);
  CASCN_CHECK(op.cols() == xn->value.rows()) << "SparseMatMul shape mismatch";
  OpProfile prof(obs::OpKind::kSparseMatMul);
  const uint64_t work = 2 * static_cast<uint64_t>(op.nnz()) *
                        static_cast<uint64_t>(xn->value.cols());
  // The sparse operator is captured by value; cascade operators are small.
  return prof.Done(
      MakeOpNode(op.MatMulDense(xn->value), {xn},
                 [op](Node& self) {
                   // dL/dX = Op^T G
                   self.parents[0]->AccumGrad(
                       op.TransposeMatMulDense(self.grad));
                 }),
      work, work);
}

// ---- Nonlinearities --------------------------------------------------------

Variable Sigmoid(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSigmoid);
  const uint64_t n = Elems(an);
  Tensor out = an->value.Map([](double x) {
    return x >= 0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
  });
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   Tensor g(self.value.rows(), self.value.cols());
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j) {
                       const double y = self.value.At(i, j);
                       g.At(i, j) = self.grad.At(i, j) * y * (1.0 - y);
                     }
                   self.parents[0]->AccumGrad(g);
                 }),
      4 * n, 3 * n);
}

Variable Tanh(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kTanh);
  const uint64_t n = Elems(an);
  Tensor out = an->value.Map([](double x) { return std::tanh(x); });
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   Tensor g(self.value.rows(), self.value.cols());
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j) {
                       const double y = self.value.At(i, j);
                       g.At(i, j) = self.grad.At(i, j) * (1.0 - y * y);
                     }
                   self.parents[0]->AccumGrad(g);
                 }),
      4 * n, 3 * n);
}

Variable Relu(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kRelu);
  const uint64_t n = Elems(an);
  Tensor out = an->value.Map([](double x) { return x > 0 ? x : 0.0; });
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   Tensor g(self.value.rows(), self.value.cols());
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(i, j) =
                           self.value.At(i, j) > 0 ? self.grad.At(i, j) : 0.0;
                   self.parents[0]->AccumGrad(g);
                 }),
      n, n);
}

Variable Square(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSquare);
  const uint64_t n = Elems(an);
  Tensor out = an->value.Map([](double x) { return x * x; });
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   Tensor g(self.value.rows(), self.value.cols());
                   const Tensor& x = self.parents[0]->value;
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(i, j) = self.grad.At(i, j) * 2.0 * x.At(i, j);
                   self.parents[0]->AccumGrad(g);
                 }),
      n, 2 * n);
}

Variable Softplus(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSoftplus);
  const uint64_t n = Elems(an);
  Tensor out = an->value.Map([](double x) {
    // log(1 + e^x) without overflow: x + log1p(e^-x) for large x.
    return x > 20 ? x : std::log1p(std::exp(x));
  });
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   Tensor g(self.value.rows(), self.value.cols());
                   const Tensor& x = self.parents[0]->value;
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j) {
                       const double xv = x.At(i, j);
                       const double sig =
                           xv >= 0 ? 1.0 / (1.0 + std::exp(-xv))
                                   : std::exp(xv) / (1.0 + std::exp(xv));
                       g.At(i, j) = self.grad.At(i, j) * sig;
                     }
                   self.parents[0]->AccumGrad(g);
                 }),
      4 * n, 4 * n);
}

Variable SoftmaxRows(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSoftmaxRows);
  const uint64_t n = Elems(an);
  Tensor out(an->value.rows(), an->value.cols());
  for (int i = 0; i < out.rows(); ++i) {
    double mx = -1e300;
    for (int j = 0; j < out.cols(); ++j)
      mx = std::max(mx, an->value.At(i, j));
    double denom = 0;
    for (int j = 0; j < out.cols(); ++j) {
      out.At(i, j) = std::exp(an->value.At(i, j) - mx);
      denom += out.At(i, j);
    }
    for (int j = 0; j < out.cols(); ++j) out.At(i, j) /= denom;
  }
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   // Per row: dL/dx_j = y_j (g_j - sum_k g_k y_k)
                   Tensor g(self.value.rows(), self.value.cols());
                   for (int i = 0; i < g.rows(); ++i) {
                     double dot = 0;
                     for (int j = 0; j < g.cols(); ++j)
                       dot += self.grad.At(i, j) * self.value.At(i, j);
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(i, j) =
                           self.value.At(i, j) * (self.grad.At(i, j) - dot);
                   }
                   self.parents[0]->AccumGrad(g);
                 }),
      5 * n, 3 * n);
}

// ---- Reductions and reshaping ---------------------------------------------

Variable Sum(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSum);
  const uint64_t n = Elems(an);
  Tensor out(1, 1);
  out.At(0, 0) = an->value.Sum();
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [](Node& self) {
                   const double g = self.grad.At(0, 0);
                   Tensor full(self.parents[0]->value.rows(),
                               self.parents[0]->value.cols(), g);
                   self.parents[0]->AccumGrad(full);
                 }),
      n, n);
}

Variable Mean(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kMean);
  const uint64_t n = Elems(an);
  const double inv = 1.0 / std::max(1, an->value.size());
  Tensor out(1, 1);
  out.At(0, 0) = an->value.Sum() * inv;
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [inv](Node& self) {
                   const double g = self.grad.At(0, 0) * inv;
                   Tensor full(self.parents[0]->value.rows(),
                               self.parents[0]->value.cols(), g);
                   self.parents[0]->AccumGrad(full);
                 }),
      n, n);
}

Variable SumRows(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kSumRows);
  const uint64_t n = Elems(an);
  return prof.Done(
      MakeOpNode(an->value.ColSums(), {an},
                 [](Node& self) {
                   Tensor g(self.parents[0]->value.rows(),
                            self.parents[0]->value.cols());
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(i, j) = self.grad.At(0, j);
                   self.parents[0]->AccumGrad(g);
                 }),
      n, n);
}

Variable MeanRows(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kMeanRows);
  const uint64_t n = Elems(an);
  const double inv = 1.0 / std::max(1, an->value.rows());
  Tensor out = an->value.ColSums();
  out.Scale(inv);
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [inv](Node& self) {
                   Tensor g(self.parents[0]->value.rows(),
                            self.parents[0]->value.cols());
                   for (int i = 0; i < g.rows(); ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(i, j) = self.grad.At(0, j) * inv;
                   self.parents[0]->AccumGrad(g);
                 }),
      n, n);
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  const auto& an = CheckedNode(a);
  const auto& bn = CheckedNode(b);
  CASCN_CHECK(an->value.rows() == bn->value.rows())
      << "ConcatCols row mismatch";
  OpProfile prof(obs::OpKind::kConcatCols);
  const int ca = an->value.cols(), cb = bn->value.cols();
  Tensor out(an->value.rows(), ca + cb);
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < ca; ++j) out.At(i, j) = an->value.At(i, j);
    for (int j = 0; j < cb; ++j) out.At(i, ca + j) = bn->value.At(i, j);
  }
  return prof.Done(
      MakeOpNode(std::move(out), {an, bn},
                 [ca, cb](Node& self) {
                   if (self.parents[0]->needs_grad) {
                     Tensor ga(self.grad.rows(), ca);
                     for (int i = 0; i < ga.rows(); ++i)
                       for (int j = 0; j < ca; ++j)
                         ga.At(i, j) = self.grad.At(i, j);
                     self.parents[0]->AccumGrad(ga);
                   }
                   if (self.parents[1]->needs_grad) {
                     Tensor gb(self.grad.rows(), cb);
                     for (int i = 0; i < gb.rows(); ++i)
                       for (int j = 0; j < cb; ++j)
                         gb.At(i, j) = self.grad.At(i, ca + j);
                     self.parents[1]->AccumGrad(gb);
                   }
                 }),
      0, 0);
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  CASCN_CHECK(!parts.empty());
  OpProfile prof(obs::OpKind::kConcatRows);
  std::vector<std::shared_ptr<internal::Node>> nodes;
  int total_rows = 0;
  const int cols = parts[0].cols();
  for (const auto& p : parts) {
    CASCN_CHECK(p.cols() == cols) << "ConcatRows col mismatch";
    nodes.push_back(CheckedNode(p));
    total_rows += p.rows();
  }
  Tensor out(total_rows, cols);
  int r = 0;
  for (const auto& n : nodes) {
    for (int i = 0; i < n->value.rows(); ++i, ++r)
      for (int j = 0; j < cols; ++j) out.At(r, j) = n->value.At(i, j);
  }
  return prof.Done(
      MakeOpNode(std::move(out), std::move(nodes),
                 [](Node& self) {
                   int r = 0;
                   for (auto& parent : self.parents) {
                     const int pr = parent->value.rows();
                     if (parent->needs_grad) {
                       Tensor g(pr, parent->value.cols());
                       for (int i = 0; i < pr; ++i)
                         for (int j = 0; j < g.cols(); ++j)
                           g.At(i, j) = self.grad.At(r + i, j);
                       parent->AccumGrad(g);
                     }
                     r += pr;
                   }
                 }),
      0, 0);
}

Variable SliceRows(const Variable& a, int start, int len) {
  const auto& an = CheckedNode(a);
  CASCN_CHECK(start >= 0 && len >= 0 && start + len <= an->value.rows())
      << "SliceRows out of range";
  OpProfile prof(obs::OpKind::kSliceRows);
  Tensor out(len, an->value.cols());
  for (int i = 0; i < len; ++i)
    for (int j = 0; j < out.cols(); ++j)
      out.At(i, j) = an->value.At(start + i, j);
  return prof.Done(
      MakeOpNode(std::move(out), {an},
                 [start, len](Node& self) {
                   Tensor g(self.parents[0]->value.rows(),
                            self.parents[0]->value.cols());
                   for (int i = 0; i < len; ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(start + i, j) = self.grad.At(i, j);
                   self.parents[0]->AccumGrad(g);
                 }),
      0, 0);
}

Variable GatherRows(const Variable& table, const std::vector<int>& indices) {
  const auto& tn = CheckedNode(table);
  OpProfile prof(obs::OpKind::kGatherRows);
  Tensor out(static_cast<int>(indices.size()), tn->value.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    CASCN_CHECK(indices[i] >= 0 && indices[i] < tn->value.rows())
        << "GatherRows index out of range";
    for (int j = 0; j < out.cols(); ++j)
      out.At(static_cast<int>(i), j) = tn->value.At(indices[i], j);
  }
  return prof.Done(
      MakeOpNode(std::move(out), {tn},
                 [indices](Node& self) {
                   Tensor g(self.parents[0]->value.rows(),
                            self.parents[0]->value.cols());
                   for (size_t i = 0; i < indices.size(); ++i)
                     for (int j = 0; j < g.cols(); ++j)
                       g.At(indices[i], j) +=
                           self.grad.At(static_cast<int>(i), j);
                   self.parents[0]->AccumGrad(g);
                 }),
      0, static_cast<uint64_t>(indices.size()) *
             static_cast<uint64_t>(tn->value.cols()));
}

Variable Transpose(const Variable& a) {
  const auto& an = CheckedNode(a);
  OpProfile prof(obs::OpKind::kTranspose);
  return prof.Done(
      MakeOpNode(an->value.Transposed(), {an},
                 [](Node& self) {
                   self.parents[0]->AccumGrad(self.grad.Transposed());
                 }),
      0, 0);
}

}  // namespace cascn::ag
