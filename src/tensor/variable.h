// Reverse-mode automatic differentiation over Tensor values.
//
// A Variable wraps a node in a dynamically-built computation graph. Each
// forward op records a backward closure; Backward() on a scalar loss
// topologically sorts the graph and accumulates gradients into every node
// with requires_grad set (model parameters are such leaf nodes and persist
// across per-sample graphs, so their .grad() accumulates over a minibatch
// until the optimizer consumes and zeroes it).
//
// Graphs hold parent references only, so per-sample graph nodes are freed
// when the loss Variable goes out of scope while parameter leaves survive.
//
// The op set is exactly what the CasCN models and baselines need: dense and
// sparse matmul, broadcast bias, gate nonlinearities, pooling, concat/slice,
// row gather (embeddings), row softmax (attention), and scalar scaling
// (learned time decay).

#ifndef CASCN_TENSOR_VARIABLE_H_
#define CASCN_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/profiler.h"
#include "tensor/csr_matrix.h"
#include "tensor/tensor.h"

namespace cascn::ag {

namespace internal {

/// One node of the computation graph.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  bool needs_grad = false;  // requires_grad or any ancestor requires it
  // The op that produced this node; Backward() attributes the backward
  // closure's wall-clock to it when the profiler is active.
  obs::OpKind op = obs::OpKind::kLeaf;
  // Estimated backward FLOPs, set at construction while profiling.
  uint64_t profile_backward_flops = 0;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates grad (already accumulated in `grad`) to parents.
  std::function<void(Node&)> backward;

  /// grad += g, allocating on first use.
  void AccumGrad(const Tensor& g);
};

}  // namespace internal

/// Value-semantic handle to a computation-graph node.
class Variable {
 public:
  /// Null handle; most ops CHECK against defined().
  Variable() = default;

  /// Leaf node. requires_grad marks it as a trainable parameter.
  static Variable Leaf(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();

  /// Gradient accumulated by the last Backward() pass(es). Zero-sized until
  /// a gradient has been accumulated.
  const Tensor& grad() const;

  /// Mutable access to the gradient buffer (optimizer internals).
  Tensor& mutable_grad();

  bool requires_grad() const;

  /// Zeroes this node's gradient buffer.
  void ZeroGrad();

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Runs backpropagation from this node. Pre: 1x1 scalar.
  void Backward() const;

  /// Internal: used by op constructors.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// ---- Concurrent-backward gradient capture ---------------------------------

/// Collects the parameter-leaf gradient accumulations of one or more
/// Backward() passes instead of letting them land in the shared
/// Node::grad buffers. While a ScopedGradCapture is active on a thread,
/// every AccumGrad on a requires_grad leaf is diverted into the thread's
/// sink; intermediate (per-graph, unshared) nodes are unaffected. This is
/// what makes per-sample Backward() calls safe to run concurrently: each
/// worker writes only its own sink, and the trainer later combines sinks in
/// a fixed order (tree reduction over sample indices) so the floating-point
/// accumulation order — and therefore every resulting bit — is independent
/// of the thread count.
///
/// Entry order within a sink is the (deterministic) order leaves are first
/// reached by the sample's serial backward pass.
class GradSink {
 public:
  /// sink[node] += g, allocating the entry on first use.
  void Accumulate(internal::Node* node, const Tensor& g);

  /// this[node] += other[node] for every entry of `other`, appending
  /// entries for leaves this sink has not seen. `other` is not modified.
  void Merge(const GradSink& other);

  /// Applies every captured gradient to its node's shared grad buffer
  /// (exactly as AccumGrad would have without capture) and clears the sink.
  /// Call outside any capture scope, from one thread.
  void Flush();

  void Clear();
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<internal::Node*, Tensor>> entries_;
  std::unordered_map<internal::Node*, size_t> index_;
};

/// RAII: installs `sink` as the calling thread's gradient capture target,
/// restoring the previous target (usually none) on destruction.
class ScopedGradCapture {
 public:
  explicit ScopedGradCapture(GradSink* sink);
  ~ScopedGradCapture();

  ScopedGradCapture(const ScopedGradCapture&) = delete;
  ScopedGradCapture& operator=(const ScopedGradCapture&) = delete;

 private:
  GradSink* previous_;
};

// ---- Element-wise and broadcast arithmetic --------------------------------

/// a + b. Pre: same shape.
Variable Add(const Variable& a, const Variable& b);
/// a - b. Pre: same shape.
Variable Sub(const Variable& a, const Variable& b);
/// Element-wise a * b. Pre: same shape.
Variable Mul(const Variable& a, const Variable& b);
/// a (n x d) + row vector b (1 x d) broadcast over rows.
Variable AddRowBroadcast(const Variable& a, const Variable& b);
/// alpha * a for a compile-time-known scalar.
Variable ScalarMul(const Variable& a, double alpha);
/// a + alpha element-wise.
Variable AddScalar(const Variable& a, double alpha);
/// a scaled by a learned 1x1 Variable s: s * a.
Variable ScaleByScalar(const Variable& a, const Variable& s);

// ---- Matrix products -------------------------------------------------------

/// Dense a @ b. Pre: a.cols == b.rows.
Variable MatMul(const Variable& a, const Variable& b);
/// Constant sparse operator @ dense variable. Pre: op.cols == x.rows.
Variable SparseMatMul(const CsrMatrix& op, const Variable& x);

// ---- Nonlinearities --------------------------------------------------------

Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
/// Element-wise square.
Variable Square(const Variable& a);
/// Numerically-stable softplus: log(1 + exp(a)). Used to keep learned time-
/// decay weights positive.
Variable Softplus(const Variable& a);
/// Row-wise softmax (attention weights).
Variable SoftmaxRows(const Variable& a);

// ---- Reductions and reshaping ---------------------------------------------

/// Sum of all elements -> 1x1.
Variable Sum(const Variable& a);
/// Mean of all elements -> 1x1.
Variable Mean(const Variable& a);
/// Column-wise mean over rows: n x d -> 1 x d.
Variable MeanRows(const Variable& a);
/// Column-wise sum over rows: n x d -> 1 x d.
Variable SumRows(const Variable& a);
/// Horizontal concat: n x d1, n x d2 -> n x (d1+d2).
Variable ConcatCols(const Variable& a, const Variable& b);
/// Vertical concat of equally-wide blocks.
Variable ConcatRows(const std::vector<Variable>& parts);
/// Rows [start, start+len) of a.
Variable SliceRows(const Variable& a, int start, int len);
/// Gathers rows of `table` by index (embedding lookup); indices may repeat.
Variable GatherRows(const Variable& table, const std::vector<int>& indices);
/// Transpose.
Variable Transpose(const Variable& a);

}  // namespace cascn::ag

#endif  // CASCN_TENSOR_VARIABLE_H_
