#include "tensor/csr_matrix.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/logging.h"
#include "parallel/parallel_for.h"

namespace cascn {

namespace {

// Multiply-add count (nnz * dense cols) below which sparse products stay
// serial; per-snapshot operators in the CasCN configs are far under this.
constexpr uint64_t kParallelSparseCutoff = uint64_t{1} << 18;

bool UseParallelKernel(uint64_t work) {
  return work >= kParallelSparseCutoff && parallel::ConfiguredThreads() > 1;
}

size_t RowGrain(int rows) {
  const size_t chunks = parallel::ConfiguredThreads() * 4;
  return std::max<size_t>(1, static_cast<size_t>(rows) / chunks);
}

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_offsets_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size(); ++i) {
    const Triplet& t = triplets[i];
    CASCN_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols)
        << "triplet out of bounds";
    if (!m.col_indices_.empty() && i > 0 && triplets[i - 1].row == t.row &&
        triplets[i - 1].col == t.col) {
      m.values_.back() += t.value;  // merge duplicates
      continue;
    }
    m.col_indices_.push_back(t.col);
    m.values_.push_back(t.value);
    ++m.row_offsets_[t.row + 1];
  }
  for (int r = 0; r < rows; ++r) m.row_offsets_[r + 1] += m.row_offsets_[r];
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense) {
  std::vector<Triplet> trips;
  for (int i = 0; i < dense.rows(); ++i)
    for (int j = 0; j < dense.cols(); ++j)
      if (dense.At(i, j) != 0.0) trips.push_back({i, j, dense.At(i, j)});
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<Triplet> trips;
  trips.reserve(n);
  for (int i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(trips));
}

Tensor CsrMatrix::ToDense() const {
  Tensor out(rows_, cols_);
  for (int r = 0; r < rows_; ++r)
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      out.At(r, col_indices_[k]) += values_[k];
  return out;
}

Tensor CsrMatrix::MatMulDense(const Tensor& dense) const {
  CASCN_CHECK(cols_ == dense.rows());
  Tensor out(rows_, dense.cols());
  const int n = dense.cols();
  // Each output row gathers from disjoint state: safe to row-partition, and
  // the per-row accumulation order (k ascending) is identical either way.
  auto rows = [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      double* orow = out.data() + r * n;
      for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        const double v = values_[k];
        const double* drow =
            dense.data() + static_cast<size_t>(col_indices_[k]) * n;
        for (int j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  };
  const uint64_t work = uint64_t(values_.size()) * uint64_t(n);
  if (UseParallelKernel(work)) {
    parallel::ParallelForRange(static_cast<size_t>(rows_), RowGrain(rows_),
                               rows);
  } else {
    rows(0, static_cast<size_t>(rows_));
  }
  return out;
}

Tensor CsrMatrix::TransposeMatMulDense(const Tensor& dense) const {
  CASCN_CHECK(rows_ == dense.rows());
  Tensor out(cols_, dense.cols());
  const int n = dense.cols();
  const uint64_t work = uint64_t(values_.size()) * uint64_t(n);
  if (UseParallelKernel(work)) {
    // The CSR scatter (out row = col index) races across input rows, so the
    // parallel branch partitions *output* rows instead: every worker scans
    // the full nonzero list and applies only entries landing in its slice.
    // Per-output-row accumulation order (r, then k, ascending) matches the
    // serial branch below — bit-identical results.
    parallel::ParallelForRange(
        static_cast<size_t>(cols_), RowGrain(cols_),
        [&](size_t c0, size_t c1) {
          for (int r = 0; r < rows_; ++r) {
            const double* drow = dense.data() + static_cast<size_t>(r) * n;
            for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
              const size_t c = static_cast<size_t>(col_indices_[k]);
              if (c < c0 || c >= c1) continue;
              const double v = values_[k];
              double* orow = out.data() + c * n;
              for (int j = 0; j < n; ++j) orow[j] += v * drow[j];
            }
          }
        });
    return out;
  }
  for (int r = 0; r < rows_; ++r) {
    const double* drow = dense.data() + static_cast<size_t>(r) * n;
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const double v = values_[k];
      double* orow = out.data() + static_cast<size_t>(col_indices_[k]) * n;
      for (int j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(values_.size());
  for (int r = 0; r < rows_; ++r)
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      trips.push_back({col_indices_[k], r, values_[k]});
  return FromTriplets(cols_, rows_, std::move(trips));
}

CsrMatrix CsrMatrix::Add(const CsrMatrix& other, double alpha,
                         double beta) const {
  CASCN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  std::vector<Triplet> trips;
  trips.reserve(values_.size() + other.values_.size());
  for (int r = 0; r < rows_; ++r)
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      trips.push_back({r, col_indices_[k], alpha * values_[k]});
  for (int r = 0; r < other.rows_; ++r)
    for (int k = other.row_offsets_[r]; k < other.row_offsets_[r + 1]; ++k)
      trips.push_back({r, other.col_indices_[k], beta * other.values_[k]});
  return FromTriplets(rows_, cols_, std::move(trips));
}

CsrMatrix CsrMatrix::MatMulSparse(const CsrMatrix& other) const {
  CASCN_CHECK(cols_ == other.rows_);
  std::vector<Triplet> trips;
  std::map<int, double> row_accum;
  for (int r = 0; r < rows_; ++r) {
    row_accum.clear();
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const int mid = col_indices_[k];
      const double v = values_[k];
      for (int k2 = other.row_offsets_[mid]; k2 < other.row_offsets_[mid + 1];
           ++k2) {
        row_accum[other.col_indices_[k2]] += v * other.values_[k2];
      }
    }
    for (const auto& [c, v] : row_accum)
      if (v != 0.0) trips.push_back({r, c, v});
  }
  return FromTriplets(rows_, other.cols_, std::move(trips));
}

CsrMatrix CsrMatrix::Scaled(double alpha) const {
  CsrMatrix out = *this;
  for (double& v : out.values_) v *= alpha;
  return out;
}

}  // namespace cascn
