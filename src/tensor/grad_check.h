// Numerical gradient checking for the autodiff engine. Used by tests to
// verify every op's backward pass against central finite differences.

#ifndef CASCN_TENSOR_GRAD_CHECK_H_
#define CASCN_TENSOR_GRAD_CHECK_H_

#include <functional>

#include "tensor/variable.h"

namespace cascn::ag {

/// Result of comparing analytic and numeric gradients of one leaf.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok = false;
};

/// Checks d(loss)/d(leaf) for `loss_fn`, a pure function that rebuilds the
/// graph from the leaf's current value and returns a scalar Variable.
/// Perturbs every element of `leaf` by +/-epsilon (central differences) and
/// compares with the analytic gradient from one Backward() pass.
GradCheckResult CheckGradient(
    Variable& leaf, const std::function<Variable(const Variable&)>& loss_fn,
    double epsilon = 1e-5, double tolerance = 1e-6);

}  // namespace cascn::ag

#endif  // CASCN_TENSOR_GRAD_CHECK_H_
