#include "tensor/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cascn::ag {

GradCheckResult CheckGradient(
    Variable& leaf, const std::function<Variable(const Variable&)>& loss_fn,
    double epsilon, double tolerance) {
  CASCN_CHECK(leaf.requires_grad())
      << "CheckGradient needs a leaf with requires_grad";
  leaf.ZeroGrad();
  Variable loss = loss_fn(leaf);
  loss.Backward();
  const Tensor analytic = leaf.grad();
  CASCN_CHECK(!analytic.empty()) << "no gradient reached the leaf";

  GradCheckResult result;
  Tensor& value = leaf.mutable_value();
  for (int i = 0; i < value.rows(); ++i) {
    for (int j = 0; j < value.cols(); ++j) {
      const double saved = value.At(i, j);
      value.At(i, j) = saved + epsilon;
      const double up = loss_fn(leaf).value().At(0, 0);
      value.At(i, j) = saved - epsilon;
      const double down = loss_fn(leaf).value().At(0, 0);
      value.At(i, j) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      const double abs_err = std::fabs(numeric - analytic.At(i, j));
      const double denom =
          std::max({1.0, std::fabs(numeric), std::fabs(analytic.At(i, j))});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace cascn::ag
