#include "tensor/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace cascn {

Result<Tensor> CholeskyFactor(const Tensor& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Cholesky requires a square matrix");
  const int n = a.rows();
  Tensor l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (int k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0)
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Result<Tensor> SolveSpd(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows())
    return Status::InvalidArgument("SolveSpd dimension mismatch");
  CASCN_ASSIGN_OR_RETURN(Tensor l, CholeskyFactor(a));
  const int n = a.rows();
  const int m = b.cols();
  // Forward solve L y = b.
  Tensor y(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = 0; i < n; ++i) {
      double sum = b.At(i, c);
      for (int k = 0; k < i; ++k) sum -= l.At(i, k) * y.At(k, c);
      y.At(i, c) = sum / l.At(i, i);
    }
  }
  // Back solve L^T x = y.
  Tensor x(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = n - 1; i >= 0; --i) {
      double sum = y.At(i, c);
      for (int k = i + 1; k < n; ++k) sum -= l.At(k, i) * x.At(k, c);
      x.At(i, c) = sum / l.At(i, i);
    }
  }
  return x;
}

double PowerIterationLargestEigenvalue(const CsrMatrix& a, int iterations) {
  CASCN_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  if (n == 0) return 0.0;
  // Symmetrise: S = (A + A^T)/2, applied without materialising S densely.
  const CsrMatrix at = a.Transposed();
  Tensor x(n, 1, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Tensor ax = a.MatMulDense(x);
    ax.AddInPlace(at.MatMulDense(x));
    ax.Scale(0.5);
    double num = 0, den = 0;
    for (int i = 0; i < n; ++i) {
      num += x.At(i, 0) * ax.At(i, 0);
      den += x.At(i, 0) * x.At(i, 0);
    }
    lambda = den > 0 ? num / den : 0.0;
    const double norm = ax.Norm();
    if (norm < 1e-30) return 0.0;
    ax.Scale(1.0 / norm);
    x = std::move(ax);
  }
  return std::fabs(lambda);
}

Result<std::vector<double>> StationaryDistribution(const CsrMatrix& p,
                                                   int max_iterations,
                                                   double tolerance) {
  if (p.rows() != p.cols())
    return Status::InvalidArgument("transition matrix must be square");
  const int n = p.rows();
  if (n == 0) return Status::InvalidArgument("empty transition matrix");
  Tensor phi(n, 1, 1.0 / n);
  for (int it = 0; it < max_iterations; ++it) {
    // phi' = P^T phi  (left eigenvector via transpose application).
    Tensor next = p.TransposeMatMulDense(phi);
    const double sum = next.Sum();
    if (sum <= 0)
      return Status::FailedPrecondition("stationary iteration degenerated");
    next.Scale(1.0 / sum);
    double delta = 0;
    for (int i = 0; i < n; ++i)
      delta = std::max(delta, std::fabs(next.At(i, 0) - phi.At(i, 0)));
    phi = std::move(next);
    if (delta < tolerance) {
      std::vector<double> out(n);
      for (int i = 0; i < n; ++i) out[i] = phi.At(i, 0);
      return out;
    }
  }
  return Status::FailedPrecondition(
      "stationary distribution did not converge");
}

Tensor PrincipalComponents(const Tensor& x, int k, int iterations) {
  CASCN_CHECK(k > 0 && k <= x.cols());
  const int d = x.cols();
  // Covariance of centred rows.
  Tensor mean = x.ColSums();
  mean.Scale(1.0 / std::max(1, x.rows()));
  Tensor centred = x;
  for (int i = 0; i < x.rows(); ++i)
    for (int j = 0; j < d; ++j) centred.At(i, j) -= mean.At(0, j);
  Tensor cov = MatMulTransposeA(centred, centred);
  cov.Scale(1.0 / std::max(1, x.rows() - 1));

  Tensor components(d, k);
  Rng rng(0xC0FFEE);
  for (int c = 0; c < k; ++c) {
    Tensor v = Tensor::RandomNormal(d, 1, 1.0, rng);
    for (int it = 0; it < iterations; ++it) {
      Tensor av = MatMul(cov, v);
      // Deflate: remove projections onto previous components.
      for (int p = 0; p < c; ++p) {
        double dot = 0;
        for (int i = 0; i < d; ++i) dot += av.At(i, 0) * components.At(i, p);
        for (int i = 0; i < d; ++i) av.At(i, 0) -= dot * components.At(i, p);
      }
      const double norm = av.Norm();
      if (norm < 1e-30) break;
      av.Scale(1.0 / norm);
      v = std::move(av);
    }
    for (int i = 0; i < d; ++i) components.At(i, c) = v.At(i, 0);
  }
  return components;
}

}  // namespace cascn
