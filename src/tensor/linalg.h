// Dense and sparse linear-algebra routines that fall outside the autodiff
// graph: SPD solves (ridge regression baseline), power iteration (largest
// Laplacian eigenvalue, stationary distributions), and PCA support.

#ifndef CASCN_TENSOR_LINALG_H_
#define CASCN_TENSOR_LINALG_H_

#include <vector>

#include "common/result.h"
#include "tensor/csr_matrix.h"
#include "tensor/tensor.h"

namespace cascn {

/// Cholesky factorisation A = L L^T of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor, or FailedPrecondition when A is not
/// (numerically) positive definite.
Result<Tensor> CholeskyFactor(const Tensor& a);

/// Solves A x = b for SPD A via Cholesky. b may have multiple columns.
Result<Tensor> SolveSpd(const Tensor& a, const Tensor& b);

/// Largest-magnitude eigenvalue of a square matrix estimated by power
/// iteration with Rayleigh quotients. For non-symmetric operators (directed
/// cascade Laplacians) the dominant eigenvalue may be complex; we iterate on
/// the symmetric part (A + A^T)/2, whose largest eigenvalue upper-bounds the
/// real spectral abscissa and is the standard surrogate for Chebyshev filter
/// scaling. Deterministic: starts from the all-ones vector.
double PowerIterationLargestEigenvalue(const CsrMatrix& a, int iterations = 64);

/// Left stationary distribution of a row-stochastic matrix P: the phi with
/// phi^T P = phi^T, sum(phi) = 1, found by power iteration. Returns
/// FailedPrecondition when iteration fails to converge to tolerance (e.g.,
/// P not irreducible). `p` must be square.
Result<std::vector<double>> StationaryDistribution(const CsrMatrix& p,
                                                   int max_iterations = 1000,
                                                   double tolerance = 1e-10);

/// First `k` principal components of the rows of `x` (observations x
/// features). Returns a features x k matrix of components; projections are
/// (x - mean) * components. Uses orthogonalised power iteration on the
/// covariance.
Tensor PrincipalComponents(const Tensor& x, int k, int iterations = 128);

}  // namespace cascn

#endif  // CASCN_TENSOR_LINALG_H_
