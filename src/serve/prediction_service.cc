#include "serve/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"

namespace cascn::serve {

PredictionService::PredictionService(const ServiceOptions& options)
    : options_(options),
      queue_depth_(registry_.GetGauge("serve_queue_depth")),
      batch_size_(registry_.GetHistogram("serve_batch_size", /*num_buckets=*/10)) {
  CASCN_CHECK(options.num_workers >= 1);
  CASCN_CHECK(options.queue_capacity >= 1);
  CASCN_CHECK(options.max_batch >= 1);
  if (!options.flight_dump_path.empty())
    flight_.SetDumpPath(options.flight_dump_path);
  sessions_ = std::make_unique<SessionManager>(options.sessions, &metrics_);
}

Result<std::unique_ptr<PredictionService>> PredictionService::Start(
    std::unique_ptr<PredictionService> service, const ModelFactory& factory) {
  for (int i = 0; i < service->options_.num_workers; ++i) {
    CASCN_ASSIGN_OR_RETURN(auto model, factory());
    if (model == nullptr)
      return Status::InvalidArgument("model factory produced a null model");
    service->models_.push_back(std::move(model));
  }
  service->pool_ = std::make_unique<parallel::ThreadPool>(
      static_cast<size_t>(service->options_.num_workers));
  for (int i = 0; i < service->options_.num_workers; ++i)
    service->pool_->Submit([svc = service.get(), i] { svc->WorkerLoop(i); });
  return service;
}

Result<std::unique_ptr<PredictionService>> PredictionService::Create(
    const ServiceOptions& options, const ModelFactory& factory) {
  // No make_unique: the constructor is private.
  std::unique_ptr<PredictionService> service(new PredictionService(options));
  return Start(std::move(service), factory);
}

Result<std::unique_ptr<CascadeRegressor>>
PredictionService::LoadReplicaWithRetry(const std::string& checkpoint_path,
                                        const ServiceOptions& options,
                                        ServeMetrics* metrics) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options.load_retries; ++attempt) {
    if (attempt > 0) {
      if (metrics != nullptr) metrics->Increment(Counter::kLoadRetries);
      const double backoff_ms =
          options.load_retry_backoff_ms * static_cast<double>(1 << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(backoff_ms * 1000.0)));
    }
    Result<std::unique_ptr<CascnModel>> model =
        LoadCascnCheckpoint(checkpoint_path);
    if (model.ok())
      return std::unique_ptr<CascadeRegressor>(std::move(model).value());
    last = model.status();
    // Only transient failures are worth retrying; a structurally invalid
    // checkpoint (bad magic, wrong model type) will not heal with time.
    if (last.code() != StatusCode::kIoError) break;
  }
  return last;
}

Result<std::unique_ptr<PredictionService>>
PredictionService::CreateFromCheckpoint(const ServiceOptions& options,
                                        const std::string& checkpoint_path) {
  std::unique_ptr<PredictionService> service(new PredictionService(options));
  ServeMetrics* metrics = &service->metrics_;
  service->checkpoint_path_ = checkpoint_path;
  return Start(std::move(service),
               [checkpoint_path, &options,
                metrics]() -> Result<std::unique_ptr<CascadeRegressor>> {
                 return LoadReplicaWithRetry(checkpoint_path, options, metrics);
               });
}

Status PredictionService::ReloadCheckpoint(const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  // Validate on one replica before touching the serving set: a corrupt or
  // torn checkpoint must leave the current version serving.
  std::vector<std::shared_ptr<CascadeRegressor>> fresh;
  for (int i = 0; i < options_.num_workers; ++i) {
    Result<std::unique_ptr<CascadeRegressor>> model =
        LoadReplicaWithRetry(checkpoint_path, options_, &metrics_);
    if (!model.ok()) {
      metrics_.Increment(Counter::kReloadFailures);
      metrics_.SetHealth(Health::kDegraded);
      CASCN_LOG(WARNING) << "checkpoint reload from " << checkpoint_path
                         << " failed (replica " << i
                         << "); keeping the current version serving: "
                         << model.status();
      flight_.TriggerDump("reload_rollback");
      return model.status();
    }
    fresh.push_back(std::move(model).value());
  }
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    models_ = std::move(fresh);
  }
  // Cached predictions were computed by the replaced version.
  sessions_->InvalidateCachedPredictions();
  checkpoint_path_ = checkpoint_path;
  metrics_.Increment(Counter::kReloads);
  metrics_.SetHealth(Health::kHealthy);
  return Status::OK();
}

PredictionService::~PredictionService() { Shutdown(); }

size_t PredictionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void PredictionService::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    if (shutdown_started_) {
      // A concurrent or repeated call: wait for the first one to finish.
      shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
      return;
    }
    shutdown_started_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  if (pool_ != nullptr) pool_->Wait();
  // Workers are gone; whatever is still queued was never executed. Fail
  // each request with a status naming the shutdown, so callers can tell a
  // drained request from backpressure.
  std::deque<Request> drained;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    drained.swap(queue_);
    queue_depth_.Set(0.0);
  }
  for (Request& request : drained) {
    ServeResponse response;
    response.status = Status::Unavailable(
        "service shut down before executing this request (drained from "
        "queue by Shutdown)");
    response.trace_id = request.ctx.trace_id;
    metrics_.Increment(Counter::kShutdownDrained);
    RecordOutcome(request, response.status, 0, 0, 0);
    request.promise.set_value(std::move(response));
  }
  metrics_.SetHealth(Health::kUnhealthy);
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_done_ = true;
  }
  shutdown_cv_.notify_all();
}

void PredictionService::RecordOutcome(const Request& request,
                                      const Status& status,
                                      uint64_t queue_wait_ns,
                                      uint64_t exec_ns,
                                      uint16_t fault_bits) {
  obs::FlightRecord record;
  record.trace_id = request.ctx.trace_id;
  record.queue_wait_ns = queue_wait_ns;
  record.exec_ns = exec_ns;
  record.shard_id = static_cast<int16_t>(options_.shard_id);
  switch (request.type) {
    case RequestType::kCreate: record.op = obs::FlightOp::kCreate; break;
    case RequestType::kAppend: record.op = obs::FlightOp::kAppend; break;
    case RequestType::kPredict: record.op = obs::FlightOp::kPredict; break;
    case RequestType::kClose: record.op = obs::FlightOp::kClose; break;
  }
  record.status = static_cast<uint8_t>(status.code());
  record.fault_bits = fault_bits;
  record.set_tenant(request.ctx.tenant);
  record.set_session(request.session_id);
  flight_.Append(record);
  if (options_.on_complete)
    options_.on_complete(request.ctx, status, exec_ns / 1000);
}

Result<std::future<ServeResponse>> PredictionService::Enqueue(
    Request request) {
  // Every request carries a context from here on: the flight recorder and
  // SLI attribution need a trace id even when the caller (a bare service
  // user, not the cluster router) did not mint one.
  if (!request.ctx.valid()) {
    request.ctx.trace_id = obs::NewTraceId();
    request.ctx.session_id = request.session_id;
  }
  CASCN_TRACE_SPAN_ID("serve_enqueue", request.ctx.trace_id,
                      obs::SpanFlow::kOut);
  std::future<ServeResponse> future = request.promise.get_future();
  request.enqueue_time = std::chrono::steady_clock::now();
  if (request.ctx.has_deadline) {
    // The context carries an absolute deadline resolved once at the edge
    // that minted it. An internal re-dispatch (router retry, hedge) arrives
    // here with only the REMAINING budget — re-deriving from deadline_ms
    // would silently re-arm the caller's full deadline on every attempt.
    request.has_deadline = true;
    request.deadline = request.ctx.deadline;
  } else {
    const double deadline_ms = request.deadline_ms > 0.0
                                   ? request.deadline_ms
                                   : (request.deadline_ms < 0.0
                                          ? 0.0
                                          : options_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      request.has_deadline = true;
      request.deadline =
          request.enqueue_time +
          std::chrono::microseconds(
              static_cast<int64_t>(deadline_ms * 1000.0));
    }
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      metrics_.Increment(Counter::kRequestsRejected);
      lock.unlock();
      const Status status = Status::Unavailable("service is shutting down");
      RecordOutcome(request, status, 0, 0, 0);
      return status;
    }
    if (queue_.size() >= options_.queue_capacity) {
      metrics_.Increment(Counter::kRequestsRejected);
      lock.unlock();
      const Status status = Status::Unavailable("request queue is full");
      RecordOutcome(request, status, 0, 0, 0);
      return status;
    }
    queue_.push_back(std::move(request));
    metrics_.Increment(Counter::kRequestsTotal);
    queue_depth_.Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

Result<std::future<ServeResponse>> PredictionService::SubmitCreate(
    std::string session_id, int root_user, double deadline_ms) {
  Request r;
  r.type = RequestType::kCreate;
  r.session_id = std::move(session_id);
  r.user = root_user;
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitAppend(
    std::string session_id, int user, int parent_node, double time,
    double deadline_ms) {
  Request r;
  r.type = RequestType::kAppend;
  r.session_id = std::move(session_id);
  r.user = user;
  r.parent_node = parent_node;
  r.time = time;
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitPredict(
    std::string session_id, double deadline_ms) {
  Request r;
  r.type = RequestType::kPredict;
  r.session_id = std::move(session_id);
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitClose(
    std::string session_id, double deadline_ms) {
  Request r;
  r.type = RequestType::kClose;
  r.session_id = std::move(session_id);
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitCreate(
    obs::RequestContext ctx, std::string session_id, int root_user,
    double deadline_ms) {
  Request r;
  r.type = RequestType::kCreate;
  r.ctx = std::move(ctx);
  r.session_id = std::move(session_id);
  r.user = root_user;
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitAppend(
    obs::RequestContext ctx, std::string session_id, int user,
    int parent_node, double time, double deadline_ms) {
  Request r;
  r.type = RequestType::kAppend;
  r.ctx = std::move(ctx);
  r.session_id = std::move(session_id);
  r.user = user;
  r.parent_node = parent_node;
  r.time = time;
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitPredict(
    obs::RequestContext ctx, std::string session_id, double deadline_ms) {
  Request r;
  r.type = RequestType::kPredict;
  r.ctx = std::move(ctx);
  r.session_id = std::move(session_id);
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitClose(
    obs::RequestContext ctx, std::string session_id, double deadline_ms) {
  Request r;
  r.type = RequestType::kClose;
  r.ctx = std::move(ctx);
  r.session_id = std::move(session_id);
  r.deadline_ms = deadline_ms;
  return Enqueue(std::move(r));
}

namespace {

ServeResponse WaitOrReject(Result<std::future<ServeResponse>> submitted) {
  if (!submitted.ok()) {
    ServeResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted.value().get();
}

}  // namespace

ServeResponse PredictionService::CallCreate(std::string session_id,
                                            int root_user) {
  return WaitOrReject(SubmitCreate(std::move(session_id), root_user));
}

ServeResponse PredictionService::CallAppend(std::string session_id, int user,
                                            int parent_node, double time) {
  return WaitOrReject(
      SubmitAppend(std::move(session_id), user, parent_node, time));
}

ServeResponse PredictionService::CallPredict(std::string session_id) {
  return WaitOrReject(SubmitPredict(std::move(session_id)));
}

ServeResponse PredictionService::CallClose(std::string session_id) {
  return WaitOrReject(SubmitClose(std::move(session_id)));
}

ServeResponse PredictionService::Execute(const Request& request,
                                         CascadeRegressor& model,
                                         uint16_t* fault_bits) {
  const char* span_name = "serve_request";
  switch (request.type) {
    case RequestType::kCreate:
      span_name = "serve_create";
      break;
    case RequestType::kAppend:
      span_name = "serve_append";
      break;
    case RequestType::kPredict:
      span_name = "serve_predict";
      break;
    case RequestType::kClose:
      span_name = "serve_close";
      break;
  }
  // The execute span terminates the request's cross-thread flow chain
  // started by serve_enqueue (and stepped by serve_queue_wait).
  CASCN_TRACE_SPAN_ID(span_name, request.ctx.trace_id, obs::SpanFlow::kIn);
  ServeResponse response;
  switch (request.type) {
    case RequestType::kCreate:
      response.status = sessions_->Create(request.session_id, request.user);
      break;
    case RequestType::kAppend:
      response.status = sessions_->Append(request.session_id, request.user,
                                          request.parent_node, request.time);
      break;
    case RequestType::kPredict: {
      if (fault::MaybeDelay(kFaultServeSlowPredict) && fault_bits != nullptr)
        *fault_bits |= obs::kFaultBitSlowPredict;
      if (!options_.extra_predict_fault_point.empty() &&
          fault::MaybeDelay(options_.extra_predict_fault_point) &&
          fault_bits != nullptr)
        *fault_bits |= obs::kFaultBitExtraPredict;
      auto prediction = sessions_->PredictLog(request.session_id, model);
      if (prediction.ok()) {
        response.log_prediction = prediction.value();
        response.count_prediction = Exp2m1(prediction.value());
      } else {
        response.status = prediction.status();
      }
      break;
    }
    case RequestType::kClose:
      response.status = sessions_->Close(request.session_id);
      break;
  }
  if (!response.status.ok()) metrics_.Increment(Counter::kErrors);
  return response;
}

void PredictionService::WorkerLoop(int worker_index) {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      // Exit promptly on shutdown: whatever is still queued gets a named
      // shutdown status from Shutdown() instead of late execution.
      if (shutting_down_) return;
      const size_t take = std::min(queue_.size(),
                                   static_cast<size_t>(options_.max_batch));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.Set(static_cast<double>(queue_.size()));
    }
    // The replica is re-acquired per batch so a hot reload takes effect at
    // the next batch boundary without pausing serving.
    std::shared_ptr<CascadeRegressor> model;
    {
      std::lock_guard<std::mutex> lock(models_mutex_);
      model = models_[static_cast<size_t>(worker_index)];
    }
    const auto dequeue_time = std::chrono::steady_clock::now();
    obs::Tracer& tracer = obs::Tracer::Get();
    if (tracer.enabled()) {
      // Queue-wait spans land in the worker's buffer and step the request's
      // flow chain: enqueue (client thread) -> queue wait -> execute (here).
      for (const Request& request : batch)
        tracer.RecordSpan("serve_queue_wait", request.enqueue_time,
                          dequeue_time, request.ctx.trace_id,
                          obs::SpanFlow::kStep);
    }
    batch_size_.Record(batch.size());
    CASCN_TRACE_SPAN("serve_batch");
    if (batch.size() > 1) {
      metrics_.Increment(Counter::kBatches);
      metrics_.Increment(Counter::kBatchedRequests,
                         static_cast<uint64_t>(batch.size()));
    }
    // Duplicate predicts for one session inside a batch are computed once;
    // followers reuse the leader's response. (Appends invalidate the
    // session's prediction cache, so only identical observed states share.)
    std::unordered_map<std::string, ServeResponse> predict_memo;
    for (Request& request : batch) {
      const auto start = std::chrono::steady_clock::now();
      const uint64_t queue_wait_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              dequeue_time - request.enqueue_time)
              .count());
      uint16_t fault_bits = 0;
      bool deadline_exceeded = false;
      ServeResponse response;
      if (request.ctx.cancelled()) {
        // The racing dispatch (a hedge or its primary) already produced the
        // answer; executing this copy would only burn a worker. Checked
        // before the deadline so a cancelled loser is counted as cancelled,
        // not as a deadline miss.
        response.status = Status::Cancelled(
            "request cancelled before execution for session " +
            request.session_id);
        metrics_.Increment(Counter::kCancelled);
        metrics_.Increment(Counter::kErrors);
      } else if (request.has_deadline && start > request.deadline) {
        // Fail fast: the caller has already given up; executing now would
        // only burn a worker on a dead request.
        response.status = Status::DeadlineExceeded(
            "deadline expired before execution for session " +
            request.session_id);
        metrics_.Increment(Counter::kDeadlineExceeded);
        metrics_.Increment(Counter::kErrors);
        deadline_exceeded = true;
      } else if (request.type == RequestType::kPredict) {
        auto memo = predict_memo.find(request.session_id);
        if (memo != predict_memo.end()) {
          response = memo->second;
          metrics_.Increment(Counter::kPredictions);
          metrics_.Increment(Counter::kPredictionCacheHits);
        } else {
          response = Execute(request, *model, &fault_bits);
          predict_memo.emplace(request.session_id, response);
        }
      } else {
        response = Execute(request, *model, &fault_bits);
        // Any mutation (create/append/close) changes what a predict for
        // this session should observe: drop the memo entry.
        predict_memo.erase(request.session_id);
      }
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
      metrics_.RecordLatencyMicros(static_cast<uint64_t>(elapsed.count()));
      response.trace_id = request.ctx.trace_id;
      // Record before fulfilling the promise so a caller that waits on the
      // future observes the flight record (and any anomaly dump) already
      // written.
      RecordOutcome(request, response.status, queue_wait_ns,
                    static_cast<uint64_t>(elapsed.count()) * 1000, fault_bits);
      if (deadline_exceeded) flight_.TriggerDump("deadline_exceeded");
      request.promise.set_value(std::move(response));
      // One beat per terminal request: the watchdog reads this as "the
      // drain loop is alive". Stamped after completion, so a request stuck
      // inside Execute() reads as a stall, not progress.
      heartbeat_.Beat();
    }
  }
}

obs::WatchTarget PredictionService::MakeWatchdogTarget(std::string name) {
  obs::WatchTarget target;
  target.name = std::move(name);
  target.progress = [this] { return heartbeat_.count(); };
  target.busy = [this] { return queue_depth() > 0; };
  target.on_stall = [this] { NoteWatchdogStall(); };
  target.on_recover = [this] { NoteWatchdogRecovery(); };
  return target;
}

void PredictionService::NoteWatchdogStall() {
  // Only a healthy service transitions: a reload-degraded or shut-down
  // service keeps its existing (more specific) state.
  if (metrics_.health() == Health::kHealthy) {
    metrics_.SetHealth(Health::kDegraded);
    watchdog_degraded_.store(true, std::memory_order_relaxed);
  }
  flight_.TriggerDump("watchdog_stall");
}

void PredictionService::NoteWatchdogRecovery() {
  if (watchdog_degraded_.exchange(false, std::memory_order_relaxed) &&
      metrics_.health() == Health::kDegraded)
    metrics_.SetHealth(Health::kHealthy);
}

void PredictionService::RegisterDebugEndpoints(obs::DebugServer& server) {
  server.AddStatusSection("serve", [this] {
    return StrFormat("queue_depth: %zu\nheartbeats: %llu\n",
                     queue_depth(),
                     static_cast<unsigned long long>(heartbeat_.count())) +
           metrics_.TakeSnapshot().ToString();
  });
  server.AddMetricsExporter([this](obs::MetricsRegistry& registry) {
    ExportToRegistry(metrics_.TakeSnapshot(), registry);
    registry_.ExportTo(registry);
  });
  server.AddEndpoint("/flightz", [this](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/x-ndjson";
    response.body = flight_.ToJsonLines("flightz");
    return response;
  });
}

}  // namespace cascn::serve
