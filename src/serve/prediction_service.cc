#include "serve/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"

namespace cascn::serve {

PredictionService::PredictionService(const ServiceOptions& options)
    : options_(options),
      queue_depth_(registry_.GetGauge("serve_queue_depth")),
      batch_size_(registry_.GetHistogram("serve_batch_size", /*num_buckets=*/10)) {
  CASCN_CHECK(options.num_workers >= 1);
  CASCN_CHECK(options.queue_capacity >= 1);
  CASCN_CHECK(options.max_batch >= 1);
  sessions_ = std::make_unique<SessionManager>(options.sessions, &metrics_);
}

Result<std::unique_ptr<PredictionService>> PredictionService::Create(
    const ServiceOptions& options, const ModelFactory& factory) {
  // No make_unique: the constructor is private.
  std::unique_ptr<PredictionService> service(new PredictionService(options));
  for (int i = 0; i < options.num_workers; ++i) {
    CASCN_ASSIGN_OR_RETURN(auto model, factory());
    if (model == nullptr)
      return Status::InvalidArgument("model factory produced a null model");
    service->models_.push_back(std::move(model));
  }
  service->pool_ = std::make_unique<parallel::ThreadPool>(
      static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i)
    service->pool_->Submit([svc = service.get(), i] { svc->WorkerLoop(i); });
  return service;
}

Result<std::unique_ptr<PredictionService>>
PredictionService::CreateFromCheckpoint(const ServiceOptions& options,
                                        const std::string& checkpoint_path) {
  return Create(options,
                [checkpoint_path]() -> Result<std::unique_ptr<CascadeRegressor>> {
                  CASCN_ASSIGN_OR_RETURN(auto model,
                                         LoadCascnCheckpoint(checkpoint_path));
                  return std::unique_ptr<CascadeRegressor>(std::move(model));
                });
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  if (pool_ != nullptr) pool_->Wait();
}

Result<std::future<ServeResponse>> PredictionService::Enqueue(
    Request request) {
  CASCN_TRACE_SPAN("serve_enqueue");
  std::future<ServeResponse> future = request.promise.get_future();
  request.enqueue_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      metrics_.Increment(Counter::kRequestsRejected);
      return Status::Unavailable("service is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      metrics_.Increment(Counter::kRequestsRejected);
      return Status::Unavailable("request queue is full");
    }
    queue_.push_back(std::move(request));
    metrics_.Increment(Counter::kRequestsTotal);
    queue_depth_.Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

Result<std::future<ServeResponse>> PredictionService::SubmitCreate(
    std::string session_id, int root_user) {
  Request r;
  r.type = RequestType::kCreate;
  r.session_id = std::move(session_id);
  r.user = root_user;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitAppend(
    std::string session_id, int user, int parent_node, double time) {
  Request r;
  r.type = RequestType::kAppend;
  r.session_id = std::move(session_id);
  r.user = user;
  r.parent_node = parent_node;
  r.time = time;
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitPredict(
    std::string session_id) {
  Request r;
  r.type = RequestType::kPredict;
  r.session_id = std::move(session_id);
  return Enqueue(std::move(r));
}

Result<std::future<ServeResponse>> PredictionService::SubmitClose(
    std::string session_id) {
  Request r;
  r.type = RequestType::kClose;
  r.session_id = std::move(session_id);
  return Enqueue(std::move(r));
}

namespace {

ServeResponse WaitOrReject(Result<std::future<ServeResponse>> submitted) {
  if (!submitted.ok()) {
    ServeResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted.value().get();
}

}  // namespace

ServeResponse PredictionService::CallCreate(std::string session_id,
                                            int root_user) {
  return WaitOrReject(SubmitCreate(std::move(session_id), root_user));
}

ServeResponse PredictionService::CallAppend(std::string session_id, int user,
                                            int parent_node, double time) {
  return WaitOrReject(
      SubmitAppend(std::move(session_id), user, parent_node, time));
}

ServeResponse PredictionService::CallPredict(std::string session_id) {
  return WaitOrReject(SubmitPredict(std::move(session_id)));
}

ServeResponse PredictionService::CallClose(std::string session_id) {
  return WaitOrReject(SubmitClose(std::move(session_id)));
}

ServeResponse PredictionService::Execute(const Request& request,
                                         CascadeRegressor& model) {
  const char* span_name = "serve_request";
  switch (request.type) {
    case RequestType::kCreate:
      span_name = "serve_create";
      break;
    case RequestType::kAppend:
      span_name = "serve_append";
      break;
    case RequestType::kPredict:
      span_name = "serve_predict";
      break;
    case RequestType::kClose:
      span_name = "serve_close";
      break;
  }
  CASCN_TRACE_SPAN(span_name);
  ServeResponse response;
  switch (request.type) {
    case RequestType::kCreate:
      response.status = sessions_->Create(request.session_id, request.user);
      break;
    case RequestType::kAppend:
      response.status = sessions_->Append(request.session_id, request.user,
                                          request.parent_node, request.time);
      break;
    case RequestType::kPredict: {
      auto prediction = sessions_->PredictLog(request.session_id, model);
      if (prediction.ok()) {
        response.log_prediction = prediction.value();
        response.count_prediction = Exp2m1(prediction.value());
      } else {
        response.status = prediction.status();
      }
      break;
    }
    case RequestType::kClose:
      response.status = sessions_->Close(request.session_id);
      break;
  }
  if (!response.status.ok()) metrics_.Increment(Counter::kErrors);
  return response;
}

void PredictionService::WorkerLoop(int worker_index) {
  CascadeRegressor& model = *models_[static_cast<size_t>(worker_index)];
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      const size_t take = std::min(queue_.size(),
                                   static_cast<size_t>(options_.max_batch));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.Set(static_cast<double>(queue_.size()));
    }
    const auto dequeue_time = std::chrono::steady_clock::now();
    obs::Tracer& tracer = obs::Tracer::Get();
    if (tracer.enabled()) {
      for (const Request& request : batch)
        tracer.RecordSpan("serve_queue_wait", request.enqueue_time,
                          dequeue_time);
    }
    batch_size_.Record(batch.size());
    CASCN_TRACE_SPAN("serve_batch");
    if (batch.size() > 1) {
      metrics_.Increment(Counter::kBatches);
      metrics_.Increment(Counter::kBatchedRequests,
                         static_cast<uint64_t>(batch.size()));
    }
    // Duplicate predicts for one session inside a batch are computed once;
    // followers reuse the leader's response. (Appends invalidate the
    // session's prediction cache, so only identical observed states share.)
    std::unordered_map<std::string, ServeResponse> predict_memo;
    for (Request& request : batch) {
      const auto start = std::chrono::steady_clock::now();
      ServeResponse response;
      if (request.type == RequestType::kPredict) {
        auto memo = predict_memo.find(request.session_id);
        if (memo != predict_memo.end()) {
          response = memo->second;
          metrics_.Increment(Counter::kPredictions);
          metrics_.Increment(Counter::kPredictionCacheHits);
        } else {
          response = Execute(request, model);
          predict_memo.emplace(request.session_id, response);
        }
      } else {
        response = Execute(request, model);
        // Any mutation (create/append/close) changes what a predict for
        // this session should observe: drop the memo entry.
        predict_memo.erase(request.session_id);
      }
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
      metrics_.RecordLatencyMicros(static_cast<uint64_t>(elapsed.count()));
      request.promise.set_value(std::move(response));
    }
  }
}

}  // namespace cascn::serve
