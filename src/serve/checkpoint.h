// Checkpoint files: durable serialization of trained models, so a model can
// be trained once (e.g. by examples/quickstart) and served later from disk
// by a different process.
//
// Layout (all integers little-endian, as written by the host):
//
//   uint32  magic          0x4E435343 ("CSCN")
//   uint32  format version (kCheckpointVersion)
//   uint32  model-type length,  bytes   e.g. "cascn"
//   uint32  config length,      bytes   key=value lines, one per line
//   double  output offset                (CascadeRegressor calibration)
//   ----    Module::Save payload         (named parameter tensors)
//   uint32  footer magic   0x4E444E45 ("ENDN")
//   uint32  CRC-32 of every preceding byte   (version >= 2)
//
// Version 2 (current) appends a CRC-32 of the whole file, so a single
// flipped bit — not just truncation — is detected; version 1 files (no
// checksum) are still read. The footer magic distinguishes a cleanly
// written file from one truncated mid-stream. Corrupt, truncated, or
// mismatched files are rejected with a descriptive error Status — never a
// crash.
//
// Durability: WriteCheckpointFile is atomic (temp file + rename via
// common/file_util.h). A crash mid-write — exercised by the
// "checkpoint.torn_write" fault point — leaves the previous checkpoint
// intact; a torn image can only ever exist under the temp name.

#ifndef CASCN_SERVE_CHECKPOINT_H_
#define CASCN_SERVE_CHECKPOINT_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "common/result.h"
#include "core/cascn_model.h"
#include "nn/module.h"

namespace cascn::serve {

inline constexpr uint32_t kCheckpointMagic = 0x4E435343;   // "CSCN"
inline constexpr uint32_t kCheckpointFooter = 0x4E444E45;  // "ENDN"
/// Current write version. Version 2 added the trailing CRC-32; version 1
/// files are still accepted by every loader.
inline constexpr uint32_t kCheckpointVersion = 2;
inline constexpr uint32_t kCheckpointMinVersion = 1;

/// Fault-injection points (src/fault) wired through checkpoint I/O.
inline constexpr char kFaultCheckpointTornWrite[] = "checkpoint.torn_write";
inline constexpr char kFaultCheckpointWriteFail[] = "checkpoint.write_fail";
inline constexpr char kFaultCheckpointLoadFail[] = "checkpoint.load_fail";
inline constexpr char kFaultCheckpointLoadSlow[] = "checkpoint.load_slow";

/// Everything readable without knowing the concrete model class.
struct CheckpointHeader {
  uint32_t version = kCheckpointVersion;
  std::string model_type;
  std::string config_text;
  double output_offset = 0.0;
};

/// Writes a checkpoint for any Module-backed model. `model_type` tags the
/// concrete class (readers refuse a mismatched tag); `config_text` is an
/// opaque block the loader uses to reconstruct the model shape. The stream
/// variant serializes in memory first so the trailing CRC covers every
/// byte; the file variant additionally writes atomically (temp + rename),
/// reporting open/write failures with the path and strerror(errno).
Status WriteCheckpoint(std::ostream& out, const std::string& model_type,
                       const std::string& config_text,
                       const nn::Module& module, double output_offset);
Status WriteCheckpointFile(const std::string& path,
                           const std::string& model_type,
                           const std::string& config_text,
                           const nn::Module& module, double output_offset);

/// Reads and validates the header only (magic, version, strings, offset),
/// leaving the stream positioned at the parameter payload.
Result<CheckpointHeader> ReadCheckpointHeader(std::istream& in);
Result<CheckpointHeader> ReadCheckpointHeaderFile(const std::string& path);

/// Loads a checkpoint into an already-constructed module whose parameter
/// names/shapes must match the file. Fails (without modifying observable
/// behaviour guarantees) on magic/version/type mismatch, truncation, or
/// trailing garbage. On success `*header` (optional) receives the header.
Status LoadCheckpointInto(std::istream& in,
                          const std::string& expected_model_type,
                          nn::Module& module,
                          CheckpointHeader* header = nullptr);
Status LoadCheckpointIntoFile(const std::string& path,
                              const std::string& expected_model_type,
                              nn::Module& module,
                              CheckpointHeader* header = nullptr);

/// CascnConfig <-> config-block text (key=value lines). Parsing rejects
/// unknown keys and malformed values so version skew is loud.
std::string EncodeCascnConfig(const CascnConfig& config);
Result<CascnConfig> ParseCascnConfig(const std::string& text);

/// Model-type tag used by CasCN checkpoints.
inline constexpr char kCascnModelType[] = "cascn";

/// Saves a trained CasCN (parameters + config + calibration offset).
Status SaveCascnCheckpoint(const std::string& path, const CascnModel& model);

/// Rebuilds a CascnModel from a checkpoint written by SaveCascnCheckpoint:
/// parses the config, constructs the model, loads parameters, and restores
/// the output offset.
Result<std::unique_ptr<CascnModel>> LoadCascnCheckpoint(
    const std::string& path);

}  // namespace cascn::serve

#endif  // CASCN_SERVE_CHECKPOINT_H_
