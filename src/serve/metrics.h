// ServeMetrics: lock-cheap operational counters and latency histograms for
// the prediction service. Every mutation is a single relaxed atomic
// increment, so recording from many worker threads never contends on a
// lock; Snapshot() assembles a consistent-enough view for reporting
// (individual counters are exact; cross-counter skew is bounded by what was
// in flight during the read).

#ifndef CASCN_SERVE_METRICS_H_
#define CASCN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace cascn::serve {

/// Counter identifiers. Keep kNumCounters last.
enum class Counter : int {
  kRequestsTotal = 0,    // accepted into the queue
  kRequestsRejected,     // refused with Unavailable (backpressure/shutdown)
  kSessionsCreated,
  kAppends,
  kPredictions,
  kSessionsClosed,
  kEvictions,            // idle sessions LRU-evicted at capacity
  kPredictionCacheHits,  // predictions served from the per-session cache
  kBatches,              // worker dequeues that drained > 1 request
  kBatchedRequests,      // requests processed as part of such a batch
  kErrors,               // requests that completed with a non-OK status
  kNumCounters,
};

std::string_view CounterName(Counter c);

/// Aggregated metrics over many threads. All methods are thread-safe.
class ServeMetrics {
 public:
  static constexpr int kNumLatencyBuckets = 24;

  void Increment(Counter c, uint64_t n = 1) {
    counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  /// Records one request latency. Bucket i covers [2^i, 2^{i+1}) us; the
  /// last bucket absorbs everything above ~4 s.
  void RecordLatencyMicros(uint64_t us);

  /// Point-in-time copy of every counter plus histogram percentiles.
  struct Snapshot {
    std::array<uint64_t, static_cast<int>(Counter::kNumCounters)> counters{};
    std::array<uint64_t, kNumLatencyBuckets> latency_buckets{};
    uint64_t latency_count = 0;
    uint64_t latency_max_us = 0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p90_us = 0.0;
    double latency_p99_us = 0.0;

    uint64_t counter(Counter c) const {
      return counters[static_cast<int>(c)];
    }

    /// Multi-line human-readable report.
    std::string ToString() const;
    /// One JSON object (counters by name + latency percentiles).
    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<uint64_t>, static_cast<int>(Counter::kNumCounters)>
      counters_{};
  std::array<std::atomic<uint64_t>, kNumLatencyBuckets> latency_buckets_{};
  std::atomic<uint64_t> latency_sum_us_{0};
  std::atomic<uint64_t> latency_max_us_{0};
};

}  // namespace cascn::serve

#endif  // CASCN_SERVE_METRICS_H_
