// ServeMetrics: lock-cheap operational counters and latency histograms for
// the prediction service. Every mutation is a single relaxed atomic
// increment, so recording from many worker threads never contends on a
// lock; Snapshot() assembles a consistent-enough view for reporting
// (individual counters are exact; cross-counter skew is bounded by what was
// in flight during the read).
//
// The latency histogram is an obs::Histogram (log2 buckets); counters are
// obs::Counter. ExportToRegistry() bridges a snapshot into an
// obs::MetricsRegistry so serve numbers appear in the unified exposition
// next to trainer and system metrics.

#ifndef CASCN_SERVE_METRICS_H_
#define CASCN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace cascn::serve {

/// Counter identifiers. Keep kNumCounters last.
enum class Counter : int {
  kRequestsTotal = 0,    // accepted into the queue
  kRequestsRejected,     // refused with Unavailable (backpressure/shutdown)
  kSessionsCreated,
  kAppends,
  kPredictions,
  kSessionsClosed,
  kEvictions,            // idle sessions LRU-evicted at capacity
  kSpilled,              // evicted sessions whose history was kept serialized
  kSpillRestores,        // spilled sessions transparently restored on touch
  kSpillDropped,         // spilled histories discarded by the bounded spill LRU
  kPredictionCacheHits,  // predictions served from the per-session cache
  kBatches,              // worker dequeues that drained > 1 request
  kBatchedRequests,      // requests processed as part of such a batch
  kErrors,               // requests that completed with a non-OK status
  kDeadlineExceeded,     // requests failed fast for missing their deadline
  kLoadRetries,          // checkpoint load attempts retried after a failure
  kReloads,              // successful hot checkpoint reloads
  kReloadFailures,       // reloads rejected with the old version kept serving
  kShutdownDrained,      // queued requests failed by Shutdown() before running
  kCancelled,            // requests failed fast: their cancel flag was set
  kNumCounters,
};

std::string_view CounterName(Counter c);

/// Coarse service condition, maintained by the prediction service:
/// kHealthy while serving normally, kDegraded after a failed hot reload
/// (old version still serving), kUnhealthy once shut down.
enum class Health : int { kHealthy = 0, kDegraded = 1, kUnhealthy = 2 };

std::string_view HealthName(Health h);

/// Aggregated metrics over many threads. All methods are thread-safe.
class ServeMetrics {
 public:
  static constexpr int kNumLatencyBuckets = 24;

  ServeMetrics() : latency_(kNumLatencyBuckets) {}

  void Increment(Counter c, uint64_t n = 1) {
    counters_[static_cast<size_t>(c)].Increment(n);
  }

  /// Records one request latency. Bucket i covers [2^i, 2^{i+1}) us; the
  /// last bucket absorbs everything above ~4 s.
  void RecordLatencyMicros(uint64_t us) { latency_.Record(us); }

  void SetHealth(Health h) {
    health_.store(static_cast<int>(h), std::memory_order_relaxed);
  }
  Health health() const {
    return static_cast<Health>(health_.load(std::memory_order_relaxed));
  }

  /// Point-in-time copy of every counter plus histogram percentiles
  /// (obs::Histogram::Snapshot::Percentile estimates — interpolated within
  /// the log2 buckets, clamped to the observed max).
  struct Snapshot {
    std::array<uint64_t, static_cast<int>(Counter::kNumCounters)> counters{};
    Health health = Health::kHealthy;
    std::array<uint64_t, kNumLatencyBuckets> latency_buckets{};
    uint64_t latency_count = 0;
    uint64_t latency_max_us = 0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p90_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;

    uint64_t counter(Counter c) const {
      return counters[static_cast<int>(c)];
    }

    /// Multi-line human-readable report.
    std::string ToString() const;
    /// One JSON object (counters by name + latency percentiles).
    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;

 private:
  std::array<obs::Counter, static_cast<int>(Counter::kNumCounters)>
      counters_{};
  obs::Histogram latency_;
  std::atomic<int> health_{static_cast<int>(Health::kHealthy)};
};

/// Bridges a serve snapshot into `registry` as gauges named
/// `serve_<counter>` plus `serve_latency_{count,mean_us,p50_us,p95_us,
/// p99_us,max_us}`. Gauges (not registry counters) because a snapshot is a
/// point-in-time copy, re-exported wholesale on every bridge call.
///
/// `label` adds a dimension to every exported name — e.g. label
/// `shard="0"` yields `serve_requests_total{shard="0"}` — so one registry
/// can expose many keyed snapshots (per shard, per tenant) side by side
/// instead of needing N parallel registries.
void ExportToRegistry(const ServeMetrics::Snapshot& snapshot,
                      obs::MetricsRegistry& registry,
                      std::string_view label = "");

}  // namespace cascn::serve

#endif  // CASCN_SERVE_METRICS_H_
