// SessionManager: many concurrent live cascades, generalizing the
// single-cascade StreamingPredictor to a keyed session table.
//
// Each session is one evolving cascade: Create() starts it with the root
// post, Append() adds adoptions (with the same validation as
// StreamingPredictor), Predict() runs a model over the cascade as observed
// so far, Close() ends it. Sessions are independently locked, so operations
// on different sessions proceed in parallel; the table itself is guarded by
// a separate mutex held only for map/LRU bookkeeping, never across a model
// forward pass.
//
// Capacity: at most `options.capacity` live sessions. Creating one more
// evicts the least-recently-used *idle* session (idle = no operation
// currently inside it); if every session is busy, Create returns
// Unavailable rather than blocking.
//
// Spill (options.spill_capacity > 0): an evicted session's event history is
// kept as a serialized blob instead of being dropped, and the next
// operation that touches the session transparently restores it — so a
// client that never noticed the eviction keeps its cascade history instead
// of silently losing it. Create() on a spilled id discards the blob (an
// explicit re-create is a new cascade).
//
// Handoff: Serialize()/Deserialize() export one session's full history as a
// self-validating binary blob and rebuild it elsewhere — the unit the
// cluster layer moves between shards during rebalance. Extract() is the
// remove-and-serialize variant used by a draining shard.

#ifndef CASCN_SERVE_SESSION_MANAGER_H_
#define CASCN_SERVE_SESSION_MANAGER_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/regressor.h"
#include "graph/cascade.h"
#include "serve/metrics.h"

namespace cascn::serve {

struct SessionManagerOptions {
  /// Maximum live sessions (>= 1).
  size_t capacity = 4096;
  /// Observation window for every session, in the dataset's native time
  /// unit; adoptions after the window are rejected (OutOfRange).
  double observation_window = 60.0;
  /// Evicted sessions to retain as serialized blobs (0 disables). Spilled
  /// sessions are restored transparently by the next operation that touches
  /// them; the spill table is itself LRU-bounded. When live + spilled
  /// sessions exceed capacity + spill_capacity, the oldest spilled history
  /// is discarded — counted as kSpillDropped, logged, and reported through
  /// `on_spill_drop`.
  size_t spill_capacity = 0;
  /// Invoked with the session id whenever a spilled history is discarded by
  /// the bounded spill LRU (capacity-driven session loss). Called with the
  /// session-table lock held: the callback must be cheap and must not call
  /// back into this SessionManager. The cluster router uses it to release
  /// the dropped session's routing pin.
  std::function<void(const std::string&)> on_spill_drop;
};

/// Thread-safe table of live cascade sessions.
class SessionManager {
 public:
  /// `metrics` may be null (no recording); otherwise it must outlive the
  /// manager.
  explicit SessionManager(const SessionManagerOptions& options,
                          ServeMetrics* metrics = nullptr);

  /// Starts a session whose cascade is the root post by `root_user` at time
  /// 0. Fails with InvalidArgument if `session_id` already exists, or
  /// Unavailable if the table is full of busy sessions.
  Status Create(const std::string& session_id, int root_user);

  /// Appends one adoption to the session's cascade. NotFound for unknown
  /// sessions; otherwise the same validation as StreamingPredictor
  /// (monotone times, known parent, inside the window).
  Status Append(const std::string& session_id, int user, int parent_node,
                double time);

  /// The model's forecast of log2(1 + future increment) for the session's
  /// cascade as observed so far. The caller supplies the model so each
  /// service worker can use its own replica; results are cached per session
  /// until the next append (replicas of one checkpoint are
  /// interchangeable).
  Result<double> PredictLog(const std::string& session_id,
                            CascadeRegressor& model);

  /// Ends a session. NotFound if it does not exist.
  Status Close(const std::string& session_id);

  /// Drops every session's cached prediction. Called after a hot model
  /// reload: cached values were computed by the replaced replicas and must
  /// not be served against the new version.
  void InvalidateCachedPredictions();

  /// Number of adoptions observed by a session.
  Result<int> SessionSize(const std::string& session_id) const;

  /// Serializes a session's full event history into a self-validating
  /// binary blob (magic + version + events + CRC-32). NotFound for unknown
  /// sessions. Deserialize() on any SessionManager with the same
  /// observation window rebuilds an equivalent session.
  Result<std::string> Serialize(const std::string& session_id) const;

  /// Rebuilds a session from a Serialize() blob. InvalidArgument if the id
  /// already exists or the events fail cascade validation; IoError for a
  /// torn or corrupt blob (bad magic/CRC/length). Subject to the same
  /// capacity/eviction rules as Create().
  Status Deserialize(const std::string& session_id, const std::string& blob);

  /// Serialize() + remove in one step — the draining side of a shard
  /// handoff. Unavailable if an operation is currently inside the session.
  Result<std::string> Extract(const std::string& session_id);

  /// Ids of every session the manager holds state for — live sessions plus
  /// spilled ones (unspecified order). The drain loop of a shard handoff
  /// iterates this and Extract()s each id, so spilled histories move too.
  std::vector<std::string> SessionIds() const;

  /// Live session count.
  size_t size() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Session {
    std::mutex mutex;  // guards everything below
    std::vector<AdoptionEvent> events;
    std::unique_ptr<CascadeSample> sample;  // rebuilt lazily after appends
    bool sample_stale = true;
    std::optional<double> cached_prediction;
    int pins = 0;  // operations currently inside the session (eviction guard)
    std::list<std::string>::iterator lru_it;
  };

  /// Looks up + pins a session and moves it to the LRU front; restores a
  /// spilled session first when the spill table holds one. NotFound for
  /// unknown ids; Unavailable when a spilled session cannot be restored
  /// right now (table full of busy sessions — the blob is kept, so a retry
  /// can succeed).
  Result<std::shared_ptr<Session>> Acquire(const std::string& session_id) const;
  void Release(Session& session) const;
  const CascadeSample& CurrentSample(Session& session) const;
  void Record(Counter c, uint64_t n = 1) const {
    if (metrics_ != nullptr) metrics_->Increment(c, n);
  }

  /// Inserts a prebuilt session. Pre: map_mutex_ held; id not present.
  /// Evicts (and possibly spills) the LRU idle session at capacity;
  /// Unavailable when every session is busy.
  Status InsertLocked(const std::string& session_id,
                      std::shared_ptr<Session> session) const;
  /// Drops `session_id` from the spill table if present. Pre: map_mutex_.
  void DropSpillLocked(const std::string& session_id) const;

  SessionManagerOptions options_;
  ServeMetrics* metrics_;

  mutable std::mutex map_mutex_;
  mutable std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  mutable std::list<std::string> lru_;  // front = most recently used
  /// Serialized histories of evicted sessions (spill_capacity > 0 only).
  struct Spilled {
    std::string blob;
    std::list<std::string>::iterator lru_it;
  };
  mutable std::unordered_map<std::string, Spilled> spill_;
  mutable std::list<std::string> spill_lru_;  // front = most recently spilled
};

}  // namespace cascn::serve

#endif  // CASCN_SERVE_SESSION_MANAGER_H_
