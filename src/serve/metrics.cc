#include "serve/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace cascn::serve {

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kRequestsTotal:
      return "requests_total";
    case Counter::kRequestsRejected:
      return "requests_rejected";
    case Counter::kSessionsCreated:
      return "sessions_created";
    case Counter::kAppends:
      return "appends";
    case Counter::kPredictions:
      return "predictions";
    case Counter::kSessionsClosed:
      return "sessions_closed";
    case Counter::kEvictions:
      return "evictions";
    case Counter::kPredictionCacheHits:
      return "prediction_cache_hits";
    case Counter::kBatches:
      return "batches";
    case Counter::kBatchedRequests:
      return "batched_requests";
    case Counter::kErrors:
      return "errors";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

void ServeMetrics::RecordLatencyMicros(uint64_t us) {
  int bucket = 0;
  while (bucket + 1 < kNumLatencyBuckets && (uint64_t{1} << (bucket + 1)) <= us)
    ++bucket;
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_sum_us_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = latency_max_us_.load(std::memory_order_relaxed);
  while (prev < us && !latency_max_us_.compare_exchange_weak(
                          prev, us, std::memory_order_relaxed)) {
  }
}

namespace {

/// Upper edge of histogram bucket i, in microseconds.
double BucketUpperUs(int i) { return static_cast<double>(uint64_t{1} << (i + 1)); }

double Percentile(const std::array<uint64_t, ServeMetrics::kNumLatencyBuckets>&
                      buckets,
                  uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int i = 0; i < ServeMetrics::kNumLatencyBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) return BucketUpperUs(i);
  }
  return BucketUpperUs(ServeMetrics::kNumLatencyBuckets - 1);
}

}  // namespace

ServeMetrics::Snapshot ServeMetrics::TakeSnapshot() const {
  Snapshot snap;
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    snap.counters[i] = counters_[i].load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (int i = 0; i < kNumLatencyBuckets; ++i) {
    snap.latency_buckets[i] = latency_buckets_[i].load(std::memory_order_relaxed);
    total += snap.latency_buckets[i];
  }
  snap.latency_count = total;
  snap.latency_max_us = latency_max_us_.load(std::memory_order_relaxed);
  const uint64_t sum = latency_sum_us_.load(std::memory_order_relaxed);
  snap.latency_mean_us =
      total == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(total);
  snap.latency_p50_us = Percentile(snap.latency_buckets, total, 0.50);
  snap.latency_p90_us = Percentile(snap.latency_buckets, total, 0.90);
  snap.latency_p99_us = Percentile(snap.latency_buckets, total, 0.99);
  return snap;
}

std::string ServeMetrics::Snapshot::ToString() const {
  std::ostringstream out;
  out << "serve metrics:\n";
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    out << "  " << CounterName(static_cast<Counter>(i)) << " = "
        << counters[i] << "\n";
  out << StrFormat(
      "  latency: n=%llu mean=%.1fus p50<=%.0fus p90<=%.0fus p99<=%.0fus "
      "max=%lluus\n",
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p90_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return out.str();
}

std::string ServeMetrics::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    out << "\"" << CounterName(static_cast<Counter>(i)) << "\": " << counters[i]
        << ", ";
  out << StrFormat(
      "\"latency_count\": %llu, \"latency_mean_us\": %.1f, "
      "\"latency_p50_us\": %.0f, \"latency_p90_us\": %.0f, "
      "\"latency_p99_us\": %.0f, \"latency_max_us\": %llu}",
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p90_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return out.str();
}

}  // namespace cascn::serve
