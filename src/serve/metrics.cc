#include "serve/metrics.h"

#include <sstream>

#include "common/string_util.h"

namespace cascn::serve {

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kRequestsTotal:
      return "requests_total";
    case Counter::kRequestsRejected:
      return "requests_rejected";
    case Counter::kSessionsCreated:
      return "sessions_created";
    case Counter::kAppends:
      return "appends";
    case Counter::kPredictions:
      return "predictions";
    case Counter::kSessionsClosed:
      return "sessions_closed";
    case Counter::kEvictions:
      return "evictions";
    case Counter::kSpilled:
      return "sessions_spilled";
    case Counter::kSpillRestores:
      return "spill_restores";
    case Counter::kSpillDropped:
      return "spill_dropped";
    case Counter::kPredictionCacheHits:
      return "prediction_cache_hits";
    case Counter::kBatches:
      return "batches";
    case Counter::kBatchedRequests:
      return "batched_requests";
    case Counter::kErrors:
      return "errors";
    case Counter::kDeadlineExceeded:
      return "deadline_exceeded";
    case Counter::kLoadRetries:
      return "load_retries";
    case Counter::kReloads:
      return "reloads";
    case Counter::kReloadFailures:
      return "reload_failures";
    case Counter::kShutdownDrained:
      return "shutdown_drained";
    case Counter::kCancelled:
      return "cancelled";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

std::string_view HealthName(Health h) {
  switch (h) {
    case Health::kHealthy:
      return "healthy";
    case Health::kDegraded:
      return "degraded";
    case Health::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

ServeMetrics::Snapshot ServeMetrics::TakeSnapshot() const {
  Snapshot snap;
  snap.health = health();
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    snap.counters[i] = counters_[i].value();
  const obs::Histogram::Snapshot latency = latency_.TakeSnapshot();
  for (int i = 0; i < kNumLatencyBuckets; ++i)
    snap.latency_buckets[i] = latency.buckets[static_cast<size_t>(i)];
  snap.latency_count = latency.count;
  snap.latency_max_us = latency.max;
  snap.latency_mean_us = latency.mean;
  snap.latency_p50_us = latency.Percentile(0.50);
  snap.latency_p90_us = latency.Percentile(0.90);
  snap.latency_p95_us = latency.Percentile(0.95);
  snap.latency_p99_us = latency.Percentile(0.99);
  return snap;
}

std::string ServeMetrics::Snapshot::ToString() const {
  std::ostringstream out;
  out << "serve metrics:\n";
  out << "  health = " << HealthName(health) << "\n";
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    out << "  " << CounterName(static_cast<Counter>(i)) << " = "
        << counters[i] << "\n";
  out << StrFormat(
      "  latency: n=%llu mean=%.1fus p50~%.0fus p90~%.0fus p95~%.0fus "
      "p99~%.0fus max=%lluus\n",
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p90_us, latency_p95_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return out.str();
}

std::string ServeMetrics::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"health\": \"" << HealthName(health) << "\", ";
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i)
    out << "\"" << CounterName(static_cast<Counter>(i)) << "\": " << counters[i]
        << ", ";
  out << StrFormat(
      "\"latency_count\": %llu, \"latency_mean_us\": %.1f, "
      "\"latency_p50_us\": %.1f, \"latency_p90_us\": %.1f, "
      "\"latency_p95_us\": %.1f, \"latency_p99_us\": %.1f, "
      "\"latency_max_us\": %llu}",
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p90_us, latency_p95_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return out.str();
}

void ExportToRegistry(const ServeMetrics::Snapshot& snapshot,
                      obs::MetricsRegistry& registry,
                      std::string_view label) {
  const std::string suffix =
      label.empty() ? std::string() : "{" + std::string(label) + "}";
  auto gauge = [&](const std::string& name) -> obs::Gauge& {
    return registry.GetGauge(name + suffix);
  };
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    const std::string name =
        "serve_" + std::string(CounterName(static_cast<Counter>(i)));
    gauge(name).Set(static_cast<double>(snapshot.counters[i]));
  }
  gauge("serve_health")
      .Set(static_cast<double>(static_cast<int>(snapshot.health)));
  gauge("serve_latency_count")
      .Set(static_cast<double>(snapshot.latency_count));
  gauge("serve_latency_mean_us").Set(snapshot.latency_mean_us);
  gauge("serve_latency_p50_us").Set(snapshot.latency_p50_us);
  gauge("serve_latency_p95_us").Set(snapshot.latency_p95_us);
  gauge("serve_latency_p99_us").Set(snapshot.latency_p99_us);
  gauge("serve_latency_max_us")
      .Set(static_cast<double>(snapshot.latency_max_us));
}

}  // namespace cascn::serve
