#include "serve/checkpoint.h"

#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/crc32.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "fault/fault.h"

namespace cascn::serve {

namespace {

constexpr uint32_t kMaxStringLength = 1 << 20;  // 1 MiB: headers are tiny

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ReadU32(std::istream& in, uint32_t* v, const char* what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in.good())
    return Status::IoError(StrFormat("checkpoint truncated reading %s", what));
  return Status::OK();
}

Status ReadString(std::istream& in, std::string* s, const char* what) {
  uint32_t len = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &len, what));
  if (len > kMaxStringLength)
    return Status::IoError(
        StrFormat("checkpoint %s length %u is implausible", what, len));
  s->assign(len, '\0');
  in.read(s->data(), static_cast<std::streamsize>(len));
  if (!in.good())
    return Status::IoError(StrFormat("checkpoint truncated reading %s", what));
  return Status::OK();
}

/// Serializes a complete current-version checkpoint (including the trailing
/// CRC) into a byte string.
Result<std::string> SerializeCheckpoint(const std::string& model_type,
                                        const std::string& config_text,
                                        const nn::Module& module,
                                        double output_offset) {
  std::ostringstream buffer;
  WriteU32(buffer, kCheckpointMagic);
  WriteU32(buffer, kCheckpointVersion);
  WriteString(buffer, model_type);
  WriteString(buffer, config_text);
  buffer.write(reinterpret_cast<const char*>(&output_offset),
               sizeof(output_offset));
  if (!buffer.good())
    return Status::IoError("failed serializing checkpoint header");
  CASCN_RETURN_IF_ERROR(module.Save(buffer));
  WriteU32(buffer, kCheckpointFooter);
  if (!buffer.good())
    return Status::IoError("failed serializing checkpoint footer");
  std::string bytes = buffer.str();
  const uint32_t crc = Crc32(bytes);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

/// Structural integrity of a whole checkpoint image: minimum size and, for
/// version >= 2, the trailing CRC. `context` names the source (usually the
/// path) in error messages. Magic/version/type validation happens during
/// parsing; this runs first so a torn or bit-rotted file is called out as
/// such instead of failing deep inside the parse.
Status VerifyCheckpointBytes(const std::string& bytes,
                             const std::string& context) {
  if (bytes.size() < 2 * sizeof(uint32_t))
    return Status::IoError(StrFormat(
        "%s: %zu bytes is too short to be a checkpoint", context.c_str(),
        bytes.size()));
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != kCheckpointMagic)
    return Status::InvalidArgument(
        StrFormat("%s: not a CasCN checkpoint (magic 0x%08x)",
                  context.c_str(), magic));
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(uint32_t), sizeof(version));
  if (version < 2) return Status::OK();  // v1 carries no checksum
  if (bytes.size() < 3 * sizeof(uint32_t))
    return Status::IoError(
        StrFormat("%s: truncated before the checksum", context.c_str()));
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
              sizeof(stored));
  const uint32_t computed =
      Crc32(bytes.data(), bytes.size() - sizeof(stored));
  if (stored != computed)
    return Status::IoError(StrFormat(
        "%s: checksum mismatch (stored 0x%08x, computed 0x%08x): torn or "
        "corrupt checkpoint",
        context.c_str(), stored, computed));
  return Status::OK();
}

/// Bytes the parser must leave unconsumed at the end of a valid image.
size_t ExpectedTrailingBytes(uint32_t version) {
  return version >= 2 ? sizeof(uint32_t) : 0;
}

/// Parses header + module payload + footer from a full in-memory image that
/// already passed VerifyCheckpointBytes. `load` receives the positioned
/// stream and parsed header and loads the parameter payload.
Status ParseCheckpointBytes(
    const std::string& bytes, const std::string& context,
    CheckpointHeader* header_out,
    const std::function<Status(std::istream&, const CheckpointHeader&)>&
        load) {
  std::istringstream in(bytes);
  CASCN_ASSIGN_OR_RETURN(CheckpointHeader header, ReadCheckpointHeader(in));
  CASCN_RETURN_IF_ERROR(load(in, header));
  uint32_t footer = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &footer, "footer"));
  if (footer != kCheckpointFooter)
    return Status::IoError(
        StrFormat("%s: checkpoint footer mismatch (0x%08x): truncated or "
                  "corrupt parameter payload",
                  context.c_str(), footer));
  const std::streampos pos = in.tellg();
  if (pos < 0 ||
      bytes.size() - static_cast<size_t>(pos) !=
          ExpectedTrailingBytes(header.version))
    return Status::IoError(StrFormat(
        "%s: %zu unexpected trailing bytes after the checkpoint footer",
        context.c_str(),
        pos < 0 ? size_t{0} : bytes.size() - static_cast<size_t>(pos)));
  if (header_out != nullptr) *header_out = std::move(header);
  return Status::OK();
}

/// Reads the whole stream (used by the istream-based loaders; checkpoint
/// images are small enough to buffer).
std::string DrainStream(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status WriteCheckpoint(std::ostream& out, const std::string& model_type,
                       const std::string& config_text,
                       const nn::Module& module, double output_offset) {
  CASCN_ASSIGN_OR_RETURN(
      const std::string bytes,
      SerializeCheckpoint(model_type, config_text, module, output_offset));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::IoError("failed writing checkpoint");
  return Status::OK();
}

Status WriteCheckpointFile(const std::string& path,
                           const std::string& model_type,
                           const std::string& config_text,
                           const nn::Module& module, double output_offset) {
  CASCN_ASSIGN_OR_RETURN(
      const std::string bytes,
      SerializeCheckpoint(model_type, config_text, module, output_offset));
  if (fault::ShouldFire(kFaultCheckpointTornWrite)) {
    // Simulate a crash mid-write: a torn image under the temp name, no
    // rename — the destination (the previous checkpoint, if any) is
    // untouched, exactly the guarantee the atomic write provides.
    std::ofstream torn(path + ".tmp", std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
    return Status::IoError("injected fault: checkpoint write to " + path +
                           " torn mid-stream (destination untouched)");
  }
  CASCN_RETURN_IF_ERROR(fault::InjectStatus(kFaultCheckpointWriteFail));
  return WriteFileAtomic(path, bytes);
}

Result<CheckpointHeader> ReadCheckpointHeader(std::istream& in) {
  uint32_t magic = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &magic, "magic"));
  if (magic != kCheckpointMagic)
    return Status::InvalidArgument(
        StrFormat("not a CasCN checkpoint (magic 0x%08x)", magic));
  CheckpointHeader header;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &header.version, "version"));
  if (header.version < kCheckpointMinVersion ||
      header.version > kCheckpointVersion)
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %u (supported: %u..%u)",
                  header.version, kCheckpointMinVersion, kCheckpointVersion));
  CASCN_RETURN_IF_ERROR(ReadString(in, &header.model_type, "model type"));
  CASCN_RETURN_IF_ERROR(ReadString(in, &header.config_text, "config block"));
  in.read(reinterpret_cast<char*>(&header.output_offset),
          sizeof(header.output_offset));
  if (!in.good())
    return Status::IoError("checkpoint truncated reading output offset");
  return header;
}

Result<CheckpointHeader> ReadCheckpointHeaderFile(const std::string& path) {
  CASCN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  std::istringstream in(bytes);
  return ReadCheckpointHeader(in);
}

Status LoadCheckpointInto(std::istream& in,
                          const std::string& expected_model_type,
                          nn::Module& module, CheckpointHeader* header) {
  const std::string bytes = DrainStream(in);
  const std::string context = "checkpoint stream";
  CASCN_RETURN_IF_ERROR(VerifyCheckpointBytes(bytes, context));
  return ParseCheckpointBytes(
      bytes, context, header,
      [&](std::istream& stream, const CheckpointHeader& parsed) -> Status {
        if (parsed.model_type != expected_model_type)
          return Status::InvalidArgument(
              StrFormat("checkpoint holds a '%s' model, expected '%s'",
                        parsed.model_type.c_str(),
                        expected_model_type.c_str()));
        return module.Load(stream);
      });
}

Status LoadCheckpointIntoFile(const std::string& path,
                              const std::string& expected_model_type,
                              nn::Module& module, CheckpointHeader* header) {
  CASCN_RETURN_IF_ERROR(fault::InjectStatus(kFaultCheckpointLoadFail));
  fault::MaybeDelay(kFaultCheckpointLoadSlow);
  CASCN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  CASCN_RETURN_IF_ERROR(VerifyCheckpointBytes(bytes, path));
  return ParseCheckpointBytes(
      bytes, path, header,
      [&](std::istream& stream, const CheckpointHeader& parsed) -> Status {
        if (parsed.model_type != expected_model_type)
          return Status::InvalidArgument(
              StrFormat("checkpoint holds a '%s' model, expected '%s'",
                        parsed.model_type.c_str(),
                        expected_model_type.c_str()));
        return stream.good() ? module.Load(stream) : Status::IoError("bad stream");
      });
}

std::string EncodeCascnConfig(const CascnConfig& config) {
  std::ostringstream out;
  out << "variant=" << static_cast<int>(config.variant) << "\n";
  out << "padded_size=" << config.padded_size << "\n";
  out << "hidden_dim=" << config.hidden_dim << "\n";
  out << "cheb_order=" << config.cheb_order << "\n";
  out << "max_sequence_length=" << config.max_sequence_length << "\n";
  out << "num_time_intervals=" << config.num_time_intervals << "\n";
  out << "mlp_hidden1=" << config.mlp_hidden1 << "\n";
  out << "mlp_hidden2=" << config.mlp_hidden2 << "\n";
  out << "attention_pooling=" << (config.attention_pooling ? 1 : 0) << "\n";
  out << "lambda_mode=" << static_cast<int>(config.lambda_mode) << "\n";
  out << StrFormat("caslaplacian_alpha=%.17g\n", config.caslaplacian_alpha);
  out << "seed=" << config.seed << "\n";
  out << "encoding_cache_capacity=" << config.encoding_cache_capacity << "\n";
  return out.str();
}

Result<CascnConfig> ParseCascnConfig(const std::string& text) {
  CascnConfig config;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = Trim(raw_line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return Status::InvalidArgument("malformed config line: " +
                                     std::string(line));
    const std::string key(line.substr(0, eq));
    const std::string_view value = line.substr(eq + 1);
    if (key == "caslaplacian_alpha") {
      CASCN_ASSIGN_OR_RETURN(config.caslaplacian_alpha, ParseDouble(value));
      continue;
    }
    CASCN_ASSIGN_OR_RETURN(const int64_t v, ParseInt64(value));
    if (key == "variant") {
      if (v < 0 || v > static_cast<int>(CascnVariant::kNoTimeDecay))
        return Status::InvalidArgument(
            StrFormat("unknown CasCN variant %lld", static_cast<long long>(v)));
      config.variant = static_cast<CascnVariant>(v);
    } else if (key == "padded_size") {
      config.padded_size = static_cast<int>(v);
    } else if (key == "hidden_dim") {
      config.hidden_dim = static_cast<int>(v);
    } else if (key == "cheb_order") {
      config.cheb_order = static_cast<int>(v);
    } else if (key == "max_sequence_length") {
      config.max_sequence_length = static_cast<int>(v);
    } else if (key == "num_time_intervals") {
      config.num_time_intervals = static_cast<int>(v);
    } else if (key == "mlp_hidden1") {
      config.mlp_hidden1 = static_cast<int>(v);
    } else if (key == "mlp_hidden2") {
      config.mlp_hidden2 = static_cast<int>(v);
    } else if (key == "attention_pooling") {
      config.attention_pooling = v != 0;
    } else if (key == "lambda_mode") {
      if (v < 0 || v > static_cast<int>(LambdaMaxMode::kApproximateTwo))
        return Status::InvalidArgument(
            StrFormat("unknown lambda mode %lld", static_cast<long long>(v)));
      config.lambda_mode = static_cast<LambdaMaxMode>(v);
    } else if (key == "seed") {
      config.seed = static_cast<uint64_t>(v);
    } else if (key == "encoding_cache_capacity") {
      config.encoding_cache_capacity = static_cast<int>(v);
    } else {
      return Status::InvalidArgument("unknown CasCN config key: " + key);
    }
  }
  return config;
}

Status SaveCascnCheckpoint(const std::string& path, const CascnModel& model) {
  return WriteCheckpointFile(path, kCascnModelType,
                             EncodeCascnConfig(model.config()), model,
                             model.output_offset());
}

Result<std::unique_ptr<CascnModel>> LoadCascnCheckpoint(
    const std::string& path) {
  CASCN_RETURN_IF_ERROR(fault::InjectStatus(kFaultCheckpointLoadFail));
  fault::MaybeDelay(kFaultCheckpointLoadSlow);
  CASCN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  CASCN_RETURN_IF_ERROR(VerifyCheckpointBytes(bytes, path));
  std::unique_ptr<CascnModel> model;
  CASCN_RETURN_IF_ERROR(ParseCheckpointBytes(
      bytes, path, nullptr,
      [&](std::istream& stream, const CheckpointHeader& parsed) -> Status {
        if (parsed.model_type != kCascnModelType)
          return Status::InvalidArgument(
              StrFormat("checkpoint holds a '%s' model, expected '%s'",
                        parsed.model_type.c_str(), kCascnModelType));
        CASCN_ASSIGN_OR_RETURN(const CascnConfig config,
                               ParseCascnConfig(parsed.config_text));
        model = std::make_unique<CascnModel>(config);
        CASCN_RETURN_IF_ERROR(model->Load(stream));
        model->set_output_offset(parsed.output_offset);
        return Status::OK();
      }));
  return model;
}

}  // namespace cascn::serve
