#include "serve/checkpoint.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace cascn::serve {

namespace {

constexpr uint32_t kMaxStringLength = 1 << 20;  // 1 MiB: headers are tiny

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ReadU32(std::istream& in, uint32_t* v, const char* what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in.good())
    return Status::IoError(StrFormat("checkpoint truncated reading %s", what));
  return Status::OK();
}

Status ReadString(std::istream& in, std::string* s, const char* what) {
  uint32_t len = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &len, what));
  if (len > kMaxStringLength)
    return Status::IoError(
        StrFormat("checkpoint %s length %u is implausible", what, len));
  s->assign(len, '\0');
  in.read(s->data(), static_cast<std::streamsize>(len));
  if (!in.good())
    return Status::IoError(StrFormat("checkpoint truncated reading %s", what));
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(std::ostream& out, const std::string& model_type,
                       const std::string& config_text,
                       const nn::Module& module, double output_offset) {
  WriteU32(out, kCheckpointMagic);
  WriteU32(out, kCheckpointVersion);
  WriteString(out, model_type);
  WriteString(out, config_text);
  out.write(reinterpret_cast<const char*>(&output_offset),
            sizeof(output_offset));
  if (!out.good()) return Status::IoError("failed writing checkpoint header");
  CASCN_RETURN_IF_ERROR(module.Save(out));
  WriteU32(out, kCheckpointFooter);
  if (!out.good()) return Status::IoError("failed writing checkpoint footer");
  return Status::OK();
}

Status WriteCheckpointFile(const std::string& path,
                           const std::string& model_type,
                           const std::string& config_text,
                           const nn::Module& module, double output_offset) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open())
    return Status::IoError("cannot open checkpoint for writing: " + path);
  CASCN_RETURN_IF_ERROR(
      WriteCheckpoint(out, model_type, config_text, module, output_offset));
  out.flush();
  if (!out.good())
    return Status::IoError("failed flushing checkpoint: " + path);
  return Status::OK();
}

Result<CheckpointHeader> ReadCheckpointHeader(std::istream& in) {
  uint32_t magic = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &magic, "magic"));
  if (magic != kCheckpointMagic)
    return Status::InvalidArgument(
        StrFormat("not a CasCN checkpoint (magic 0x%08x)", magic));
  CheckpointHeader header;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &header.version, "version"));
  if (header.version != kCheckpointVersion)
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %u (supported: %u)",
                  header.version, kCheckpointVersion));
  CASCN_RETURN_IF_ERROR(ReadString(in, &header.model_type, "model type"));
  CASCN_RETURN_IF_ERROR(ReadString(in, &header.config_text, "config block"));
  in.read(reinterpret_cast<char*>(&header.output_offset),
          sizeof(header.output_offset));
  if (!in.good())
    return Status::IoError("checkpoint truncated reading output offset");
  return header;
}

Result<CheckpointHeader> ReadCheckpointHeaderFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status::IoError("cannot open checkpoint: " + path);
  return ReadCheckpointHeader(in);
}

Status LoadCheckpointInto(std::istream& in,
                          const std::string& expected_model_type,
                          nn::Module& module, CheckpointHeader* header) {
  CASCN_ASSIGN_OR_RETURN(CheckpointHeader parsed, ReadCheckpointHeader(in));
  if (parsed.model_type != expected_model_type)
    return Status::InvalidArgument(
        StrFormat("checkpoint holds a '%s' model, expected '%s'",
                  parsed.model_type.c_str(), expected_model_type.c_str()));
  CASCN_RETURN_IF_ERROR(module.Load(in));
  uint32_t footer = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &footer, "footer"));
  if (footer != kCheckpointFooter)
    return Status::IoError(
        StrFormat("checkpoint footer mismatch (0x%08x): truncated or "
                  "corrupt parameter payload",
                  footer));
  if (header != nullptr) *header = std::move(parsed);
  return Status::OK();
}

Status LoadCheckpointIntoFile(const std::string& path,
                              const std::string& expected_model_type,
                              nn::Module& module, CheckpointHeader* header) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status::IoError("cannot open checkpoint: " + path);
  return LoadCheckpointInto(in, expected_model_type, module, header);
}

std::string EncodeCascnConfig(const CascnConfig& config) {
  std::ostringstream out;
  out << "variant=" << static_cast<int>(config.variant) << "\n";
  out << "padded_size=" << config.padded_size << "\n";
  out << "hidden_dim=" << config.hidden_dim << "\n";
  out << "cheb_order=" << config.cheb_order << "\n";
  out << "max_sequence_length=" << config.max_sequence_length << "\n";
  out << "num_time_intervals=" << config.num_time_intervals << "\n";
  out << "mlp_hidden1=" << config.mlp_hidden1 << "\n";
  out << "mlp_hidden2=" << config.mlp_hidden2 << "\n";
  out << "attention_pooling=" << (config.attention_pooling ? 1 : 0) << "\n";
  out << "lambda_mode=" << static_cast<int>(config.lambda_mode) << "\n";
  out << StrFormat("caslaplacian_alpha=%.17g\n", config.caslaplacian_alpha);
  out << "seed=" << config.seed << "\n";
  out << "encoding_cache_capacity=" << config.encoding_cache_capacity << "\n";
  return out.str();
}

Result<CascnConfig> ParseCascnConfig(const std::string& text) {
  CascnConfig config;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = Trim(raw_line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return Status::InvalidArgument("malformed config line: " +
                                     std::string(line));
    const std::string key(line.substr(0, eq));
    const std::string_view value = line.substr(eq + 1);
    if (key == "caslaplacian_alpha") {
      CASCN_ASSIGN_OR_RETURN(config.caslaplacian_alpha, ParseDouble(value));
      continue;
    }
    CASCN_ASSIGN_OR_RETURN(const int64_t v, ParseInt64(value));
    if (key == "variant") {
      if (v < 0 || v > static_cast<int>(CascnVariant::kNoTimeDecay))
        return Status::InvalidArgument(
            StrFormat("unknown CasCN variant %lld", static_cast<long long>(v)));
      config.variant = static_cast<CascnVariant>(v);
    } else if (key == "padded_size") {
      config.padded_size = static_cast<int>(v);
    } else if (key == "hidden_dim") {
      config.hidden_dim = static_cast<int>(v);
    } else if (key == "cheb_order") {
      config.cheb_order = static_cast<int>(v);
    } else if (key == "max_sequence_length") {
      config.max_sequence_length = static_cast<int>(v);
    } else if (key == "num_time_intervals") {
      config.num_time_intervals = static_cast<int>(v);
    } else if (key == "mlp_hidden1") {
      config.mlp_hidden1 = static_cast<int>(v);
    } else if (key == "mlp_hidden2") {
      config.mlp_hidden2 = static_cast<int>(v);
    } else if (key == "attention_pooling") {
      config.attention_pooling = v != 0;
    } else if (key == "lambda_mode") {
      if (v < 0 || v > static_cast<int>(LambdaMaxMode::kApproximateTwo))
        return Status::InvalidArgument(
            StrFormat("unknown lambda mode %lld", static_cast<long long>(v)));
      config.lambda_mode = static_cast<LambdaMaxMode>(v);
    } else if (key == "seed") {
      config.seed = static_cast<uint64_t>(v);
    } else if (key == "encoding_cache_capacity") {
      config.encoding_cache_capacity = static_cast<int>(v);
    } else {
      return Status::InvalidArgument("unknown CasCN config key: " + key);
    }
  }
  return config;
}

Status SaveCascnCheckpoint(const std::string& path, const CascnModel& model) {
  return WriteCheckpointFile(path, kCascnModelType,
                             EncodeCascnConfig(model.config()), model,
                             model.output_offset());
}

Result<std::unique_ptr<CascnModel>> LoadCascnCheckpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status::IoError("cannot open checkpoint: " + path);
  CASCN_ASSIGN_OR_RETURN(const CheckpointHeader header,
                         ReadCheckpointHeader(in));
  if (header.model_type != kCascnModelType)
    return Status::InvalidArgument(
        StrFormat("checkpoint holds a '%s' model, expected '%s'",
                  header.model_type.c_str(), kCascnModelType));
  CASCN_ASSIGN_OR_RETURN(const CascnConfig config,
                         ParseCascnConfig(header.config_text));
  auto model = std::make_unique<CascnModel>(config);
  CASCN_RETURN_IF_ERROR(model->Load(in));
  uint32_t footer = 0;
  CASCN_RETURN_IF_ERROR(ReadU32(in, &footer, "footer"));
  if (footer != kCheckpointFooter)
    return Status::IoError(
        StrFormat("checkpoint footer mismatch (0x%08x): truncated or "
                  "corrupt parameter payload",
                  footer));
  model->set_output_offset(header.output_offset);
  return model;
}

}  // namespace cascn::serve
