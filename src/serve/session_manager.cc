#include "serve/session_manager.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace cascn::serve {

SessionManager::SessionManager(const SessionManagerOptions& options,
                               ServeMetrics* metrics)
    : options_(options), metrics_(metrics) {
  CASCN_CHECK(options.capacity >= 1);
  CASCN_CHECK(options.observation_window > 0);
}

std::shared_ptr<SessionManager::Session> SessionManager::Acquire(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return nullptr;
  ++it->second->pins;
  lru_.splice(lru_.begin(), lru_, it->second->lru_it);
  return it->second;
}

void SessionManager::Release(Session& session) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  --session.pins;
}

Status SessionManager::Create(const std::string& session_id, int root_user) {
  auto session = std::make_shared<Session>();
  AdoptionEvent root;
  root.node = 0;
  root.user = root_user;
  root.time = 0.0;
  session->events.push_back(root);

  std::lock_guard<std::mutex> lock(map_mutex_);
  if (sessions_.count(session_id) > 0)
    return Status::InvalidArgument("session already exists: " + session_id);
  if (sessions_.size() >= options_.capacity) {
    // Evict the least-recently-used idle session. Iterating from the LRU
    // tail skips sessions with an operation in flight (pinned).
    CASCN_TRACE_SPAN("session_evict");
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto candidate = sessions_.find(*it);
      CASCN_CHECK(candidate != sessions_.end());
      if (candidate->second->pins > 0) continue;
      lru_.erase(std::next(it).base());
      sessions_.erase(candidate);
      Record(Counter::kEvictions);
      evicted = true;
      break;
    }
    if (!evicted)
      return Status::Unavailable(
          "session table full and every session is busy");
  }
  lru_.push_front(session_id);
  session->lru_it = lru_.begin();
  sessions_.emplace(session_id, std::move(session));
  Record(Counter::kSessionsCreated);
  return Status::OK();
}

Status SessionManager::Append(const std::string& session_id, int user,
                              int parent_node, double time) {
  std::shared_ptr<Session> session = Acquire(session_id);
  if (session == nullptr)
    return Status::NotFound("unknown session: " + session_id);
  Status status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (parent_node < 0 ||
        parent_node >= static_cast<int>(session->events.size())) {
      status = Status::InvalidArgument(
          StrFormat("unknown parent node %d", parent_node));
    } else if (time < session->events.back().time) {
      status =
          Status::InvalidArgument("adoption times must be non-decreasing");
    } else if (time > options_.observation_window) {
      status = Status::OutOfRange("adoption outside the observation window");
    } else {
      AdoptionEvent e;
      e.node = static_cast<int>(session->events.size());
      e.user = user;
      e.parents.push_back(parent_node);
      e.time = time;
      session->events.push_back(std::move(e));
      session->sample_stale = true;
      session->cached_prediction.reset();
      Record(Counter::kAppends);
    }
  }
  Release(*session);
  return status;
}

const CascadeSample& SessionManager::CurrentSample(Session& session) const {
  // Pre: session.mutex held.
  if (session.sample_stale) {
    auto cascade = Cascade::Create("session", session.events);
    CASCN_CHECK(cascade.ok()) << cascade.status();
    if (session.sample == nullptr)
      session.sample = std::make_unique<CascadeSample>();
    session.sample->observed = std::move(cascade).value();
    session.sample->observation_window = options_.observation_window;
    session.sample_stale = false;
  }
  return *session.sample;
}

Result<double> SessionManager::PredictLog(const std::string& session_id,
                                          CascadeRegressor& model) {
  std::shared_ptr<Session> session = Acquire(session_id);
  if (session == nullptr)
    return Status::NotFound("unknown session: " + session_id);
  double prediction = 0.0;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->cached_prediction.has_value()) {
      Record(Counter::kPredictionCacheHits);
      prediction = *session->cached_prediction;
    } else {
      const CascadeSample& sample = CurrentSample(*session);
      prediction = model.PredictLogCalibrated(sample).value().At(0, 0);
      session->cached_prediction = prediction;
    }
    Record(Counter::kPredictions);
  }
  Release(*session);
  return prediction;
}

Status SessionManager::Close(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return Status::NotFound("unknown session: " + session_id);
  // An in-flight operation keeps the Session alive through its shared_ptr
  // and completes on the detached object.
  lru_.erase(it->second->lru_it);
  sessions_.erase(it);
  Record(Counter::kSessionsClosed);
  return Status::OK();
}

void SessionManager::InvalidateCachedPredictions() {
  // Collect under the map lock, reset under each session's own lock: no
  // path may hold a session mutex while taking map_mutex_, and this keeps
  // the inverse order out of the lock graph too.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->cached_prediction.reset();
  }
}

Result<int> SessionManager::SessionSize(const std::string& session_id) const {
  std::shared_ptr<Session> session = Acquire(session_id);
  if (session == nullptr)
    return Status::NotFound("unknown session: " + session_id);
  int size = 0;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    size = static_cast<int>(session->events.size());
  }
  Release(*session);
  return size;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return sessions_.size();
}

}  // namespace cascn::serve
