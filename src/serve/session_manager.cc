#include "serve/session_manager.h"

#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace cascn::serve {

namespace {

// Serialized-session layout (all little-endian, as written by the host):
//   uint32  magic 0x53455353 ("SESS")
//   uint32  version (kSessionBlobVersion)
//   uint32  event count
//   per event: int32 node, int32 user, uint32 parent count, int32 parents...,
//              double time
//   uint32  CRC-32 of every preceding byte
constexpr uint32_t kSessionBlobMagic = 0x53455353;
constexpr uint32_t kSessionBlobVersion = 1;
constexpr uint32_t kMaxBlobEvents = 1u << 24;  // 16M events is implausible

void AppendRaw(std::string& out, const void* data, size_t len) {
  out.append(reinterpret_cast<const char*>(data), len);
}

void AppendU32(std::string& out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI32(std::string& out, int32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendF64(std::string& out, double v) { AppendRaw(out, &v, sizeof(v)); }

/// Cursor over a blob; every read is bounds-checked so a truncated blob
/// fails with a Status instead of reading past the end.
struct BlobReader {
  const std::string& bytes;
  size_t pos = 0;

  Status Read(void* dst, size_t len, const char* what) {
    if (pos + len > bytes.size())
      return Status::IoError(
          StrFormat("session blob truncated reading %s", what));
    std::memcpy(dst, bytes.data() + pos, len);
    pos += len;
    return Status::OK();
  }
};

std::string SerializeAdoptionEvents(const std::vector<AdoptionEvent>& events) {
  std::string out;
  AppendU32(out, kSessionBlobMagic);
  AppendU32(out, kSessionBlobVersion);
  AppendU32(out, static_cast<uint32_t>(events.size()));
  for (const AdoptionEvent& e : events) {
    AppendI32(out, e.node);
    AppendI32(out, e.user);
    AppendU32(out, static_cast<uint32_t>(e.parents.size()));
    for (int parent : e.parents) AppendI32(out, parent);
    AppendF64(out, e.time);
  }
  const uint32_t crc = Crc32(out);
  AppendU32(out, crc);
  return out;
}

Result<std::vector<AdoptionEvent>> ParseAdoptionEvents(
    const std::string& blob) {
  if (blob.size() < 4 * sizeof(uint32_t))
    return Status::IoError(StrFormat(
        "session blob of %zu bytes is too short", blob.size()));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t computed =
      Crc32(blob.data(), blob.size() - sizeof(stored_crc));
  if (stored_crc != computed)
    return Status::IoError(StrFormat(
        "session blob checksum mismatch (stored 0x%08x, computed 0x%08x): "
        "torn or corrupt blob",
        stored_crc, computed));

  BlobReader reader{blob};
  uint32_t magic = 0;
  CASCN_RETURN_IF_ERROR(reader.Read(&magic, sizeof(magic), "magic"));
  if (magic != kSessionBlobMagic)
    return Status::IoError(
        StrFormat("not a session blob (magic 0x%08x)", magic));
  uint32_t version = 0;
  CASCN_RETURN_IF_ERROR(reader.Read(&version, sizeof(version), "version"));
  if (version != kSessionBlobVersion)
    return Status::IoError(
        StrFormat("unsupported session blob version %u", version));
  uint32_t count = 0;
  CASCN_RETURN_IF_ERROR(reader.Read(&count, sizeof(count), "event count"));
  if (count == 0 || count > kMaxBlobEvents)
    return Status::IoError(
        StrFormat("implausible session blob event count %u", count));

  std::vector<AdoptionEvent> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AdoptionEvent e;
    int32_t node = 0, user = 0;
    CASCN_RETURN_IF_ERROR(reader.Read(&node, sizeof(node), "node"));
    CASCN_RETURN_IF_ERROR(reader.Read(&user, sizeof(user), "user"));
    e.node = node;
    e.user = user;
    uint32_t num_parents = 0;
    CASCN_RETURN_IF_ERROR(
        reader.Read(&num_parents, sizeof(num_parents), "parent count"));
    if (num_parents > count)
      return Status::IoError(
          StrFormat("implausible parent count %u", num_parents));
    e.parents.reserve(num_parents);
    for (uint32_t p = 0; p < num_parents; ++p) {
      int32_t parent = 0;
      CASCN_RETURN_IF_ERROR(reader.Read(&parent, sizeof(parent), "parent"));
      e.parents.push_back(parent);
    }
    CASCN_RETURN_IF_ERROR(reader.Read(&e.time, sizeof(e.time), "time"));
    events.push_back(std::move(e));
  }
  if (reader.pos != blob.size() - sizeof(stored_crc))
    return Status::IoError("session blob has trailing bytes");
  return events;
}

}  // namespace

SessionManager::SessionManager(const SessionManagerOptions& options,
                               ServeMetrics* metrics)
    : options_(options), metrics_(metrics) {
  CASCN_CHECK(options.capacity >= 1);
  CASCN_CHECK(options.observation_window > 0);
}

void SessionManager::DropSpillLocked(const std::string& session_id) const {
  auto it = spill_.find(session_id);
  if (it == spill_.end()) return;
  spill_lru_.erase(it->second.lru_it);
  spill_.erase(it);
}

Status SessionManager::InsertLocked(
    const std::string& session_id, std::shared_ptr<Session> session) const {
  // Pre: map_mutex_ held, session_id not in sessions_.
  if (sessions_.size() >= options_.capacity) {
    // Evict the least-recently-used idle session. Iterating from the LRU
    // tail skips sessions with an operation in flight (pinned).
    CASCN_TRACE_SPAN("session_evict");
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto candidate = sessions_.find(*it);
      CASCN_CHECK(candidate != sessions_.end());
      if (candidate->second->pins > 0) continue;
      if (options_.spill_capacity > 0) {
        // pins == 0 under map_mutex_ means no thread is inside the session
        // (and the releasing thread's writes are visible through the mutex),
        // so its events can be read without taking the session mutex —
        // which keeps session mutexes out of map_mutex_'s lock graph.
        DropSpillLocked(*it);
        spill_lru_.push_front(*it);
        Spilled spilled;
        spilled.blob = SerializeAdoptionEvents(candidate->second->events);
        spilled.lru_it = spill_lru_.begin();
        spill_.emplace(*it, std::move(spilled));
        while (spill_.size() > options_.spill_capacity) {
          // Capacity-driven session loss: the oldest spilled history is
          // gone for good. Make it observable — operators otherwise have
          // no signal that the zero-loss story stopped holding.
          const std::string dropped = spill_lru_.back();
          spill_.erase(dropped);
          spill_lru_.pop_back();
          Record(Counter::kSpillDropped);
          CASCN_LOG(WARNING)
              << "spill table full (" << options_.spill_capacity
              << " blobs): discarding spilled history of session '" << dropped
              << "'";
          if (options_.on_spill_drop) options_.on_spill_drop(dropped);
        }
        Record(Counter::kSpilled);
      }
      lru_.erase(std::next(it).base());
      sessions_.erase(candidate);
      Record(Counter::kEvictions);
      evicted = true;
      break;
    }
    if (!evicted)
      return Status::Unavailable(
          "session table full and every session is busy");
  }
  lru_.push_front(session_id);
  session->lru_it = lru_.begin();
  sessions_.emplace(session_id, std::move(session));
  return Status::OK();
}

Result<std::shared_ptr<SessionManager::Session>> SessionManager::Acquire(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // A spilled session is transparently restored: the caller keeps its
    // cascade history as if the eviction never happened.
    auto spilled = spill_.find(session_id);
    if (spilled == spill_.end())
      return Status::NotFound("unknown session: " + session_id);
    auto events = ParseAdoptionEvents(spilled->second.blob);
    CASCN_CHECK(events.ok()) << "corrupt spill blob for session "
                             << session_id << ": " << events.status();
    auto session = std::make_shared<Session>();
    session->events = std::move(events).value();
    // Set the blob aside rather than discarding it: dropping it before the
    // insert keeps the restored id from LRU-evicting its own spill entry,
    // and putting it back on insert failure keeps the no-loss guarantee
    // (insert fails only when every live session is busy, so nothing was
    // evicted and the freed spill slot is still free).
    std::string blob = std::move(spilled->second.blob);
    DropSpillLocked(session_id);
    const Status inserted = InsertLocked(session_id, std::move(session));
    if (!inserted.ok()) {
      spill_lru_.push_front(session_id);
      Spilled keep;
      keep.blob = std::move(blob);
      keep.lru_it = spill_lru_.begin();
      spill_.emplace(session_id, std::move(keep));
      return inserted;  // Unavailable: transient, the history is intact
    }
    Record(Counter::kSpillRestores);
    it = sessions_.find(session_id);
    CASCN_CHECK(it != sessions_.end());
  }
  ++it->second->pins;
  lru_.splice(lru_.begin(), lru_, it->second->lru_it);
  return it->second;
}

void SessionManager::Release(Session& session) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  --session.pins;
}

Status SessionManager::Create(const std::string& session_id, int root_user) {
  auto session = std::make_shared<Session>();
  AdoptionEvent root;
  root.node = 0;
  root.user = root_user;
  root.time = 0.0;
  session->events.push_back(root);

  std::lock_guard<std::mutex> lock(map_mutex_);
  if (sessions_.count(session_id) > 0)
    return Status::InvalidArgument("session already exists: " + session_id);
  // An explicit re-create starts a fresh cascade: the spilled history (if
  // any) must not resurrect under it.
  DropSpillLocked(session_id);
  CASCN_RETURN_IF_ERROR(InsertLocked(session_id, std::move(session)));
  Record(Counter::kSessionsCreated);
  return Status::OK();
}

Status SessionManager::Append(const std::string& session_id, int user,
                              int parent_node, double time) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         Acquire(session_id));
  Status status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (parent_node < 0 ||
        parent_node >= static_cast<int>(session->events.size())) {
      status = Status::InvalidArgument(
          StrFormat("unknown parent node %d", parent_node));
    } else if (time < session->events.back().time) {
      status =
          Status::InvalidArgument("adoption times must be non-decreasing");
    } else if (time > options_.observation_window) {
      status = Status::OutOfRange("adoption outside the observation window");
    } else {
      AdoptionEvent e;
      e.node = static_cast<int>(session->events.size());
      e.user = user;
      e.parents.push_back(parent_node);
      e.time = time;
      session->events.push_back(std::move(e));
      session->sample_stale = true;
      session->cached_prediction.reset();
      Record(Counter::kAppends);
    }
  }
  Release(*session);
  return status;
}

const CascadeSample& SessionManager::CurrentSample(Session& session) const {
  // Pre: session.mutex held.
  if (session.sample_stale) {
    auto cascade = Cascade::Create("session", session.events);
    CASCN_CHECK(cascade.ok()) << cascade.status();
    if (session.sample == nullptr)
      session.sample = std::make_unique<CascadeSample>();
    session.sample->observed = std::move(cascade).value();
    session.sample->observation_window = options_.observation_window;
    session.sample_stale = false;
  }
  return *session.sample;
}

Result<double> SessionManager::PredictLog(const std::string& session_id,
                                          CascadeRegressor& model) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         Acquire(session_id));
  double prediction = 0.0;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->cached_prediction.has_value()) {
      Record(Counter::kPredictionCacheHits);
      prediction = *session->cached_prediction;
    } else {
      const CascadeSample& sample = CurrentSample(*session);
      prediction = model.PredictLogCalibrated(sample).value().At(0, 0);
      session->cached_prediction = prediction;
    }
    Record(Counter::kPredictions);
  }
  Release(*session);
  return prediction;
}

Status SessionManager::Close(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  DropSpillLocked(session_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return Status::NotFound("unknown session: " + session_id);
  // An in-flight operation keeps the Session alive through its shared_ptr
  // and completes on the detached object.
  lru_.erase(it->second->lru_it);
  sessions_.erase(it);
  Record(Counter::kSessionsClosed);
  return Status::OK();
}

void SessionManager::InvalidateCachedPredictions() {
  // Collect under the map lock, reset under each session's own lock: no
  // path may hold a session mutex while taking map_mutex_, and this keeps
  // the inverse order out of the lock graph too.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->cached_prediction.reset();
  }
}

Result<int> SessionManager::SessionSize(const std::string& session_id) const {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         Acquire(session_id));
  int size = 0;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    size = static_cast<int>(session->events.size());
  }
  Release(*session);
  return size;
}

Result<std::string> SessionManager::Serialize(
    const std::string& session_id) const {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         Acquire(session_id));
  std::string blob;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    blob = SerializeAdoptionEvents(session->events);
  }
  Release(*session);
  return blob;
}

Status SessionManager::Deserialize(const std::string& session_id,
                                   const std::string& blob) {
  CASCN_ASSIGN_OR_RETURN(std::vector<AdoptionEvent> events,
                         ParseAdoptionEvents(blob));
  // Validate the structure exactly as a live session would build it, so a
  // syntactically valid blob with impossible events (bad parent indices,
  // time regressions) is rejected here instead of crashing a later predict.
  {
    auto cascade = Cascade::Create(session_id, events);
    if (!cascade.ok())
      return Status::InvalidArgument("session blob fails cascade validation: " +
                                     cascade.status().message());
  }
  auto session = std::make_shared<Session>();
  session->events = std::move(events);

  std::lock_guard<std::mutex> lock(map_mutex_);
  if (sessions_.count(session_id) > 0)
    return Status::InvalidArgument("session already exists: " + session_id);
  DropSpillLocked(session_id);
  return InsertLocked(session_id, std::move(session));
}

Result<std::string> SessionManager::Extract(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // A spilled session can be handed off directly: the blob format is the
    // same.
    auto spilled = spill_.find(session_id);
    if (spilled == spill_.end())
      return Status::NotFound("unknown session: " + session_id);
    std::string blob = std::move(spilled->second.blob);
    DropSpillLocked(session_id);
    return blob;
  }
  if (it->second->pins > 0)
    return Status::Unavailable("session is busy: " + session_id);
  // pins == 0 under map_mutex_: safe to read events without the session
  // mutex (see InsertLocked).
  std::string blob = SerializeAdoptionEvents(it->second->events);
  lru_.erase(it->second->lru_it);
  sessions_.erase(it);
  DropSpillLocked(session_id);
  return blob;
}

std::vector<std::string> SessionManager::SessionIds() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size() + spill_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  for (const auto& [id, spilled] : spill_) ids.push_back(id);
  return ids;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return sessions_.size();
}

}  // namespace cascn::serve
