// PredictionService: the multi-threaded front end of the serving subsystem.
//
// Requests (create / append / predict / close) enter a bounded FIFO queue
// and are drained by worker threads drawn from a ThreadPool. Each worker
// owns a private model replica (loaded from the same checkpoint), so
// forward passes never share mutable model state; session state is shared
// through the SessionManager's per-session locks.
//
// Micro-batching: a worker drains up to `max_batch` queued requests in one
// critical section and processes them together; duplicate predict requests
// for the same session inside a batch are computed once. Backpressure: when
// the queue is full, submission fails fast with Unavailable instead of
// blocking unboundedly. Shutdown() stops intake, drains every queued
// request (each still receives a response), and joins the workers.

#ifndef CASCN_SERVE_PREDICTION_SERVICE_H_
#define CASCN_SERVE_PREDICTION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/regressor.h"
#include "parallel/thread_pool.h"
#include "obs/metrics_registry.h"
#include "serve/metrics.h"
#include "serve/session_manager.h"

namespace cascn::serve {

struct ServiceOptions {
  /// Worker threads (and model replicas); >= 1.
  int num_workers = 4;
  /// Bounded request queue; submissions beyond this fail with Unavailable.
  size_t queue_capacity = 4096;
  /// Max requests one worker drains per critical section; >= 1.
  int max_batch = 16;
  SessionManagerOptions sessions;
};

/// Outcome of one request. `log_prediction`/`count_prediction` are set only
/// for successful predict requests.
struct ServeResponse {
  Status status;
  double log_prediction = 0.0;
  double count_prediction = 0.0;
};

/// Multi-threaded, in-process cascade prediction service.
class PredictionService {
 public:
  /// Produces one model replica per worker. Replicas must be functionally
  /// identical (e.g. loaded from the same checkpoint): predictions are
  /// cached per session regardless of which replica computed them.
  using ModelFactory =
      std::function<Result<std::unique_ptr<CascadeRegressor>>()>;

  /// Builds the service and starts its workers.
  static Result<std::unique_ptr<PredictionService>> Create(
      const ServiceOptions& options, const ModelFactory& factory);

  /// Convenience: every replica is loaded from a CasCN checkpoint file.
  static Result<std::unique_ptr<PredictionService>> CreateFromCheckpoint(
      const ServiceOptions& options, const std::string& checkpoint_path);

  ~PredictionService();  // implies Shutdown()

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Async submission. The future always becomes ready (also during
  /// shutdown drain). Fails fast with Unavailable when the queue is full or
  /// the service is shutting down.
  Result<std::future<ServeResponse>> SubmitCreate(std::string session_id,
                                                  int root_user);
  Result<std::future<ServeResponse>> SubmitAppend(std::string session_id,
                                                  int user, int parent_node,
                                                  double time);
  Result<std::future<ServeResponse>> SubmitPredict(std::string session_id);
  Result<std::future<ServeResponse>> SubmitClose(std::string session_id);

  /// Blocking conveniences (submit + wait).
  ServeResponse CallCreate(std::string session_id, int root_user);
  ServeResponse CallAppend(std::string session_id, int user, int parent_node,
                           double time);
  ServeResponse CallPredict(std::string session_id);
  ServeResponse CallClose(std::string session_id);

  /// Stops intake, processes every queued request, joins workers.
  /// Idempotent.
  void Shutdown();

  const ServeMetrics& metrics() const { return metrics_; }
  /// Service-local observability registry: `serve_queue_depth` gauge and
  /// `serve_batch_size` histogram, maintained live by the workers. Bridge
  /// the ServeMetrics snapshot in with serve::ExportToRegistry() for one
  /// unified exposition.
  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::MetricsRegistry& registry() { return registry_; }
  SessionManager& sessions() { return *sessions_; }
  int num_workers() const { return static_cast<int>(models_.size()); }

 private:
  enum class RequestType { kCreate, kAppend, kPredict, kClose };

  struct Request {
    RequestType type;
    std::string session_id;
    int user = 0;
    int parent_node = 0;
    double time = 0.0;
    std::chrono::steady_clock::time_point enqueue_time;
    std::promise<ServeResponse> promise;
  };

  explicit PredictionService(const ServiceOptions& options);

  Result<std::future<ServeResponse>> Enqueue(Request request);
  ServeResponse Execute(const Request& request, CascadeRegressor& model);
  void WorkerLoop(int worker_index);

  ServiceOptions options_;
  ServeMetrics metrics_;
  obs::MetricsRegistry registry_;
  obs::Gauge& queue_depth_;        // owned by registry_
  obs::Histogram& batch_size_;     // owned by registry_
  std::unique_ptr<SessionManager> sessions_;
  std::vector<std::unique_ptr<CascadeRegressor>> models_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool shutting_down_ = false;

  // Declared last so workers (which reference everything above) stop before
  // any other member is destroyed.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace cascn::serve

#endif  // CASCN_SERVE_PREDICTION_SERVICE_H_
