// PredictionService: the multi-threaded front end of the serving subsystem.
//
// Requests (create / append / predict / close) enter a bounded FIFO queue
// and are drained by worker threads drawn from a ThreadPool. Each worker
// owns a private model replica (loaded from the same checkpoint), so
// forward passes never share mutable model state; session state is shared
// through the SessionManager's per-session locks.
//
// Micro-batching: a worker drains up to `max_batch` queued requests in one
// critical section and processes them together; duplicate predict requests
// for the same session inside a batch are computed once. Backpressure: when
// the queue is full, submission fails fast with Unavailable instead of
// blocking unboundedly.
//
// Self-healing:
//  - Deadlines: a request carrying a deadline that expires before a worker
//    reaches it fails fast with DeadlineExceeded instead of occupying the
//    worker (the "serve.slow_predict" fault point exercises this).
//  - Retrying loads: CreateFromCheckpoint retries failed checkpoint loads
//    with exponential backoff (`load_retries`/`load_retry_backoff_ms`).
//  - Hot reload: ReloadCheckpoint() validates a new checkpoint by loading
//    one replica first; on any failure the old replicas keep serving and
//    health drops to kDegraded. On success every replica is swapped and
//    per-session prediction caches are invalidated.
//  - Health: metrics().health() reports kHealthy / kDegraded / kUnhealthy.
//
// Shutdown() stops intake, lets workers finish the batches they hold, fails
// every still-queued request with a status naming the shutdown, and joins
// the workers. It is idempotent and safe to call concurrently; the
// destructor implies it.

#ifndef CASCN_SERVE_PREDICTION_SERVICE_H_
#define CASCN_SERVE_PREDICTION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/regressor.h"
#include "parallel/thread_pool.h"
#include "obs/debug_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/request_context.h"
#include "obs/watchdog.h"
#include "serve/metrics.h"
#include "serve/session_manager.h"

namespace cascn::serve {

struct ServiceOptions {
  /// Worker threads (and model replicas); >= 1.
  int num_workers = 4;
  /// Bounded request queue; submissions beyond this fail with Unavailable.
  size_t queue_capacity = 4096;
  /// Max requests one worker drains per critical section; >= 1.
  int max_batch = 16;
  /// Deadline applied to requests submitted without one, in milliseconds;
  /// 0 disables. A request whose deadline passes before a worker reaches it
  /// fails with DeadlineExceeded.
  double default_deadline_ms = 0.0;
  /// Checkpoint-load retries (CreateFromCheckpoint and ReloadCheckpoint):
  /// each failed load is retried up to this many times, sleeping
  /// `load_retry_backoff_ms * 2^attempt` between attempts.
  int load_retries = 0;
  double load_retry_backoff_ms = 10.0;
  /// Additional fault-injection point checked (as a MaybeDelay) on every
  /// predict, besides the global "serve.slow_predict". The cluster layer
  /// sets this to a shard-scoped name ("cluster.slow_shard.<id>") so chaos
  /// runs can slow one shard without touching the others.
  std::string extra_predict_fault_point;
  /// Stamped into every flight-recorder record; -1 = unsharded service.
  int shard_id = -1;
  /// File the flight recorder appends anomaly dumps to (deadline exceeded,
  /// reload rollback); empty disables anomaly dumps (the ring still runs).
  std::string flight_dump_path;
  /// Invoked once per terminal request outcome — worker completion, enqueue
  /// rejection, or shutdown drain — with the request's context, terminal
  /// status, and execution latency (0 for requests never executed). The
  /// cluster layer feeds per-tenant SLIs from this. May be called from
  /// worker threads and from Shutdown(); must not call back into the
  /// service and must outlive it.
  std::function<void(const obs::RequestContext&, const Status&,
                     uint64_t latency_us)>
      on_complete;
  SessionManagerOptions sessions;
};

/// Fault-injection point (src/fault): delays predict execution by the
/// armed @ms payload, forcing deadline misses under test.
inline constexpr char kFaultServeSlowPredict[] = "serve.slow_predict";

/// Outcome of one request. `log_prediction`/`count_prediction` are set only
/// for successful predict requests.
struct ServeResponse {
  Status status;
  double log_prediction = 0.0;
  double count_prediction = 0.0;
  /// Trace id the request executed under (minted at submit when the caller
  /// did not provide a RequestContext); correlates the response with spans
  /// in the Chrome trace and flight-recorder records. 0 only for requests
  /// rejected before a context existed.
  uint64_t trace_id = 0;
  /// Degraded-mode marker: true when the answer came from the router's
  /// last-good prediction cache instead of a live shard (the pinned shard
  /// was down and RouterOptions::allow_stale let the router serve anyway).
  /// `stale_age_ms` is how old the cached answer was when served. A stale
  /// response always carries status OK — staleness is a quality signal, not
  /// an error.
  bool stale = false;
  double stale_age_ms = 0.0;
};

/// Multi-threaded, in-process cascade prediction service.
class PredictionService {
 public:
  /// Produces one model replica per worker. Replicas must be functionally
  /// identical (e.g. loaded from the same checkpoint): predictions are
  /// cached per session regardless of which replica computed them.
  using ModelFactory =
      std::function<Result<std::unique_ptr<CascadeRegressor>>()>;

  /// Builds the service and starts its workers.
  static Result<std::unique_ptr<PredictionService>> Create(
      const ServiceOptions& options, const ModelFactory& factory);

  /// Convenience: every replica is loaded from a CasCN checkpoint file.
  static Result<std::unique_ptr<PredictionService>> CreateFromCheckpoint(
      const ServiceOptions& options, const std::string& checkpoint_path);

  ~PredictionService();  // implies Shutdown()

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Async submission. The future always becomes ready (also during
  /// shutdown drain). Fails fast with Unavailable when the queue is full or
  /// the service is shutting down. `deadline_ms` > 0 sets a per-request
  /// deadline, 0 uses ServiceOptions::default_deadline_ms, < 0 disables the
  /// deadline for this request.
  Result<std::future<ServeResponse>> SubmitCreate(std::string session_id,
                                                  int root_user,
                                                  double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitAppend(std::string session_id,
                                                  int user, int parent_node,
                                                  double time,
                                                  double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitPredict(std::string session_id,
                                                   double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitClose(std::string session_id,
                                                 double deadline_ms = 0.0);

  /// Context-carrying variants: the request is traced, flight-recorded, and
  /// SLI-attributed under `ctx` (trace id, tenant) instead of a context
  /// minted at enqueue. The cluster router mints one context per request at
  /// the edge and passes it down through these.
  Result<std::future<ServeResponse>> SubmitCreate(obs::RequestContext ctx,
                                                  std::string session_id,
                                                  int root_user,
                                                  double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitAppend(obs::RequestContext ctx,
                                                  std::string session_id,
                                                  int user, int parent_node,
                                                  double time,
                                                  double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitPredict(obs::RequestContext ctx,
                                                   std::string session_id,
                                                   double deadline_ms = 0.0);
  Result<std::future<ServeResponse>> SubmitClose(obs::RequestContext ctx,
                                                 std::string session_id,
                                                 double deadline_ms = 0.0);

  /// Blocking conveniences (submit + wait).
  ServeResponse CallCreate(std::string session_id, int root_user);
  ServeResponse CallAppend(std::string session_id, int user, int parent_node,
                           double time);
  ServeResponse CallPredict(std::string session_id);
  ServeResponse CallClose(std::string session_id);

  /// Hot-swaps every replica to `checkpoint_path`. The checkpoint is
  /// validated by loading one replica first (with the configured retries);
  /// any failure leaves the current replicas serving, sets health to
  /// kDegraded, and returns the error. On success all replicas are
  /// replaced, per-session prediction caches are invalidated, and health
  /// returns to kHealthy. Reloads are serialized; safe while serving.
  Status ReloadCheckpoint(const std::string& checkpoint_path);

  /// Current service condition (also in metrics().TakeSnapshot()).
  Health health() const { return metrics_.health(); }

  /// Stops intake, fails still-queued requests with a status naming the
  /// shutdown, joins workers, sets health to kUnhealthy. Idempotent and
  /// safe to call concurrently.
  void Shutdown();

  const ServeMetrics& metrics() const { return metrics_; }
  /// Always-on black box of recent request records; dumps on anomaly
  /// triggers when ServiceOptions::flight_dump_path is set, and on demand.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  obs::FlightRecorder& flight_recorder() { return flight_; }
  /// Service-local observability registry: `serve_queue_depth` gauge and
  /// `serve_batch_size` histogram, maintained live by the workers. Bridge
  /// the ServeMetrics snapshot in with serve::ExportToRegistry() for one
  /// unified exposition.
  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::MetricsRegistry& registry() { return registry_; }
  SessionManager& sessions() { return *sessions_; }
  int num_workers() const { return options_.num_workers; }
  /// Requests currently queued (admission control reads this to shed load
  /// before a shard's queue collapses).
  size_t queue_depth() const;
  size_t queue_capacity() const { return options_.queue_capacity; }
  /// Path the replicas were loaded from; empty when factory-built.
  const std::string& checkpoint_path() const { return checkpoint_path_; }

  /// Liveness stamp: workers bump it once per completed request, so the
  /// count moving is proof the drain loop is making progress. Watchdogs
  /// sample it via MakeWatchdogTarget().
  uint64_t heartbeat_count() const { return heartbeat_.count(); }

  /// Builds a watchdog target for this service: progress is the worker
  /// heartbeat, busy means requests are queued. On stall the service's
  /// health drops to kDegraded and its flight recorder dumps (reason
  /// "watchdog_stall"); on recovery, health returns to kHealthy if (and
  /// only if) the watchdog was what degraded it. The target captures
  /// `this`: stop the watchdog before destroying the service.
  obs::WatchTarget MakeWatchdogTarget(std::string name);

  /// Watchdog health latch, exposed for callers (the shard router) that
  /// build their own WatchTarget around this service: a stall degrades
  /// health (once) and dumps the flight ring; a recovery restores kHealthy
  /// if (and only if) the watchdog was what degraded it.
  void NoteWatchdogStall();
  void NoteWatchdogRecovery();
  /// True while a watchdog stall (and nothing else) holds health degraded.
  /// The shard supervisor polls this to spot wedged-but-alive shards.
  bool watchdog_degraded() const {
    return watchdog_degraded_.load(std::memory_order_relaxed);
  }

  /// Registers this service's introspection surface on `server`: a "serve"
  /// /statusz section, /flightz (the flight ring as JSON lines), and a
  /// /metricsz exporter bridging ServeMetrics plus the service-local
  /// registry. Handlers capture `this`: Stop() the server before
  /// destroying the service.
  void RegisterDebugEndpoints(obs::DebugServer& server);

 private:
  enum class RequestType { kCreate, kAppend, kPredict, kClose };

  struct Request {
    RequestType type;
    obs::RequestContext ctx;
    std::string session_id;
    int user = 0;
    int parent_node = 0;
    double time = 0.0;
    /// Caller's deadline request (> 0 explicit, 0 service default, < 0
    /// none); resolved into `deadline` at enqueue time.
    double deadline_ms = 0.0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueue_time;
    std::promise<ServeResponse> promise;
  };

  explicit PredictionService(const ServiceOptions& options);

  /// Loads replicas via `factory` and starts the workers.
  static Result<std::unique_ptr<PredictionService>> Start(
      std::unique_ptr<PredictionService> service, const ModelFactory& factory);
  /// One checkpoint load with the configured retry/backoff schedule,
  /// counting retries into `metrics` (may be null).
  static Result<std::unique_ptr<CascadeRegressor>> LoadReplicaWithRetry(
      const std::string& checkpoint_path, const ServiceOptions& options,
      ServeMetrics* metrics);

  Result<std::future<ServeResponse>> Enqueue(Request request);
  /// `fault_bits` (may be null) accumulates FlightFault bits for the fault
  /// points that fired while executing this request.
  ServeResponse Execute(const Request& request, CascadeRegressor& model,
                        uint16_t* fault_bits);
  void WorkerLoop(int worker_index);
  /// Appends the request's flight record and reports the terminal outcome
  /// through ServiceOptions::on_complete.
  void RecordOutcome(const Request& request, const Status& status,
                     uint64_t queue_wait_ns, uint64_t exec_ns,
                     uint16_t fault_bits);

  ServiceOptions options_;
  ServeMetrics metrics_;
  obs::WorkerHeartbeat heartbeat_;
  /// True while a watchdog stall (not a reload failure) holds health at
  /// kDegraded; lets recovery restore exactly what the watchdog took away.
  std::atomic<bool> watchdog_degraded_{false};
  obs::FlightRecorder flight_;
  obs::MetricsRegistry registry_;
  obs::Gauge& queue_depth_;        // owned by registry_
  obs::Histogram& batch_size_;     // owned by registry_
  std::unique_ptr<SessionManager> sessions_;
  /// Replicas, one per worker. Guarded by models_mutex_; workers copy their
  /// shared_ptr once per batch, so a hot reload swaps versions between
  /// batches without pausing serving.
  mutable std::mutex models_mutex_;
  std::vector<std::shared_ptr<CascadeRegressor>> models_;
  /// Serializes ReloadCheckpoint calls.
  std::mutex reload_mutex_;
  /// Path the replicas were loaded from (empty when factory-built).
  std::string checkpoint_path_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool shutting_down_ = false;

  // Shutdown idempotency: first caller runs the drain; concurrent callers
  // block until it completes.
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_started_ = false;
  bool shutdown_done_ = false;

  // Declared last so workers (which reference everything above) stop before
  // any other member is destroyed.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace cascn::serve

#endif  // CASCN_SERVE_PREDICTION_SERVICE_H_
