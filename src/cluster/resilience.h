// Resilience control plane for the sharded serving tier: the *reaction*
// half of the detect->react loop whose detection half (fault points, health
// states, watchdog latches, SLO burn, flight recorder) earlier PRs built.
//
// Four policies, all deterministic under an injected clock and the fault
// registry's seed so chaos tests can assert exact schedules:
//
//  - CircuitBreaker (per shard): closed -> open when the rolling error/
//    timeout rate over a clock-injected window trips the threshold ->
//    half-open probe after a cooldown -> closed after N clean requests.
//    Consulted at routing time, so an open shard is skipped by the
//    bounded-load ring walk instead of timing out every request.
//
//  - RetryBudget (global): a token bucket fed by observed traffic (~10% by
//    default) that governs the single re-dispatch of idempotent Predict
//    calls on Unavailable/DeadlineExceeded. Re-dispatch always carries the
//    REMAINING deadline (never the original) and backs off exponentially
//    with jitter drawn from the fault-seed RNG.
//
//  - Hedged requests: when a predict outlives the cluster's rolling p95
//    (cross-shard median, so one always-slow shard cannot inflate its own
//    hedge trigger), the router replays the session's mirrored event log on
//    the next ring candidate under a scratch session id. First response
//    wins; the loser's dispatch is cancelled cooperatively (and counted)
//    via the RequestContext cancel flag.
//
//  - StaleCache: a small LRU of last-good predictions keyed by (session,
//    observed-prefix fingerprint). When a pinned shard is open/dead and the
//    retry budget is spent, the router can answer with a clearly-marked
//    stale response (ServeResponse::stale, age recorded) instead of an
//    error — gated by ShardRouterOptions::allow_stale. The same per-session
//    event mirror feeds hedge replays.
//
// ShardSupervisor closes the loop for hard failures: a thread that watches
// the router's crashed-shard set and watchdog latches and auto-restarts
// dead or wedged shards on a capped exponential backoff schedule, placing
// each revived shard's breaker into a half-open probation window (N clean
// requests before full ring weight returns).

#ifndef CASCN_CLUSTER_RESILIENCE_H_
#define CASCN_CLUSTER_RESILIENCE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace cascn::cluster {

class ShardRouter;

/// Minimum deadline remainder worth re-dispatching for: a retry whose
/// remaining budget is below this floor is rejected immediately (counted as
/// denied) instead of racing a deadline it cannot meet.
inline constexpr double kMinRetryHeadroomMs = 2.0;

/// Circuit-breaker state machine position.
enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// Rolling window (seconds of the injected clock) the error rate is
  /// computed over.
  double window_seconds = 10.0;
  /// Minimum requests in the window before the breaker may trip: a single
  /// failure on an idle shard is not an outage.
  int min_requests = 8;
  /// Failure fraction (errors+timeouts / total) at or above which a closed
  /// breaker opens.
  double failure_rate_threshold = 0.5;
  /// Cooldown an open breaker holds before allowing a half-open probe.
  double open_seconds = 2.0;
  /// Clean requests required in half-open before the breaker re-closes; any
  /// failure during probation reopens immediately.
  int probe_requests = 4;
};

/// Per-shard circuit breaker. Thread-safe; time is always passed in, so the
/// state machine replays identically under a test clock.
class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  /// `on_transition(from, to)` fires on every state change, outside the
  /// breaker's lock (so it may take leaf locks, e.g. a flight-dump mutex).
  using TransitionHook = std::function<void(BreakerState, BreakerState)>;

  explicit CircuitBreaker(const BreakerOptions& options,
                          TransitionHook on_transition = nullptr);

  /// Routing-time gate. Closed and half-open admit (half-open IS the probe
  /// traffic); open admits nothing until the cooldown elapses, at which
  /// point the breaker flips to half-open and admits.
  bool AllowRequest(TimePoint now);

  /// Terminal-outcome feeds (from the shard's on_complete hook).
  void RecordSuccess(TimePoint now);
  void RecordFailure(TimePoint now);

  /// Supervisor entry point: a just-restarted shard starts in half-open
  /// probation regardless of prior state. `probe_requests` <= 0 uses the
  /// configured default.
  void BeginProbation(TimePoint now, int probe_requests = 0);

  BreakerState state() const;
  /// Failure fraction over the current window (0 when below min_requests).
  double FailureRate(TimePoint now) const;

 private:
  struct Bucket {
    int64_t second = 0;
    uint64_t ok = 0;
    uint64_t failed = 0;
  };

  /// Drops window buckets older than window_seconds. Pre: mutex_ held.
  void AdvanceLocked(TimePoint now);
  /// Pre: mutex_ held. Returns the transition to report (or {same,same}).
  std::pair<BreakerState, BreakerState> TransitionLocked(BreakerState next);
  double FailureRateLocked() const;

  const BreakerOptions options_;
  const TransitionHook on_transition_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<Bucket> window_;
  TimePoint open_until_{};
  int probe_needed_ = 0;
  int probe_successes_ = 0;
};

struct RetryBudgetOptions {
  /// Tokens earned per observed request: the steady-state retry fraction.
  double ratio = 0.1;
  /// Bucket capacity (also the initial balance): the largest retry burst.
  double cap = 32.0;
};

/// Global retry budget: a traffic-fed token bucket. No clock — the budget
/// refills from request volume, so it needs no time source to stay
/// deterministic.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetOptions& options);

  /// Feeds the bucket from one observed request; never exceeds the cap.
  void OnRequest();
  /// Spends one token; false (nothing spent) when the bucket is dry.
  bool TryAcquire();
  double tokens() const;

 private:
  const RetryBudgetOptions options_;
  mutable std::mutex mutex_;
  double tokens_;
};

struct StaleCacheOptions {
  /// Sessions tracked (event mirror + last-good prediction), LRU-evicted.
  size_t capacity = 1024;
  /// Oldest answer the stale path may serve; <= 0 serves any age.
  double max_age_ms = 0.0;
  /// Event-log length beyond which a session is no longer hedge-replayable
  /// (the mirror keeps fingerprinting, but stops storing events — replaying
  /// a very long cascade on another shard costs more than it saves).
  int max_replay_events = 64;
};

/// One adoption event as mirrored by the router.
struct MirroredEvent {
  int user = 0;
  int parent_node = 0;
  double time = 0.0;
};

/// Copy of a session's observed prefix, for hedge replay.
struct ReplayLog {
  int root_user = 0;
  std::vector<MirroredEvent> events;
  uint64_t fingerprint = 0;
};

/// A cached last-good answer, age-stamped at lookup.
struct StaleAnswer {
  double log_prediction = 0.0;
  double count_prediction = 0.0;
  double age_ms = 0.0;
  uint64_t fingerprint = 0;  // observed-prefix fingerprint it was computed at
};

/// Per-router mirror of session event logs plus a bounded LRU of last-good
/// predictions keyed by (session, observed-prefix fingerprint). Thread-safe.
class StaleCache {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit StaleCache(const StaleCacheOptions& options);

  /// Mirror maintenance, called by the router as requests are accepted.
  /// OnCreate resets the event log (a re-created session is a new cascade)
  /// but keeps any stored prediction; OnClose drops the session entirely.
  void OnCreate(const std::string& session_id, int root_user);
  void OnAppend(const std::string& session_id, int user, int parent_node,
                double time);
  void OnClose(const std::string& session_id);

  /// Order-dependent fingerprint of the session's observed prefix; 0 when
  /// the session is not mirrored.
  uint64_t FingerprintOf(const std::string& session_id) const;

  /// Copy of the session's event log for hedge replay; nullopt when the
  /// session is unknown or its log outgrew max_replay_events.
  std::optional<ReplayLog> ReplayLogOf(const std::string& session_id) const;

  /// Records a successful prediction computed at `fingerprint`.
  void StorePrediction(const std::string& session_id, uint64_t fingerprint,
                       double log_prediction, double count_prediction,
                       TimePoint now);

  /// Last-good answer for the session, age-stamped against `now`; nullopt
  /// when none is stored or it exceeds max_age_ms.
  std::optional<StaleAnswer> Lookup(const std::string& session_id,
                                    TimePoint now);

  size_t size() const;

 private:
  struct Entry {
    int root_user = 0;
    std::vector<MirroredEvent> events;
    // False until OnCreate supplies the root user (an entry materialized by
    // OnAppend/StorePrediction after LRU eviction has an incomplete log).
    bool replayable = false;
    uint64_t fingerprint = 0;
    bool has_prediction = false;
    double log_prediction = 0.0;
    double count_prediction = 0.0;
    uint64_t prediction_fingerprint = 0;
    TimePoint stored_at{};
    std::list<std::string>::iterator lru_it;
  };

  /// Returns the entry for `session_id`, creating (and LRU-evicting) as
  /// needed, and marks it most recently used. Pre: mutex_ held.
  Entry& TouchLocked(const std::string& session_id);

  const StaleCacheOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
};

/// Everything the router's resilient request paths consult, in one place.
struct ResilienceOptions {
  /// Master gate. When false the router never constructs a
  /// ResilienceControl and every request path costs exactly one pointer
  /// load over the PR 6 behavior.
  bool enabled = false;
  BreakerOptions breaker;
  RetryBudgetOptions retry_budget;
  /// First-retry backoff; doubles per attempt, capped, jittered in
  /// [0.5, 1.0]x from the fault-seed RNG.
  double retry_base_backoff_ms = 1.0;
  double retry_max_backoff_ms = 50.0;
  /// Hedging gate and trigger: hedge a predict that outlives
  /// `hedge_p95_multiplier` x the cross-shard median rolling p95 (floored
  /// at hedge_min_delay_ms so cold starts don't hedge everything).
  bool hedging = true;
  double hedge_min_delay_ms = 1.0;
  double hedge_p95_multiplier = 1.5;
  StaleCacheOptions stale;
};

/// Shared state of the resilience control plane: per-shard breakers, the
/// retry budget, the stale cache / event mirror, hedge-delay tracking, the
/// deterministic jitter RNG, and every counter the metrics registry
/// exports. Owned by the router in a shared_ptr so deferred response
/// wrappers can outlive it. All methods are thread-safe.
class ResilienceControl {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  /// Anomaly hook: `(shard_id, reason)` on breaker flips and supervisor
  /// actions; the router wires this to its flight-recorder dump.
  using AnomalyHook = std::function<void(int, std::string_view)>;

  ResilienceControl(const ResilienceOptions& options, uint64_t seed,
                    AnomalyHook on_anomaly = nullptr);

  const ResilienceOptions& options() const { return options_; }

  /// --- breaker surface -----------------------------------------------
  /// Routing-time gate for `shard_id` (lazily creates its breaker).
  bool AllowShard(int shard_id, TimePoint now);
  /// Terminal-outcome feed from the shard's on_complete hook. `failed`
  /// should be true for Unavailable/DeadlineExceeded/Internal/IoError —
  /// infrastructure failures — and false for application outcomes
  /// (NotFound, InvalidArgument) and successes. Cancelled hedge losers
  /// should not be fed at all. Also records `latency_us` into the shard's
  /// rolling latency histogram (the hedge-delay feed).
  void OnShardResult(int shard_id, bool failed, uint64_t latency_us,
                     TimePoint now);
  /// State without side effects; kClosed for shards never seen.
  BreakerState ShardState(int shard_id) const;
  /// Supervisor entry: places the shard's breaker in half-open probation.
  void BeginProbation(int shard_id, TimePoint now);

  /// --- retry surface --------------------------------------------------
  /// Feeds the retry budget from one observed request.
  void OnRequestObserved() { budget_.OnRequest(); }
  /// Spends one retry token; counts the attempt or the denial.
  bool TryAcquireRetry();
  /// Counts a retry denied for a reason other than the budget (deadline
  /// headroom below kMinRetryHeadroomMs).
  void NoteRetryDenied();
  /// Backoff for re-dispatch `attempt` (0-based): base * 2^attempt, capped,
  /// scaled by a deterministic jitter in [0.5, 1.0].
  double RetryBackoffMs(int attempt);

  /// --- hedging surface ------------------------------------------------
  /// Delay after which an outstanding predict should hedge: the cross-shard
  /// MEDIAN of per-shard rolling p95s (so one slow shard cannot raise its
  /// own trigger) times hedge_p95_multiplier, floored at hedge_min_delay_ms.
  /// Recomputed at most once per clock second.
  double HedgeDelayMs(TimePoint now);
  void NoteHedgeLaunched() {
    hedges_launched_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteHedgeWon() { hedges_won_.fetch_add(1, std::memory_order_relaxed); }

  /// --- stale / supervisor surface -------------------------------------
  StaleCache& stale() { return stale_; }
  void NoteStaleServe() {
    stale_serves_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteSupervisorRestart(int shard_id, TimePoint now);

  /// --- accounting ------------------------------------------------------
  uint64_t retries_attempted() const { return retries_attempted_.load(); }
  uint64_t retries_denied() const { return retries_denied_.load(); }
  uint64_t hedges_launched() const { return hedges_launched_.load(); }
  uint64_t hedges_won() const { return hedges_won_.load(); }
  uint64_t stale_serves() const { return stale_serves_.load(); }
  uint64_t supervisor_restarts() const {
    return supervisor_restarts_.load();
  }
  uint64_t breaker_opens() const { return breaker_opens_.load(); }
  double retry_tokens() const { return budget_.tokens(); }

  /// Exports breaker states (cluster_breaker_state{shard="N"}) and every
  /// counter (cluster_retries_attempted_total, ...) into `registry`.
  void ExportToRegistry(obs::MetricsRegistry& registry) const;
  /// Human-readable /statusz section body.
  std::string StatusReport(TimePoint now) const;

 private:
  CircuitBreaker& BreakerFor(int shard_id);  // takes breaker_mutex_

  const ResilienceOptions options_;
  const AnomalyHook on_anomaly_;

  mutable std::mutex breaker_mutex_;  // guards the breakers_ map (not the
                                      // breakers: each has its own lock)
  std::map<int, std::unique_ptr<CircuitBreaker>> breakers_;

  RetryBudget budget_;
  StaleCache stale_;

  /// Per-shard rolling latency histograms feeding the hedge trigger.
  mutable std::mutex latency_mutex_;
  std::map<int, std::unique_ptr<obs::Histogram>> latency_;
  /// Clock second the cached hedge delay was computed at, and the cached
  /// value in microseconds (atomics: the hot path reads them lock-free).
  std::atomic<int64_t> hedge_cache_second_{
      std::numeric_limits<int64_t>::min()};
  std::atomic<uint64_t> hedge_delay_us_{0};

  std::mutex rng_mutex_;
  Rng rng_;

  std::atomic<uint64_t> retries_attempted_{0};
  std::atomic<uint64_t> retries_denied_{0};
  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> stale_serves_{0};
  std::atomic<uint64_t> supervisor_restarts_{0};
  std::atomic<uint64_t> breaker_opens_{0};
};

struct SupervisorOptions {
  /// Thread poll cadence (Start/Stop mode; PollOnce ignores it).
  double poll_interval_ms = 20.0;
  /// First-restart delay after a crash is observed; doubles per failed
  /// attempt, capped at max_backoff_ms.
  double restart_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
  /// Consecutive polls a shard must hold its watchdog-stall latch before
  /// the supervisor force-crashes (and then restarts) it.
  int wedged_polls = 3;
  /// Whether wedged-but-alive shards are force-restarted at all.
  bool restart_wedged = true;
  /// Time source; tests inject a fake clock to assert the exact schedule.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Self-healing loop: watches the router's crashed-shard set and watchdog
/// latches and restarts shards on a capped exponential backoff schedule.
/// Run it as a thread (Start/Stop) or drive PollOnce deterministically.
/// Holds a reference to the router: Stop() before destroying it.
class ShardSupervisor {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit ShardSupervisor(ShardRouter& router,
                           SupervisorOptions options = {});
  ~ShardSupervisor();  // implies Stop()

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  void Start();
  void Stop();

  /// One deterministic supervision pass at the injected clock's now():
  /// advances wedge counters, schedules newly-crashed shards, attempts the
  /// restarts that are due, and grows backoff on failures. Returns the
  /// number of successful restarts this pass.
  int PollOnce();

  uint64_t restarts_total() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  uint64_t restart_failures_total() const {
    return failures_.load(std::memory_order_relaxed);
  }
  uint64_t wedge_kills_total() const {
    return wedge_kills_.load(std::memory_order_relaxed);
  }

  /// The pending restart schedule (tests assert exact backoff times).
  struct RestartPlan {
    int shard_id = -1;
    int failed_attempts = 0;
    TimePoint next_attempt_at{};
  };
  std::vector<RestartPlan> Plans() const;

  double BackoffMs(int failed_attempts) const;

 private:
  void Loop();

  ShardRouter& router_;
  const SupervisorOptions options_;
  const std::function<TimePoint()> clock_;

  mutable std::mutex mutex_;  // guards plans_ and wedged_counts_
  std::map<int, RestartPlan> plans_;
  std::map<int, int> wedged_counts_;

  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> wedge_kills_{0};

  std::mutex lifecycle_mutex_;
  std::condition_variable stop_cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace cascn::cluster

#endif  // CASCN_CLUSTER_RESILIENCE_H_
