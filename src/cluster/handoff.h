// Shard handoff files: the durable leg of a live rebalance.
//
// When the router drains a shard, every session is extracted from the
// shard's SessionManager as a serialized blob and the set is written to a
// handoff file. The file is self-validating — magic, version, payload,
// trailing CRC-32 — in the same style as model checkpoints, so a torn or
// bit-rotted handoff is detected on read instead of silently importing
// half a shard's sessions. Writes go through WriteFileAtomic and the
// router re-reads the file before declaring the drain durable; the
// "cluster.handoff_torn_write" fault point simulates a crash mid-write
// (torn bytes under the temp name, destination untouched) to prove the
// retry path loses nothing.
//
// Layout (little-endian):
//   u32 magic 'HAND'   u32 version   i32 source_shard   u32 entry_count
//   entries: { u32 id_len, id bytes, u32 blob_len, blob bytes }
//   u32 crc32 of every preceding byte

#ifndef CASCN_CLUSTER_HANDOFF_H_
#define CASCN_CLUSTER_HANDOFF_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace cascn::cluster {

/// Fault-injection point (src/fault): WriteHandoffFile leaves a torn image
/// under the temp name and fails with IoError; the destination (and the
/// in-memory sessions) are untouched, so the caller simply retries.
inline constexpr char kFaultHandoffTornWrite[] = "cluster.handoff_torn_write";

/// One drained session: its id plus the SessionManager::Serialize blob.
struct HandoffEntry {
  std::string session_id;
  std::string blob;
};

/// A parsed handoff file.
struct HandoffImage {
  int source_shard = -1;
  std::vector<HandoffEntry> entries;
};

/// Serializes entries into the self-validating handoff byte format.
std::string SerializeHandoff(int source_shard,
                             const std::vector<HandoffEntry>& entries);

/// Parses and validates a handoff image; `context` names the source in
/// error messages. IoError on truncation or CRC mismatch, InvalidArgument
/// on wrong magic/version.
Result<HandoffImage> ParseHandoff(const std::string& bytes,
                                  const std::string& context);

/// Atomic write of a handoff file (subject to kFaultHandoffTornWrite).
Status WriteHandoffFile(const std::string& path, int source_shard,
                        const std::vector<HandoffEntry>& entries);

/// Reads and validates a handoff file.
Result<HandoffImage> ReadHandoffFile(const std::string& path);

}  // namespace cascn::cluster

#endif  // CASCN_CLUSTER_HANDOFF_H_
