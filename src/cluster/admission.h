// Admission control for the sharded serving tier: per-tenant token-bucket
// quotas plus cluster-level load shedding.
//
// Every request names a tenant. Each tenant owns a token bucket refilled at
// `tokens_per_second` up to `burst` tokens; a request spends one token or
// is rejected with ResourceExhausted. Buckets are keyed lazily, so tenants
// need no registration. Time is passed in explicitly (a steady_clock
// time_point) rather than read inside, which keeps quota tests fully
// deterministic — production callers pass steady_clock::now().
//
// Load shedding is a second, orthogonal gate: when a shard's queue is
// already more than `shed_queue_fraction` full, new work is rejected with
// ResourceExhausted *before* enqueueing, so the queue keeps headroom for
// requests of sessions already being served. Shedding is what keeps
// accepted-request latency bounded when one shard turns slow: instead of
// letting every queued request ride the collapse, excess offered load is
// turned away at the door with a status the client can distinguish from
// hard backpressure (Unavailable) and from its own deadline expiring
// (DeadlineExceeded).

#ifndef CASCN_CLUSTER_ADMISSION_H_
#define CASCN_CLUSTER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cascn::cluster {

struct AdmissionOptions {
  /// Steady-state per-tenant request rate. <= 0 disables tenant quotas
  /// (every tenant always admitted).
  double tokens_per_second = 0.0;
  /// Bucket capacity: the largest burst a tenant may spend at once. Buckets
  /// start full.
  double burst = 32.0;
  /// Shed new work when a shard's queue depth exceeds this fraction of its
  /// capacity. >= 1 disables shedding (the queue's own backpressure still
  /// applies, but rejects with Unavailable instead).
  double shed_queue_fraction = 0.85;
};

/// Thread-safe admission gate. One instance serves the whole cluster; the
/// router consults it before touching any shard.
class AdmissionController {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit AdmissionController(const AdmissionOptions& options = {});

  /// Charges one token to `tenant`'s bucket at time `now`. Returns OK when
  /// the bucket had a token (or quotas are disabled), ResourceExhausted
  /// otherwise. An empty tenant name is exempt from quotas.
  Status AdmitTenant(const std::string& tenant, TimePoint now);

  /// Load-shed gate for the shard about to receive the request: rejects
  /// with ResourceExhausted when `queue_depth` is already past
  /// shed_queue_fraction of `queue_capacity`.
  Status AdmitLoad(size_t queue_depth, size_t queue_capacity) const;

  struct TenantStats {
    std::string tenant;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    double tokens = 0.0;  // balance at the last Admit call
  };

  /// Per-tenant admission counts, sorted by tenant name.
  std::vector<TenantStats> Stats() const;

  /// Total requests rejected by either gate.
  uint64_t total_shed() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    TimePoint last_refill{};
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    bool initialized = false;
  };

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
  mutable std::atomic<uint64_t> shed_{0};
};

}  // namespace cascn::cluster

#endif  // CASCN_CLUSTER_ADMISSION_H_
