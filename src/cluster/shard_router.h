// ShardRouter: the sharded, replicated serving tier.
//
// N in-process PredictionService shards, each with its own worker pool,
// model replicas, session table, and metrics, sit behind one router.
// Session ids are placed by consistent hashing with bounded load
// (cluster/consistent_hash.h): Create() picks the ring owner unless it is
// already carrying more than `load_factor` times the mean session count, in
// which case the walk continues to the next shard. The chosen shard is
// *pinned* for the session's lifetime, so later requests route without load
// information and a session's whole history lives on one shard.
//
// Admission control runs before any shard is touched: per-tenant token
// buckets and queue-depth load shedding (cluster/admission.h), both
// rejecting with ResourceExhausted — distinct from a full queue's
// Unavailable and from DeadlineExceeded — so clients can tell "slow down"
// from "retry elsewhere" from "too late". The tenant token is charged
// *after* the routing checks and the load-shed gate: a request that is
// guaranteed to fail (no shards, pinned to a down shard, queue shed) never
// consumes quota, so retries against a degraded cluster do not compound
// the outage.
//
// Pin lifecycle: a pin is created by Create's placement and released when
// the session ends — CallClose releases it inline, and the future returned
// by SubmitClose releases it when the caller resolves a successful close
// (the bookkeeping is deferred into the future, so it works even if the
// router is gone by then). A session whose spilled history is discarded by
// the shard's bounded spill LRU also releases its pin (the shard reports
// the drop), and RemoveShard sweeps any stale pins still pointing at the
// removed shard — so pins_ cannot grow without bound or permanently wedge
// a session id on a dead shard.
//
// Rebalance (RemoveShard) is two-phase so the cluster never pauses:
// phase 1 (routing lock) marks the shard draining — the ring drops it and
// requests pinned to it get Unavailable (retryable) — then the lock is
// RELEASED while the shard's queue empties; phase 2 re-takes the lock,
// re-checks the queue (requests routed just before the mark may trickle
// in), then Extract every session -> write a CRC'd handoff file (atomic
// write, retried on injected torn writes) -> re-read and validate it ->
// Deserialize each session into its new owner -> update pins -> destroy the
// shard. Sessions stay in the source shard's memory until the handoff file
// has been read back successfully, so a torn write costs a retry, never a
// session. RestartShard() is the inverse: a fresh shard joins the ring and
// pulls back the sessions the ring now assigns to it; the sessions being
// pulled are marked migrating (their requests get a retryable Unavailable)
// while the rest of the cluster keeps serving.
//
// Failure model: CrashShard() (and the "cluster.shard_crash" fault point)
// destroys a shard without a drain, as a real crash would. Pinned sessions
// on the crashed shard lose their in-memory history (clients see NotFound
// and re-create); *new* sessions route to the surviving shards because the
// ring no longer contains the crashed one. Cluster health degrades while
// any shard is down or degraded and recovers when the shard rejoins.

#ifndef CASCN_CLUSTER_SHARD_ROUTER_H_
#define CASCN_CLUSTER_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/admission.h"
#include "cluster/consistent_hash.h"
#include "cluster/handoff.h"
#include "cluster/resilience.h"
#include "common/result.h"
#include "obs/debug_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "serve/metrics.h"
#include "serve/prediction_service.h"

namespace cascn::cluster {

/// Fault-injection points (src/fault):
///  - "cluster.shard_crash": evaluated on every routed request; when it
///    fires, the shard named by the @V payload is crashed (no drain) before
///    the request is routed — chaos runs use nth:K@ID to kill shard ID
///    mid-load.
///  - "cluster.slow_shard.<id>": per-shard predict delay (the @V payload in
///    milliseconds), wired into that shard's service via
///    ServiceOptions::extra_predict_fault_point. Slows one shard without
///    touching the others.
///  - "cluster.predict_unavailable": evaluated on each successful predict
///    response in the resilient path; when it fires the response is
///    replaced with a retryable Unavailable. Lets tests drive the retry
///    policy deterministically without wedging a shard.
inline constexpr char kFaultShardCrash[] = "cluster.shard_crash";
inline constexpr char kFaultSlowShardPrefix[] = "cluster.slow_shard.";
inline constexpr char kFaultPredictUnavailable[] =
    "cluster.predict_unavailable";

/// Fault point name for slowing one specific shard.
std::string SlowShardFaultPoint(int shard_id);

struct ShardRouterOptions {
  /// Initial shard count; shard ids are 0..num_shards-1. >= 1.
  int num_shards = 2;
  /// Per-shard service configuration. `sessions.spill_capacity` defaults to
  /// the session capacity when left 0, so LRU-evicted histories survive to
  /// be handed off (zero session loss includes evicted-but-not-closed
  /// sessions).
  serve::ServiceOptions shard;
  HashRingOptions ring;
  AdmissionOptions admission;
  /// Directory for handoff files; empty = alongside the checkpoint.
  std::string handoff_dir;
  /// Attempts per handoff-file write (retries absorb injected torn writes).
  int handoff_write_attempts = 3;
  /// Max milliseconds RemoveShard waits for the draining shard's queue to
  /// empty before giving up with DeadlineExceeded.
  double drain_timeout_ms = 5000.0;
  /// Per-tenant SLO configuration (availability target, burn windows and
  /// thresholds). Sustained burn degrades ClusterHealth.
  obs::SloOptions slo;
  /// Directory for flight-recorder anomaly dumps: each shard appends to
  /// <flight_dir>/flight_shard_<id>.jsonl and the router to
  /// <flight_dir>/flight_router.jsonl. On-demand dump sets
  /// (DumpFlightRecorders) get a monotonic sequence suffix instead:
  /// flight_shard_<id>.<seq>.jsonl. Empty disables dumps (the rings still
  /// record).
  std::string flight_dir;
  /// On-demand dump sets retained on disk; when a new DumpFlightRecorders
  /// set would exceed this, the oldest set's files are deleted. >= 1.
  int flight_dump_retention = 16;
  /// Time source for admission token buckets, SLO windows, breaker windows,
  /// and stale-answer ages. Defaults to steady_clock::now; tests inject a
  /// fake clock to replay hours of traffic deterministically. Request
  /// DEADLINES always use the real steady clock (workers sleep real time),
  /// so a fake clock here never expires in-flight requests.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Resilience control plane (circuit breakers, retry budget, hedging,
  /// stale cache, supervisor probation). Disabled by default: with
  /// `resilience.enabled == false` every request path costs one extra
  /// pointer load over the non-resilient router.
  ResilienceOptions resilience;
  /// Degraded-mode gate: when true (and resilience is enabled), a predict
  /// that cannot be served — pinned shard open or dead, retry budget spent
  /// or exhausted — returns the session's last-good answer with
  /// ServeResponse::stale set instead of an error.
  bool allow_stale = false;
};

/// Routes session-keyed requests across in-process shards. All methods are
/// thread-safe.
class ShardRouter {
 public:
  /// Builds `num_shards` shards, each loading its replicas from
  /// `checkpoint_path`.
  static Result<std::unique_ptr<ShardRouter>> CreateFromCheckpoint(
      const ShardRouterOptions& options, const std::string& checkpoint_path);

  ~ShardRouter();  // shuts every shard down

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Async submission: routing feasibility first, then admission control
  /// (load shed + tenant quota, both ResourceExhausted — the token is only
  /// charged for requests that could actually run), then routed to the
  /// session's shard. Unavailable when the session is pinned to a crashed
  /// or draining shard or the shard's queue is full. The returned future
  /// always becomes ready. SubmitClose's future additionally releases the
  /// session's routing pin when resolved after a successful close, so
  /// callers should resolve (get/wait) every close future.
  Result<std::future<serve::ServeResponse>> SubmitCreate(
      const std::string& tenant, std::string session_id, int root_user,
      double deadline_ms = 0.0);
  Result<std::future<serve::ServeResponse>> SubmitAppend(
      const std::string& tenant, std::string session_id, int user,
      int parent_node, double time, double deadline_ms = 0.0);
  Result<std::future<serve::ServeResponse>> SubmitPredict(
      const std::string& tenant, std::string session_id,
      double deadline_ms = 0.0);
  Result<std::future<serve::ServeResponse>> SubmitClose(
      const std::string& tenant, std::string session_id,
      double deadline_ms = 0.0);

  /// Blocking conveniences (submit + wait); admission rejections surface as
  /// the response status.
  serve::ServeResponse CallCreate(const std::string& tenant,
                                  std::string session_id, int root_user);
  serve::ServeResponse CallAppend(const std::string& tenant,
                                  std::string session_id, int user,
                                  int parent_node, double time);
  serve::ServeResponse CallPredict(const std::string& tenant,
                                   std::string session_id);
  serve::ServeResponse CallClose(const std::string& tenant,
                                 std::string session_id);

  /// Live rebalance: drains shard `shard_id` (two-phase — the routing lock
  /// is not held while the queue empties, so the rest of the cluster keeps
  /// serving), hands its sessions off to the remaining shards (see file
  /// comment for the protocol), destroys it, and sweeps any stale pins
  /// still pointing at it. FailedPrecondition when it is the last routable
  /// shard, unknown, or already draining; DeadlineExceeded when the queue
  /// does not drain in time. No session is lost: on any error before the
  /// handoff file validates, the shard keeps serving.
  Status RemoveShard(int shard_id);

  /// Starts a fresh shard with id `shard_id` (loading from the cluster's
  /// checkpoint), adds it to the ring, and pulls over the sessions the ring
  /// now assigns to it from the other shards (same handoff protocol).
  /// InvalidArgument if the id is still active.
  Status AddShard(int shard_id);

  /// Crash simulation: destroys the shard with no drain and no handoff.
  /// Pinned sessions on it are lost until clients re-create them; the ring
  /// routes new sessions to the survivors. No-op for unknown ids.
  void CrashShard(int shard_id);

  /// Rejoin after a crash: AddShard() with the crashed shard's id, plus
  /// dropping the dead pins so re-created sessions route by the ring again.
  Status RestartShard(int shard_id);

  /// Aggregate condition: kHealthy when every configured shard is up and
  /// healthy; kDegraded when any shard is down, degraded, or was crashed
  /// and not yet restarted; kUnhealthy when no shard is serving.
  serve::Health ClusterHealth() const;

  struct ShardInfo {
    int shard_id = -1;
    bool active = false;
    size_t queue_depth = 0;
    size_t num_sessions = 0;
    uint64_t pinned_sessions = 0;
    serve::ServeMetrics::Snapshot metrics;
  };

  struct Snapshot {
    serve::Health health = serve::Health::kHealthy;
    std::vector<ShardInfo> shards;          // sorted by shard id
    std::vector<AdmissionController::TenantStats> tenants;
    /// Per-tenant rolling SLIs and burn rates at snapshot time.
    std::vector<obs::TenantSli> slo;
    uint64_t total_shed = 0;
    uint64_t crashed_shards = 0;            // crashed and not yet restarted
    /// Accepted-request latency percentiles across every shard (merged
    /// log2 histograms — shed requests never reach a histogram).
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
    uint64_t latency_count = 0;

    std::string ToString() const;
  };

  Snapshot TakeSnapshot() const;

  /// Exports per-shard serve metrics into `registry` with a shard label
  /// (serve_requests_total{shard="0"}, ...) plus cluster_* gauges for
  /// health, shed totals, and merged latency percentiles, and per-tenant
  /// cluster_tenant_{admitted,rejected}{tenant="..."} gauges.
  void ExportToRegistry(obs::MetricsRegistry& registry) const;

  /// Active shard count / ids.
  int num_shards() const;
  std::vector<int> ShardIds() const;
  /// Shards destroyed by CrashShard and not yet restarted (the supervisor's
  /// work list), sorted.
  std::vector<int> CrashedShardIds() const;
  /// Active shards whose watchdog-stall latch is currently set (wedged but
  /// alive), sorted. Requires RegisterWatchdogTargets-driven latches.
  std::vector<int> WatchdogWedgedShardIds() const;
  /// The shard `session_id` routes to right now (pin, else ring owner);
  /// -1 when the ring is empty.
  int ShardOf(const std::string& session_id) const;
  /// Direct access to one shard's service (tests); null when down.
  serve::PredictionService* shard(int shard_id);

  const AdmissionController& admission() const { return admission_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }
  /// The resilience control plane; null when ShardRouterOptions::resilience
  /// is disabled.
  ResilienceControl* resilience() const { return resilience_.get(); }
  /// Supervisor callback after a successful auto-restart: counts it, puts
  /// the shard's breaker into half-open probation, and writes a
  /// "supervisor_restart" anomaly dump set.
  void NoteSupervisorRestart(int shard_id);
  /// Per-tenant SLI/burn-rate tracker (time-injected; see
  /// ShardRouterOptions::clock).
  const obs::SloTracker& slo() const { return slo_; }
  /// Router-level flight recorder: requests rejected before reaching a
  /// shard (unroutable, shed, over quota) as op=Route, shard=-1.
  const obs::FlightRecorder& router_flight_recorder() const {
    return router_flight_;
  }

  /// On-demand black-box dump: writes every shard's flight-recorder ring
  /// (and the router's) to a fresh sequence-suffixed file set
  /// (flight_shard_<id>.<NNNNN>.jsonl / flight_router.<NNNNN>.jsonl) in
  /// flight_dir, tagged `reason` — successive dumps never collide. At most
  /// ShardRouterOptions::flight_dump_retention sets are kept; older sets
  /// are deleted. FailedPrecondition when flight_dir is unset.
  Status DumpFlightRecorders(std::string_view reason);

  /// DumpFlightRecorders calls so far (the sequence number of the newest
  /// dump set). Shown in /statusz.
  uint64_t on_demand_dump_count() const {
    return on_demand_dumps_.load(std::memory_order_relaxed);
  }

  /// Registers the cluster's introspection surface on `server`: a
  /// "cluster" /statusz section (health + per-shard summary + dump
  /// counter), /flightz (every shard ring + the router ring as JSON
  /// lines), /sloz (per-tenant burn rates), and a /metricsz exporter.
  /// Handlers capture `this`: Stop() the server before destroying the
  /// router.
  void RegisterDebugEndpoints(obs::DebugServer& server);

  /// Registers one watchdog target per currently-active shard: progress is
  /// the shard's worker heartbeat, busy its queue depth. On stall the
  /// shard's health degrades, its ring dumps, and a full on-demand dump
  /// set (reason "watchdog_stall") is written; on recovery health is
  /// restored. Targets capture `this` and resolve the shard on every
  /// sample, so they survive crash/rebalance of the shard (a missing shard
  /// reads as idle). Stop the watchdog before destroying the router.
  void RegisterWatchdogTargets(obs::Watchdog& watchdog);

 private:
  struct Shard {
    std::shared_ptr<serve::PredictionService> service;
  };

  /// Session-pin bookkeeping. Held in a shared_ptr because deferred close
  /// futures and per-shard spill-drop callbacks release pins through it and
  /// may outlive the router. `mutex` is a LEAF lock: nothing else may be
  /// acquired while holding it (the spill-drop callback runs under a
  /// SessionManager's table lock, so the inverse order must stay out of the
  /// lock graph).
  struct PinState {
    struct Pin {
      int shard_id = -1;
      /// Bumped whenever the pin is (re)placed; a deferred close release
      /// only fires if the generation it captured is still current, so a
      /// close resolved after the id was re-created cannot unpin the new
      /// session.
      uint64_t generation = 0;
    };
    std::mutex mutex;
    std::unordered_map<std::string, Pin> session_shard;
    std::unordered_map<int, uint64_t> shard_load;  // pinned sessions/shard
    uint64_t next_generation = 0;
  };

  explicit ShardRouter(const ShardRouterOptions& options,
                       std::string checkpoint_path);

  /// Points `session_id`'s pin at `shard_id` (new generation), fixing both
  /// shards' load counts. Takes pins.mutex.
  static void SetPin(PinState& pins, const std::string& session_id,
                     int shard_id);
  /// Drops `session_id`'s pin if its generation is still `generation`,
  /// fixing the shard load. Takes pins.mutex.
  static void ReleasePinIfCurrent(PinState& pins,
                                  const std::string& session_id,
                                  uint64_t generation);

  /// Builds one shard's service options (shard-scoped slow fault point,
  /// spill default).
  serve::ServiceOptions ShardServiceOptions(int shard_id) const;
  /// Starts one shard's service. Pre: mutex_ held (startup excepted).
  Result<std::shared_ptr<serve::PredictionService>> StartShard(int shard_id);

  /// Admission + routing: resolves the target service for ctx.session_id,
  /// creating a pin when `create` is true. Applies the shard-crash fault,
  /// the circuit breaker (resilience on), tenant quota, and load shedding.
  /// `routed_shard`, when non-null, receives the chosen shard id. A retry
  /// re-dispatch (`is_retry`) skips the tenant-quota charge — the original
  /// admission already paid for this request — but still honors the breaker
  /// and the load-shed gate.
  Result<std::shared_ptr<serve::PredictionService>> Route(
      const obs::RequestContext& ctx, bool create, int* routed_shard = nullptr,
      bool is_retry = false);

  /// Mints the request context for one router entry point. With resilience
  /// enabled this also resolves the deadline to an ABSOLUTE point once
  /// (real steady clock: deadline_ms > 0 explicit, 0 the shard default,
  /// < 0 none) so retries and hedges inherit the REMAINING time, and
  /// attaches a cancellation flag predicts use for hedge loser cancellation.
  obs::RequestContext MintContext(const std::string& tenant,
                                  std::string session_id,
                                  double deadline_ms) const;

  /// One predict dispatch: Route + shard submit, with the routed shard id
  /// kept for hedging.
  struct PredictAttempt {
    std::shared_ptr<serve::PredictionService> service;
    int shard_id = -1;
    std::future<serve::ServeResponse> future;
    Status status = Status::OK();
    bool ok() const { return status.ok(); }
  };
  PredictAttempt DispatchPredict(const obs::RequestContext& ctx,
                                 double deadline_ms, bool is_retry);

  /// Body of the deferred future SubmitPredict returns when resilience is
  /// enabled: awaits the primary (hedging past the rolling-p95 trigger),
  /// re-dispatches once under the retry budget with the remaining deadline,
  /// and falls back to the stale cache when allowed. Runs on the caller's
  /// resolving thread.
  serve::ServeResponse ResolvePredictResilient(obs::RequestContext ctx,
                                               PredictAttempt attempt,
                                               double deadline_ms);

  /// Awaits `attempt`'s future; once it outlives the hedge trigger, replays
  /// the session on the next ring candidate and returns the first response,
  /// cancelling (and counting) the loser.
  serve::ServeResponse AwaitWithHedge(const obs::RequestContext& ctx,
                                      PredictAttempt& attempt);

  /// Books a request rejected before reaching any shard: SLI error sample,
  /// router flight record (op=Route), and a "load_shed" anomaly dump when
  /// the rejection was admission control (ResourceExhausted).
  void RecordRejection(const obs::RequestContext& ctx, const Status& status);

  /// Crash internals shared by CrashShard and the fault hook. Pre: mutex_.
  void CrashShardLocked(int shard_id);

  /// Rebuilds the ring from the active, non-draining shards. Pre: mutex_.
  void RebuildRingLocked();

  /// Waits (bounded by `deadline`) for `service`'s queue to empty. Called
  /// WITHOUT mutex_ held — the shard must already be unroutable (draining)
  /// so the queue can only shrink, modulo requests routed just before the
  /// mark, which the caller re-checks under the lock.
  Status DrainQueue(serve::PredictionService& service,
                    std::chrono::steady_clock::time_point deadline) const;

  /// Waits (bounded by `deadline`) until every request enqueued to
  /// `service` before this call has left the queue. Unlike a
  /// drain-to-empty, this makes progress while other sessions keep the
  /// queue busy, so it is safe to call without blocking routing.
  Status WaitQueuePassed(serve::PredictionService& service,
                         std::chrono::steady_clock::time_point deadline) const;

  /// AddShard's per-source pull: marks the sessions the ring now assigns to
  /// `target_id` as migrating, waits (unlocked) for their queued requests
  /// to finish, then extracts and imports them under the routing lock.
  Status PullSessionsTo(int target_id, int source_id);

  /// Writes `entries` to shard_id's handoff file and reads it back,
  /// retrying torn writes; returns the validated image. Pre: mutex_ held.
  Result<HandoffImage> WriteValidatedHandoff(
      int shard_id, const std::vector<HandoffEntry>& entries) const;

  /// Handoff file path for a drain of `shard_id`.
  std::string HandoffPath(int shard_id) const;

  /// Resolves a shard's service under mutex_; null when crashed/removed.
  /// Watchdog and debug-endpoint callbacks use this on every invocation so
  /// they never hold a service pointer across a crash or rebalance.
  std::shared_ptr<serve::PredictionService> FindShard(int shard_id) const;

  ShardRouterOptions options_;
  std::string checkpoint_path_;
  AdmissionController admission_;
  /// Injected time source (see ShardRouterOptions::clock); read by routing
  /// admission, SLI samples, and shard on_complete callbacks.
  std::function<std::chrono::steady_clock::time_point()> clock_;
  /// Declared before shards_ so worker on_complete callbacks (which record
  /// SLI samples during a shard's Shutdown drain) never outlive it.
  /// mutable: recording a sample is observability, not router state.
  mutable obs::SloTracker slo_;
  /// Router-level black box for requests that never reached a shard.
  mutable obs::FlightRecorder router_flight_;
  /// DumpFlightRecorders sequence (1-based suffix of the newest dump set).
  mutable std::atomic<uint64_t> on_demand_dumps_{0};
  /// Guards dump_sets_ (retention bookkeeping for on-demand dump files).
  /// LEAF lock: taken after the dump files are written, nothing nested.
  mutable std::mutex dump_files_mutex_;
  /// Paths of each retained on-demand dump set, oldest first.
  std::deque<std::vector<std::string>> dump_sets_;
  /// Clock second of the last "load_shed" anomaly dump — sustained shedding
  /// is throttled to one ring dump per second (see RecordRejection).
  mutable std::atomic<int64_t> last_shed_dump_second_{
      std::numeric_limits<int64_t>::min()};

  /// Resilience control plane; null when options_.resilience.enabled is
  /// false (the single pointer load every request path pays). shared_ptr:
  /// deferred predict wrappers keep it alive past the router if a caller
  /// resolves them late. Declared before shards_ so shard on_complete
  /// callbacks (breaker feeds) never outlive it.
  std::shared_ptr<ResilienceControl> resilience_;

  /// Guards shards_, ring_, crashed_, draining_, migrating_. Held only for
  /// routing bookkeeping and topology changes — never across a model
  /// forward pass (requests run on shard worker threads) and never while a
  /// queue drains (rebalance waits run unlocked).
  mutable std::mutex mutex_;
  std::map<int, Shard> shards_;
  HashRing ring_;
  /// Ring over active AND crashed shards. Routing a non-create request for
  /// an unpinned session consults this first: when the full-membership
  /// owner is a crashed shard, the session (if it ever existed) died with
  /// it, and the right answer is a retryable Unavailable — not the NotFound
  /// a surviving shard would return, which would make clients give the
  /// session up for dead during a blip a restart will heal.
  HashRing all_ring_;
  /// Pin table (own leaf mutex; see PinState). Acquire order: mutex_ then
  /// pins_->mutex, or pins_->mutex alone.
  std::shared_ptr<PinState> pins_ = std::make_shared<PinState>();
  /// Shards destroyed by CrashShard and not yet restarted (health signal).
  std::set<int> crashed_;
  /// Shards mid-RemoveShard: out of the ring, pinned requests rejected.
  std::set<int> draining_;
  /// In-flight hedge replays per candidate shard. A hedge submits its
  /// scratch-session replay directly to the candidate service (bypassing
  /// routing), so RemoveShard must wait for replays targeting the departing
  /// shard to finish submitting — the drain's queue watermark then retires
  /// their queued ops (including the trailing close) before extraction
  /// demands quiescence. Candidate selection and the draining mark share
  /// mutex_, so a shard is either registered here before it drains or never
  /// picked once draining. hedge_cv_ signals each release.
  std::map<int, int> hedges_in_flight_;
  std::condition_variable hedge_cv_;
  /// Sessions mid-AddShard pull: their requests get a retryable
  /// Unavailable until the move completes.
  std::unordered_set<std::string> migrating_;
};

}  // namespace cascn::cluster

#endif  // CASCN_CLUSTER_SHARD_ROUTER_H_
