#include "cluster/resilience.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cluster/shard_router.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::cluster {

namespace {

using std::chrono::duration;
using std::chrono::duration_cast;

/// splitmix64 finalizer (same construction as the hash ring's): used to
/// chain observed-prefix fingerprints.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t EventHash(int user, int parent_node, double time) {
  uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(time));
  std::memcpy(&time_bits, &time, sizeof(time_bits));
  uint64_t h = Mix64(static_cast<uint64_t>(static_cast<int64_t>(user)));
  h ^= Mix64(static_cast<uint64_t>(static_cast<int64_t>(parent_node)) +
             0x51a2b3c4d5e6f708ull);
  h ^= Mix64(time_bits);
  return h;
}

int64_t SecondOf(std::chrono::steady_clock::time_point t) {
  return duration_cast<std::chrono::seconds>(t.time_since_epoch()).count();
}

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return duration<double, std::milli>(to - from).count();
}

std::chrono::steady_clock::duration MsDuration(double ms) {
  return duration_cast<std::chrono::steady_clock::duration>(
      duration<double, std::milli>(ms));
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// CircuitBreaker

CircuitBreaker::CircuitBreaker(const BreakerOptions& options,
                               TransitionHook on_transition)
    : options_(options), on_transition_(std::move(on_transition)) {
  CASCN_CHECK(options_.window_seconds > 0.0);
  CASCN_CHECK(options_.failure_rate_threshold > 0.0);
  CASCN_CHECK(options_.probe_requests >= 1);
}

void CircuitBreaker::AdvanceLocked(TimePoint now) {
  const int64_t horizon =
      SecondOf(now) - static_cast<int64_t>(options_.window_seconds);
  while (!window_.empty() && window_.front().second <= horizon)
    window_.pop_front();
}

std::pair<BreakerState, BreakerState> CircuitBreaker::TransitionLocked(
    BreakerState next) {
  const BreakerState from = state_;
  state_ = next;
  if (from != next) window_.clear();  // each state starts a fresh window
  return {from, next};
}

double CircuitBreaker::FailureRateLocked() const {
  uint64_t ok = 0;
  uint64_t failed = 0;
  for (const Bucket& bucket : window_) {
    ok += bucket.ok;
    failed += bucket.failed;
  }
  const uint64_t total = ok + failed;
  if (total < static_cast<uint64_t>(std::max(1, options_.min_requests)))
    return 0.0;
  return static_cast<double>(failed) / static_cast<double>(total);
}

bool CircuitBreaker::AllowRequest(TimePoint now) {
  std::pair<BreakerState, BreakerState> transition{state_, state_};
  bool allow = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdvanceLocked(now);
    switch (state_) {
      case BreakerState::kClosed:
      case BreakerState::kHalfOpen:
        allow = true;
        break;
      case BreakerState::kOpen:
        if (now >= open_until_) {
          transition = TransitionLocked(BreakerState::kHalfOpen);
          probe_needed_ = options_.probe_requests;
          probe_successes_ = 0;
          allow = true;
        } else {
          allow = false;
        }
        break;
    }
  }
  if (transition.first != transition.second && on_transition_)
    on_transition_(transition.first, transition.second);
  return allow;
}

void CircuitBreaker::RecordSuccess(TimePoint now) {
  std::pair<BreakerState, BreakerState> transition{state_, state_};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdvanceLocked(now);
    switch (state_) {
      case BreakerState::kClosed: {
        const int64_t second = SecondOf(now);
        if (window_.empty() || window_.back().second < second)
          window_.push_back(Bucket{second, 0, 0});
        ++window_.back().ok;
        break;
      }
      case BreakerState::kHalfOpen:
        if (++probe_successes_ >= probe_needed_)
          transition = TransitionLocked(BreakerState::kClosed);
        break;
      case BreakerState::kOpen:
        break;  // a straggler from before the trip; ignore
    }
  }
  if (transition.first != transition.second && on_transition_)
    on_transition_(transition.first, transition.second);
}

void CircuitBreaker::RecordFailure(TimePoint now) {
  std::pair<BreakerState, BreakerState> transition{state_, state_};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdvanceLocked(now);
    switch (state_) {
      case BreakerState::kClosed: {
        const int64_t second = SecondOf(now);
        if (window_.empty() || window_.back().second < second)
          window_.push_back(Bucket{second, 0, 0});
        ++window_.back().failed;
        if (FailureRateLocked() >= options_.failure_rate_threshold) {
          open_until_ = now + MsDuration(options_.open_seconds * 1000.0);
          transition = TransitionLocked(BreakerState::kOpen);
        }
        break;
      }
      case BreakerState::kHalfOpen:
        // Any failure during probation reopens immediately.
        open_until_ = now + MsDuration(options_.open_seconds * 1000.0);
        transition = TransitionLocked(BreakerState::kOpen);
        break;
      case BreakerState::kOpen:
        break;
    }
  }
  if (transition.first != transition.second && on_transition_)
    on_transition_(transition.first, transition.second);
}

void CircuitBreaker::BeginProbation(TimePoint now, int probe_requests) {
  std::pair<BreakerState, BreakerState> transition{state_, state_};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdvanceLocked(now);
    probe_needed_ =
        probe_requests > 0 ? probe_requests : options_.probe_requests;
    probe_successes_ = 0;
    transition = TransitionLocked(BreakerState::kHalfOpen);
  }
  if (transition.first != transition.second && on_transition_)
    on_transition_(transition.first, transition.second);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

double CircuitBreaker::FailureRate(TimePoint now) const {
  const int64_t horizon =
      SecondOf(now) - static_cast<int64_t>(options_.window_seconds);
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t ok = 0;
  uint64_t failed = 0;
  for (const Bucket& bucket : window_) {
    if (bucket.second <= horizon) continue;
    ok += bucket.ok;
    failed += bucket.failed;
  }
  const uint64_t total = ok + failed;
  return total == 0 ? 0.0
                    : static_cast<double>(failed) / static_cast<double>(total);
}

// ---------------------------------------------------------------------------
// RetryBudget

RetryBudget::RetryBudget(const RetryBudgetOptions& options)
    : options_(options), tokens_(options.cap) {
  CASCN_CHECK(options_.ratio >= 0.0);
  CASCN_CHECK(options_.cap >= 1.0);
}

void RetryBudget::OnRequest() {
  std::lock_guard<std::mutex> lock(mutex_);
  tokens_ = std::min(options_.cap, tokens_ + options_.ratio);
}

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tokens_;
}

// ---------------------------------------------------------------------------
// StaleCache

StaleCache::StaleCache(const StaleCacheOptions& options) : options_(options) {
  CASCN_CHECK(options_.capacity >= 1);
}

StaleCache::Entry& StaleCache::TouchLocked(const std::string& session_id) {
  auto it = entries_.find(session_id);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second;
  }
  while (entries_.size() >= options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(session_id);
  Entry& entry = entries_[session_id];
  entry.lru_it = lru_.begin();
  return entry;
}

void StaleCache::OnCreate(const std::string& session_id, int root_user) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = TouchLocked(session_id);
  entry.root_user = root_user;
  entry.events.clear();
  entry.replayable = true;
  // A re-created session is a new cascade: restart the fingerprint chain
  // from the root, but keep any stored last-good prediction (it stays
  // age-stamped; staleness is the point of this cache).
  entry.fingerprint = Mix64(EventHash(root_user, -1, 0.0));
}

void StaleCache::OnAppend(const std::string& session_id, int user,
                          int parent_node, double time) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = TouchLocked(session_id);
  entry.fingerprint =
      Mix64(entry.fingerprint ^ EventHash(user, parent_node, time));
  if (!entry.replayable) return;
  if (entry.events.size() >=
      static_cast<size_t>(std::max(0, options_.max_replay_events))) {
    // Log outgrew the replay cap: stop storing events (and hedging this
    // session), but keep fingerprinting for staleness keying.
    entry.events.clear();
    entry.events.shrink_to_fit();
    entry.replayable = false;
    return;
  }
  entry.events.push_back(MirroredEvent{user, parent_node, time});
}

void StaleCache::OnClose(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

uint64_t StaleCache::FingerprintOf(const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  return it == entries_.end() ? 0 : it->second.fingerprint;
}

std::optional<ReplayLog> StaleCache::ReplayLogOf(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end() || !it->second.replayable) return std::nullopt;
  ReplayLog log;
  log.root_user = it->second.root_user;
  log.events = it->second.events;
  log.fingerprint = it->second.fingerprint;
  return log;
}

void StaleCache::StorePrediction(const std::string& session_id,
                                 uint64_t fingerprint, double log_prediction,
                                 double count_prediction, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = TouchLocked(session_id);
  entry.has_prediction = true;
  entry.log_prediction = log_prediction;
  entry.count_prediction = count_prediction;
  entry.prediction_fingerprint = fingerprint;
  entry.stored_at = now;
}

std::optional<StaleAnswer> StaleCache::Lookup(const std::string& session_id,
                                              TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end() || !it->second.has_prediction) return std::nullopt;
  const double age_ms = std::max(0.0, MsBetween(it->second.stored_at, now));
  if (options_.max_age_ms > 0.0 && age_ms > options_.max_age_ms)
    return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return StaleAnswer{it->second.log_prediction, it->second.count_prediction,
                     age_ms, it->second.prediction_fingerprint};
}

size_t StaleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// ResilienceControl

ResilienceControl::ResilienceControl(const ResilienceOptions& options,
                                     uint64_t seed, AnomalyHook on_anomaly)
    : options_(options),
      on_anomaly_(std::move(on_anomaly)),
      budget_(options.retry_budget),
      stale_(options.stale),
      // Offset so the jitter stream differs from other consumers of the
      // fault seed while remaining reproducible from it.
      rng_(Mix64(seed ^ 0x7265736c69656e63ull)) {}

CircuitBreaker& ResilienceControl::BreakerFor(int shard_id) {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[shard_id];
  if (!slot) {
    slot = std::make_unique<CircuitBreaker>(
        options_.breaker, [this, shard_id](BreakerState, BreakerState to) {
          if (to == BreakerState::kOpen)
            breaker_opens_.fetch_add(1, std::memory_order_relaxed);
          if (on_anomaly_)
            on_anomaly_(shard_id,
                        StrFormat("breaker_%s",
                                  std::string(BreakerStateName(to)).c_str()));
        });
  }
  return *slot;
}

bool ResilienceControl::AllowShard(int shard_id, TimePoint now) {
  return BreakerFor(shard_id).AllowRequest(now);
}

void ResilienceControl::OnShardResult(int shard_id, bool failed,
                                      uint64_t latency_us, TimePoint now) {
  CircuitBreaker& breaker = BreakerFor(shard_id);
  if (failed) {
    breaker.RecordFailure(now);
  } else {
    breaker.RecordSuccess(now);
  }
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    std::unique_ptr<obs::Histogram>& histogram = latency_[shard_id];
    if (!histogram) histogram = std::make_unique<obs::Histogram>();
    histogram->Record(latency_us);
  }
}

BreakerState ResilienceControl::ShardState(int shard_id) const {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  auto it = breakers_.find(shard_id);
  return it == breakers_.end() ? BreakerState::kClosed : it->second->state();
}

void ResilienceControl::BeginProbation(int shard_id, TimePoint now) {
  BreakerFor(shard_id).BeginProbation(now);
}

bool ResilienceControl::TryAcquireRetry() {
  if (budget_.TryAcquire()) {
    retries_attempted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  retries_denied_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResilienceControl::NoteRetryDenied() {
  retries_denied_.fetch_add(1, std::memory_order_relaxed);
}

double ResilienceControl::RetryBackoffMs(int attempt) {
  double base = options_.retry_base_backoff_ms;
  for (int i = 0; i < attempt && base < options_.retry_max_backoff_ms; ++i)
    base *= 2.0;
  base = std::min(base, options_.retry_max_backoff_ms);
  double jitter;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    jitter = 0.5 + 0.5 * rng_.Uniform();
  }
  return base * jitter;
}

double ResilienceControl::HedgeDelayMs(TimePoint now) {
  const int64_t second = SecondOf(now);
  int64_t cached = hedge_cache_second_.load(std::memory_order_acquire);
  if (cached != second &&
      hedge_cache_second_.compare_exchange_strong(cached, second,
                                                  std::memory_order_acq_rel)) {
    // This thread won the once-per-second recompute.
    std::vector<double> p95s;
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      p95s.reserve(latency_.size());
      for (const auto& [shard, histogram] : latency_) {
        const obs::Histogram::Snapshot snapshot = histogram->TakeSnapshot();
        if (snapshot.count > 0) p95s.push_back(snapshot.Percentile(0.95));
      }
    }
    double median_us = 0.0;
    if (!p95s.empty()) {
      // Lower-middle on even counts: in a 2-shard cluster the upper-middle
      // would BE the slow shard's p95, letting it inflate its own hedge
      // trigger until hedging stops firing — the exact failure mode the
      // cross-shard median exists to prevent.
      const size_t mid = (p95s.size() - 1) / 2;
      std::nth_element(p95s.begin(), p95s.begin() + mid, p95s.end());
      median_us = p95s[mid];
    }
    const double delay_ms =
        std::max(options_.hedge_min_delay_ms,
                 options_.hedge_p95_multiplier * median_us / 1000.0);
    hedge_delay_us_.store(static_cast<uint64_t>(delay_ms * 1000.0),
                          std::memory_order_release);
  }
  const uint64_t us = hedge_delay_us_.load(std::memory_order_acquire);
  return us == 0 ? options_.hedge_min_delay_ms
                 : static_cast<double>(us) / 1000.0;
}

void ResilienceControl::NoteSupervisorRestart(int shard_id, TimePoint now) {
  supervisor_restarts_.fetch_add(1, std::memory_order_relaxed);
  BeginProbation(shard_id, now);
  if (on_anomaly_) on_anomaly_(shard_id, "supervisor_restart");
}

void ResilienceControl::ExportToRegistry(obs::MetricsRegistry& registry) const {
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    for (const auto& [shard, breaker] : breakers_)
      registry
          .GetGauge(StrFormat("cluster_breaker_state{shard=\"%d\"}", shard))
          .Set(static_cast<double>(static_cast<int>(breaker->state())));
  }
  registry.GetCounter("cluster_retries_attempted_total")
      .Increment(retries_attempted());
  registry.GetCounter("cluster_retries_denied_total")
      .Increment(retries_denied());
  registry.GetCounter("cluster_hedges_launched_total")
      .Increment(hedges_launched());
  registry.GetCounter("cluster_hedges_won_total").Increment(hedges_won());
  registry.GetCounter("cluster_stale_serves_total").Increment(stale_serves());
  registry.GetCounter("cluster_supervisor_restarts_total")
      .Increment(supervisor_restarts());
  registry.GetCounter("cluster_breaker_opens_total")
      .Increment(breaker_opens());
  registry.GetGauge("cluster_retry_budget_tokens").Set(budget_.tokens());
  registry.GetGauge("cluster_stale_cache_sessions")
      .Set(static_cast<double>(stale_.size()));
}

std::string ResilienceControl::StatusReport(TimePoint now) const {
  std::string report;
  report += StrFormat(
      "retry budget: %.1f tokens (attempted %llu, denied %llu)\n",
      budget_.tokens(),
      static_cast<unsigned long long>(retries_attempted()),
      static_cast<unsigned long long>(retries_denied()));
  report += StrFormat(
      "hedging: %s (launched %llu, won %llu)\n",
      options_.hedging ? "on" : "off",
      static_cast<unsigned long long>(hedges_launched()),
      static_cast<unsigned long long>(hedges_won()));
  report += StrFormat(
      "stale cache: %zu sessions, %llu stale serves\n", stale_.size(),
      static_cast<unsigned long long>(stale_serves()));
  report += StrFormat(
      "supervisor restarts: %llu, breaker opens: %llu\n",
      static_cast<unsigned long long>(supervisor_restarts()),
      static_cast<unsigned long long>(breaker_opens()));
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  for (const auto& [shard, breaker] : breakers_)
    report += StrFormat(
        "breaker shard %d: %s (failure rate %.2f)\n", shard,
        std::string(BreakerStateName(breaker->state())).c_str(),
        breaker->FailureRate(now));
  return report;
}

// ---------------------------------------------------------------------------
// ShardSupervisor

ShardSupervisor::ShardSupervisor(ShardRouter& router,
                                 SupervisorOptions options)
    : router_(router),
      options_(options),
      clock_(options.clock ? options.clock
                           : [] { return std::chrono::steady_clock::now(); }) {
  CASCN_CHECK(options_.poll_interval_ms > 0.0);
  CASCN_CHECK(options_.restart_backoff_ms >= 0.0);
  CASCN_CHECK(options_.max_backoff_ms >= options_.restart_backoff_ms);
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

double ShardSupervisor::BackoffMs(int failed_attempts) const {
  double backoff = options_.restart_backoff_ms;
  for (int i = 0; i < failed_attempts && backoff < options_.max_backoff_ms;
       ++i)
    backoff *= 2.0;
  return std::min(backoff, options_.max_backoff_ms);
}

int ShardSupervisor::PollOnce() {
  const TimePoint now = clock_();

  // 1. Wedge detection: a shard whose watchdog-stall latch holds for
  //    `wedged_polls` consecutive passes is force-crashed; the crash path
  //    below then schedules its restart like any other dead shard.
  if (options_.restart_wedged) {
    const std::vector<int> wedged = router_.WatchdogWedgedShardIds();
    std::vector<int> to_kill;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = wedged_counts_.begin(); it != wedged_counts_.end();) {
        if (std::find(wedged.begin(), wedged.end(), it->first) ==
            wedged.end()) {
          it = wedged_counts_.erase(it);  // recovered on its own
        } else {
          ++it;
        }
      }
      for (int shard_id : wedged) {
        if (++wedged_counts_[shard_id] >= options_.wedged_polls) {
          to_kill.push_back(shard_id);
          wedged_counts_.erase(shard_id);
        }
      }
    }
    for (int shard_id : to_kill) {
      CASCN_LOG(WARNING) << "supervisor: shard " << shard_id
                         << " wedged (watchdog stall held "
                         << options_.wedged_polls
                         << " polls); force-restarting";
      router_.CrashShard(shard_id);
      wedge_kills_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // 2. Schedule newly-observed crashes and collect due restart attempts.
  const std::vector<int> crashed = router_.CrashedShardIds();
  std::vector<int> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int shard_id : crashed) {
      if (plans_.find(shard_id) == plans_.end())
        plans_[shard_id] =
            RestartPlan{shard_id, 0, now + MsDuration(BackoffMs(0))};
    }
    for (auto it = plans_.begin(); it != plans_.end();) {
      if (std::find(crashed.begin(), crashed.end(), it->first) ==
          crashed.end()) {
        it = plans_.erase(it);  // revived out from under us
        continue;
      }
      if (now >= it->second.next_attempt_at) due.push_back(it->first);
      ++it;
    }
  }

  // 3. Attempt the due restarts (outside our lock: RestartShard takes the
  //    router's routing lock and loads a checkpoint).
  int restarted = 0;
  for (int shard_id : due) {
    const Status status = router_.RestartShard(shard_id);
    bool success = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = plans_.find(shard_id);
      if (status.ok()) {
        if (it != plans_.end()) plans_.erase(it);
        success = true;
      } else if (it != plans_.end()) {
        ++it->second.failed_attempts;
        it->second.next_attempt_at =
            now + MsDuration(BackoffMs(it->second.failed_attempts));
      }
    }
    if (success) {
      restarts_.fetch_add(1, std::memory_order_relaxed);
      ++restarted;
      router_.NoteSupervisorRestart(shard_id);
    } else {
      failures_.fetch_add(1, std::memory_order_relaxed);
      CASCN_LOG(WARNING) << "supervisor: restart of shard " << shard_id
                         << " failed: " << status.ToString();
    }
  }
  return restarted;
}

std::vector<ShardSupervisor::RestartPlan> ShardSupervisor::Plans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RestartPlan> plans;
  plans.reserve(plans_.size());
  for (const auto& [shard_id, plan] : plans_) plans.push_back(plan);
  return plans;
}

void ShardSupervisor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread(&ShardSupervisor::Loop, this);
}

void ShardSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  running_ = false;
}

void ShardSupervisor::Loop() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    PollOnce();
    lock.lock();
    stop_cv_.wait_for(lock, MsDuration(options_.poll_interval_ms),
                      [this] { return stop_requested_; });
  }
}

}  // namespace cascn::cluster
