#include "cluster/shard_router.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cluster/handoff.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault.h"

namespace cascn::cluster {

using serve::Health;
using serve::PredictionService;
using serve::ServeResponse;
using serve::ServiceOptions;

std::string SlowShardFaultPoint(int shard_id) {
  return std::string(kFaultSlowShardPrefix) + std::to_string(shard_id);
}

ShardRouter::ShardRouter(const ShardRouterOptions& options,
                         std::string checkpoint_path)
    : options_(options),
      checkpoint_path_(std::move(checkpoint_path)),
      admission_(options.admission),
      ring_(options.ring) {}

Result<std::unique_ptr<ShardRouter>> ShardRouter::CreateFromCheckpoint(
    const ShardRouterOptions& options, const std::string& checkpoint_path) {
  if (options.num_shards < 1)
    return Status::InvalidArgument(
        StrFormat("num_shards must be >= 1, got %d", options.num_shards));
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(options, checkpoint_path));
  std::vector<int> ids;
  for (int i = 0; i < options.num_shards; ++i) {
    CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                           router->StartShard(i));
    router->shards_[i] = Shard{std::move(service), 0};
    ids.push_back(i);
  }
  router->ring_.SetShards(ids);
  return router;
}

ShardRouter::~ShardRouter() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, shard] : shards_) shard.service->Shutdown();
  shards_.clear();
}

ServiceOptions ShardRouter::ShardServiceOptions(int shard_id) const {
  ServiceOptions opts = options_.shard;
  opts.extra_predict_fault_point = SlowShardFaultPoint(shard_id);
  // Handoff moves *every* session a client still cares about, including
  // LRU-evicted ones, so keep evicted histories spilled by default.
  if (opts.sessions.spill_capacity == 0)
    opts.sessions.spill_capacity = opts.sessions.capacity;
  return opts;
}

Result<std::shared_ptr<PredictionService>> ShardRouter::StartShard(
    int shard_id) {
  CASCN_ASSIGN_OR_RETURN(
      std::unique_ptr<PredictionService> service,
      PredictionService::CreateFromCheckpoint(ShardServiceOptions(shard_id),
                                              checkpoint_path_));
  return std::shared_ptr<PredictionService>(std::move(service));
}

Result<std::shared_ptr<PredictionService>> ShardRouter::Route(
    const std::string& tenant, const std::string& session_id, bool create) {
  // Chaos hook: an armed "cluster.shard_crash" kills the shard named by its
  // @V payload in the middle of routed load. Evaluated before taking the
  // routing lock (the crash itself needs it).
  if (fault::ShouldFire(kFaultShardCrash)) {
    const int victim = static_cast<int>(
        fault::FaultRegistry::Get().ArmedValue(kFaultShardCrash, -1.0));
    if (victim >= 0) CrashShard(victim);
  }

  CASCN_RETURN_IF_ERROR(
      admission_.AdmitTenant(tenant, std::chrono::steady_clock::now()));

  std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.empty())
    return Status::Unavailable("no active shards in the cluster");

  int target = -1;
  bool pin_new = false;
  const auto pin = pins_.find(session_id);
  if (pin != pins_.end()) {
    target = pin->second;
    if (shards_.find(target) == shards_.end())
      return Status::Unavailable(
          StrFormat("session '%s' is pinned to shard %d, which is down",
                    session_id.c_str(), target));
  } else if (create) {
    target = ring_.PickShard(session_id, [this](int s) {
      return shards_.at(s).pinned;
    });
    pin_new = true;
  } else {
    // No pin and not a create: the session does not exist anywhere; route
    // to the ring owner so the NotFound comes from the right shard.
    target = ring_.OwnerOf(session_id);
  }

  std::shared_ptr<PredictionService> service = shards_.at(target).service;
  CASCN_RETURN_IF_ERROR(
      admission_.AdmitLoad(service->queue_depth(), service->queue_capacity()));
  if (pin_new) {
    pins_[session_id] = target;
    ++shards_.at(target).pinned;
  }
  return service;
}

Result<std::future<ServeResponse>> ShardRouter::SubmitCreate(
    const std::string& tenant, std::string session_id, int root_user,
    double deadline_ms) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                         Route(tenant, session_id, /*create=*/true));
  return service->SubmitCreate(std::move(session_id), root_user, deadline_ms);
}

Result<std::future<ServeResponse>> ShardRouter::SubmitAppend(
    const std::string& tenant, std::string session_id, int user,
    int parent_node, double time, double deadline_ms) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                         Route(tenant, session_id, /*create=*/false));
  return service->SubmitAppend(std::move(session_id), user, parent_node, time,
                               deadline_ms);
}

Result<std::future<ServeResponse>> ShardRouter::SubmitPredict(
    const std::string& tenant, std::string session_id, double deadline_ms) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                         Route(tenant, session_id, /*create=*/false));
  return service->SubmitPredict(std::move(session_id), deadline_ms);
}

Result<std::future<ServeResponse>> ShardRouter::SubmitClose(
    const std::string& tenant, std::string session_id, double deadline_ms) {
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                         Route(tenant, session_id, /*create=*/false));
  return service->SubmitClose(std::move(session_id), deadline_ms);
}

namespace {

ServeResponse Wait(Result<std::future<ServeResponse>> submitted) {
  if (!submitted.ok()) return ServeResponse{submitted.status()};
  return submitted.value().get();
}

}  // namespace

ServeResponse ShardRouter::CallCreate(const std::string& tenant,
                                      std::string session_id, int root_user) {
  return Wait(SubmitCreate(tenant, std::move(session_id), root_user));
}

ServeResponse ShardRouter::CallAppend(const std::string& tenant,
                                      std::string session_id, int user,
                                      int parent_node, double time) {
  return Wait(
      SubmitAppend(tenant, std::move(session_id), user, parent_node, time));
}

ServeResponse ShardRouter::CallPredict(const std::string& tenant,
                                       std::string session_id) {
  return Wait(SubmitPredict(tenant, std::move(session_id)));
}

ServeResponse ShardRouter::CallClose(const std::string& tenant,
                                     std::string session_id) {
  const std::string id = session_id;
  ServeResponse response = Wait(SubmitClose(tenant, std::move(session_id)));
  if (response.status.ok()) {
    // The session is gone; release its pin so a future session with the
    // same id places fresh by the ring.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto pin = pins_.find(id);
    if (pin != pins_.end()) {
      const auto shard = shards_.find(pin->second);
      if (shard != shards_.end() && shard->second.pinned > 0)
        --shard->second.pinned;
      pins_.erase(pin);
    }
  }
  return response;
}

Status ShardRouter::DrainQueue(PredictionService& service) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(options_.drain_timeout_ms * 1000.0));
  while (service.queue_depth() > 0) {
    if (std::chrono::steady_clock::now() >= deadline)
      return Status::DeadlineExceeded(StrFormat(
          "shard queue still has %zu requests after %.0f ms drain window",
          service.queue_depth(), options_.drain_timeout_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

std::string ShardRouter::HandoffPath(int shard_id) const {
  std::string dir = options_.handoff_dir;
  if (dir.empty()) {
    const size_t slash = checkpoint_path_.rfind('/');
    dir = slash == std::string::npos ? "." : checkpoint_path_.substr(0, slash);
  }
  return StrFormat("%s/shard_%d.handoff", dir.c_str(), shard_id);
}

Result<HandoffImage> ShardRouter::WriteValidatedHandoff(
    int shard_id, const std::vector<HandoffEntry>& entries) const {
  const std::string path = HandoffPath(shard_id);
  Status last = Status::Internal("handoff never attempted");
  for (int attempt = 0; attempt < std::max(1, options_.handoff_write_attempts);
       ++attempt) {
    last = WriteHandoffFile(path, shard_id, entries);
    if (!last.ok()) continue;  // e.g. injected torn write; just retry
    Result<HandoffImage> image = ReadHandoffFile(path);
    if (image.ok()) return image;
    last = image.status();
  }
  return last;
}

Status ShardRouter::RemoveShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_id);
  if (it == shards_.end())
    return Status::FailedPrecondition(
        StrFormat("shard %d is not active", shard_id));
  if (shards_.size() == 1)
    return Status::FailedPrecondition(
        "cannot remove the last active shard");
  Shard& source = it->second;
  serve::SessionManager& sessions = source.service->sessions();

  // Deactivate: while we hold the routing lock nothing new is routed, and
  // the ring without this shard decides where its sessions will land.
  std::vector<int> remaining;
  for (const auto& [id, shard] : shards_)
    if (id != shard_id) remaining.push_back(id);
  ring_.SetShards(remaining);
  const auto restore_ring = [this] {
    std::vector<int> all;
    for (const auto& [id, shard] : shards_) all.push_back(id);
    ring_.SetShards(all);
  };

  Status drained = DrainQueue(*source.service);
  if (!drained.ok()) {
    restore_ring();
    return drained;
  }

  // Extract every session (live and spilled). The queue is empty and no
  // new work can arrive, so only a worker still inside a session blocks an
  // extract — retry briefly, and abort the whole removal (nothing is lost,
  // nothing has moved) if one stays busy.
  std::vector<HandoffEntry> entries;
  const auto put_back = [&] {
    for (HandoffEntry& entry : entries) {
      const Status st = sessions.Deserialize(entry.session_id, entry.blob);
      CASCN_CHECK(st.ok()) << "re-inserting extracted session '"
                           << entry.session_id
                           << "' into its own shard failed: " << st.ToString();
    }
  };
  for (const std::string& sid : sessions.SessionIds()) {
    Result<std::string> blob = sessions.Extract(sid);
    for (int retry = 0; !blob.ok() && retry < 100; ++retry) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      blob = sessions.Extract(sid);
    }
    if (!blob.ok()) {
      put_back();
      restore_ring();
      return Status::Unavailable(
          StrFormat("session '%s' stayed busy; shard %d was not removed",
                    sid.c_str(), shard_id));
    }
    entries.push_back(HandoffEntry{sid, std::move(blob).value()});
  }

  // Durable leg: write + read back + CRC-validate before anything imports.
  // The extracted sessions stay in `entries`, so a torn write (injected or
  // real) costs a retry, never a session.
  Result<HandoffImage> image = WriteValidatedHandoff(shard_id, entries);
  if (!image.ok()) {
    put_back();
    restore_ring();
    return image.status();
  }

  // Import from the validated image — the bytes a crash recovery would see,
  // not the in-memory copies.
  const auto load_of = [this](int s) { return shards_.at(s).pinned; };
  for (const HandoffEntry& entry : image.value().entries) {
    const int target = ring_.PickShard(entry.session_id, load_of);
    const Status st =
        shards_.at(target).service->sessions().Deserialize(entry.session_id,
                                                           entry.blob);
    if (!st.ok()) {
      // Put this and all not-yet-imported entries back and keep the shard.
      // Already-imported sessions are fine where they landed (their pins
      // are updated), so the cluster stays consistent.
      std::vector<HandoffEntry> rest(
          std::find_if(entries.begin(), entries.end(),
                       [&](const HandoffEntry& e) {
                         return e.session_id == entry.session_id;
                       }),
          entries.end());
      entries = std::move(rest);
      put_back();
      restore_ring();
      return Status::Unavailable(StrFormat(
          "import of session '%s' into shard %d failed (%s); shard %d kept",
          entry.session_id.c_str(), target, st.message().c_str(), shard_id));
    }
    pins_[entry.session_id] = target;
    ++shards_.at(target).pinned;
    if (source.pinned > 0) --source.pinned;
  }

  source.service->Shutdown();
  shards_.erase(it);
  return Status::OK();
}

Status ShardRouter::AddShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.find(shard_id) != shards_.end())
    return Status::InvalidArgument(
        StrFormat("shard %d is already active", shard_id));
  CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                         StartShard(shard_id));
  shards_[shard_id] = Shard{std::move(service), 0};
  crashed_.erase(shard_id);
  std::vector<int> all;
  for (const auto& [id, shard] : shards_) all.push_back(id);
  ring_.SetShards(all);

  // Pull over the sessions the grown ring assigns to the new shard — the
  // consistent-hash guarantee keeps this to ~1/N of them, all moving TO the
  // new shard. Busy sessions are skipped (they stay pinned where they are;
  // routing by pin keeps them correct).
  Shard& target = shards_.at(shard_id);
  for (auto& [source_id, source] : shards_) {
    if (source_id == shard_id) continue;
    serve::SessionManager& sessions = source.service->sessions();
    std::vector<std::string> moving;
    for (const std::string& sid : sessions.SessionIds())
      if (ring_.OwnerOf(sid) == shard_id) moving.push_back(sid);
    if (moving.empty()) continue;
    CASCN_RETURN_IF_ERROR(DrainQueue(*source.service));
    std::vector<HandoffEntry> entries;
    for (const std::string& sid : moving) {
      Result<std::string> blob = sessions.Extract(sid);
      if (!blob.ok()) continue;  // busy: leave it pinned to the source
      entries.push_back(HandoffEntry{sid, std::move(blob).value()});
    }
    if (entries.empty()) continue;
    Result<HandoffImage> image = WriteValidatedHandoff(source_id, entries);
    if (!image.ok()) {
      for (HandoffEntry& entry : entries) {
        const Status st = sessions.Deserialize(entry.session_id, entry.blob);
        CASCN_CHECK(st.ok())
            << "re-inserting session '" << entry.session_id
            << "' into shard " << source_id << " failed: " << st.ToString();
      }
      return image.status();
    }
    for (const HandoffEntry& entry : image.value().entries) {
      const Status st = target.service->sessions().Deserialize(
          entry.session_id, entry.blob);
      if (!st.ok()) {
        const Status back = sessions.Deserialize(entry.session_id, entry.blob);
        CASCN_CHECK(back.ok())
            << "session '" << entry.session_id
            << "' could be imported nowhere: " << st.ToString();
        continue;
      }
      pins_[entry.session_id] = shard_id;
      ++target.pinned;
      if (source.pinned > 0) --source.pinned;
    }
  }
  return Status::OK();
}

void ShardRouter::CrashShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CrashShardLocked(shard_id);
}

void ShardRouter::CrashShardLocked(int shard_id) {
  const auto it = shards_.find(shard_id);
  if (it == shards_.end()) return;
  // No drain, no handoff: exactly what a real crash leaves behind. Shutdown
  // fails everything queued; the session table dies with the service.
  it->second.service->Shutdown();
  shards_.erase(it);
  crashed_.insert(shard_id);
  std::vector<int> remaining;
  for (const auto& [id, shard] : shards_) remaining.push_back(id);
  ring_.SetShards(remaining);
}

Status ShardRouter::RestartShard(int shard_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shards_.find(shard_id) != shards_.end())
      return Status::InvalidArgument(
          StrFormat("shard %d is still active", shard_id));
    // Pins into the crashed shard point at state that died with it; drop
    // them so re-created sessions place by the ring again.
    for (auto it = pins_.begin(); it != pins_.end();) {
      if (it->second == shard_id)
        it = pins_.erase(it);
      else
        ++it;
    }
  }
  return AddShard(shard_id);
}

Health ShardRouter::ClusterHealth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.empty()) return Health::kUnhealthy;
  bool degraded = !crashed_.empty();
  for (const auto& [id, shard] : shards_)
    if (shard.service->health() != Health::kHealthy) degraded = true;
  return degraded ? Health::kDegraded : Health::kHealthy;
}

ShardRouter::Snapshot ShardRouter::TakeSnapshot() const {
  Snapshot snap;
  obs::Histogram::Snapshot merged;
  merged.buckets.assign(serve::ServeMetrics::kNumLatencyBuckets, 0);
  double weighted_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool degraded = !crashed_.empty();
    for (const auto& [id, shard] : shards_) {
      ShardInfo info;
      info.shard_id = id;
      info.active = true;
      info.queue_depth = shard.service->queue_depth();
      info.num_sessions = shard.service->sessions().size();
      info.pinned_sessions = shard.pinned;
      info.metrics = shard.service->metrics().TakeSnapshot();
      if (info.metrics.health != Health::kHealthy) degraded = true;
      for (int b = 0; b < serve::ServeMetrics::kNumLatencyBuckets; ++b)
        merged.buckets[static_cast<size_t>(b)] +=
            info.metrics.latency_buckets[static_cast<size_t>(b)];
      merged.count += info.metrics.latency_count;
      merged.max = std::max(merged.max, info.metrics.latency_max_us);
      weighted_sum += info.metrics.latency_mean_us *
                      static_cast<double>(info.metrics.latency_count);
      snap.shards.push_back(std::move(info));
    }
    for (int id : crashed_) {
      ShardInfo info;
      info.shard_id = id;
      info.active = false;
      snap.shards.push_back(std::move(info));
    }
    snap.crashed_shards = crashed_.size();
    snap.health = shards_.empty()
                      ? Health::kUnhealthy
                      : (degraded ? Health::kDegraded : Health::kHealthy);
  }
  std::sort(snap.shards.begin(), snap.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.shard_id < b.shard_id;
            });
  if (merged.count > 0) {
    merged.sum = static_cast<uint64_t>(weighted_sum);
    merged.mean = weighted_sum / static_cast<double>(merged.count);
  }
  snap.latency_count = merged.count;
  snap.latency_p50_us = merged.Percentile(0.50);
  snap.latency_p95_us = merged.Percentile(0.95);
  snap.latency_p99_us = merged.Percentile(0.99);
  snap.tenants = admission_.Stats();
  snap.total_shed = admission_.total_shed();
  return snap;
}

std::string ShardRouter::Snapshot::ToString() const {
  std::string out = StrFormat(
      "cluster: health=%s shards=%zu (crashed %llu) shed=%llu "
      "latency n=%llu p50~%.0fus p95~%.0fus p99~%.0fus\n",
      std::string(serve::HealthName(health)).c_str(), shards.size(),
      static_cast<unsigned long long>(crashed_shards),
      static_cast<unsigned long long>(total_shed),
      static_cast<unsigned long long>(latency_count), latency_p50_us,
      latency_p95_us, latency_p99_us);
  for (const ShardInfo& shard : shards) {
    if (!shard.active) {
      out += StrFormat("  shard %d: DOWN\n", shard.shard_id);
      continue;
    }
    out += StrFormat(
        "  shard %d: health=%s sessions=%zu pinned=%llu queue=%zu "
        "requests=%llu p99~%.0fus\n",
        shard.shard_id,
        std::string(serve::HealthName(shard.metrics.health)).c_str(),
        shard.num_sessions,
        static_cast<unsigned long long>(shard.pinned_sessions),
        shard.queue_depth,
        static_cast<unsigned long long>(
            shard.metrics.counter(serve::Counter::kRequestsTotal)),
        shard.metrics.latency_p99_us);
  }
  for (const auto& tenant : tenants)
    out += StrFormat("  tenant '%s': admitted=%llu rejected=%llu\n",
                     tenant.tenant.c_str(),
                     static_cast<unsigned long long>(tenant.admitted),
                     static_cast<unsigned long long>(tenant.rejected));
  return out;
}

void ShardRouter::ExportToRegistry(obs::MetricsRegistry& registry) const {
  const Snapshot snap = TakeSnapshot();
  for (const ShardInfo& shard : snap.shards) {
    if (!shard.active) continue;
    serve::ExportToRegistry(shard.metrics, registry,
                            StrFormat("shard=\"%d\"", shard.shard_id));
    registry.GetGauge(StrFormat("cluster_shard_sessions{shard=\"%d\"}",
                                shard.shard_id))
        .Set(static_cast<double>(shard.num_sessions));
  }
  registry.GetGauge("cluster_health")
      .Set(static_cast<double>(static_cast<int>(snap.health)));
  registry.GetGauge("cluster_shards_active")
      .Set(static_cast<double>(snap.shards.size() - snap.crashed_shards));
  registry.GetGauge("cluster_shards_crashed")
      .Set(static_cast<double>(snap.crashed_shards));
  registry.GetGauge("cluster_shed_total")
      .Set(static_cast<double>(snap.total_shed));
  registry.GetGauge("cluster_latency_p50_us").Set(snap.latency_p50_us);
  registry.GetGauge("cluster_latency_p95_us").Set(snap.latency_p95_us);
  registry.GetGauge("cluster_latency_p99_us").Set(snap.latency_p99_us);
  for (const auto& tenant : snap.tenants) {
    registry
        .GetGauge(StrFormat("cluster_tenant_admitted{tenant=\"%s\"}",
                            tenant.tenant.c_str()))
        .Set(static_cast<double>(tenant.admitted));
    registry
        .GetGauge(StrFormat("cluster_tenant_rejected{tenant=\"%s\"}",
                            tenant.tenant.c_str()))
        .Set(static_cast<double>(tenant.rejected));
  }
}

int ShardRouter::num_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(shards_.size());
}

std::vector<int> ShardRouter::ShardIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

int ShardRouter::ShardOf(const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto pin = pins_.find(session_id);
  if (pin != pins_.end()) return pin->second;
  if (ring_.empty()) return -1;
  return ring_.OwnerOf(session_id);
}

PredictionService* ShardRouter::shard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second.service.get();
}

}  // namespace cascn::cluster
