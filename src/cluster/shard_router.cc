#include "cluster/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "cluster/handoff.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace cascn::cluster {

using serve::Health;
using serve::PredictionService;
using serve::ServeResponse;
using serve::ServiceOptions;

std::string SlowShardFaultPoint(int shard_id) {
  return std::string(kFaultSlowShardPrefix) + std::to_string(shard_id);
}

ShardRouter::ShardRouter(const ShardRouterOptions& options,
                         std::string checkpoint_path)
    : options_(options),
      checkpoint_path_(std::move(checkpoint_path)),
      admission_(options.admission),
      clock_(options.clock ? options.clock
                           : [] { return std::chrono::steady_clock::now(); }),
      slo_(options.slo),
      ring_(options.ring),
      all_ring_(options.ring) {
  if (!options_.flight_dir.empty())
    router_flight_.SetDumpPath(options_.flight_dir + "/flight_router.jsonl");
  if (options_.resilience.enabled) {
    // Jitter is seeded from the fault registry so a chaos run's retries are
    // as reproducible as its faults. Breaker flips and supervisor actions
    // snapshot the router's black box (no-op without flight_dir).
    resilience_ = std::make_shared<ResilienceControl>(
        options_.resilience, fault::FaultRegistry::Get().seed(),
        [this](int /*shard_id*/, std::string_view reason) {
          router_flight_.TriggerDump(reason);
        });
  }
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::CreateFromCheckpoint(
    const ShardRouterOptions& options, const std::string& checkpoint_path) {
  if (options.num_shards < 1)
    return Status::InvalidArgument(
        StrFormat("num_shards must be >= 1, got %d", options.num_shards));
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(options, checkpoint_path));
  std::vector<int> ids;
  for (int i = 0; i < options.num_shards; ++i) {
    CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                           router->StartShard(i));
    router->shards_[i] = Shard{std::move(service)};
    ids.push_back(i);
  }
  router->ring_.SetShards(ids);
  router->all_ring_.SetShards(ids);
  return router;
}

ShardRouter::~ShardRouter() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, shard] : shards_) shard.service->Shutdown();
  shards_.clear();
}

ServiceOptions ShardRouter::ShardServiceOptions(int shard_id) const {
  ServiceOptions opts = options_.shard;
  opts.extra_predict_fault_point = SlowShardFaultPoint(shard_id);
  opts.shard_id = shard_id;
  if (!options_.flight_dir.empty())
    opts.flight_dump_path =
        StrFormat("%s/flight_shard_%d.jsonl", options_.flight_dir.c_str(),
                  shard_id);
  // Every terminal outcome on this shard feeds its tenant's SLI. The
  // callback runs on shard worker threads (and during the shard's Shutdown
  // drain); slo_ and clock_ are declared before shards_ and ~ShardRouter
  // shuts shards down first, so both strictly outlive every invocation.
  opts.on_complete = [this, shard_id](const obs::RequestContext& ctx,
                                      const Status& status,
                                      uint64_t latency_us) {
    if (!ctx.tenant.empty())
      slo_.RecordRequest(ctx.tenant, clock_(), status.ok(), latency_us);
    if (ResilienceControl* rc = resilience_.get()) {
      const StatusCode code = status.code();
      // Breaker failures are INFRASTRUCTURE failures (the shard couldn't
      // serve); application outcomes like NotFound/InvalidArgument are
      // successful service of a bad request. Cancelled hedge losers say
      // nothing about the shard's health either way.
      if (code != StatusCode::kCancelled) {
        const bool failed = code == StatusCode::kUnavailable ||
                            code == StatusCode::kDeadlineExceeded ||
                            code == StatusCode::kInternal ||
                            code == StatusCode::kIoError;
        rc->OnShardResult(shard_id, failed, latency_us, clock_());
      }
    }
  };
  // Handoff moves *every* session a client still cares about, including
  // LRU-evicted ones, so keep evicted histories spilled by default.
  if (opts.sessions.spill_capacity == 0)
    opts.sessions.spill_capacity = opts.sessions.capacity;
  // When the bounded spill LRU discards a session's history anyway, its pin
  // must go too — otherwise pins_ grows without bound and keeps skewing the
  // placement load metric. Captures the shared pin state, not the router:
  // the callback runs on shard worker threads under the shard's session
  // table lock (pins_->mutex is a leaf lock, so that nesting is safe).
  opts.sessions.on_spill_drop = [pins = pins_,
                                 shard_id](const std::string& session_id) {
    std::lock_guard<std::mutex> lock(pins->mutex);
    const auto it = pins->session_shard.find(session_id);
    if (it == pins->session_shard.end() || it->second.shard_id != shard_id)
      return;
    const auto load = pins->shard_load.find(shard_id);
    if (load != pins->shard_load.end() && load->second > 0) --load->second;
    pins->session_shard.erase(it);
  };
  return opts;
}

void ShardRouter::SetPin(PinState& pins, const std::string& session_id,
                         int shard_id) {
  std::lock_guard<std::mutex> lock(pins.mutex);
  const auto it = pins.session_shard.find(session_id);
  if (it != pins.session_shard.end()) {
    const auto load = pins.shard_load.find(it->second.shard_id);
    if (load != pins.shard_load.end() && load->second > 0) --load->second;
  }
  pins.session_shard[session_id] =
      PinState::Pin{shard_id, ++pins.next_generation};
  ++pins.shard_load[shard_id];
}

void ShardRouter::ReleasePinIfCurrent(PinState& pins,
                                      const std::string& session_id,
                                      uint64_t generation) {
  std::lock_guard<std::mutex> lock(pins.mutex);
  const auto it = pins.session_shard.find(session_id);
  if (it == pins.session_shard.end() || it->second.generation != generation)
    return;
  const auto load = pins.shard_load.find(it->second.shard_id);
  if (load != pins.shard_load.end() && load->second > 0) --load->second;
  pins.session_shard.erase(it);
}

void ShardRouter::RebuildRingLocked() {
  std::vector<int> ids;
  for (const auto& [id, shard] : shards_)
    if (draining_.count(id) == 0) ids.push_back(id);
  ring_.SetShards(ids);
  // Full-membership ring (active + draining + crashed): the crashed-owner
  // check in Route consults this so a session that died with its shard
  // reports Unavailable-until-restart, not a survivor's NotFound.
  std::vector<int> all;
  for (const auto& [id, shard] : shards_) all.push_back(id);
  for (int id : crashed_) all.push_back(id);
  all_ring_.SetShards(all);
}

Result<std::shared_ptr<PredictionService>> ShardRouter::StartShard(
    int shard_id) {
  CASCN_ASSIGN_OR_RETURN(
      std::unique_ptr<PredictionService> service,
      PredictionService::CreateFromCheckpoint(ShardServiceOptions(shard_id),
                                              checkpoint_path_));
  return std::shared_ptr<PredictionService>(std::move(service));
}

void ShardRouter::RecordRejection(const obs::RequestContext& ctx,
                                  const Status& status) {
  if (!ctx.tenant.empty())
    slo_.RecordRequest(ctx.tenant, clock_(), /*ok=*/false, /*latency_us=*/0);
  obs::FlightRecord record;
  record.trace_id = ctx.trace_id;
  record.shard_id = -1;
  record.op = obs::FlightOp::kRoute;
  record.status = static_cast<uint8_t>(status.code());
  record.set_tenant(ctx.tenant);
  record.set_session(ctx.session_id);
  router_flight_.Append(record);
  if (status.code() == StatusCode::kResourceExhausted) {
    // An overloaded tenant sheds thousands of requests per second and each
    // dump serializes the whole ring: cap anomaly dumps at one per second
    // (injected clock, so tests stay deterministic). The ring keeps every
    // record either way; only the file append is throttled.
    const int64_t second = std::chrono::duration_cast<std::chrono::seconds>(
                               clock_().time_since_epoch())
                               .count();
    int64_t last = last_shed_dump_second_.load(std::memory_order_relaxed);
    if (last != second &&
        last_shed_dump_second_.compare_exchange_strong(
            last, second, std::memory_order_relaxed))
      router_flight_.TriggerDump("load_shed");
  }
}

Result<std::shared_ptr<PredictionService>> ShardRouter::Route(
    const obs::RequestContext& ctx, bool create, int* routed_shard,
    bool is_retry) {
  const std::string& tenant = ctx.tenant;
  const std::string& session_id = ctx.session_id;
  // Chaos hook: an armed "cluster.shard_crash" kills the shard named by its
  // @V payload in the middle of routed load. Evaluated before taking the
  // routing lock (the crash itself needs it).
  if (fault::ShouldFire(kFaultShardCrash)) {
    const int victim = static_cast<int>(
        fault::FaultRegistry::Get().ArmedValue(kFaultShardCrash, -1.0));
    if (victim >= 0) CrashShard(victim);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Routing feasibility and the load-shed gate run BEFORE the tenant token
  // is charged: a request that is guaranteed to fail must not consume
  // quota, or retries against a degraded cluster compound the outage.
  if (shards_.empty())
    return Status::Unavailable("no active shards in the cluster");

  int target = -1;
  bool pin_new = false;
  bool pinned = false;
  {
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    const auto pin = pins_->session_shard.find(session_id);
    if (pin != pins_->session_shard.end()) {
      pinned = true;
      target = pin->second.shard_id;
    }
  }
  if (pinned) {
    if (shards_.find(target) == shards_.end())
      return Status::Unavailable(
          StrFormat("session '%s' is pinned to shard %d, which is down",
                    session_id.c_str(), target));
    if (draining_.count(target) > 0)
      return Status::Unavailable(
          StrFormat("session '%s' is pinned to shard %d, which is "
                    "draining; retry shortly",
                    session_id.c_str(), target));
    if (migrating_.count(session_id) > 0)
      return Status::Unavailable(StrFormat(
          "session '%s' is migrating to another shard; retry shortly",
          session_id.c_str()));
    // The breaker gates pinned traffic at routing time: an open shard is
    // rejected retryably here instead of timing the request out inside the
    // sick shard. (AllowShard flips open -> half-open once the cooldown
    // elapses, so the pinned traffic itself is the probe.)
    if (resilience_ && !resilience_->AllowShard(target, clock_()))
      return Status::Unavailable(StrFormat(
          "session '%s' is pinned to shard %d, whose circuit breaker is "
          "open; retry shortly",
          session_id.c_str(), target));
    // Re-creating under an existing pin starts a new pin generation, so a
    // still-unresolved close of the PREVIOUS incarnation cannot release the
    // new session's pin when its future is finally consumed.
    if (create) SetPin(*pins_, session_id, target);
  } else if (create) {
    if (ring_.empty())
      return Status::Unavailable("every shard is draining");
    // Breaker-aware placement: open shards are pushed past the bounded-load
    // bound (the ring walk skips them), half-open shards carry a smaller
    // penalty so probation traffic trickles back before full ring weight.
    target = ring_.PickShard(session_id, [this](int s) {
      uint64_t load;
      {
        std::lock_guard<std::mutex> pin_lock(pins_->mutex);
        const auto it = pins_->shard_load.find(s);
        load = it == pins_->shard_load.end() ? uint64_t{0} : it->second;
      }
      if (resilience_) {
        switch (resilience_->ShardState(s)) {
          case BreakerState::kOpen:
            load += uint64_t{1} << 40;
            break;
          case BreakerState::kHalfOpen:
            load += uint64_t{1} << 20;
            break;
          case BreakerState::kClosed:
            break;
        }
      }
      return load;
    });
    if (resilience_ && !resilience_->AllowShard(target, clock_()))
      return Status::Unavailable(StrFormat(
          "shard %d's circuit breaker is open (no healthy placement for "
          "session '%s'); retry shortly",
          target, session_id.c_str()));
    pin_new = true;
  } else {
    if (ring_.empty())
      return Status::Unavailable("every shard is draining");
    // No pin and not a create. If the FULL-membership ring (including
    // crashed shards) says the session's owner is a crashed shard, the
    // session — if it ever existed — died with it. Reporting Unavailable
    // keeps the loss retryable: a submit that loses the race with
    // CrashShard must not see a survivor's NotFound and give the session
    // up for dead when a restart (and re-create) will heal it.
    if (!crashed_.empty() && !all_ring_.empty()) {
      const int full_owner = all_ring_.OwnerOf(session_id);
      if (crashed_.count(full_owner) > 0)
        return Status::Unavailable(StrFormat(
            "session '%s' maps to crashed shard %d; any state it had was "
            "lost — retry after the shard restarts",
            session_id.c_str(), full_owner));
    }
    // Otherwise route to the ring owner so the NotFound comes from the
    // right shard.
    target = ring_.OwnerOf(session_id);
    if (resilience_ && !resilience_->AllowShard(target, clock_()))
      return Status::Unavailable(StrFormat(
          "shard %d's circuit breaker is open; retry shortly", target));
  }

  std::shared_ptr<PredictionService> service = shards_.at(target).service;
  CASCN_RETURN_IF_ERROR(
      admission_.AdmitLoad(service->queue_depth(), service->queue_capacity()));
  // A retry re-dispatch rides on the original request's quota charge; it
  // still paid the feasibility, breaker, and load-shed gates above.
  if (!is_retry)
    CASCN_RETURN_IF_ERROR(admission_.AdmitTenant(tenant, clock_()));
  if (pin_new) SetPin(*pins_, session_id, target);
  if (routed_shard != nullptr) *routed_shard = target;
  return service;
}

obs::RequestContext ShardRouter::MintContext(const std::string& tenant,
                                             std::string session_id,
                                             double deadline_ms) const {
  obs::RequestContext ctx =
      obs::RequestContext::New(tenant, std::move(session_id), deadline_ms);
  if (resilience_) {
    // Resolve the deadline to an ABSOLUTE point exactly once, at the
    // router's edge: a retry or hedge dispatched later inherits only the
    // REMAINING time, never a fresh copy of the original budget. Real
    // steady clock, not clock_() — deadlines bound wall time spent in
    // queues and workers, which an injected test clock does not advance.
    const double effective =
        deadline_ms > 0.0
            ? deadline_ms
            : (deadline_ms < 0.0 ? 0.0 : options_.shard.default_deadline_ms);
    if (effective > 0.0) {
      ctx.has_deadline = true;
      ctx.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(
                         static_cast<int64_t>(effective * 1000.0));
    }
  }
  return ctx;
}

Result<std::future<ServeResponse>> ShardRouter::SubmitCreate(
    const std::string& tenant, std::string session_id, int root_user,
    double deadline_ms) {
  obs::RequestContext ctx =
      MintContext(tenant, std::move(session_id), deadline_ms);
  CASCN_TRACE_SPAN_ID("cluster_route", ctx.trace_id, obs::SpanFlow::kNone);
  if (resilience_) resilience_->OnRequestObserved();
  Result<std::shared_ptr<PredictionService>> service =
      Route(ctx, /*create=*/true);
  if (!service.ok()) {
    RecordRejection(ctx, service.status());
    return service.status();
  }
  const std::string sid = ctx.session_id;
  std::string id = ctx.session_id;
  Result<std::future<ServeResponse>> submitted =
      service.value()->SubmitCreate(std::move(ctx), std::move(id), root_user,
                                    deadline_ms);
  // Mirror the accepted event so hedges can replay the session and the
  // stale cache can fingerprint its observed prefix.
  if (submitted.ok() && resilience_)
    resilience_->stale().OnCreate(sid, root_user);
  return submitted;
}

Result<std::future<ServeResponse>> ShardRouter::SubmitAppend(
    const std::string& tenant, std::string session_id, int user,
    int parent_node, double time, double deadline_ms) {
  obs::RequestContext ctx =
      MintContext(tenant, std::move(session_id), deadline_ms);
  CASCN_TRACE_SPAN_ID("cluster_route", ctx.trace_id, obs::SpanFlow::kNone);
  if (resilience_) resilience_->OnRequestObserved();
  Result<std::shared_ptr<PredictionService>> service =
      Route(ctx, /*create=*/false);
  if (!service.ok()) {
    RecordRejection(ctx, service.status());
    return service.status();
  }
  const std::string sid = ctx.session_id;
  std::string id = ctx.session_id;
  Result<std::future<ServeResponse>> submitted =
      service.value()->SubmitAppend(std::move(ctx), std::move(id), user,
                                    parent_node, time, deadline_ms);
  if (submitted.ok() && resilience_)
    resilience_->stale().OnAppend(sid, user, parent_node, time);
  return submitted;
}

Result<std::future<ServeResponse>> ShardRouter::SubmitPredict(
    const std::string& tenant, std::string session_id, double deadline_ms) {
  // The single relaxed check the disabled control plane costs: without
  // resilience this is exactly the PR 6 predict path.
  if (!resilience_) {
    obs::RequestContext ctx =
        obs::RequestContext::New(tenant, std::move(session_id), deadline_ms);
    CASCN_TRACE_SPAN_ID("cluster_route", ctx.trace_id, obs::SpanFlow::kNone);
    Result<std::shared_ptr<PredictionService>> service =
        Route(ctx, /*create=*/false);
    if (!service.ok()) {
      RecordRejection(ctx, service.status());
      return service.status();
    }
    std::string id = ctx.session_id;
    return service.value()->SubmitPredict(std::move(ctx), std::move(id),
                                          deadline_ms);
  }

  obs::RequestContext ctx =
      MintContext(tenant, std::move(session_id), deadline_ms);
  CASCN_TRACE_SPAN_ID("cluster_route", ctx.trace_id, obs::SpanFlow::kNone);
  resilience_->OnRequestObserved();
  // Cancellation flag shared by this request's dispatches: a winning hedge
  // sets it so the losing dispatch fails fast in its queue instead of
  // burning a worker.
  ctx.cancel = std::make_shared<std::atomic<bool>>(false);
  PredictAttempt attempt =
      DispatchPredict(ctx, deadline_ms, /*is_retry=*/false);
  // All resilience policy (hedge trigger, single retry under the budget
  // with the remaining deadline, stale fallback) runs when the caller
  // resolves the future — predicts are idempotent, so the re-dispatch is
  // safe. The wrapper captures `this`: resolve predict futures before
  // destroying the router (same contract as the debug endpoints).
  return std::async(std::launch::deferred,
                    [this, ctx = std::move(ctx), attempt = std::move(attempt),
                     deadline_ms]() mutable {
                      return ResolvePredictResilient(
                          std::move(ctx), std::move(attempt), deadline_ms);
                    });
}

ShardRouter::PredictAttempt ShardRouter::DispatchPredict(
    const obs::RequestContext& ctx, double deadline_ms, bool is_retry) {
  PredictAttempt attempt;
  // Each dispatch enqueues its own context copy; the copies share the
  // tenant, trace id, absolute deadline, and cancellation flag.
  obs::RequestContext dispatch_ctx = ctx;
  Result<std::shared_ptr<PredictionService>> service =
      Route(dispatch_ctx, /*create=*/false, &attempt.shard_id, is_retry);
  if (!service.ok()) {
    RecordRejection(ctx, service.status());
    attempt.status = service.status();
    return attempt;
  }
  attempt.service = std::move(service).value();
  std::string id = dispatch_ctx.session_id;
  Result<std::future<ServeResponse>> submitted = attempt.service->SubmitPredict(
      std::move(dispatch_ctx), std::move(id), deadline_ms);
  if (!submitted.ok()) {
    attempt.status = submitted.status();
    return attempt;
  }
  attempt.future = std::move(submitted).value();
  return attempt;
}

ServeResponse ShardRouter::ResolvePredictResilient(obs::RequestContext ctx,
                                                   PredictAttempt attempt,
                                                   double deadline_ms) {
  const std::shared_ptr<ResilienceControl> rc = resilience_;
  const uint64_t fingerprint = rc->stale().FingerprintOf(ctx.session_id);
  ServeResponse response;
  bool retried = false;
  for (;;) {
    if (attempt.ok()) {
      response = AwaitWithHedge(ctx, attempt);
    } else {
      response = ServeResponse{attempt.status};
      response.trace_id = ctx.trace_id;
    }
    // Test shim: "cluster.predict_unavailable" turns an injected fraction
    // of successes into retryable failures so tests can drive the retry
    // policy without wedging a shard.
    if (response.status.ok() && fault::ShouldFire(kFaultPredictUnavailable))
      response.status =
          Status::Unavailable("injected cluster.predict_unavailable");
    if (response.status.ok()) {
      rc->stale().StorePrediction(ctx.session_id, fingerprint,
                                  response.log_prediction,
                                  response.count_prediction, clock_());
      return response;
    }
    const StatusCode code = response.status.code();
    const bool retryable = code == StatusCode::kUnavailable ||
                           code == StatusCode::kDeadlineExceeded;
    if (retryable && !retried) {
      retried = true;  // single re-dispatch, budget-gated
      double remaining_ms = std::numeric_limits<double>::infinity();
      if (ctx.has_deadline)
        remaining_ms = std::chrono::duration<double, std::milli>(
                           ctx.deadline - std::chrono::steady_clock::now())
                           .count();
      if (remaining_ms < kMinRetryHeadroomMs) {
        // Not enough deadline left to plausibly succeed: denying here beats
        // racing a deadline the retry cannot meet.
        rc->NoteRetryDenied();
      } else if (rc->TryAcquireRetry()) {
        double backoff_ms = rc->RetryBackoffMs(0);
        if (std::isfinite(remaining_ms))
          backoff_ms = std::min(
              backoff_ms, std::max(0.0, remaining_ms - kMinRetryHeadroomMs));
        if (backoff_ms > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff_ms));
        // The context still carries the ORIGINAL absolute deadline, so the
        // re-dispatch runs under the remaining time only; the tenant quota
        // charged at first admission is not charged again.
        attempt = DispatchPredict(ctx, deadline_ms, /*is_retry=*/true);
        continue;
      }
    }
    break;
  }

  // Degraded mode: when allowed, answer from the last-good cache instead
  // of erroring — but only for infrastructure failures. A NotFound or
  // InvalidArgument is normally the truth about the request, not an
  // outage. The exception: while some shard is crashed, a NotFound on a
  // session the mirror knows usually IS the outage — the bounded-load walk
  // had pinned it to the now-dead shard and the ring fell back to a shard
  // that never heard of it — so it may degrade to a stale answer too (the
  // Lookup below only answers for sessions with a recorded last-good).
  const StatusCode code = response.status.code();
  bool stale_eligible = code != StatusCode::kNotFound &&
                        code != StatusCode::kInvalidArgument;
  if (!stale_eligible && code == StatusCode::kNotFound) {
    std::lock_guard<std::mutex> lock(mutex_);
    stale_eligible = !crashed_.empty();
  }
  if (options_.allow_stale && stale_eligible) {
    if (std::optional<StaleAnswer> stale =
            rc->stale().Lookup(ctx.session_id, clock_())) {
      ServeResponse degraded;
      degraded.status = Status::OK();
      degraded.trace_id = ctx.trace_id;
      degraded.log_prediction = stale->log_prediction;
      degraded.count_prediction = stale->count_prediction;
      degraded.stale = true;
      degraded.stale_age_ms = stale->age_ms;
      rc->NoteStaleServe();
      obs::FlightRecord record;
      record.trace_id = ctx.trace_id;
      record.shard_id = -1;
      record.op = obs::FlightOp::kPredict;
      record.status = static_cast<uint8_t>(StatusCode::kOk);
      record.fault_bits = obs::kFaultBitStale;
      record.set_tenant(ctx.tenant);
      record.set_session(ctx.session_id);
      router_flight_.Append(record);
      return degraded;
    }
  }
  return response;
}

ServeResponse ShardRouter::AwaitWithHedge(const obs::RequestContext& ctx,
                                          PredictAttempt& attempt) {
  const std::shared_ptr<ResilienceControl> rc = resilience_;
  if (!rc->options().hedging) return attempt.future.get();
  const double hedge_delay_ms = rc->HedgeDelayMs(clock_());
  if (attempt.future.wait_for(std::chrono::duration<double, std::milli>(
          hedge_delay_ms)) == std::future_status::ready)
    return attempt.future.get();

  // The primary outlived the hedge trigger. A session is pinned to one
  // shard, so a naive re-dispatch would just re-queue behind the slow
  // primary; instead, replay the session's mirrored event log on the next
  // ring candidate under a scratch id. Same checkpoint + same events =
  // bit-identical prediction.
  const std::optional<ReplayLog> log = rc->stale().ReplayLogOf(ctx.session_id);
  if (!log) return attempt.future.get();

  std::shared_ptr<PredictionService> candidate;
  int candidate_id = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ring_.empty()) {
      candidate_id = ring_.NextDistinctOwner(ctx.session_id, attempt.shard_id);
      if (candidate_id >= 0 && candidate_id != attempt.shard_id &&
          draining_.count(candidate_id) == 0) {
        const auto it = shards_.find(candidate_id);
        if (it != shards_.end()) {
          candidate = it->second.service;
          // Registered under the same lock that guards the draining mark:
          // a drain that starts after this point waits the replay out.
          ++hedges_in_flight_[candidate_id];
        }
      }
    }
  }
  if (!candidate) return attempt.future.get();
  const auto release_hedge = [this, candidate_id] {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto hit = hedges_in_flight_.find(candidate_id);
    if (hit != hedges_in_flight_.end() && --hit->second == 0)
      hedges_in_flight_.erase(hit);
    hedge_cv_.notify_all();
  };
  // Candidate breaker open, or candidate already loaded past half its
  // queue: hedging would add load without adding speed.
  if (rc->ShardState(candidate_id) == BreakerState::kOpen ||
      candidate->queue_depth() * 2 >= candidate->queue_capacity()) {
    release_hedge();
    return attempt.future.get();
  }

  // Scratch id: unique per hedge (trace id suffix) so repeated hedges of
  // the same session never collide on the candidate shard.
  const std::string scratch =
      StrFormat("hedge~%s~%llx", ctx.session_id.c_str(),
                static_cast<unsigned long long>(ctx.trace_id));
  auto hedge_cancel = std::make_shared<std::atomic<bool>>(false);
  obs::RequestContext hedge_ctx =
      obs::RequestContext::New(ctx.tenant, scratch, /*deadline_ms=*/-1.0);
  hedge_ctx.has_deadline = ctx.has_deadline;  // remaining time, not a fresh
  hedge_ctx.deadline = ctx.deadline;          // copy of the budget
  hedge_ctx.cancel = hedge_cancel;

  // Replay create + appends + predict + close, awaiting each replay op's
  // response before submitting the next. The shard queue is FIFO but the
  // workers draining it are not: two workers can pull adjacent batches and
  // apply an append before the append that created its parent node, which
  // fails validation and silently drops the event — the replayed cascade
  // then predicts a different (wrong) value. Awaiting each response both
  // serialises the replay and verifies every event actually landed; any
  // failure abandons the hedge and falls back to the primary. The primary
  // is polled between ops so a hedge that has become pointless stops
  // spending the candidate's workers. The replay ops run without deadlines
  // so a cancelled hedge still reaches its close; the unconditional
  // trailing close cleans the scratch session up whichever side wins.
  const auto primary_ready = [&attempt] {
    return attempt.future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  const auto apply = [&](Result<std::future<ServeResponse>> submitted) {
    if (!submitted.ok()) return false;
    return std::move(submitted).value().get().status.ok();
  };
  std::future<ServeResponse> hedge_future;
  bool hedged = false;
  do {
    if (!apply(candidate->SubmitCreate(
            obs::RequestContext::New(ctx.tenant, scratch, -1.0), scratch,
            log->root_user, /*deadline_ms=*/-1.0)))
      break;
    bool replayed = true;
    for (const MirroredEvent& event : log->events) {
      if (primary_ready() ||
          !apply(candidate->SubmitAppend(
              obs::RequestContext::New(ctx.tenant, scratch, -1.0), scratch,
              event.user, event.parent_node, event.time, -1.0))) {
        replayed = false;
        break;
      }
    }
    if (replayed) {
      Result<std::future<ServeResponse>> predicted = candidate->SubmitPredict(
          std::move(hedge_ctx), scratch, /*deadline_ms=*/-1.0);
      if (predicted.ok()) {
        hedge_future = std::move(predicted).value();
        hedged = true;
      }
    }
    candidate->SubmitClose(obs::RequestContext::New(ctx.tenant, scratch, -1.0),
                           scratch, /*deadline_ms=*/-1.0);
  } while (false);
  // Every scratch op (including the close) is now in the candidate's
  // queue; a drain's watermark wait retires them.
  release_hedge();
  if (!hedged) return attempt.future.get();
  rc->NoteHedgeLaunched();

  // First response wins; the loser is cancelled cooperatively (its queue
  // fail-fast counts a Cancelled, which the breaker feed ignores).
  for (;;) {
    if (attempt.future.wait_for(std::chrono::microseconds(200)) ==
        std::future_status::ready) {
      hedge_cancel->store(true, std::memory_order_relaxed);
      return attempt.future.get();
    }
    if (hedge_future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ServeResponse hedge_response = hedge_future.get();
      if (!hedge_response.status.ok()) {
        // The hedge lost on merit (shed, raced a topology change): the
        // primary is still the only truth worth waiting for.
        return attempt.future.get();
      }
      if (ctx.cancel) ctx.cancel->store(true, std::memory_order_relaxed);
      rc->NoteHedgeWon();
      hedge_response.trace_id = ctx.trace_id;
      return hedge_response;
    }
  }
}

Result<std::future<ServeResponse>> ShardRouter::SubmitClose(
    const std::string& tenant, std::string session_id, double deadline_ms) {
  obs::RequestContext ctx =
      MintContext(tenant, std::move(session_id), deadline_ms);
  CASCN_TRACE_SPAN_ID("cluster_route", ctx.trace_id, obs::SpanFlow::kNone);
  if (resilience_) resilience_->OnRequestObserved();
  Result<std::shared_ptr<PredictionService>> routed =
      Route(ctx, /*create=*/false);
  if (!routed.ok()) {
    RecordRejection(ctx, routed.status());
    return routed.status();
  }
  // A closing session has no further use for its mirror or its last-good
  // answer; drop both now (optimistically — a failed close just loses the
  // degraded-mode fallback for a session the client is done with anyway).
  if (resilience_) resilience_->stale().OnClose(ctx.session_id);
  std::shared_ptr<PredictionService> service = std::move(routed).value();
  // Capture the pin's current generation before handing the close to the
  // shard: the deferred release below only fires if the pin is still that
  // incarnation when the caller resolves the future.
  uint64_t generation = 0;
  bool had_pin = false;
  {
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    const auto it = pins_->session_shard.find(ctx.session_id);
    if (it != pins_->session_shard.end()) {
      had_pin = true;
      generation = it->second.generation;
    }
  }
  const std::string id = ctx.session_id;
  std::string session_arg = ctx.session_id;
  CASCN_ASSIGN_OR_RETURN(std::future<ServeResponse> inner,
                         service->SubmitClose(std::move(ctx),
                                              std::move(session_arg),
                                              deadline_ms));
  if (!had_pin) return inner;
  // Wrap the future so that resolving a successful close releases the
  // session's pin — the primary async interface does its own bookkeeping
  // instead of leaking pins_. The wrapper captures only the shared pin
  // state, never the router, so it stays safe if it outlives the router.
  return std::async(std::launch::deferred,
                    [pins = pins_, id, generation,
                     fut = std::move(inner)]() mutable {
                      ServeResponse response = fut.get();
                      if (response.status.ok())
                        ReleasePinIfCurrent(*pins, id, generation);
                      return response;
                    });
}

namespace {

ServeResponse Wait(Result<std::future<ServeResponse>> submitted) {
  if (!submitted.ok()) return ServeResponse{submitted.status()};
  return submitted.value().get();
}

}  // namespace

ServeResponse ShardRouter::CallCreate(const std::string& tenant,
                                      std::string session_id, int root_user) {
  return Wait(SubmitCreate(tenant, std::move(session_id), root_user));
}

ServeResponse ShardRouter::CallAppend(const std::string& tenant,
                                      std::string session_id, int user,
                                      int parent_node, double time) {
  return Wait(
      SubmitAppend(tenant, std::move(session_id), user, parent_node, time));
}

ServeResponse ShardRouter::CallPredict(const std::string& tenant,
                                       std::string session_id) {
  return Wait(SubmitPredict(tenant, std::move(session_id)));
}

ServeResponse ShardRouter::CallClose(const std::string& tenant,
                                     std::string session_id) {
  // Resolving the SubmitClose future runs the pin release.
  return Wait(SubmitClose(tenant, std::move(session_id)));
}

Status ShardRouter::DrainQueue(
    PredictionService& service,
    std::chrono::steady_clock::time_point deadline) const {
  while (service.queue_depth() > 0) {
    if (std::chrono::steady_clock::now() >= deadline)
      return Status::DeadlineExceeded(StrFormat(
          "shard queue still has %zu requests after %.0f ms drain window",
          service.queue_depth(), options_.drain_timeout_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

Status ShardRouter::WaitQueuePassed(
    PredictionService& service,
    std::chrono::steady_clock::time_point deadline) const {
  const auto total_enqueued = [&service] {
    return service.metrics().TakeSnapshot().counter(
        serve::Counter::kRequestsTotal);
  };
  const uint64_t mark = total_enqueued();
  while (true) {
    // processed = ever-enqueued - still-queued. Sampling the counter before
    // the depth can only UNDER-estimate progress (requests enqueued between
    // the two reads inflate the depth), so the wait is conservative.
    const uint64_t total = total_enqueued();
    const uint64_t depth = service.queue_depth();
    const uint64_t processed = total >= depth ? total - depth : 0;
    if (processed >= mark) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline)
      return Status::DeadlineExceeded(StrFormat(
          "shard queue did not pass its %.0f ms rebalance window",
          options_.drain_timeout_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::string ShardRouter::HandoffPath(int shard_id) const {
  std::string dir = options_.handoff_dir;
  if (dir.empty()) {
    const size_t slash = checkpoint_path_.rfind('/');
    dir = slash == std::string::npos ? "." : checkpoint_path_.substr(0, slash);
  }
  return StrFormat("%s/shard_%d.handoff", dir.c_str(), shard_id);
}

Result<HandoffImage> ShardRouter::WriteValidatedHandoff(
    int shard_id, const std::vector<HandoffEntry>& entries) const {
  const std::string path = HandoffPath(shard_id);
  Status last = Status::Internal("handoff never attempted");
  for (int attempt = 0; attempt < std::max(1, options_.handoff_write_attempts);
       ++attempt) {
    last = WriteHandoffFile(path, shard_id, entries);
    if (!last.ok()) {  // e.g. injected torn write; just retry
      router_flight_.TriggerDump("handoff_retry");
      continue;
    }
    Result<HandoffImage> image = ReadHandoffFile(path);
    if (image.ok()) return image;
    last = image.status();
    router_flight_.TriggerDump("handoff_retry");
  }
  return last;
}

Status ShardRouter::RemoveShard(int shard_id) {
  // Phase 1 (routing lock, brief): mark the shard draining. The rebuilt
  // ring no longer contains it (no new placements or ring routes) and
  // requests pinned to it get a retryable Unavailable, so from here its
  // queue can only shrink.
  std::shared_ptr<PredictionService> source_service;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end())
      return Status::FailedPrecondition(
          StrFormat("shard %d is not active", shard_id));
    if (draining_.count(shard_id) > 0)
      return Status::FailedPrecondition(
          StrFormat("shard %d is already draining", shard_id));
    if (shards_.size() - draining_.size() <= 1)
      return Status::FailedPrecondition(
          "cannot remove the last routable shard");
    draining_.insert(shard_id);
    RebuildRingLocked();
    source_service = it->second.service;
  }

  // Phase 2 (UNLOCKED): wait out the queue. Routing for every other shard
  // and tenant proceeds for the whole drain window — a one-shard rebalance
  // must not be a cluster-wide pause.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(options_.drain_timeout_ms * 1000.0));

  // Hedge replays submit directly to their candidate service, bypassing
  // the routing checks above. The draining mark (already set, under the
  // same mutex hedges register under) stops new replays from picking this
  // shard; wait out the ones already in flight so everything they will
  // ever enqueue — including each scratch session's trailing close — is
  // in the queue before the watermark below is taken.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool quiet = hedge_cv_.wait_until(lock, deadline, [&] {
      const auto hit = hedges_in_flight_.find(shard_id);
      return hit == hedges_in_flight_.end() || hit->second == 0;
    });
    if (!quiet) {
      draining_.erase(shard_id);
      RebuildRingLocked();
      return Status::Unavailable(StrFormat(
          "shard %d still hosts in-flight hedge replays", shard_id));
    }
  }
  const Status drained = DrainQueue(*source_service, deadline);

  // Phase 3 (routing lock): hand off and destroy.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto undrain = [&] {
    draining_.erase(shard_id);
    RebuildRingLocked();
  };
  const auto it = shards_.find(shard_id);
  if (it == shards_.end()) {
    // Crashed while we drained unlocked; nothing left to hand off.
    draining_.erase(shard_id);
    return Status::Unavailable(
        StrFormat("shard %d went down during its drain", shard_id));
  }
  if (!drained.ok()) {
    undrain();
    return drained;
  }
  Shard& source = it->second;
  serve::SessionManager& sessions = source.service->sessions();
  {
    // Stragglers: a request routed just before the draining mark may have
    // enqueued after the queue looked empty. With the lock held nothing
    // new can route, so this pass (normally a no-op) settles them.
    const Status settled = DrainQueue(*source.service, deadline);
    if (!settled.ok()) {
      undrain();
      return settled;
    }
  }

  // Extract every session (live and spilled). The queue is empty and no
  // new work can arrive, so only a worker still inside a session blocks an
  // extract — retry briefly, and abort the whole removal (nothing is lost,
  // nothing has moved) if one stays busy.
  std::vector<HandoffEntry> entries;
  const auto put_back = [&] {
    for (HandoffEntry& entry : entries) {
      const Status st = sessions.Deserialize(entry.session_id, entry.blob);
      CASCN_CHECK(st.ok()) << "re-inserting extracted session '"
                           << entry.session_id
                           << "' into its own shard failed: " << st.ToString();
    }
  };
  for (const std::string& sid : sessions.SessionIds()) {
    Result<std::string> blob = sessions.Extract(sid);
    for (int retry = 0; !blob.ok() && retry < 100; ++retry) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      blob = sessions.Extract(sid);
    }
    if (!blob.ok()) {
      put_back();
      undrain();
      return Status::Unavailable(
          StrFormat("session '%s' stayed busy; shard %d was not removed",
                    sid.c_str(), shard_id));
    }
    entries.push_back(HandoffEntry{sid, std::move(blob).value()});
  }

  // Durable leg: write + read back + CRC-validate before anything imports.
  // The extracted sessions stay in `entries`, so a torn write (injected or
  // real) costs a retry, never a session.
  Result<HandoffImage> image = WriteValidatedHandoff(shard_id, entries);
  if (!image.ok()) {
    put_back();
    undrain();
    return image.status();
  }

  // Import from the validated image — the bytes a crash recovery would see,
  // not the in-memory copies. The ring already excludes the draining
  // shard, so every target is a surviving shard.
  const auto load_of = [this](int s) {
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    const auto found = pins_->shard_load.find(s);
    return found == pins_->shard_load.end() ? uint64_t{0} : found->second;
  };
  for (const HandoffEntry& entry : image.value().entries) {
    const int target = ring_.PickShard(entry.session_id, load_of);
    const Status st =
        shards_.at(target).service->sessions().Deserialize(entry.session_id,
                                                           entry.blob);
    if (!st.ok()) {
      // Put this and all not-yet-imported entries back and keep the shard.
      // Already-imported sessions are fine where they landed (their pins
      // are updated), so the cluster stays consistent.
      std::vector<HandoffEntry> rest(
          std::find_if(entries.begin(), entries.end(),
                       [&](const HandoffEntry& e) {
                         return e.session_id == entry.session_id;
                       }),
          entries.end());
      entries = std::move(rest);
      put_back();
      undrain();
      return Status::Unavailable(StrFormat(
          "import of session '%s' into shard %d failed (%s); shard %d kept",
          entry.session_id.c_str(), target, st.message().c_str(), shard_id));
    }
    SetPin(*pins_, entry.session_id, target);
  }

  source.service->Shutdown();
  shards_.erase(it);
  draining_.erase(shard_id);
  RebuildRingLocked();
  // Sweep stale pins: every handed-off session was re-pointed by the
  // import loop, so anything still mapping to the removed shard is stale —
  // an async close whose future was never resolved, or a spill-LRU drop —
  // and would otherwise wedge its session id on a dead shard forever.
  {
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    for (auto p = pins_->session_shard.begin();
         p != pins_->session_shard.end();) {
      p = p->second.shard_id == shard_id ? pins_->session_shard.erase(p)
                                         : std::next(p);
    }
    pins_->shard_load.erase(shard_id);
  }
  return Status::OK();
}

Status ShardRouter::AddShard(int shard_id) {
  std::vector<int> sources;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shards_.find(shard_id) != shards_.end())
      return Status::InvalidArgument(
          StrFormat("shard %d is already active", shard_id));
    CASCN_ASSIGN_OR_RETURN(std::shared_ptr<PredictionService> service,
                           StartShard(shard_id));
    shards_[shard_id] = Shard{std::move(service)};
    crashed_.erase(shard_id);
    RebuildRingLocked();
    for (const auto& [id, shard] : shards_)
      if (id != shard_id && draining_.count(id) == 0) sources.push_back(id);
  }

  // Pull over the sessions the grown ring assigns to the new shard — the
  // consistent-hash guarantee keeps this to ~1/N of them, all moving TO
  // the new shard. One source shard at a time, and the routing lock is not
  // held while a source's queued requests finish: only the moving sessions
  // pause (retryable Unavailable); everything else keeps serving.
  for (const int source_id : sources)
    CASCN_RETURN_IF_ERROR(PullSessionsTo(shard_id, source_id));
  return Status::OK();
}

Status ShardRouter::PullSessionsTo(int target_id, int source_id) {
  // Mark the moving sessions under the lock, then wait unlocked.
  std::shared_ptr<PredictionService> source_service;
  std::vector<std::string> moving;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto source = shards_.find(source_id);
    if (source == shards_.end() || draining_.count(source_id) > 0)
      return Status::OK();  // source went away; nothing to pull
    if (shards_.find(target_id) == shards_.end())
      return Status::Unavailable(
          StrFormat("shard %d went down mid-join", target_id));
    source_service = source->second.service;
    for (const std::string& sid : source_service->sessions().SessionIds()) {
      // Scratch hedge-replay sessions stay put: their in-flight replay and
      // trailing close target the source service directly, so migrating
      // one would strand it (never closed) on the target.
      if (sid.compare(0, 6, "hedge~") == 0) continue;
      if (ring_.OwnerOf(sid) == target_id) moving.push_back(sid);
    }
    if (moving.empty()) return Status::OK();
    migrating_.insert(moving.begin(), moving.end());
  }
  const auto unmark_locked = [&] {
    for (const std::string& sid : moving) migrating_.erase(sid);
  };

  // Wait (UNLOCKED) until every request already queued on the source has
  // been processed — including any for the now-unroutable moving sessions.
  // A drain-to-empty would never finish while the source's other sessions
  // keep it busy; the watermark wait does. (A request routed before the
  // migrating mark but enqueued during this wait is the one remaining
  // race: it can observe NotFound after the move. The session itself is
  // never at risk — extraction skips busy sessions — and the client's
  // retry lands on the new shard.)
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(options_.drain_timeout_ms * 1000.0));
  const Status passed = WaitQueuePassed(*source_service, deadline);

  std::lock_guard<std::mutex> lock(mutex_);
  if (!passed.ok()) {
    unmark_locked();
    return passed;
  }
  const auto source = shards_.find(source_id);
  const auto target = shards_.find(target_id);
  if (source == shards_.end() || target == shards_.end()) {
    unmark_locked();
    return source == shards_.end()
               ? Status::OK()  // source crashed; its sessions died with it
               : Status::Unavailable(
                     StrFormat("shard %d went down mid-join", target_id));
  }
  serve::SessionManager& sessions = source->second.service->sessions();

  // Busy sessions are skipped (they stay pinned to the source; routing by
  // pin keeps them correct).
  std::vector<HandoffEntry> entries;
  for (const std::string& sid : moving) {
    Result<std::string> blob = sessions.Extract(sid);
    if (!blob.ok()) continue;
    entries.push_back(HandoffEntry{sid, std::move(blob).value()});
  }
  if (entries.empty()) {
    unmark_locked();
    return Status::OK();
  }
  Result<HandoffImage> image = WriteValidatedHandoff(source_id, entries);
  if (!image.ok()) {
    for (HandoffEntry& entry : entries) {
      const Status st = sessions.Deserialize(entry.session_id, entry.blob);
      CASCN_CHECK(st.ok())
          << "re-inserting session '" << entry.session_id
          << "' into shard " << source_id << " failed: " << st.ToString();
    }
    unmark_locked();
    return image.status();
  }
  for (const HandoffEntry& entry : image.value().entries) {
    const Status st = target->second.service->sessions().Deserialize(
        entry.session_id, entry.blob);
    if (!st.ok()) {
      const Status back = sessions.Deserialize(entry.session_id, entry.blob);
      CASCN_CHECK(back.ok())
          << "session '" << entry.session_id
          << "' could be imported nowhere: " << st.ToString();
      continue;
    }
    SetPin(*pins_, entry.session_id, target_id);
  }
  unmark_locked();
  return Status::OK();
}

void ShardRouter::CrashShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CrashShardLocked(shard_id);
}

void ShardRouter::CrashShardLocked(int shard_id) {
  const auto it = shards_.find(shard_id);
  if (it == shards_.end()) return;
  // Preserve the black box before the shard dies with its ring: the last
  // few thousand requests are exactly what a post-mortem needs.
  it->second.service->flight_recorder().TriggerDump("shard_crash");
  router_flight_.TriggerDump("shard_crash");
  // No drain, no handoff: exactly what a real crash leaves behind. Shutdown
  // fails everything queued; the session table dies with the service.
  it->second.service->Shutdown();
  shards_.erase(it);
  crashed_.insert(shard_id);
  RebuildRingLocked();
}

Status ShardRouter::RestartShard(int shard_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shards_.find(shard_id) != shards_.end())
      return Status::InvalidArgument(
          StrFormat("shard %d is still active", shard_id));
    // Pins into the crashed shard point at state that died with it; drop
    // them so re-created sessions place by the ring again.
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    for (auto it = pins_->session_shard.begin();
         it != pins_->session_shard.end();) {
      it = it->second.shard_id == shard_id ? pins_->session_shard.erase(it)
                                           : std::next(it);
    }
    pins_->shard_load.erase(shard_id);
  }
  return AddShard(shard_id);
}

Health ShardRouter::ClusterHealth() const {
  // Read the burn state before taking the routing lock (slo_ has its own
  // leaf mutex). A tenant burning error budget on both windows degrades the
  // cluster even while every shard process is nominally up: sustained burn
  // is an outage in progress, surfaced before hard failure.
  const bool burning = slo_.AnyTenantBurning(clock_());
  std::lock_guard<std::mutex> lock(mutex_);
  if (shards_.empty()) return Health::kUnhealthy;
  bool degraded = burning || !crashed_.empty();
  for (const auto& [id, shard] : shards_)
    if (shard.service->health() != Health::kHealthy) degraded = true;
  return degraded ? Health::kDegraded : Health::kHealthy;
}

ShardRouter::Snapshot ShardRouter::TakeSnapshot() const {
  Snapshot snap;
  const auto now = clock_();
  snap.slo = slo_.Snapshot(now);
  bool burning = false;
  for (const obs::TenantSli& sli : snap.slo) burning |= sli.burning;
  obs::Histogram::Snapshot merged;
  merged.buckets.assign(serve::ServeMetrics::kNumLatencyBuckets, 0);
  double weighted_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_map<int, uint64_t> shard_load;
    {
      std::lock_guard<std::mutex> pin_lock(pins_->mutex);
      shard_load = pins_->shard_load;
    }
    bool degraded = burning || !crashed_.empty();
    for (const auto& [id, shard] : shards_) {
      ShardInfo info;
      info.shard_id = id;
      info.active = true;
      info.queue_depth = shard.service->queue_depth();
      info.num_sessions = shard.service->sessions().size();
      const auto load = shard_load.find(id);
      info.pinned_sessions = load == shard_load.end() ? 0 : load->second;
      info.metrics = shard.service->metrics().TakeSnapshot();
      if (info.metrics.health != Health::kHealthy) degraded = true;
      for (int b = 0; b < serve::ServeMetrics::kNumLatencyBuckets; ++b)
        merged.buckets[static_cast<size_t>(b)] +=
            info.metrics.latency_buckets[static_cast<size_t>(b)];
      merged.count += info.metrics.latency_count;
      merged.max = std::max(merged.max, info.metrics.latency_max_us);
      weighted_sum += info.metrics.latency_mean_us *
                      static_cast<double>(info.metrics.latency_count);
      snap.shards.push_back(std::move(info));
    }
    for (int id : crashed_) {
      ShardInfo info;
      info.shard_id = id;
      info.active = false;
      snap.shards.push_back(std::move(info));
    }
    snap.crashed_shards = crashed_.size();
    snap.health = shards_.empty()
                      ? Health::kUnhealthy
                      : (degraded ? Health::kDegraded : Health::kHealthy);
  }
  std::sort(snap.shards.begin(), snap.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.shard_id < b.shard_id;
            });
  if (merged.count > 0) {
    merged.sum = static_cast<uint64_t>(weighted_sum);
    merged.mean = weighted_sum / static_cast<double>(merged.count);
  }
  snap.latency_count = merged.count;
  snap.latency_p50_us = merged.Percentile(0.50);
  snap.latency_p95_us = merged.Percentile(0.95);
  snap.latency_p99_us = merged.Percentile(0.99);
  snap.tenants = admission_.Stats();
  snap.total_shed = admission_.total_shed();
  return snap;
}

std::string ShardRouter::Snapshot::ToString() const {
  std::string out = StrFormat(
      "cluster: health=%s shards=%zu (crashed %llu) shed=%llu "
      "latency n=%llu p50~%.0fus p95~%.0fus p99~%.0fus\n",
      std::string(serve::HealthName(health)).c_str(), shards.size(),
      static_cast<unsigned long long>(crashed_shards),
      static_cast<unsigned long long>(total_shed),
      static_cast<unsigned long long>(latency_count), latency_p50_us,
      latency_p95_us, latency_p99_us);
  for (const ShardInfo& shard : shards) {
    if (!shard.active) {
      out += StrFormat("  shard %d: DOWN\n", shard.shard_id);
      continue;
    }
    out += StrFormat(
        "  shard %d: health=%s sessions=%zu pinned=%llu queue=%zu "
        "requests=%llu p99~%.0fus\n",
        shard.shard_id,
        std::string(serve::HealthName(shard.metrics.health)).c_str(),
        shard.num_sessions,
        static_cast<unsigned long long>(shard.pinned_sessions),
        shard.queue_depth,
        static_cast<unsigned long long>(
            shard.metrics.counter(serve::Counter::kRequestsTotal)),
        shard.metrics.latency_p99_us);
  }
  for (const auto& tenant : tenants)
    out += StrFormat("  tenant '%s': admitted=%llu rejected=%llu\n",
                     tenant.tenant.c_str(),
                     static_cast<unsigned long long>(tenant.admitted),
                     static_cast<unsigned long long>(tenant.rejected));
  for (const auto& sli : slo)
    out += StrFormat(
        "  slo '%s': fast avail=%.4f burn=%.1f | slow avail=%.4f "
        "burn=%.1f%s\n",
        sli.tenant.c_str(), sli.fast_availability, sli.fast_burn,
        sli.slow_availability, sli.slow_burn,
        sli.burning ? " BURNING" : "");
  return out;
}

void ShardRouter::ExportToRegistry(obs::MetricsRegistry& registry) const {
  const Snapshot snap = TakeSnapshot();
  for (const ShardInfo& shard : snap.shards) {
    if (!shard.active) continue;
    serve::ExportToRegistry(shard.metrics, registry,
                            StrFormat("shard=\"%d\"", shard.shard_id));
    registry.GetGauge(StrFormat("cluster_shard_sessions{shard=\"%d\"}",
                                shard.shard_id))
        .Set(static_cast<double>(shard.num_sessions));
  }
  registry.GetGauge("cluster_health")
      .Set(static_cast<double>(static_cast<int>(snap.health)));
  registry.GetGauge("cluster_shards_active")
      .Set(static_cast<double>(snap.shards.size() - snap.crashed_shards));
  registry.GetGauge("cluster_shards_crashed")
      .Set(static_cast<double>(snap.crashed_shards));
  registry.GetGauge("cluster_shed_total")
      .Set(static_cast<double>(snap.total_shed));
  registry.GetGauge("cluster_latency_p50_us").Set(snap.latency_p50_us);
  registry.GetGauge("cluster_latency_p95_us").Set(snap.latency_p95_us);
  registry.GetGauge("cluster_latency_p99_us").Set(snap.latency_p99_us);
  for (const auto& tenant : snap.tenants) {
    // Tenant names are caller-supplied: escape them or a quote in a name
    // corrupts every exposition line it appears on.
    const std::string escaped = obs::EscapeLabelValue(tenant.tenant);
    registry
        .GetGauge(StrFormat("cluster_tenant_admitted{tenant=\"%s\"}",
                            escaped.c_str()))
        .Set(static_cast<double>(tenant.admitted));
    registry
        .GetGauge(StrFormat("cluster_tenant_rejected{tenant=\"%s\"}",
                            escaped.c_str()))
        .Set(static_cast<double>(tenant.rejected));
  }
  slo_.ExportToRegistry(registry, clock_());
  if (resilience_) resilience_->ExportToRegistry(registry);
}

Status ShardRouter::DumpFlightRecorders(std::string_view reason) {
  if (options_.flight_dir.empty())
    return Status::FailedPrecondition(
        "flight-recorder dumps need ShardRouterOptions::flight_dir");
  std::vector<std::pair<int, std::shared_ptr<PredictionService>>> services;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    services.reserve(shards_.size());
    for (const auto& [id, shard] : shards_)
      services.emplace_back(id, shard.service);
  }
  // Each dump set gets a monotonic sequence suffix so concurrent or
  // repeated on-demand dumps never append into each other's files.
  const unsigned long long seq =
      on_demand_dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Dump outside the routing lock: a dump is file I/O and must not stall
  // routing.
  Status status = Status::OK();
  std::vector<std::string> paths;
  for (const auto& [id, service] : services) {
    std::string path = StrFormat("%s/flight_shard_%d.%05llu.jsonl",
                                 options_.flight_dir.c_str(), id, seq);
    Status dump = service->flight_recorder().Dump(path, reason);
    if (!dump.ok() && status.ok()) status = dump;
    paths.push_back(std::move(path));
  }
  std::string router_path = StrFormat(
      "%s/flight_router.%05llu.jsonl", options_.flight_dir.c_str(), seq);
  Status dump = router_flight_.Dump(router_path, reason);
  if (!dump.ok() && status.ok()) status = dump;
  paths.push_back(std::move(router_path));
  // Retention: evict whole sets oldest-first so the dir stays bounded even
  // under a watchdog stall storm.
  std::vector<std::vector<std::string>> evicted;
  {
    std::lock_guard<std::mutex> lock(dump_files_mutex_);
    dump_sets_.push_back(std::move(paths));
    const size_t keep =
        static_cast<size_t>(std::max(1, options_.flight_dump_retention));
    while (dump_sets_.size() > keep) {
      evicted.push_back(std::move(dump_sets_.front()));
      dump_sets_.pop_front();
    }
  }
  for (const auto& set : evicted)
    for (const std::string& path : set) std::remove(path.c_str());
  return status;
}

std::shared_ptr<PredictionService> ShardRouter::FindShard(
    int shard_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second.service;
}

void ShardRouter::RegisterDebugEndpoints(obs::DebugServer& server) {
  server.AddStatusSection("cluster", [this] {
    return TakeSnapshot().ToString() +
           StrFormat("on_demand_flight_dumps: %llu\n",
                     static_cast<unsigned long long>(on_demand_dump_count()));
  });
  server.AddMetricsExporter(
      [this](obs::MetricsRegistry& registry) { ExportToRegistry(registry); });
  if (resilience_) {
    server.AddStatusSection("resilience", [this] {
      return resilience_->StatusReport(clock_());
    });
  }
  server.AddEndpoint("/flightz", [this](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/x-ndjson";
    std::vector<std::pair<int, std::shared_ptr<PredictionService>>> services;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [id, shard] : shards_)
        services.emplace_back(id, shard.service);
    }
    for (const auto& [id, service] : services)
      response.body += service->flight_recorder().ToJsonLines(
          StrFormat("flightz_shard_%d", id));
    response.body += router_flight_.ToJsonLines("flightz_router");
    return response;
  });
  server.AddEndpoint("/sloz", [this](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    std::string body = "{\"tenants\":[";
    bool first = true;
    for (const obs::TenantSli& sli : slo_.Snapshot(clock_())) {
      if (!first) body += ",";
      first = false;
      body += StrFormat(
          "{\"tenant\":\"%s\",\"fast_total\":%llu,\"fast_good\":%llu,"
          "\"slow_total\":%llu,\"slow_good\":%llu,"
          "\"fast_availability\":%.6f,\"slow_availability\":%.6f,"
          "\"fast_burn\":%.3f,\"slow_burn\":%.3f,\"burning\":%s}",
          obs::EscapeLabelValue(sli.tenant).c_str(),
          static_cast<unsigned long long>(sli.fast_total),
          static_cast<unsigned long long>(sli.fast_good),
          static_cast<unsigned long long>(sli.slow_total),
          static_cast<unsigned long long>(sli.slow_good),
          sli.fast_availability, sli.slow_availability, sli.fast_burn,
          sli.slow_burn, sli.burning ? "true" : "false");
    }
    body += "]}";
    response.body = std::move(body);
    return response;
  });
}

void ShardRouter::RegisterWatchdogTargets(obs::Watchdog& watchdog) {
  for (int id : ShardIds()) {
    obs::WatchTarget target;
    target.name = StrFormat("shard_%d", id);
    target.progress = [this, id]() -> uint64_t {
      const auto service = FindShard(id);
      return service ? service->heartbeat_count() : 0;
    };
    // A crashed/removed shard reads as idle, never stalled.
    target.busy = [this, id] {
      const auto service = FindShard(id);
      return service && service->queue_depth() > 0;
    };
    target.on_stall = [this, id] {
      if (const auto service = FindShard(id)) service->NoteWatchdogStall();
      // Full-cluster context for the post-mortem; failure (no flight_dir)
      // is fine — the shard's own anomaly dump already fired.
      DumpFlightRecorders("watchdog_stall");
    };
    target.on_recover = [this, id] {
      if (const auto service = FindShard(id)) service->NoteWatchdogRecovery();
    };
    watchdog.Watch(std::move(target));
  }
}

int ShardRouter::num_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(shards_.size());
}

std::vector<int> ShardRouter::ShardIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

std::vector<int> ShardRouter::CrashedShardIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<int>(crashed_.begin(), crashed_.end());
}

std::vector<int> ShardRouter::WatchdogWedgedShardIds() const {
  std::vector<std::pair<int, std::shared_ptr<PredictionService>>> services;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    services.reserve(shards_.size());
    for (const auto& [id, shard] : shards_)
      services.emplace_back(id, shard.service);
  }
  std::vector<int> wedged;
  for (const auto& [id, service] : services)
    if (service->watchdog_degraded()) wedged.push_back(id);
  return wedged;
}

void ShardRouter::NoteSupervisorRestart(int shard_id) {
  if (resilience_) {
    // Counts the restart, places the revived shard's breaker in half-open
    // probation (N clean requests before full ring weight), and writes a
    // "supervisor_restart" anomaly record via the control plane's hook.
    resilience_->NoteSupervisorRestart(shard_id, clock_());
  } else {
    router_flight_.TriggerDump("supervisor_restart");
  }
}

int ShardRouter::ShardOf(const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::lock_guard<std::mutex> pin_lock(pins_->mutex);
    const auto pin = pins_->session_shard.find(session_id);
    if (pin != pins_->session_shard.end()) return pin->second.shard_id;
  }
  if (ring_.empty()) return -1;
  return ring_.OwnerOf(session_id);
}

PredictionService* ShardRouter::shard(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second.service.get();
}

}  // namespace cascn::cluster
