// Consistent hashing of session keys onto shards, with the bounded-load
// variant for placement.
//
// The ring holds `vnodes_per_shard` pseudo-random points per shard (a
// splitmix64 hash of (shard id, vnode index)); a key belongs to the shard
// owning the first ring point at or after the key's hash. Two properties
// make this the right router for session-keyed serving:
//
//   - Balance: with enough virtual nodes, every shard owns ~1/N of the key
//     space (the consistent-hash property test bounds the deviation).
//   - Minimal disruption: adding or removing one shard remaps only the keys
//     that ring-adjoin its points — about 1/N of them — and every remapped
//     key moves to/from the changed shard. Keys on unchanged shards never
//     move, which is what makes a live rebalance cheap.
//
// Bounded load (PickShard): pure ring ownership can transiently overload
// one shard (hot key ranges). Following "Consistent Hashing with Bounded
// Loads" (Mirrokni et al.), placement walks the ring from the owner and
// skips shards already at ceil(load_factor * (total + 1) / N) of the
// current load, so no shard ever exceeds load_factor times the mean. The
// walk is deterministic given the load vector; the caller (ShardRouter)
// pins the session to the picked shard so later requests need no load
// information.

#ifndef CASCN_CLUSTER_CONSISTENT_HASH_H_
#define CASCN_CLUSTER_CONSISTENT_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace cascn::cluster {

struct HashRingOptions {
  /// Virtual nodes per shard; more vnodes = tighter balance, larger ring.
  int vnodes_per_shard = 256;
  /// Bounded-load factor c: no shard's load may exceed
  /// ceil(c * (total_load + 1) / num_shards). Must be > 1.
  double load_factor = 1.25;
};

/// Hash ring over a set of integer shard ids. Not thread-safe; the owner
/// (ShardRouter) guards it with its routing lock.
class HashRing {
 public:
  explicit HashRing(const HashRingOptions& options = {});

  /// Rebuilds the ring over `shard_ids` (duplicates ignored).
  void SetShards(const std::vector<int>& shard_ids);

  const std::vector<int>& shard_ids() const { return shard_ids_; }
  int num_shards() const { return static_cast<int>(shard_ids_.size()); }
  bool empty() const { return points_.empty(); }

  /// Pure ring owner of `key`. Pre: !empty().
  int OwnerOf(std::string_view key) const;

  /// The next DISTINCT shard after `key`'s owner on the ring walk, skipping
  /// `excluded` (normally the owner itself). This is the hedge candidate:
  /// the shard a hedged read is replayed on when the primary runs long.
  /// Returns -1 when no other shard exists. Pre: !empty().
  int NextDistinctOwner(std::string_view key, int excluded) const;

  /// Bounded-load placement: the first shard at or after `key`'s hash whose
  /// current load (via `load_of(shard_id)`) is below the bound; falls back
  /// to the least-loaded shard when every shard is at the bound (possible
  /// only transiently, when loads move under the caller). Pre: !empty().
  int PickShard(std::string_view key,
                const std::function<uint64_t(int)>& load_of) const;

  /// Stable 64-bit hash of a key (exposed for tests).
  static uint64_t HashKey(std::string_view key);

 private:
  struct Point {
    uint64_t hash;
    int shard;
    bool operator<(const Point& other) const { return hash < other.hash; }
  };

  /// Index into points_ of the first point at or after `hash` (wrapping).
  size_t FirstPointAtOrAfter(uint64_t hash) const;

  HashRingOptions options_;
  std::vector<int> shard_ids_;   // sorted, unique
  std::vector<Point> points_;    // sorted by hash
};

}  // namespace cascn::cluster

#endif  // CASCN_CLUSTER_CONSISTENT_HASH_H_
